"""Tests for repro.svc.repl: chain replication, failover, rebalancing,
and open-loop load generation.

The unit half exercises the host-side control plane (ReplicaMap routing
and reconfiguration, FailoverPlan's deterministic kill, the ApplyLedger
exactly-once oracle, open-loop arrival draws).  The integration half
runs full replicated-service cells and checks the driver's own oracles:
ledger + physical-tag verification, availability through a primary
kill, replay exactly-once-ness, byte-identical reports per seed, and
the open- vs. closed-loop tail-latency relationship.
"""

import json

import pytest

from repro.bench.kv import run_overload_point
from repro.mpi.flatten import reset_plan_cache
from repro.svc.repl import (ApplyLedger, FailoverPlan, OpenLoopSpec,
                            Placement, ReplicaMap, ReplicatedServiceConfig,
                            arrival_times, repl_slot_bytes,
                            run_replicated_service)
from repro.svc.workload import WorkloadSpec


def small_spec(seed=1, ops=40, read_fraction=0.5, dist="uniform",
               zipf_s=1.1):
    return WorkloadSpec(n_keys=32, read_fraction=read_fraction,
                        incr_fraction=0.0, dist=dist, zipf_s=zipf_s,
                        ops_per_client=ops, value_size=32, seed=seed)


def run_cell(**overrides):
    defaults = dict(n_groups=2, replication=2, n_clients=2,
                    slots_per_shard=16, workload=small_spec())
    defaults.update(overrides)
    reset_plan_cache()
    return run_replicated_service(ReplicatedServiceConfig(**defaults))


# -- ReplicaMap -----------------------------------------------------------------


class TestReplicaMap:
    def make(self, **kw):
        return ReplicaMap([[0, 1], [2, 3]], slots_per_shard=8, **kw)

    def test_slot_layout(self):
        assert repl_slot_bytes(0) == 24
        assert repl_slot_bytes(1) == 32
        assert repl_slot_bytes(8) == 32
        assert repl_slot_bytes(9) == 40

    def test_routing_is_stable_and_in_range(self):
        rm = self.make()
        for key in ("a", "b", "k17", "x" * 40):
            shard, slot, h = rm.locate(key)
            assert (shard, slot, h) == rm.locate(key)
            assert 0 <= shard < rm.n_shards
            assert 0 <= slot < rm.slots_per_shard

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaMap([], slots_per_shard=8)
        with pytest.raises(ValueError):
            ReplicaMap([[0, 0]], slots_per_shard=8)
        with pytest.raises(ValueError):
            ReplicaMap([[0]], slots_per_shard=8, hot_factor=1.0)
        with pytest.raises(ValueError):
            ReplicaMap([[0]], slots_per_shard=8, tables_per_server=0)

    def test_table_allocation_is_bounded(self):
        rm = self.make(tables_per_server=2)
        assert rm.free_tables(0) == 1  # one taken by shard 0's primary
        extra = rm.take_table(0)
        assert rm.free_tables(0) == 0
        with pytest.raises(ValueError):
            rm.take_table(0)
        rm.release_table(0, extra)
        assert rm.free_tables(0) == 1

    def test_dead_rank_keeps_routes_until_failover(self):
        rm = self.make()
        rm.mark_dead(0)
        # Routing is deliberately blind to the silent death...
        assert [p.rank for p in rm.chain(0)] == [0, 1]
        # ...but the verification view already excludes it.
        assert [p.rank for p in rm.live_chain(0)] == [1]
        assert rm.chain_depth() == 1

    def test_fail_over_promotes_and_is_idempotent(self):
        rm = self.make()
        rm.mark_dead(0)
        assert rm.fail_over(0) == [0]
        assert [p.rank for p in rm.chain(0)] == [1]
        assert (rm.epoch, rm.failovers) == (1, 1)
        assert rm.fail_over(0) == []  # late detector: no double count
        assert (rm.epoch, rm.failovers) == (1, 1)

    def test_losing_the_last_replica_raises(self):
        rm = ReplicaMap([[0]], slots_per_shard=8)
        rm.mark_dead(0)
        with pytest.raises(RuntimeError, match="last replica"):
            rm.fail_over(0)

    def test_split_routes_top_bit_keys_to_child(self):
        rm = self.make(tables_per_server=2)
        placements = [Placement(1, rm.take_table(1)),
                      Placement(3, rm.take_table(3))]
        child = rm.add_split(0, placements)
        assert child == 2
        assert rm.group[child] == rm.group[0]
        routed = {rm.locate(f"key{i}")[0] for i in range(200)}
        assert child in routed  # some top-bit keys actually moved
        for i in range(200):
            shard, _, h = rm.locate(f"key{i}")
            if shard == child:
                assert (h >> 63) & 1 and h % rm.n_base_shards == 0
        with pytest.raises(ValueError):
            rm.add_split(0, placements)

    def test_epoch_flip_counts_mid_flight_ops_as_drained(self):
        rm = self.make()
        epoch0 = rm.begin_op(0)
        rm.thaw(0)  # an epoch flip lands mid-op
        rm.end_op(0, epoch0)
        assert rm.drained_ops == 1
        assert rm.epoch_flips == 1


class TestFailoverPlan:
    def test_kill_fires_once_at_threshold(self):
        rm = ReplicaMap([[0, 1], [2, 3]], slots_per_shard=8)
        plan = FailoverPlan(kill_group=0, kill_after_writes=3)
        assert plan.note_write(rm, 10.0) is None
        assert plan.note_write(rm, 20.0) is None
        assert plan.note_write(rm, 30.0) == 0
        assert plan.kill_time == 30.0
        assert plan.note_write(rm, 40.0) is None  # never re-fires
        assert rm.is_dead(0)

    def test_gap_closes_on_first_op_after_routing_out(self):
        rm = ReplicaMap([[0, 1], [2, 3]], slots_per_shard=8)
        plan = FailoverPlan(kill_group=0, kill_after_writes=1)
        plan.note_write(rm, 100.0)
        plan.note_op_done(rm, 0, 110.0)  # dead rank not routed out yet
        assert plan.recover_time is None
        rm.fail_over(0)
        plan.note_op_done(rm, 1, 115.0)  # wrong group: ignored
        assert plan.recover_time is None
        plan.note_op_done(rm, 0, 120.0)
        assert plan.recover_time == 120.0
        assert plan.gap_us(999.0) == pytest.approx(20.0)

    def test_gap_runs_to_end_when_never_recovered(self):
        rm = ReplicaMap([[0, 1]], slots_per_shard=8)
        plan = FailoverPlan(kill_group=0, kill_after_writes=1)
        assert plan.gap_us(500.0) == 0.0  # no kill yet
        plan.note_write(rm, 100.0)
        assert plan.gap_us(500.0) == pytest.approx(400.0)


class TestApplyLedger:
    def test_duplicate_tag_is_flagged(self):
        rm = ReplicaMap([[0, 1]], slots_per_shard=8)
        ledger = ApplyLedger()
        ledger.record(0, 0, 0, 11)
        ledger.record(0, 0, 1, 11)
        assert ledger.check(rm)["ok"]
        ledger.record(0, 0, 0, 11)  # the same tag applied twice: at-least-once
        out = ledger.check(rm)
        assert not out["ok"] and out["duplicates"]

    def test_diverging_replicas_are_flagged(self):
        rm = ReplicaMap([[0, 1]], slots_per_shard=8)
        ledger = ApplyLedger()
        ledger.record(0, 0, 0, 11)
        ledger.record(0, 0, 1, 12)  # backup saw a different write
        out = ledger.check(rm)
        assert not out["ok"] and out["disagreements"]

    def test_dead_replicas_are_exempt(self):
        rm = ReplicaMap([[0, 1]], slots_per_shard=8)
        ledger = ApplyLedger()
        ledger.record(0, 0, 0, 11)  # rank 1 never got the write...
        rm.mark_dead(0)             # ...but rank 0 died
        rm.fail_over(0)
        assert ledger.check(rm)["ok"]

    def test_copy_table_inherits_history(self):
        rm = ReplicaMap([[0, 1]], slots_per_shard=8)
        ledger = ApplyLedger()
        ledger.record(0, 3, 0, 21)
        ledger.copy_table(0, 0, 0, 4, slots=8)
        assert ledger.applies[(0, 3)][4] == [21]


class TestOpenLoopSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopSpec(mean_interarrival_us=0.0)
        with pytest.raises(ValueError):
            OpenLoopSpec(max_queue=0)

    def test_arrivals_deterministic_and_ascending(self):
        spec = OpenLoopSpec(mean_interarrival_us=25.0)
        a = arrival_times(spec, seed=1, client_id=0, n_ops=50)
        b = arrival_times(spec, seed=1, client_id=0, n_ops=50)
        assert (a == b).all()
        assert (a[1:] >= a[:-1]).all()
        other = arrival_times(spec, seed=1, client_id=1, n_ops=50)
        assert (a != other).any()


# -- configuration --------------------------------------------------------------


class TestReplicatedServiceConfig:
    def test_rank_accounting(self):
        cfg = ReplicatedServiceConfig(n_groups=2, replication=2, n_clients=3,
                                      workload=small_spec())
        assert cfg.n_servers == 4
        assert cfg.total_ranks == 7
        assert cfg.group_ranks() == [[0, 1], [2, 3]]
        with_reb = ReplicatedServiceConfig(n_groups=2, replication=2,
                                           n_clients=3,
                                           rebalance_interval_us=100.0,
                                           workload=small_spec())
        assert with_reb.total_ranks == 8  # the rebalancer rank

    def test_failover_needs_redundancy(self):
        with pytest.raises(ValueError):
            ReplicatedServiceConfig(n_groups=2, replication=1,
                                    failover=FailoverPlan(),
                                    workload=small_spec())

    def test_counters_are_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedServiceConfig(
                n_groups=2, replication=2,
                workload=WorkloadSpec(n_keys=8, incr_fraction=0.5,
                                      ops_per_client=10))


# -- full cells -----------------------------------------------------------------


class TestReplicatedService:
    def test_clean_cell_verifies(self):
        report = run_cell()
        assert report["verified"], report["checks"]
        assert report["availability"] == 1.0
        assert report["chain_depth"] == 2
        assert report["epoch"] == 0
        assert report["total_ops"] == 80

    def test_report_byte_identical_per_seed(self):
        first = json.dumps(run_cell(), sort_keys=True)
        second = json.dumps(run_cell(), sort_keys=True)
        assert first == second
        assert first != json.dumps(run_cell(workload=small_spec(seed=2)),
                                   sort_keys=True)

    @pytest.mark.parametrize("seed", [1, 2, 3],
                             ids=["seed1", "seed2", "seed3"])
    def test_failover_keeps_availability_and_exactly_once(self, seed):
        report = run_cell(
            workload=small_spec(seed=seed, ops=100),
            failover=FailoverPlan(kill_group=0, kill_after_writes=20,
                                  detect_cost_us=40.0))
        assert report["verified"], report["checks"]
        assert report["checks"]["failover"]["ok"]
        assert report["availability"] >= 0.95
        assert report["failover_gap_us"] > 0
        assert report["chain_depth"] == 1  # one group lost its backup
        # Exactly-once under replay: the ledger saw no duplicate tags
        # and the surviving replicas agree.
        assert report["checks"]["ledger"]["ok"]
        assert report["checks"]["physical_tags"]["ok"]
        assert report["replay"]["replays"] <= 2  # one in-flight per client

    def test_replay_path_is_exercised(self):
        """At least one seed must drive a client through the dead-hop ->
        replay path (not just clean failover between ops)."""
        hit = []
        for seed in (1, 2, 3):
            report = run_cell(
                workload=small_spec(seed=seed, ops=100),
                failover=FailoverPlan(kill_group=0, kill_after_writes=20))
            hit.append(report["replay"]["dead_hops"] > 0
                       and report["replay"]["replays"] > 0)
        assert any(hit)

    def test_open_loop_sheds_and_reports_sojourn(self):
        report = run_cell(
            workload=small_spec(ops=80),
            open_loop=OpenLoopSpec(mean_interarrival_us=8.0, max_queue=4))
        assert report["verified"], report["checks"]
        ol = report["open_loop"]
        assert ol["enabled"]
        assert ol["arrivals"] == 160
        assert ol["served"] + ol["shed"] == ol["arrivals"]
        assert ol["shed"] > 0  # offered > capacity: backpressure fired
        # Sojourn includes queueing; it must dominate pure service time.
        assert (report["latency_us"]["sojourn"]["p99"]
                >= report["latency_us"]["service"]["p99"])

    def test_qos_lane_keeps_cell_verified(self):
        report = run_cell(qos_reserve=0.4,
                          rebalance_interval_us=150.0,
                          rebalance_max_moves=2,
                          tables_per_server=3,
                          hot_factor=1.4,
                          workload=small_spec(ops=60, dist="zipfian",
                                              zipf_s=1.5))
        assert report["verified"], report["checks"]
        assert report["qos"]["enforcing"]


class TestOverloadPoint:
    def test_open_loop_exposes_the_tail(self):
        """The bench point's own invariant: open-loop sojourn p99 at
        1.2x capacity strictly exceeds the closed-loop p99 (it raises
        otherwise).  Small op count — the full-size point runs in the
        bench-smoke lane."""
        point = run_overload_point(n_keys=1_000_000, ops_per_client=60)
        assert point.open_p99_us > point.closed_p99_us
        assert 0.0 <= point.shed_rate < 1.0
        assert point.capacity_ops > 0
