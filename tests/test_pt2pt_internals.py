"""Tests for protocol internals: credits, rendezvous serialization, stress."""

import numpy as np

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.pt2pt import ProtocolConfig


class TestEagerCredits:
    def test_third_outstanding_eager_send_blocks(self):
        """Two eager slots per pair: the third isend can't transfer until
        the receiver drains one."""
        protocol = ProtocolConfig(eager_slots=2)
        cluster = Cluster(n_nodes=2, protocol=protocol)
        timeline = {}

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                bufs = [ctx.alloc(8 * KiB) for _ in range(3)]
                reqs = []
                for i, buf in enumerate(bufs):
                    buf.fill(i + 1)
                    reqs.append(comm.isend(buf, dest=1, tag=i))
                # Wait for all three to complete locally.
                for i, req in enumerate(reqs):
                    yield from req.wait()
                    timeline[f"send{i}"] = ctx.now
                return None
            yield ctx.cluster.engine.timeout(1000.0)
            got = []
            for i in range(3):
                buf = ctx.alloc(8 * KiB)
                yield from comm.recv(buf, source=0, tag=i)
                got.append(buf.read(0, 1)[0])
            return got

        run = cluster.run(program)
        assert run.results[1] == [1, 2, 3]
        # Sends 0 and 1 complete early (credits available); send 2 had to
        # wait for the receiver to return a credit after t=1000.
        assert timeline["send0"] < 1000.0
        assert timeline["send1"] < 1000.0
        assert timeline["send2"] > 1000.0

    def test_credits_recycle_over_many_messages(self):
        protocol = ProtocolConfig(eager_slots=2)
        cluster = Cluster(n_nodes=2, protocol=protocol)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(4 * KiB)
            if comm.rank == 0:
                for i in range(20):
                    buf.fill(i % 251)
                    yield from comm.send(buf, dest=1, tag=0)
                return None
            values = []
            for _ in range(20):
                yield from comm.recv(buf, source=0, tag=0)
                values.append(buf.read(0, 1)[0])
            return values

        run = cluster.run(program)
        assert run.results[1] == [i % 251 for i in range(20)]


class TestRendezvousSerialization:
    def test_two_senders_one_receiver_share_rndv_buffer(self):
        """The single rendezvous region serializes concurrent large
        receives but both complete correctly."""

        def program(ctx):
            comm = ctx.comm
            n = 64 * KiB
            if comm.rank in (0, 1):
                buf = ctx.alloc(n)
                buf.fill(comm.rank + 10)
                yield from comm.send(buf, dest=2, tag=comm.rank)
                return None
            values = []
            for tag in (1, 0):  # receive in reverse send order
                buf = ctx.alloc(n)
                yield from comm.recv(buf, source=tag, tag=tag)
                values.append((buf.read(0, 1)[0], buf.read(n - 1, 1)[0]))
            return values

        run = Cluster(n_nodes=3).run(program)
        assert run.results[2] == [(11, 11), (10, 10)]

    def test_interleaved_rndv_and_eager(self):
        """A small message overtakes a large one on a different tag (no
        false serialization between protocols)."""
        arrival = {}

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                big = ctx.alloc(512 * KiB)
                small = ctx.alloc(64)
                req = comm.isend(big, dest=1, tag=1)
                yield from comm.send(small, dest=1, tag=2)
                yield from req.wait()
                return None
            small = ctx.alloc(64)
            yield from comm.recv(small, source=0, tag=2)
            arrival["small"] = ctx.now
            big = ctx.alloc(512 * KiB)
            yield from comm.recv(big, source=0, tag=1)
            arrival["big"] = ctx.now
            return None

        Cluster(n_nodes=2).run(program)
        assert arrival["small"] < arrival["big"]


class TestManyRanks:
    def test_eight_node_allgather(self):
        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(1 * KiB)
            recv = ctx.alloc(1 * KiB * comm.size)
            send.fill(comm.rank + 1)
            yield from comm.allgather(send, recv)
            return [recv.read(i * KiB, 1)[0] for i in range(comm.size)]

        run = Cluster(n_nodes=8).run(program)
        assert all(r == list(range(1, 9)) for r in run.results)

    def test_all_pairs_exchange(self):
        """Every rank exchanges with every other rank concurrently."""

        def program(ctx):
            comm = ctx.comm
            reqs = []
            inboxes = {}
            for peer in range(comm.size):
                if peer == comm.rank:
                    continue
                out = ctx.alloc(256)
                out.fill(comm.rank * 16 + peer)
                reqs.append(comm.isend(out, peer, tag=comm.rank))
                inboxes[peer] = ctx.alloc(256)
                reqs.append(comm.irecv(inboxes[peer], source=peer, tag=peer))
            for req in reqs:
                yield from req.wait()
            return {peer: buf.read(0, 1)[0] for peer, buf in inboxes.items()}

        run = Cluster(n_nodes=4).run(program)
        for rank, inbox in enumerate(run.results):
            for peer, value in inbox.items():
                assert value == peer * 16 + rank

    def test_mixed_intra_and_inter_node(self):
        """2 nodes x 2 ranks: intra-node pairs use shared memory, the rest
        cross the ring; all traffic lands correctly."""
        cluster = Cluster(n_nodes=2, procs_per_node=2)

        def program(ctx):
            comm = ctx.comm
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            out = ctx.alloc(32 * KiB)
            out.fill(comm.rank + 1)
            inbox = ctx.alloc(32 * KiB)
            yield from comm.sendrecv(out, right, inbox, left)
            return inbox.read(0, 1)[0]

        run = cluster.run(program)
        assert run.results == [4, 1, 2, 3]
        # Intra-node traffic must not have touched the SCI counters for
        # the 0<->1 pair alone; at least the inter-node hops did.
        assert cluster.fabric.counters["pio_writes"] > 0


class TestContextInternals:
    def test_same_tag_different_context_no_match(self):
        """Device-level: a message in context A never satisfies a posted
        recv in context B even with matching source and tag."""
        cluster = Cluster(n_nodes=2)

        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.dup()
            buf = ctx.alloc(64)
            if comm.rank == 0:
                buf.fill(1)
                yield from comm.send(buf, dest=1, tag=3)
                return None
            # Probe on the sub communicator must not see the parent's
            # message.
            yield ctx.cluster.engine.timeout(50.0)
            assert sub.iprobe(source=0, tag=3) is None
            assert comm.iprobe(source=0, tag=3) is not None
            yield from comm.recv(buf, source=0, tag=3)
            return buf.read(0, 1)[0]

        run = cluster.run(program)
        assert run.results[1] == 1
