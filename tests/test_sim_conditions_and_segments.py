"""Coverage tests: condition failure paths, segment handle extras, layout."""

import numpy as np
import pytest

from repro._units import KiB, MiB
from repro.hardware import Node
from repro.hardware.sci import AccessRun, RingTopology, SCIFabric
from repro.hardware.sci.segments import SegmentDirectory
from repro.memlib import iter_span, strided_blocks
from repro.sim import Engine


class TestConditionFailures:
    def test_all_of_fails_fast_on_child_failure(self):
        eng = Engine()
        good = eng.timeout(10.0)
        bad = eng.event()

        def failer():
            yield eng.timeout(1.0)
            bad.fail(RuntimeError("child broke"))

        def waiter():
            try:
                yield eng.all_of([good, bad])
            except RuntimeError as exc:
                return (str(exc), eng.now)

        eng.process(failer())
        message, when = eng.run_process(waiter())
        assert message == "child broke"
        assert when == 1.0  # did not wait for the 10 µs timeout

    def test_any_of_failure_propagates(self):
        eng = Engine()
        bad = eng.event()

        def failer():
            yield eng.timeout(1.0)
            bad.fail(ValueError("early"))

        def waiter():
            try:
                yield eng.any_of([bad, eng.timeout(5.0)])
            except ValueError:
                return "caught"

        eng.process(failer())
        assert eng.run_process(waiter()) == "caught"

    def test_unwaited_failed_event_crashes_engine(self):
        """A failure nobody handles is surfaced, not swallowed."""
        eng = Engine()
        eng.event().fail(ValueError("nobody listened"))
        with pytest.raises(ValueError, match="nobody listened"):
            eng.run()

    def test_condition_engines_must_match(self):
        eng_a, eng_b = Engine(), Engine()
        ev = eng_b.event()
        with pytest.raises(ValueError):
            eng_a.all_of([ev])


class TestSegmentHandleExtras:
    def _setup(self):
        eng = Engine()
        nodes = [Node(i, mem_size=4 * MiB) for i in range(2)]
        fabric = SCIFabric(eng, RingTopology(2))
        directory = SegmentDirectory(fabric)
        seg = directory.export(nodes[1], nodes[1].space.alloc(64 * KiB))
        return eng, nodes, directory, seg

    def test_read_bytes(self):
        eng, nodes, directory, seg = self._setup()
        seg.local_view()[:16] = np.arange(16, dtype=np.uint8)
        handle = directory.import_segment(nodes[0], seg)

        def body():
            data = yield from handle.read_bytes(4, 8)
            return data.tobytes()

        assert eng.run_process(body()) == bytes(range(4, 12))

    def test_lookup(self):
        eng, nodes, directory, seg = self._setup()
        assert directory.lookup(seg.seg_id) is seg
        from repro.hardware.sci.segments import SegmentError

        with pytest.raises(SegmentError):
            directory.lookup(999)

    def test_strided_read_of_partial_runs(self):
        eng, nodes, directory, seg = self._setup()
        view = seg.local_view()
        view[:64] = np.arange(64, dtype=np.uint8)
        handle = directory.import_segment(nodes[0], seg)
        run = AccessRun(base=2, size=3, stride=10, count=4)

        def body():
            data = yield from handle.read(run)
            return data

        data = eng.run_process(body())
        expected = np.concatenate([view[2 + i * 10 : 5 + i * 10] for i in range(4)])
        assert np.array_equal(data, expected)

    def test_write_payload_mismatch(self):
        eng, nodes, directory, seg = self._setup()
        handle = directory.import_segment(nodes[0], seg)
        from repro.hardware.sci.segments import SegmentError

        def body():
            yield from handle.write(
                np.zeros(10, dtype=np.uint8), AccessRun.contiguous(0, 8)
            )

        with pytest.raises(SegmentError):
            eng.run_process(body())


class TestLayoutHelpers:
    def test_iter_span(self):
        blocks = strided_blocks(count=2, blocklen=3, stride=8, base=1)
        assert list(iter_span(blocks)) == [1, 2, 3, 9, 10, 11]
