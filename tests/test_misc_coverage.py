"""Assorted coverage: PSCW multi-origin, datatype collectives, configs."""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE, Vector
from repro.mpi.pt2pt import NonContigMode, ProtocolConfig


class TestPSCWMultiOrigin:
    def test_one_target_two_origins(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(256, shared=True)
            if comm.rank == 0:
                yield from win.post([1, 2])
                yield from win.wait([1, 2])
                return win.local_view()[:2].tobytes()
            yield from win.start([0])
            yield from win.put(
                np.array([comm.rank * 11], dtype=np.uint8), 0, comm.rank - 1
            )
            yield from win.complete([0])
            return None

        run = Cluster(n_nodes=3).run(program)
        assert run.results[0] == bytes([11, 22])

    def test_one_origin_two_targets(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64, shared=True)
            if comm.rank == 0:
                yield from win.start([1, 2])
                for target in (1, 2):
                    yield from win.put(
                        np.array([target + 40], dtype=np.uint8), target, 0
                    )
                yield from win.complete([1, 2])
                return None
            yield from win.post([0])
            yield from win.wait([0])
            return int(win.local_view()[0])

        run = Cluster(n_nodes=3).run(program)
        assert run.results[1] == 41 and run.results[2] == 42


class TestDatatypeCollectives:
    def test_bcast_with_vector_datatype(self):
        vec = Vector(32, 1, 2, DOUBLE).commit()

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(vec.extent)
            view = buf.as_array(np.float64)
            if comm.rank == 1:
                view[::2] = np.arange(32, dtype=np.float64) * 2.0
            yield from comm.bcast(buf, root=1, datatype=vec, count=1)
            return np.array(view[::2], copy=True)

        run = Cluster(n_nodes=4).run(program)
        expected = np.arange(32, dtype=np.float64) * 2.0
        for got in run.results:
            assert np.array_equal(got, expected)

    def test_bcast_datatype_gaps_untouched(self):
        vec = Vector(8, 1, 2, DOUBLE).commit()

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(vec.extent)
            view = buf.as_array(np.float64)
            view[:] = -5.0  # gap sentinel everywhere
            if comm.rank == 0:
                view[::2] = 1.0
            yield from comm.bcast(buf, root=0, datatype=vec, count=1)
            return np.array(view, copy=True)

        run = Cluster(n_nodes=2).run(program)
        got = run.results[1]
        assert (got[::2] == 1.0).all()
        assert (got[1::2][:-1] == -5.0).all()  # gaps stayed local


class TestProtocolConfigUtilities:
    def test_with_mode(self):
        cfg = ProtocolConfig().with_mode(NonContigMode.GENERIC)
        assert cfg.noncontig_mode == NonContigMode.GENERIC

    def test_replace(self):
        cfg = ProtocolConfig().replace(eager_threshold=4 * KiB, eager_slots=3)
        assert cfg.eager_threshold == 4 * KiB
        assert cfg.eager_slots == 3
        # Frozen dataclass: originals untouched.
        assert ProtocolConfig().eager_threshold == 16 * KiB

    def test_frozen(self):
        cfg = ProtocolConfig()
        with pytest.raises(Exception):
            cfg.eager_threshold = 1


class TestNodeParamsUtilities:
    def test_with_link_mhz_is_pure(self):
        from repro.hardware import DEFAULT_NODE

        fast = DEFAULT_NODE.with_link_mhz(200.0)
        assert DEFAULT_NODE.link.frequency_mhz == 166.0
        assert fast.link.frequency_mhz == 200.0
        assert fast.adapter is DEFAULT_NODE.adapter  # rest shared

    def test_with_write_combining_is_pure(self):
        from repro.hardware import DEFAULT_NODE

        off = DEFAULT_NODE.with_write_combining(False)
        assert DEFAULT_NODE.write_combine.enabled
        assert not off.write_combine.enabled
