"""Differential test oracles for the pack engine and packing plans.

Two deliberately naive oracles, checked against a seeded random generator
of nested vector/indexed/struct/resized datatype trees:

* a **recursive tree walk** over the datatype tree resolves the memory
  address of every data byte with no vectorization, no merging and no
  stacks.  The engine's packed *order* is leaf-major within an instance
  (the flattened representation's Fig. 6 iteration; canonical MPI tree
  order differs whenever a constructor wraps a multi-leaf oldtype), so
  this oracle asserts the order-independent invariant: flattening maps
  exactly the same multiset of byte addresses — nothing lost, nothing
  duplicated, nothing invented by the commit-time merge rules;
* a **recursive leaf-stack walk** re-derives every block offset of the
  committed representation by pure-Python recursion over the level
  stacks (no numpy, no mixed-radix arithmetic) and defines the expected
  byte-for-byte stream.  ``pack``, ``pack_range``, ``unpack_range`` and
  the plan-backed ``PackPlan.execute_*`` must agree with it exactly,
  including ranges split at block boundaries +/- 1.
"""

import random

import numpy as np
import pytest

from repro.mpi.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    INT,
    SHORT,
    Contiguous,
    Hindexed,
    Hvector,
    Indexed,
    Resized,
    Struct,
    Vector,
)
from repro.mpi.datatypes.basic import BasicType
from repro.mpi.flatten import PackPlan, get_plan, pack, pack_range, unpack_range

N_CASES = 210

BASICS = [BYTE, CHAR, SHORT, INT, DOUBLE]


# -- the oracle -------------------------------------------------------------------


def tree_walk_offsets(dtype) -> list[int]:
    """Byte offsets (instance-relative) of every data byte, in canonical
    MPI tree order.

    Pure recursive tree walk — the slow traversal the ff-stacks replace.
    Used for the order-independent address-coverage check (the engine's
    stream is leaf-major, which permutes this order for constructors that
    wrap multi-leaf oldtypes).
    """
    if isinstance(dtype, BasicType):
        return list(range(dtype.size))
    if isinstance(dtype, Contiguous):
        child = tree_walk_offsets(dtype.oldtype)
        return [
            i * dtype.oldtype.extent + o
            for i in range(dtype.count)
            for o in child
        ]
    if isinstance(dtype, Hvector):  # covers Vector
        child = tree_walk_offsets(dtype.oldtype)
        return [
            i * dtype.stride_bytes + j * dtype.oldtype.extent + o
            for i in range(dtype.count)
            for j in range(dtype.blocklength)
            for o in child
        ]
    if isinstance(dtype, Hindexed):  # covers Indexed
        child = tree_walk_offsets(dtype.oldtype)
        return [
            disp + j * dtype.oldtype.extent + o
            for disp, blk in zip(dtype.displacements_bytes, dtype.blocklengths)
            for j in range(blk)
            for o in child
        ]
    if isinstance(dtype, Struct):
        out: list[int] = []
        for disp, blk, ftype in zip(
            dtype.displacements_bytes, dtype.blocklengths, dtype.types
        ):
            child = tree_walk_offsets(ftype)
            out.extend(
                disp + j * ftype.extent + o for j in range(blk) for o in child
            )
        return out
    if isinstance(dtype, Resized):
        return tree_walk_offsets(dtype.oldtype)
    raise TypeError(f"oracle cannot walk {dtype!r}")


def naive_block_offsets(leaf) -> list[int]:
    """Every block offset of one leaf, by pure recursion over the levels.

    Outermost level varies slowest — the iteration order Fig. 6
    prescribes — with none of the numpy broadcasting or mixed-radix
    arithmetic ``LeafSpec.block_offsets`` uses.
    """

    def rec(levels):
        if not levels:
            return [0]
        head, rest = levels[0], levels[1:]
        tail = rec(rest)
        return [i * head.extent + o for i in range(head.count) for o in tail]

    return [leaf.offset + o for o in rec(list(leaf.levels))]


def oracle_offsets(ft) -> list[int]:
    """Byte offsets (instance-relative) of every data byte, in the
    leaf-major packed-stream order of the committed representation."""
    offs: list[int] = []
    for leaf in ft.leaves:
        for boff in naive_block_offsets(leaf):
            offs.extend(range(boff, boff + leaf.size))
    return offs


def oracle_pack(mem, base, dtype, count, offs):
    """Per-byte sequential gather of ``count`` instances."""
    return np.array(
        [
            mem[base + inst * dtype.extent + o]
            for inst in range(count)
            for o in offs
        ],
        dtype=np.uint8,
    )


def oracle_unpack_range(mem, base, dtype, count, offs, byte_offset, data):
    """Per-byte sequential scatter of a packed-stream slice."""
    size = len(offs)
    for k in range(len(data)):
        inst, within = divmod(byte_offset + k, size)
        mem[base + inst * dtype.extent + offs[within]] = data[k]


# -- the generator ----------------------------------------------------------------


def random_dtype(rng: random.Random, depth: int = 3):
    """A random non-overlapping datatype tree with odd extents mixed in."""
    if depth == 0 or rng.random() < 0.25:
        return rng.choice(BASICS)
    kind = rng.choice(
        ["contig", "vector", "hvector", "indexed", "struct", "resized"]
    )
    old = random_dtype(rng, depth - 1)
    if kind == "contig":
        return Contiguous(rng.randint(1, 3), old)
    if kind == "vector":
        blocklen = rng.randint(1, 3)
        stride = blocklen + rng.randint(0, 3)  # >= blocklen: no overlap
        return Vector(rng.randint(1, 3), blocklen, stride, old)
    if kind == "hvector":
        blocklen = rng.randint(1, 2)
        # Byte stride: at least the block span, plus an odd-ish gap.
        stride = blocklen * old.extent + rng.choice([0, 1, 3, 5, 9])
        return Hvector(rng.randint(1, 3), blocklen, stride, old)
    if kind == "indexed":
        blocklengths, displacements = [], []
        cursor = 0
        for _ in range(rng.randint(1, 3)):
            blk = rng.randint(0, 3)
            disp = cursor + rng.randint(0, 2)
            blocklengths.append(blk)
            displacements.append(disp)
            cursor = disp + blk + 1  # disjoint entries
        return Indexed(blocklengths, displacements, old)
    if kind == "struct":
        blks, disps, types = [], [], []
        cursor = 0
        for _ in range(rng.randint(1, 3)):
            ftype = rng.choice(BASICS) if rng.random() < 0.5 else old
            blk = rng.randint(0, 2)
            disp = cursor + rng.randint(0, 7)
            blks.append(blk)
            disps.append(disp)
            types.append(ftype)
            cursor = disp + blk * ftype.extent
        return Struct(blks, disps, types)
    # resized: odd extent padding (never shrinks, so instances stay disjoint)
    return Resized(old, lb=old.lb, extent=old.extent + rng.choice([1, 3, 5, 7]))


def _base_and_mem(ft, count, seed):
    lo, hi = ft.span()
    lo_total = min(lo, lo + (count - 1) * ft.extent) if count else 0
    hi_total = max(hi, hi + (count - 1) * ft.extent) if count else 0
    base = 64 - min(0, lo_total)
    rng = np.random.default_rng(seed)
    size = base + max(0, hi_total) + 128
    return base, rng.integers(0, 256, size=size, dtype=np.uint8)


def block_boundaries(ft, count) -> list[int]:
    """All packed-stream offsets where a basic block starts or ends."""
    bounds = {0, ft.size * count}
    for inst in range(count):
        for leaf, start in zip(ft.leaves, ft.leaf_starts):
            for k in range(leaf.block_count + 1):
                bounds.add(inst * ft.size + start + k * leaf.size)
    return sorted(bounds)


# -- the differential suite --------------------------------------------------------


@pytest.mark.parametrize("seed", range(N_CASES))
def test_differential_oracle(seed):
    rng = random.Random(1000 + seed)
    dtype = random_dtype(rng).commit()
    count = rng.randint(1, 8)
    ft = dtype.flattened

    tree_offs = tree_walk_offsets(dtype)
    assert len(tree_offs) == dtype.size, "oracle and datatype disagree on size"
    offs = oracle_offsets(ft)
    # Order-independent invariant: commit-time merging may permute the
    # stream (leaf-major order) but must cover the exact same addresses.
    assert sorted(offs) == sorted(tree_offs)

    base, mem = _base_and_mem(ft, count, seed)
    expected = oracle_pack(mem, base, dtype, count, offs)
    total = expected.nbytes

    # Full pack: engine and plan vs oracle.
    assert np.array_equal(pack(mem, base, ft, count), expected)
    plan = get_plan(ft, count)
    assert np.array_equal(plan.execute_pack(mem, base), expected)

    if total == 0:
        assert plan.execute_pack(mem, base, 0, 0).nbytes == 0
        return

    # Ranges split at block boundaries +/- 1.
    bounds = block_boundaries(ft, count)
    picks = rng.sample(bounds, min(3, len(bounds)))
    starts = sorted(
        s
        for b in picks
        for s in (b - 1, b, b + 1)
        if 0 <= s <= total
    )
    for s in starts:
        n = rng.randint(0, min(total - s, 2048))
        payload = expected[s : s + n]
        assert np.array_equal(pack_range(mem, base, ft, count, s, n), payload)
        assert np.array_equal(plan.execute_pack(mem, base, s, n), payload)

        scratch_oracle = _base_and_mem(ft, count, seed + 7)[1]
        scratch_engine = scratch_oracle.copy()
        scratch_plan = scratch_oracle.copy()
        oracle_unpack_range(scratch_oracle, base, dtype, count, offs, s, payload)
        unpack_range(scratch_engine, base, ft, count, s, payload)
        plan.execute_unpack(scratch_plan, base, s, payload)
        assert np.array_equal(scratch_engine, scratch_oracle), ("unpack", s, n)
        assert np.array_equal(scratch_plan, scratch_oracle), ("plan unpack", s, n)


def test_oracle_case_count():
    """The differential suite covers at least the 200 cases ISSUE asks for."""
    assert N_CASES >= 200


class TestShrunkResizedPackOnly:
    """Overlapping instances (shrunk Resized extent): pack is still defined
    (reads commute); unpack is order-dependent, so only pack is compared."""

    @pytest.mark.parametrize("count", [2, 3, 5])
    def test_overlapping_instances_pack(self, count):
        dtype = Resized(Vector(3, 1, 2, DOUBLE), lb=0, extent=16).commit()
        ft = dtype.flattened
        assert ft.extent < ft.span()[1] - ft.span()[0]  # genuinely shrunk
        base, mem = _base_and_mem(ft, count, seed=11)
        offs = oracle_offsets(ft)
        assert sorted(offs) == sorted(tree_walk_offsets(dtype))
        expected = oracle_pack(mem, base, dtype, count, offs)
        assert np.array_equal(pack(mem, base, ft, count), expected)
        plan = PackPlan(ft, count)
        assert np.array_equal(plan.execute_pack(mem, base), expected)
        for s, n in [(0, 8), (7, 9), (23, 25), (ft.size * count - 1, 1)]:
            assert np.array_equal(
                plan.execute_pack(mem, base, s, n), expected[s : s + n]
            )
