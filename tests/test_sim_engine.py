"""Unit tests for the discrete-event simulation kernel (repro.sim)."""

import pytest

from repro.sim import (
    Channel,
    Deadlock,
    Engine,
    EventAlreadyTriggered,
    InvalidYield,
    Lock,
    Resource,
    SimError,
)


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()

    def body():
        yield eng.timeout(3.5)
        return eng.now

    assert eng.run_process(body()) == 3.5


def test_timeouts_process_in_time_order():
    eng = Engine()
    order = []

    def waiter(delay, tag):
        yield eng.timeout(delay)
        order.append((tag, eng.now))

    eng.process(waiter(5.0, "b"))
    eng.process(waiter(2.0, "a"))
    eng.process(waiter(9.0, "c"))
    eng.run()
    assert order == [("a", 2.0), ("b", 5.0), ("c", 9.0)]


def test_same_time_events_fifo():
    eng = Engine()
    order = []

    def waiter(tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for tag in range(6):
        eng.process(waiter(tag))
    eng.run()
    assert order == list(range(6))


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_timeout_carries_value():
    eng = Engine()

    def body():
        got = yield eng.timeout(1.0, value="payload")
        return got

    assert eng.run_process(body()) == "payload"


def test_event_succeed_delivers_value():
    eng = Engine()
    ev = eng.event()

    def producer():
        yield eng.timeout(2.0)
        ev.succeed(42)

    def consumer():
        return (yield ev)

    eng.process(producer())
    assert eng.run_process(consumer()) == 42


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        ev.fail(RuntimeError("x"))


def test_failed_event_raises_inside_process():
    eng = Engine()
    ev = eng.event()

    def producer():
        yield eng.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    def consumer():
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    eng.process(producer())
    assert eng.run_process(consumer()) == "caught boom"


def test_unhandled_failed_event_surfaces():
    eng = Engine()
    ev = eng.event()
    ev.fail(ValueError("nobody home"))
    with pytest.raises(ValueError, match="nobody home"):
        eng.run()


def test_process_exception_propagates_to_waiter():
    eng = Engine()

    def broken():
        yield eng.timeout(1.0)
        raise KeyError("inner")

    def outer():
        try:
            yield eng.process(broken())
        except KeyError:
            return "propagated"

    assert eng.run_process(outer()) == "propagated"


def test_process_return_value_via_yield():
    eng = Engine()

    def child():
        yield eng.timeout(1.0)
        return "child-result"

    def parent():
        result = yield eng.process(child())
        return result

    assert eng.run_process(parent()) == "child-result"


def test_wait_on_already_finished_process():
    eng = Engine()

    def child():
        yield eng.timeout(1.0)
        return 7

    def parent(proc):
        yield eng.timeout(10.0)
        value = yield proc
        return (value, eng.now)

    proc = eng.process(child())
    assert eng.run_process(parent(proc)) == (7, 10.0)


def test_invalid_yield_detected():
    eng = Engine()

    def bad():
        yield 123  # not an Event

    with pytest.raises(InvalidYield):
        eng.run_process(bad())


def test_deadlock_detection():
    eng = Engine()
    ev = eng.event()  # never triggered

    def stuck():
        yield ev

    eng.process(stuck(), name="stuck-proc")
    with pytest.raises(Deadlock) as info:
        eng.run()
    assert "stuck-proc" in str(info.value)


def test_run_until_stops_before_events():
    eng = Engine()
    fired = []

    def late():
        yield eng.timeout(100.0)
        fired.append(True)

    eng.process(late())
    eng.run(until=50.0)
    assert eng.now == 50.0
    assert not fired
    eng.run()  # completes the rest
    assert fired and eng.now == 100.0


def test_run_until_past_rejected():
    eng = Engine()
    eng.run(until=5.0)
    with pytest.raises(ValueError):
        eng.run(until=1.0)


def test_step_on_empty_queue_rejected():
    eng = Engine()
    with pytest.raises(SimError):
        eng.step()


def test_all_of_waits_for_every_event():
    eng = Engine()

    def body():
        t1 = eng.timeout(1.0, value="a")
        t2 = eng.timeout(5.0, value="b")
        results = yield eng.all_of([t1, t2])
        return (eng.now, sorted(results.values()))

    assert eng.run_process(body()) == (5.0, ["a", "b"])


def test_any_of_fires_on_first():
    eng = Engine()

    def body():
        t1 = eng.timeout(1.0, value="fast")
        t2 = eng.timeout(5.0, value="slow")
        results = yield eng.any_of([t1, t2])
        return (eng.now, list(results.values()))

    now, values = eng.run_process(body())
    assert now == 1.0 and values == ["fast"]


def test_all_of_empty_fires_immediately():
    eng = Engine()

    def body():
        result = yield eng.all_of([])
        return result

    assert eng.run_process(body()) == {}


class TestChannel:
    def test_put_then_get(self):
        eng = Engine()
        chan = Channel(eng)

        def body():
            yield chan.put("x")
            item = yield chan.get()
            return item

        assert eng.run_process(body()) == "x"

    def test_get_blocks_until_put(self):
        eng = Engine()
        chan = Channel(eng)

        def producer():
            yield eng.timeout(4.0)
            yield chan.put("late")

        def consumer():
            item = yield chan.get()
            return (item, eng.now)

        eng.process(producer())
        assert eng.run_process(consumer()) == ("late", 4.0)

    def test_fifo_order(self):
        eng = Engine()
        chan = Channel(eng)

        def producer():
            for i in range(5):
                yield chan.put(i)

        def consumer():
            got = []
            for _ in range(5):
                got.append((yield chan.get()))
            return got

        eng.process(producer())
        assert eng.run_process(consumer()) == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks_when_full(self):
        eng = Engine()
        chan = Channel(eng, capacity=1)
        progress = []

        def producer():
            yield chan.put("a")
            progress.append(("put-a", eng.now))
            yield chan.put("b")  # blocks until consumer takes "a"
            progress.append(("put-b", eng.now))

        def consumer():
            yield eng.timeout(10.0)
            first = yield chan.get()
            second = yield chan.get()
            return [first, second]

        eng.process(producer())
        assert eng.run_process(consumer()) == ["a", "b"]
        assert progress == [("put-a", 0.0), ("put-b", 10.0)]

    def test_try_put_try_get(self):
        eng = Engine()
        chan = Channel(eng, capacity=1)
        assert chan.try_put(1)
        assert not chan.try_put(2)
        ok, item = chan.try_get()
        assert ok and item == 1
        ok, _ = chan.try_get()
        assert not ok

    def test_capacity_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Channel(eng, capacity=0)


class TestResource:
    def test_mutual_exclusion_orders_access(self):
        eng = Engine()
        lock = Lock(eng)
        trace = []

        def worker(tag, hold):
            yield lock.request()
            trace.append((tag, "acquired", eng.now))
            yield eng.timeout(hold)
            lock.release()

        eng.process(worker("a", 5.0))
        eng.process(worker("b", 3.0))
        eng.run()
        assert trace == [("a", "acquired", 0.0), ("b", "acquired", 5.0)]

    def test_capacity_two_admits_two(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        starts = []

        def worker(tag):
            yield res.request()
            starts.append((tag, eng.now))
            yield eng.timeout(10.0)
            res.release()

        for tag in ("a", "b", "c"):
            eng.process(worker(tag))
        eng.run()
        assert starts == [("a", 0.0), ("b", 0.0), ("c", 10.0)]

    def test_release_unheld_rejected(self):
        eng = Engine()
        res = Resource(eng)
        with pytest.raises(RuntimeError):
            res.release()

    def test_try_request(self):
        eng = Engine()
        lock = Lock(eng)
        assert lock.try_request()
        assert not lock.try_request()
        lock.release()
        assert lock.try_request()

    def test_held_combinator_releases_on_error(self):
        eng = Engine()
        lock = Lock(eng)

        def failing_body():
            yield eng.timeout(1.0)
            raise RuntimeError("inside")

        def body():
            try:
                yield from lock.held(failing_body())
            except RuntimeError:
                pass
            return lock.locked

        assert eng.run_process(body()) is False


def test_determinism_same_trace_twice():
    """Two runs of an interleaved program produce identical traces."""

    def build():
        eng = Engine()
        chan = Channel(eng)
        trace = []

        def producer(n):
            for i in range(n):
                yield eng.timeout(1.5)
                yield chan.put(i)

        def consumer(tag):
            while True:
                item = yield chan.get()
                trace.append((tag, item, eng.now))
                if item >= 8:
                    return

        eng.process(producer(10))
        eng.process(consumer("c1"))
        eng.run(until=100.0)
        return trace

    assert build() == build()
