"""Tests for the CI smoke benchmark and its comparison tool."""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def load_bench_compare():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO / "tools" / "bench_compare.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def metrics():
    from repro.bench.smoke import run_smoke

    return run_smoke()


class TestRunSmoke:
    def test_emits_expected_metrics(self, metrics):
        from repro.bench.smoke import SMOKE_METRICS

        assert tuple(metrics) == SMOKE_METRICS
        for name, value in metrics.items():
            assert value > 0, name
            assert value == pytest.approx(value), name  # finite

    def test_fault_recovery_costs_time(self, metrics):
        assert metrics["fault_recovery_us"] > metrics["fault_clean_us"]

    def test_direct_pack_beats_generic(self, metrics):
        assert (metrics["noncontig_direct_1kib_mibs"]
                > metrics["noncontig_generic_1kib_mibs"])

    def test_matches_committed_baseline(self, metrics):
        """The committed baseline must stay in sync with the code — CI's
        bench-smoke job diffs against it with a 20% tolerance."""
        baseline_path = REPO / "benchmarks" / "BENCH_baseline.json"
        baseline = json.loads(baseline_path.read_text())
        compare = load_bench_compare()
        lines, failed = compare.compare(baseline, metrics)
        assert not failed, "\n".join(lines)


class TestBenchCompare:
    def test_classify_directions(self):
        bc = load_bench_compare()
        assert bc.classify("x_us", 100.0, 130.0, 0.2)[0] == "regression"
        assert bc.classify("x_us", 100.0, 110.0, 0.2)[0] == "ok"
        assert bc.classify("x_us", 100.0, 50.0, 0.2)[0] == "improved"
        assert bc.classify("x_mibs", 100.0, 70.0, 0.2)[0] == "regression"
        assert bc.classify("x_mibs", 100.0, 300.0, 0.2)[0] == "improved"
        assert bc.classify("x_ops", 100.0, 70.0, 0.2)[0] == "regression"
        assert bc.classify("x_ops", 100.0, 300.0, 0.2)[0] == "improved"
        assert bc.classify("x_ops", 100.0, 95.0, 0.2)[0] == "ok"
        assert bc.classify("x_other", 100.0, 130.0, 0.2)[0] == "regression"
        assert bc.classify("x_other", 100.0, 70.0, 0.2)[0] == "regression"
        assert bc.classify("x_other", 100.0, 110.0, 0.2)[0] == "ok"

    def test_missing_metric_fails(self):
        bc = load_bench_compare()
        _, failed = bc.compare({"a_us": 1.0}, {})
        assert failed

    def test_new_metric_is_reported_not_failed(self):
        bc = load_bench_compare()
        lines, failed = bc.compare({"a_us": 1.0}, {"a_us": 1.0, "b_us": 2.0})
        assert not failed
        assert any("new metric" in line for line in lines)

    def test_cli_exit_codes(self, tmp_path):
        bc_path = REPO / "tools" / "bench_compare.py"
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"a_us": 100.0}))
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"a_us": 105.0}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"a_us": 200.0}))
        ok = subprocess.run([sys.executable, str(bc_path), str(base), str(good)],
                            capture_output=True, text=True)
        assert ok.returncode == 0 and "RESULT: ok" in ok.stdout
        fail = subprocess.run([sys.executable, str(bc_path), str(base), str(bad)],
                              capture_output=True, text=True)
        assert fail.returncode == 1 and "RESULT: REGRESSION" in fail.stdout
