"""Tests for the CI smoke benchmark and its comparison tool."""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "tools" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def load_bench_compare():
    return load_tool("bench_compare")


@pytest.fixture(scope="module")
def metrics():
    from repro.bench.smoke import run_smoke

    return run_smoke()


class TestRunSmoke:
    def test_emits_expected_metrics(self, metrics):
        from repro.bench.smoke import SMOKE_METRICS

        assert tuple(metrics) == SMOKE_METRICS
        for name, value in metrics.items():
            assert value > 0, name
            assert value == pytest.approx(value), name  # finite

    def test_fault_recovery_costs_time(self, metrics):
        assert metrics["fault_recovery_us"] > metrics["fault_clean_us"]

    def test_direct_pack_beats_generic(self, metrics):
        assert (metrics["noncontig_direct_1kib_mibs"]
                > metrics["noncontig_generic_1kib_mibs"])

    def test_matches_committed_baseline(self, metrics):
        """The committed baseline must stay in sync with the code — CI's
        bench-smoke job diffs against it with a 20% tolerance."""
        baseline_path = REPO / "benchmarks" / "BENCH_baseline.json"
        baseline = json.loads(baseline_path.read_text())
        compare = load_bench_compare()
        lines, failed = compare.compare(baseline, metrics)
        assert not failed, "\n".join(lines)


class TestRunPerf:
    def test_emits_expected_metrics(self):
        """One cheap pass over the wall-clock gauges: names, finiteness,
        and the engagement/equality invariants run_perf itself enforces
        (it raises if a fast-path run diverges in simulated time or no
        closed-form window engaged).  The committed
        ``BENCH_perf_baseline.json`` is gated in CI's perf-smoke lane,
        not here — wall-clock numbers are too runner-dependent for a
        hard tier-1 assertion."""
        from repro.bench.perf import PERF_METRICS, run_perf

        metrics = run_perf(repeats=1)
        assert tuple(metrics) == PERF_METRICS
        for name, value in metrics.items():
            assert value > 0, name

    def test_baseline_names_match(self):
        from repro.bench.perf import PERF_METRICS

        baseline = json.loads(
            (REPO / "benchmarks" / "BENCH_perf_baseline.json").read_text())
        assert tuple(baseline) == PERF_METRICS


class TestBenchCompare:
    def test_direction_table(self):
        bc = load_bench_compare()
        assert bc.DIRECTIONS["_per_sec"] == "higher"
        assert bc.direction("wall_clock_ops_per_sec") == "higher"
        assert bc.direction("sim_events_per_sec") == "higher"
        assert bc.direction("pingpong_8b_us") == "lower"
        assert bc.direction("fastpath_stream_speedup_x") == "higher"
        assert bc.direction("something_else") is None

    def test_classify_per_sec(self):
        bc = load_bench_compare()
        assert bc.classify("a_per_sec", 100.0, 30.0, 0.6)[0] == "regression"
        assert bc.classify("a_per_sec", 100.0, 50.0, 0.6)[0] == "ok"
        assert bc.classify("a_per_sec", 100.0, 300.0, 0.6)[0] == "improved"

    def test_classify_directions(self):
        bc = load_bench_compare()
        assert bc.classify("x_us", 100.0, 130.0, 0.2)[0] == "regression"
        assert bc.classify("x_us", 100.0, 110.0, 0.2)[0] == "ok"
        assert bc.classify("x_us", 100.0, 50.0, 0.2)[0] == "improved"
        assert bc.classify("x_mibs", 100.0, 70.0, 0.2)[0] == "regression"
        assert bc.classify("x_mibs", 100.0, 300.0, 0.2)[0] == "improved"
        assert bc.classify("x_ops", 100.0, 70.0, 0.2)[0] == "regression"
        assert bc.classify("x_ops", 100.0, 300.0, 0.2)[0] == "improved"
        assert bc.classify("x_ops", 100.0, 95.0, 0.2)[0] == "ok"
        assert bc.classify("x_other", 100.0, 130.0, 0.2)[0] == "regression"
        assert bc.classify("x_other", 100.0, 70.0, 0.2)[0] == "regression"
        assert bc.classify("x_other", 100.0, 110.0, 0.2)[0] == "ok"

    def test_missing_metric_fails(self):
        bc = load_bench_compare()
        _, failed = bc.compare({"a_us": 1.0}, {})
        assert failed

    def test_new_metric_is_reported_not_failed(self):
        bc = load_bench_compare()
        lines, failed = bc.compare({"a_us": 1.0}, {"a_us": 1.0, "b_us": 2.0})
        assert not failed
        assert any("new metric" in line for line in lines)

    def test_budget_parses_quiet_and_fenced_summaries(self):
        budget = load_tool("pytest_budget")
        assert budget.total_seconds("5 passed, 38 deselected in 1.27s") == 1.27
        assert budget.total_seconds(
            "=== 1092 passed in 74.21s (0:01:14) ===") == 74.21
        assert budget.total_seconds("no summary here") is None

    def test_budget_exit_codes(self, tmp_path):
        budget = load_tool("pytest_budget")
        report = tmp_path / "durations.txt"
        report.write_text("12 passed in 3.50s\n")
        assert budget.main([str(report), "--budget-seconds", "60"]) == 0
        assert budget.main([str(report), "--budget-seconds", "1"]) == 1
        report.write_text("garbage\n")
        assert budget.main([str(report), "--budget-seconds", "60"]) == 2

    def test_cli_exit_codes(self, tmp_path):
        bc_path = REPO / "tools" / "bench_compare.py"
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"a_us": 100.0}))
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"a_us": 105.0}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"a_us": 200.0}))
        ok = subprocess.run([sys.executable, str(bc_path), str(base), str(good)],
                            capture_output=True, text=True)
        assert ok.returncode == 0 and "RESULT: ok" in ok.stdout
        fail = subprocess.run([sys.executable, str(bc_path), str(base), str(bad)],
                              capture_output=True, text=True)
        assert fail.returncode == 1 and "RESULT: REGRESSION" in fail.stdout
