"""Integration tests: MPI-2 one-sided communication on the simulated cluster."""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE, Vector
from repro.mpi.errors import RMAError


def make_cluster(n=2, **kw):
    return Cluster(n_nodes=n, **kw)


class TestWindowBasics:
    @pytest.mark.parametrize("shared", [True, False])
    def test_put_then_fence_visible(self, shared):
        def program(ctx, shared=shared):
            comm = ctx.comm
            win = yield from comm.win_create(1 * KiB, shared=shared)
            yield from win.fence()
            if comm.rank == 0:
                data = np.arange(128, dtype=np.uint8)
                yield from win.put(data, target=1, target_disp=64)
            yield from win.fence()
            if comm.rank == 1:
                return win.local_view()[64:192].tobytes()
            return None

        run = make_cluster().run(program)
        assert run.results[1] == bytes(range(128))

    @pytest.mark.parametrize("shared", [True, False])
    def test_get_small_and_large(self, shared):
        for nbytes in (64, 32 * KiB):
            def program(ctx, nbytes=nbytes, shared=shared):
                comm = ctx.comm
                win = yield from comm.win_create(64 * KiB, shared=shared)
                if comm.rank == 1:
                    win.local_view()[:nbytes] = np.arange(nbytes, dtype=np.uint8) % 199
                yield from win.fence()
                if comm.rank == 0:
                    data = yield from win.get(nbytes, target=1, target_disp=0)
                    yield from win.fence()
                    return data.tobytes()
                yield from win.fence()
                return None

            run = make_cluster().run(program)
            expected = (np.arange(nbytes, dtype=np.uint8) % 199).tobytes()
            assert run.results[0] == expected, (shared, nbytes)

    def test_direct_vs_emulated_counters(self):
        def program(ctx, shared):
            comm = ctx.comm
            win = yield from comm.win_create(4 * KiB, shared=shared)
            yield from win.fence()
            if comm.rank == 0:
                yield from win.put(np.ones(64, dtype=np.uint8), 1, 0)
                _ = yield from win.get(64, 1, 128)
            yield from win.fence()
            return dict(win.counters)

        shared_run = make_cluster().run(lambda ctx: program(ctx, True))
        assert shared_run.results[0]["direct_puts"] == 1
        assert shared_run.results[0]["direct_gets"] == 1
        assert shared_run.results[0]["emulated_puts"] == 0

        private_run = make_cluster().run(lambda ctx: program(ctx, False))
        assert private_run.results[0]["emulated_puts"] == 1
        assert private_run.results[0]["emulated_gets"] == 1
        assert private_run.results[0]["direct_puts"] == 0

    def test_large_shared_get_uses_remote_put(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64 * KiB, shared=True)
            yield from win.fence()
            if comm.rank == 0:
                _ = yield from win.get(32 * KiB, 1, 0)
            yield from win.fence()
            return dict(win.counters)

        run = make_cluster().run(program)
        assert run.results[0]["remote_puts"] == 1
        assert run.results[0]["direct_gets"] == 0

    def test_put_out_of_window_rejected(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(128, shared=True)
            yield from win.fence()
            if comm.rank == 0:
                yield from win.put(np.zeros(256, dtype=np.uint8), 1, 0)
            yield from win.fence()

        with pytest.raises(RMAError):
            make_cluster().run(program)

    def test_accumulate_sum_and_replace(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64, shared=True)
            view = win.local_view().view(np.float64)
            view[:] = 10.0
            yield from win.fence()
            if comm.rank == 0:
                contrib = np.full(4, float(comm.rank + 1))
                yield from win.accumulate(contrib, target=1, target_disp=0,
                                          op="sum", datatype=DOUBLE)
                yield from win.accumulate(np.full(2, 99.0), target=1,
                                          target_disp=32, op="replace",
                                          datatype=DOUBLE)
            yield from win.fence()
            return list(win.local_view().view(np.float64))

        run = make_cluster().run(program)
        assert run.results[1] == [11.0, 11.0, 11.0, 11.0, 99.0, 99.0, 10.0, 10.0]

    def test_concurrent_accumulates_all_applied(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(8, shared=True)
            win.local_view().view(np.float64)[0] = 0.0
            yield from win.fence()
            if comm.rank != 0:
                yield from win.accumulate(np.array([float(comm.rank)]), 0, 0,
                                          op="sum", datatype=DOUBLE)
            yield from win.fence()
            return float(win.local_view().view(np.float64)[0])

        run = make_cluster(n=4).run(program)
        assert run.results[0] == 6.0  # 1+2+3

    def test_strided_put_with_datatype(self):
        vec = Vector(8, 1, 2, DOUBLE).commit()

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(vec.extent, shared=True)
            win.local_view().view(np.float64)[:] = -1.0
            yield from win.fence()
            if comm.rank == 0:
                data = np.arange(8, dtype=np.float64)
                yield from win.put(data, 1, 0, target_datatype=vec)
            yield from win.fence()
            return list(win.local_view().view(np.float64)[:6])

        run = make_cluster().run(program)
        assert run.results[1] == [0.0, -1.0, 1.0, -1.0, 2.0, -1.0]


class TestSynchronization:
    def test_post_start_complete_wait(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(256, shared=True)
            if comm.rank == 1:
                yield from win.post([0])
                yield from win.wait([0])
                return win.local_view()[:4].tobytes()
            yield from win.start([1])
            yield from win.put(np.array([1, 2, 3, 4], dtype=np.uint8), 1, 0)
            yield from win.complete([1])
            return None

        run = make_cluster().run(program)
        assert run.results[1] == b"\x01\x02\x03\x04"

    def test_repeated_epochs(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(8, shared=True)
            values = []
            for round_no in range(3):
                if comm.rank == 1:
                    yield from win.post([0])
                    yield from win.wait([0])
                    values.append(int(win.local_view()[0]))
                else:
                    yield from win.start([1])
                    yield from win.put(np.array([round_no + 5], dtype=np.uint8), 1, 0)
                    yield from win.complete([1])
            return values

        run = make_cluster().run(program)
        assert run.results[1] == [5, 6, 7]

    def test_lock_unlock_passive_target(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(8, shared=True)
            win.local_view().view(np.int64)[0] = 0
            yield from win.fence()
            if comm.rank != 2:
                for _ in range(5):
                    yield from win.lock(2)
                    current = yield from win.get(8, 2, 0)
                    value = int(current.view(np.int64)[0])
                    yield from win.put(
                        np.array([value + 1], dtype=np.int64), 2, 0
                    )
                    yield from win.unlock(2)
            yield from win.fence()
            return int(win.local_view().view(np.int64)[0])

        run = make_cluster(n=3).run(program)
        # Two ranks, five exclusive increments each: no lost updates.
        assert run.results[2] == 10

    def test_fence_waits_for_emulated_ops(self):
        """An emulated put must be applied before fence returns everywhere."""

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(1 * KiB, shared=False)
            yield from win.fence()
            if comm.rank == 0:
                yield from win.put(np.full(512, 3, dtype=np.uint8), 1, 0)
            yield from win.fence()
            return int(win.local_view()[0]) if comm.rank == 1 else None

        run = make_cluster().run(program)
        assert run.results[1] == 3


class TestOSCTiming:
    def test_direct_put_faster_than_emulated(self):
        def program(ctx, shared):
            comm = ctx.comm
            win = yield from comm.win_create(4 * KiB, shared=shared)
            yield from win.fence()
            t0 = ctx.now
            if comm.rank == 0:
                for i in range(16):
                    yield from win.put(np.ones(64, dtype=np.uint8), 1, i * 128)
            yield from win.fence()
            return ctx.now - t0

        t_shared = make_cluster().run(lambda c: program(c, True)).results[0]
        t_private = make_cluster().run(lambda c: program(c, False)).results[0]
        assert t_private > 2 * t_shared

    def test_direct_get_slower_than_direct_put(self):
        """Read/write asymmetry shows through MPI_Get vs MPI_Put."""

        def program(ctx, op):
            comm = ctx.comm
            win = yield from comm.win_create(4 * KiB, shared=True)
            yield from win.fence()
            t0 = ctx.now
            if comm.rank == 0:
                for i in range(16):
                    if op == "put":
                        yield from win.put(np.ones(64, dtype=np.uint8), 1, i * 128)
                    else:
                        _ = yield from win.get(64, 1, i * 128)
            yield from win.fence()
            return ctx.now - t0

        t_put = make_cluster().run(lambda c: program(c, "put")).results[0]
        t_get = make_cluster().run(lambda c: program(c, "get")).results[0]
        assert t_get > 1.5 * t_put
