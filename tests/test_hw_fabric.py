"""Tests for ring topology, fluid flow sharing, fabric ops and segments."""

import numpy as np
import pytest

from repro._units import KiB, MiB
from repro.hardware import DEFAULT_NODE, Node, congestion_fraction
from repro.hardware.sci import (
    AccessRun,
    FlowNetwork,
    RingTopology,
    SCIConnectionError,
    SCIFabric,
    SegmentDirectory,
    SegmentError,
    TorusTopology,
    gather_run,
    scatter_run,
)
from repro.sim import Engine


class TestRingTopology:
    def test_distance(self):
        ring = RingTopology(8)
        assert ring.distance(0, 1) == 1
        assert ring.distance(7, 0) == 1
        assert ring.distance(2, 1) == 7
        assert ring.distance(3, 3) == 0

    def test_route_segments(self):
        ring = RingTopology(4)
        route = ring.route(1, 3)
        assert route.data_segments == (1, 2)
        assert route.echo_segments == (3, 0)
        assert route.hops == 2

    def test_route_covers_whole_ring(self):
        ring = RingTopology(8)
        for src in range(8):
            for dst in range(8):
                if src == dst:
                    continue
                r = ring.route(src, dst)
                assert sorted(r.data_segments + r.echo_segments) == list(range(8))

    def test_self_route_empty(self):
        assert RingTopology(4).route(2, 2).hops == 0

    def test_bad_node_rejected(self):
        with pytest.raises(ValueError):
            RingTopology(4).route(0, 4)


class TestTorusTopology:
    def test_coords_roundtrip(self):
        torus = TorusTopology((4, 4, 4))
        assert torus.n_nodes == 64
        for node in range(64):
            assert torus.node_at(torus.coords(node)) == node

    def test_route_dimension_order(self):
        torus = TorusTopology((4, 4))
        route = torus.route(torus.node_at((0, 0)), torus.node_at((2, 1)))
        # Dim 0 first: two hops in the x-ring of row 0, then one in y.
        assert route.hops == 3
        dims_crossed = [seg[0] for seg in route.data_segments]
        assert dims_crossed == sorted(dims_crossed)

    def test_distance(self):
        torus = TorusTopology((8, 8, 8))
        a = torus.node_at((0, 0, 0))
        b = torus.node_at((7, 1, 0))
        assert torus.distance(a, b) == 7 + 1  # wraps take the forward arc

    def test_segments_enumeration(self):
        torus = TorusTopology((2, 3))
        # dim0 rings: 3 rings of 2 segments; dim1 rings: 2 rings of 3.
        assert len(torus.segments()) == 3 * 2 + 2 * 3


class TestCongestionCurve:
    def test_below_threshold_no_loss(self):
        assert congestion_fraction(0.3) == 1.0

    def test_table2_calibration_points(self):
        """The curve reproduces Table 2's per-node bandwidths exactly."""
        demand_per_node = 120.83  # ~120.8 MiB/s per-node injection
        cap = 633.0
        expected = {4: 120.70, 5: 115.80, 6: 97.75, 7: 79.30, 8: 62.78}
        for nodes, per_node in expected.items():
            load = nodes * demand_per_node / cap
            delivered = demand_per_node * congestion_fraction(load)
            assert delivered == pytest.approx(per_node, rel=0.02)

    def test_monotone_after_saturation(self):
        assert congestion_fraction(1.6) < congestion_fraction(1.4)

    def test_efficiency_floor(self):
        # Under extreme overload delivered *efficiency* floors at 0.4.
        load = 10.0
        assert congestion_fraction(load) * load == pytest.approx(0.4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            congestion_fraction(-0.1)


class TestFlowNetwork:
    def _net(self, n=4, cap=100.0):
        eng = Engine()
        ring = RingTopology(n)
        net = FlowNetwork(eng, {s: cap for s in ring.segments()}, echo_ratio=0.0)
        return eng, ring, net

    def test_single_flow_runs_at_cap(self):
        eng, ring, net = self._net()

        def body():
            yield net.transfer(ring.route(0, 1), nbytes=1000.0, rate_cap=10.0)
            return eng.now

        assert eng.run_process(body()) == pytest.approx(100.0)

    def test_disjoint_flows_do_not_interact(self):
        eng, ring, net = self._net()
        done_times = {}

        def xfer(tag, src, dst):
            yield net.transfer(ring.route(src, dst), 1000.0, 10.0)
            done_times[tag] = eng.now

        eng.process(xfer("a", 0, 1))
        eng.process(xfer("b", 2, 3))
        eng.run()
        assert done_times["a"] == pytest.approx(100.0)
        assert done_times["b"] == pytest.approx(100.0)

    def test_saturated_segment_throttles(self):
        """Ten 20-B/µs flows over one 100-B/µs segment get throttled."""
        eng, ring, net = self._net()
        done = []

        def xfer():
            yield net.transfer(ring.route(0, 1), 1000.0, 20.0)
            done.append(eng.now)

        for _ in range(10):
            eng.process(xfer())
        eng.run()
        # demand 200 on cap 100 -> load 2.0 -> heavy congestion; all flows
        # symmetric so all finish together, well after the uncongested 50 µs.
        assert len(done) == 10
        assert all(t == pytest.approx(done[0]) for t in done)
        assert done[0] > 100.0

    def test_flow_speeds_up_when_other_finishes(self):
        eng, ring, net = self._net(cap=100.0)
        finish = {}

        def big():
            yield net.transfer(ring.route(0, 1), 8000.0, 80.0)
            finish["big"] = eng.now

        def small():
            yield net.transfer(ring.route(0, 1), 800.0, 80.0)
            finish["small"] = eng.now

        eng.process(big())
        eng.process(small())
        eng.run()
        # Together: demand 160 on 100 -> throttled; after the small flow
        # finishes the big one speeds back up to its cap.
        assert finish["small"] < finish["big"]
        solo_time = 8000.0 / 80.0
        assert finish["big"] > solo_time  # it was slowed down for a while
        assert finish["big"] < 2.5 * solo_time  # but recovered

    def test_zero_byte_transfer_immediate(self):
        eng, ring, net = self._net()

        def body():
            yield net.transfer(ring.route(0, 1), 0.0, 10.0)
            return eng.now

        assert eng.run_process(body()) == 0.0

    def test_echo_traffic_counts_toward_demand(self):
        eng = Engine()
        ring = RingTopology(4)
        net = FlowNetwork(eng, {s: 100.0 for s in ring.segments()}, echo_ratio=0.5)

        net.transfer(ring.route(0, 1), 100.0, 10.0)
        demand = net.segment_demand()
        # data on segment 0; echo (5.0) on segments 1,2,3.
        assert demand[0] == pytest.approx(10.0)
        assert demand[1] == pytest.approx(5.0)
        eng.run()
        assert net.active_flows == 0

    def test_unknown_segment_rejected(self):
        eng, ring, net = self._net()
        bad = RingTopology(8).route(0, 6)
        with pytest.raises(KeyError):
            net.transfer(bad, 10.0, 1.0)


def make_cluster(n=4):
    eng = Engine()
    nodes = [Node(i, mem_size=8 * MiB) for i in range(n)]
    fabric = SCIFabric(eng, RingTopology(n))
    directory = SegmentDirectory(fabric)
    return eng, nodes, fabric, directory


class TestFabricOps:
    def test_pio_write_timing_scales_with_size(self):
        eng, nodes, fabric, _ = make_cluster()

        def body():
            t0 = eng.now
            yield from fabric.pio_write(0, 1, AccessRun.contiguous(0, 64 * KiB))
            t_small = eng.now - t0
            t0 = eng.now
            yield from fabric.pio_write(0, 1, AccessRun.contiguous(0, 256 * KiB))
            return t_small, eng.now - t0

        t_small, t_big = eng.run_process(body())
        assert 3.0 < t_big / t_small < 5.0  # ~4x the bytes -> ~4x the time

    def test_pio_read_slower_than_write(self):
        eng, nodes, fabric, _ = make_cluster()

        def body():
            t0 = eng.now
            yield from fabric.pio_write(0, 1, AccessRun.contiguous(0, 32 * KiB))
            t_w = eng.now - t0
            t0 = eng.now
            yield from fabric.pio_read(0, 1, AccessRun.contiguous(0, 32 * KiB))
            return t_w, eng.now - t0

        t_w, t_r = eng.run_process(body())
        assert t_r > 3 * t_w

    def test_store_barrier_costs_time(self):
        eng, nodes, fabric, _ = make_cluster()

        def body():
            yield from fabric.store_barrier(0, 1)
            return eng.now

        assert eng.run_process(body()) > 1.0

    def test_failed_node_raises(self):
        eng, nodes, fabric, _ = make_cluster()
        fabric.fail_node(2)
        assert not fabric.ping(0, 2)
        assert fabric.ping(0, 1)

        def body():
            yield from fabric.pio_write(0, 2, AccessRun.contiguous(0, 64))

        with pytest.raises(SCIConnectionError):
            eng.run_process(body())

    def test_failed_segment_breaks_routes_through_it(self):
        eng, nodes, fabric, _ = make_cluster()
        fabric.fail_segment(1)  # link 1 -> 2
        assert not fabric.ping(1, 2)
        assert not fabric.ping(0, 2)
        # 2 -> 3 doesn't use segment 1 for data, but its echo loops the ring.
        assert not fabric.ping(2, 3)
        fabric.restore_segment(1)
        assert fabric.ping(0, 2)

    def test_same_node_write_rejected(self):
        eng, nodes, fabric, _ = make_cluster()
        with pytest.raises(ValueError):
            next(iter(fabric.pio_write(0, 0, AccessRun.contiguous(0, 8))))

    def test_counters(self):
        eng, nodes, fabric, _ = make_cluster()

        def body():
            yield from fabric.pio_write(0, 1, AccessRun.contiguous(0, 128))
            yield from fabric.pio_read(0, 1, AccessRun.contiguous(0, 64))
            yield from fabric.store_barrier(0, 1)

        eng.run_process(body())
        assert fabric.counters["pio_writes"] == 1
        assert fabric.counters["bytes_written"] == 128
        assert fabric.counters["pio_reads"] == 1
        assert fabric.counters["bytes_read"] == 64
        assert fabric.counters["barriers"] == 1


class TestScatterGather:
    def test_scatter_then_gather_roundtrip(self):
        mem = np.zeros(256, dtype=np.uint8)
        run = AccessRun(base=10, size=4, stride=12, count=5)
        data = np.arange(20, dtype=np.uint8)
        scatter_run(mem, run, data)
        assert np.array_equal(gather_run(mem, run), data)
        # Gaps untouched:
        assert mem[14] == 0 and mem[15] == 0

    def test_payload_size_mismatch(self):
        mem = np.zeros(64, dtype=np.uint8)
        with pytest.raises(SegmentError):
            scatter_run(mem, AccessRun(0, 4, 8, 2), np.zeros(9, dtype=np.uint8))

    def test_out_of_bounds(self):
        mem = np.zeros(16, dtype=np.uint8)
        with pytest.raises(SegmentError):
            scatter_run(mem, AccessRun(0, 8, 16, 2), np.zeros(16, dtype=np.uint8))


class TestSegments:
    def test_export_import_remote_write(self):
        eng, nodes, fabric, directory = make_cluster()
        target_buf = nodes[1].space.alloc(1024)
        seg = directory.export(nodes[1], target_buf)
        imported = directory.import_segment(nodes[0], seg)
        payload = np.arange(256, dtype=np.uint8)

        def body():
            yield from imported.write_bytes(100, payload)
            yield from imported.barrier()

        eng.run_process(body())
        assert np.array_equal(target_buf.read(100, 256), payload)

    def test_remote_strided_write_and_read(self):
        eng, nodes, fabric, directory = make_cluster()
        seg = directory.export(nodes[2], nodes[2].space.alloc(4096))
        imported = directory.import_segment(nodes[0], seg)
        run = AccessRun(base=0, size=8, stride=16, count=32)
        payload = np.arange(256, dtype=np.uint8)

        def body():
            yield from imported.write(payload, run)
            back = yield from imported.read(run)
            return back

        back = eng.run_process(body())
        assert np.array_equal(back, payload)

    def test_local_import_short_circuits(self):
        """Same-node import costs memory-copy time, not SCI time."""
        eng, nodes, fabric, directory = make_cluster()
        seg = directory.export(nodes[0], nodes[0].space.alloc(64 * KiB))
        local = directory.import_segment(nodes[0], seg)
        assert local.is_local
        payload = np.ones(32 * KiB, dtype=np.uint8)

        def body():
            yield from local.write_bytes(0, payload)
            return eng.now

        t_local = eng.run_process(body())
        assert t_local < 100.0  # a 32 kiB local copy is tens of µs at most
        assert fabric.counters["pio_writes"] == 0
        assert np.array_equal(seg.local_view()[: 32 * KiB], payload)

    def test_write_snapshot_semantics(self):
        """Data is captured when the write is issued, not when it lands."""
        eng, nodes, fabric, directory = make_cluster()
        seg = directory.export(nodes[1], nodes[1].space.alloc(256))
        imported = directory.import_segment(nodes[0], seg)
        src = nodes[0].space.alloc(16)
        src.write(b"original-bytes!!")

        def writer():
            yield from imported.write_bytes(0, src.read())

        def clobberer():
            yield eng.timeout(0.01)
            src.write(b"XXXXXXXXXXXXXXXX")

        eng.process(writer())
        eng.process(clobberer())
        eng.run()
        assert seg.local_view()[:16].tobytes() == b"original-bytes!!"

    def test_dma_write(self):
        eng, nodes, fabric, directory = make_cluster()
        seg = directory.export(nodes[1], nodes[1].space.alloc(1 * MiB))
        imported = directory.import_segment(nodes[0], seg)
        payload = np.full(512 * KiB, 7, dtype=np.uint8)

        def body():
            yield from imported.dma_write(0, payload)
            return eng.now

        t = eng.run_process(body())
        assert t > 24.0  # at least the DMA setup cost
        assert fabric.counters["dma_transfers"] == 1
        assert (seg.local_view()[: 512 * KiB] == 7).all()

    def test_export_foreign_buffer_rejected(self):
        eng, nodes, fabric, directory = make_cluster()
        with pytest.raises(SegmentError):
            directory.export(nodes[0], nodes[1].space.alloc(64))

    def test_out_of_segment_write_rejected(self):
        eng, nodes, fabric, directory = make_cluster()
        seg = directory.export(nodes[1], nodes[1].space.alloc(64))
        imported = directory.import_segment(nodes[0], seg)

        def body():
            yield from imported.write_bytes(32, np.zeros(64, dtype=np.uint8))

        with pytest.raises(SegmentError):
            eng.run_process(body())


class TestConcurrencyEffects:
    def test_concurrent_writers_share_ring(self):
        """Two transfers crossing the same segment take longer than alone."""
        eng, nodes, fabric, directory = make_cluster(n=4)
        seg3 = directory.export(nodes[3], nodes[3].space.alloc(2 * MiB))
        imp_a = directory.import_segment(nodes[0], seg3)
        imp_b = directory.import_segment(nodes[1], seg3)
        payload = np.zeros(1 * MiB, dtype=np.uint8)
        finish = {}

        def solo():
            t0 = eng.now
            yield from imp_a.write(payload, AccessRun.contiguous(0, payload.nbytes))
            return eng.now - t0

        solo_time = eng.run_process(solo())

        def xfer(tag, imp, offset):
            t0 = eng.now
            yield from imp.write(payload, AccessRun.contiguous(offset, payload.nbytes))
            finish[tag] = eng.now - t0

        eng.process(xfer("a", imp_a, 0))
        eng.process(xfer("b", imp_b, 1 * MiB))
        eng.run()
        # Demand 2 x ~167 B/µs on a 664 B/µs segment -> load ~0.5: no loss.
        # Drop capacity to force contention instead: rerun on a slow fabric.
        assert finish["a"] == pytest.approx(solo_time, rel=0.1)

    def test_contention_on_slow_links(self):
        eng = Engine()
        nodes = [Node(i, mem_size=4 * MiB) for i in range(4)]
        slow = DEFAULT_NODE.with_link_mhz(40.0)  # 160 B/µs links
        fabric = SCIFabric(eng, RingTopology(4), node_params=slow)
        directory = SegmentDirectory(fabric)
        seg = directory.export(nodes[3], nodes[3].space.alloc(2 * MiB))
        imps = [directory.import_segment(nodes[i], seg) for i in range(3)]
        payload = np.zeros(256 * KiB, dtype=np.uint8)
        finish = {}

        def xfer(tag, imp, offset):
            t0 = eng.now
            yield from imp.write(payload, AccessRun.contiguous(offset, payload.nbytes))
            finish[tag] = eng.now - t0

        def solo():
            t0 = eng.now
            yield from imps[0].write(payload, AccessRun.contiguous(0, payload.nbytes))
            return eng.now - t0

        solo_time = eng.run_process(solo())
        for i in range(3):
            eng.process(xfer(i, imps[i], i * 256 * KiB))
        eng.run()
        assert max(finish.values()) > 1.5 * solo_time
