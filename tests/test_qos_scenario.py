"""End-to-end tests of the ``qos_contention`` scenario.

``tests/test_scenarios.py`` already runs this cell through the generic
matrix (byte-identical reports, oracle verification, invariants); this
module pins the QoS-specific content of the report — the isolation
numbers the scenario exists to prove, the admission-denial evidence, the
fault-driven revocation ladder, and the per-tenant Perfetto tracks.
"""

import json

import pytest

from repro.qos import TENANT_RANK
from repro.scenarios import run_scenario
from repro.scenarios.qos_contention import (
    BESTEFFORT_NODES,
    RESERVED_NODES,
    SENDER_PEER,
    SHARE_PER_PATH,
    QosContentionScenario,
)

_CACHE: dict = {}


def cell(seed: int = 1, faults: bool = False):
    key = (seed, faults)
    if key not in _CACHE:
        _CACHE[key] = run_scenario("qos_contention", seed=seed, faults=faults)
    return _CACHE[key]


class TestIsolationStory:
    def test_reserved_tenant_keeps_its_slo_under_contention(self):
        """The headline claim: with reservations active, the reserved
        tenant keeps >= 90 % of its solo (reservation-promised)
        throughput while the best-effort tenant blasts the crossbar."""
        iso = cell().report["app"]["isolation"]
        assert iso["reserved_isolation_ratio"] >= 0.90
        assert (iso["reserved_protected_ops_per_sec"]
                <= iso["reserved_solo_ops_per_sec"])

    def test_contended_phase_really_is_a_fight(self):
        iso = cell().report["app"]["isolation"]
        assert (iso["reserved_contended_ops_per_sec"]
                < 0.95 * iso["reserved_solo_ops_per_sec"])

    def test_besteffort_degrades_gracefully_to_the_floor(self):
        report = cell().report
        iso = report["app"]["isolation"]
        floor = report["app"]["qos"]["lanes"]["besteffort_floor"]
        assert iso["besteffort_floor_ratio"] >= floor
        # Throttling shows up as a latency hit, not a blackout.
        assert iso["besteffort_p99_us"] > iso["besteffort_p99_contended_us"]
        assert iso["besteffort_protected_ops_per_sec"] > 0

    def test_all_qos_checks_pass_and_gate_verified(self):
        app = cell().report["app"]
        assert app["verified"]
        assert all(c["ok"] for c in app["qos_checks"].values())
        assert app["bad_payloads"] == []

    def test_enforcement_counters_show_both_lanes_shaped(self):
        counters = cell().report["app"]["qos"]["counters"]
        assert counters["policed_transfers"] > 0
        assert counters["throttled_transfers"] > 0
        assert counters["reserved_transfers"] >= counters["policed_transfers"]
        assert counters["denials"] == 1
        assert counters["releases"] == 2  # one per reservation; re-release
        assert counters["activations"] == 2  # is a counted-once no-op

    def test_headline_is_reserved_protected_throughput(self):
        report = cell().report
        assert (report["headline"]["qos_reserved_throughput_ops"]
                == report["app"]["isolation"]["reserved_protected_ops_per_sec"])


class TestAdmissionEvidence:
    def test_exact_budget_admitted_then_oversize_denied(self):
        """Two 0.4-share paths land exactly on the 0.8 crossbar budget
        (inclusive boundary); the third, oversized request is denied with
        per-link evidence embedded in the report."""
        app = cell().report["app"]
        denial = app["admission_denial"]
        assert denial is not None and not denial["granted"]
        assert any(row["requested"] > row["headroom"]
                   for row in denial["links"])
        states = [r["state"] for r in app["qos"]["reservations"]]
        assert states == ["released", "released"]

    def test_tenants_and_shares_in_report(self):
        qos = cell().report["app"]["qos"]
        assert qos["tenants"] == {"tenant_r": sorted(RESERVED_NODES),
                                  "tenant_b": sorted(BESTEFFORT_NODES)}
        assert qos["lanes"]["max_share"] == pytest.approx(2 * SHARE_PER_PATH)


class TestRevocationLadder:
    def test_faulty_cell_runs_revoke_reprovision(self):
        app = cell(faults=True).report["app"]
        ladder = app["qos_checks"]["revocation_ladder"]
        assert ladder["ok"]
        assert ladder["revocations"] >= 1
        assert ladder["reprovisions"] == ladder["revocations"]
        # Every reservation's history carries the ladder and a bumped epoch.
        for res in app["qos"]["reservations"]:
            assert "revoked" in res["history"]
            assert res["epoch"] >= 1
            assert res["state"] == "released"

    def test_clean_cell_has_no_ladder(self):
        app = cell().report["app"]
        assert "revocation_ladder" not in app["qos_checks"]
        assert app["qos"]["counters"]["revocations"] == 0
        for res in app["qos"]["reservations"]:
            assert res["epoch"] == 0


class TestObservability:
    def test_qos_metrics_embedded_in_report(self):
        m = cell().report["metrics"]
        assert m["qos.tenants"] == 2.0
        assert m["qos.reserved_share_peak"] == pytest.approx(0.8)
        assert m["qos.reserved_latency_us.count"] > 0
        assert m["qos.besteffort_latency_us.count"] > 0
        assert m["qos.active_reservations"] == 0.0  # released by run end

    def test_perfetto_tenant_tracks(self):
        """Lifecycle transitions land on per-tenant tracks (the QoS
        pseudo-pid), with the tenant name as the track label."""
        from repro.obs.timeline import chrome_trace

        doc = chrome_trace(cell().tracer)
        tenant_tracks = {ev["args"]["name"] for ev in doc["traceEvents"]
                        if ev.get("ph") == "M"
                        and ev["name"] == "thread_name"
                        and ev["pid"] == 2}
        # Only tenant_r drives lifecycle events (tenant_b never reserves).
        assert tenant_tracks == {"tenant tenant_r"}
        kinds = {ev["name"] for ev in doc["traceEvents"]
                 if ev.get("cat") == "qos"}
        assert kinds == {"qos.reserve", "qos.deny", "qos.provision",
                         "qos.activate", "qos.release"}
        faulty_kinds = {ev["name"]
                        for ev in chrome_trace(cell(faults=True)
                                               .tracer)["traceEvents"]
                        if ev.get("cat") == "qos"}
        assert {"qos.revoke", "qos.reprovision"} <= faulty_kinds

    def test_tenant_rank_is_reserved(self):
        assert TENANT_RANK == -2


class TestDeterminismAndShape:
    def test_fault_seed_changes_timings_not_verdicts(self):
        """The workload itself is seed-free (deterministic streams), so
        the seed bites through the fault plan: faulty cells differ."""
        one = cell(seed=1, faults=True).report
        two = run_scenario("qos_contention", seed=2, faults=True).report
        assert one["elapsed_us"] != two["elapsed_us"]
        assert two["verified"] and two["invariants_ok"]

    def test_faulty_report_canonical_and_byte_stable(self):
        first = json.dumps(cell(faults=True).report)
        second = json.dumps(
            run_scenario("qos_contention", seed=1, faults=True).report)
        assert first == second
        assert first == json.dumps(cell(faults=True).report, sort_keys=True)

    def test_rejects_other_rank_counts(self):
        from repro.scenarios import ScenarioError

        with pytest.raises(ScenarioError, match="exactly 8 ranks"):
            run_scenario("qos_contention", ranks=12)

    def test_every_sender_crosses_the_switch(self):
        scenario = QosContentionScenario()
        from repro.scenarios import ScenarioParams

        topology = scenario.topology(ScenarioParams())
        for src, dst in SENDER_PEER.items():
            assert topology.node_group(src) != topology.node_group(dst)
