"""Differential oracle for the analytic fast-path engine (``-m faults``).

Every cell runs the same program twice on fresh clusters — analytic
fast paths forced on, then forced off — and asserts the complete
observable state is **bit-identical**: final simulated time, program
results, fabric counters, per-link flow accounting, and per-rank
scheduler/recovery stats.  The fast paths (``docs/ENGINE.md``) are
allowed to change how fast the host computes the timeline, never the
timeline itself; this file is the contract that keeps them honest.

The grid mirrors the recovery suite's: 3 seeds x
{strided, indexed, struct} datatypes x {pt2pt, osc, collectives}
suites, plus all four topology families and fault-seeded cells proving
a :class:`~repro.hardware.sci.faults.FaultPlan` consumes its random
draws identically in both modes (the fast path disengages under an
installed plan, but its cost tables stay live — pure memoization that
must not perturb a single draw).  CI's fault-matrix job runs this file
alongside ``test_fault_recovery.py`` via
``-m faults -k "<suite> and seed<N>"``.
"""

import numpy as np
import pytest

from repro import BYTE, Cluster, FaultPlan, Indexed, Struct, Vector
from repro._units import KiB
from repro.hardware.sci.topology import (
    FatTree,
    RingOfRings,
    RingTopology,
    TorusTopology,
)
from repro.mpi.flatten import reset_plan_cache
from repro.mpi.transport import set_fastpath_enabled

pytestmark = pytest.mark.faults

SEEDS = (1, 2, 3)
seeds = pytest.mark.parametrize("seed", SEEDS,
                                ids=[f"seed{s}" for s in SEEDS])
kinds = pytest.mark.parametrize("kind", ("strided", "indexed", "struct"))


def lively_plan(seed):
    return FaultPlan(seed=seed, transient_rate=0.25, torn_rate=0.25,
                     stall_rate=0.15, stall_time=3000.0)


def datatype_case(kind):
    """(datatype, count, extent) triples whose packed stream is ~768 KiB
    — enough rendezvous chunks (12 at the default 64 KiB) that the
    closed-form window replays the steady state."""
    if kind == "strided":
        dtype = Vector(3072, 64, 96, BYTE)
        return dtype, 4, 4 * 3072 * 96
    if kind == "indexed":
        blocks = [48, 16, 64, 32] * 768
        disps, at = [], 0
        for b in blocks:
            disps.append(at)
            at += b + 17
        dtype = Indexed(blocks, disps, BYTE)
        return dtype, 4, 4 * at
    assert kind == "struct"
    dtype = Struct([24, 40], [0, 48], [BYTE, BYTE])
    return dtype, 4 * 3072, 4 * 3072 * 88


def pt2pt_program(kind, seed):
    dtype, count, extent = datatype_case(kind)

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        buf = ctx.alloc(extent)
        if comm.rank == 0:
            buf.read()[:] = (np.arange(extent, dtype=np.uint64)
                             * seed % 251).astype(np.uint8)
            yield from comm.send(buf, dest=1, datatype=dtype, count=count)
            return None
        yield from comm.recv(buf, source=0, datatype=dtype, count=count)
        return bytes(buf.read())

    return program


def osc_program(kind, seed):
    """Put a ~768 KiB payload through the target's non-contiguous window
    layout, then fetch it back through the same layout."""
    dtype, count, extent = datatype_case(kind)
    nbytes = dtype.size * count

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        win = yield from comm.win_create(extent, shared=True)
        yield from win.fence()
        if comm.rank == 0:
            data = (np.arange(nbytes, dtype=np.uint64)
                    * seed % 241).astype(np.uint8)
            yield from win.put(data, target=1, target_datatype=dtype,
                               target_count=count)
            yield from win.fence()
            got = yield from win.get(nbytes, target=1,
                                     target_datatype=dtype,
                                     target_count=count)
            yield from win.fence()
            return bytes(got)
        yield from win.fence()
        yield from win.fence()
        return bytes(win.local_view())

    return program


def collectives_program(kind, seed):
    """Broadcast through the datatype's layout, then an allgather."""
    dtype, count, extent = datatype_case(kind)

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        buf = ctx.alloc(extent)
        if comm.rank == 0:
            buf.read()[:] = (np.arange(extent, dtype=np.uint64)
                             * seed % 239).astype(np.uint8)
        yield from comm.bcast(buf, root=0, datatype=dtype, count=count)

        send = ctx.alloc(8 * KiB)
        send.read()[:] = (np.arange(8 * KiB, dtype=np.uint8)
                          + seed * comm.rank) % 233
        gathered = ctx.alloc(8 * KiB * comm.size)
        yield from comm.allgather(send, gathered)
        return (bytes(buf.read()), bytes(gathered.read()))

    return program


def run_cell(program, n_nodes=2, fast=True, topology=None, faults=None):
    """Run ``program`` with the fast paths forced to ``fast``; returns
    ``(snapshot, cluster)`` where the snapshot is every observable the
    fast paths could possibly perturb."""
    previous = set_fastpath_enabled(fast)
    try:
        reset_plan_cache()
        cluster = Cluster(n_nodes=n_nodes, topology=topology, faults=faults)
        run = cluster.run(program)
    finally:
        set_fastpath_enabled(previous)
    snapshot = {
        "now": cluster.engine.now,
        "results": run.results,
        "fabric": dict(cluster.fabric.counters),
        "links": cluster.fabric.link_stats(),
        "transport": [dict(d.scheduler.stats) for d in cluster.world.devices],
        "recovery": [dict(d.recovery) for d in cluster.world.devices],
    }
    return snapshot, cluster


def windows(cluster):
    return sum(d.scheduler.fastpath["windows"]
               for d in cluster.world.devices)


class TestPt2ptFastPathOracle:
    """pt2pt rendezvous streams: the regime the closed-form window owns."""

    @seeds
    @kinds
    def test_pt2pt_stream_bit_identical(self, seed, kind):
        program = pt2pt_program(kind, seed)
        on, c_on = run_cell(program, fast=True)
        off, c_off = run_cell(program, fast=False)
        assert on == off
        assert windows(c_on) > 0, "fast path silently disengaged"
        assert windows(c_off) == 0


class TestOscFastPathOracle:
    """One-sided puts/gets through non-contiguous target layouts."""

    @seeds
    @kinds
    def test_osc_put_get_bit_identical(self, seed, kind):
        program = osc_program(kind, seed)
        on, _ = run_cell(program, fast=True)
        off, _ = run_cell(program, fast=False)
        assert on == off


class TestCollectivesFastPathOracle:
    """Collectives ride the same transport on a 4-rank communicator."""

    @seeds
    @kinds
    def test_collectives_bit_identical(self, seed, kind):
        program = collectives_program(kind, seed)
        on, _ = run_cell(program, n_nodes=4, fast=True)
        off, _ = run_cell(program, n_nodes=4, fast=False)
        assert on == off


class TestTopologyFastPathOracle:
    """The oracle holds on every topology family's routing/flow model."""

    @pytest.mark.parametrize("topology", [
        RingTopology(8),
        TorusTopology((4, 2)),
        RingOfRings(2, 4),
        FatTree(2, 4),
    ], ids=["ring", "torus", "ring_of_rings", "fat_tree"])
    def test_pt2pt_stream_bit_identical_on(self, topology):
        dtype, count, extent = datatype_case("strided")

        def program(ctx):
            comm = ctx.comm
            dtype.commit()
            last = comm.size - 1
            if comm.rank == 0:
                buf = ctx.alloc(extent)
                buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
                yield from comm.send(buf, dest=last, datatype=dtype,
                                     count=count)
                return None
            if comm.rank == last:
                buf = ctx.alloc(extent)
                yield from comm.recv(buf, source=0, datatype=dtype,
                                     count=count)
                return bytes(buf.read())
            return None
            yield  # pragma: no cover - generator marker

        on, c_on = run_cell(program, n_nodes=8, fast=True,
                            topology=topology)
        off, _ = run_cell(program, n_nodes=8, fast=False,
                          topology=topology)
        assert on == off
        assert windows(c_on) > 0, "fast path silently disengaged"


class TestFaultedFastPathOracle:
    """Under an installed FaultPlan the closed-form window disengages
    (its guard requires a clean fabric) but the cost tables stay live;
    both modes must consume the plan's random draws identically —
    same counters, same replay log, same recovery, same timeline."""

    @staticmethod
    def _faulted(program, seed, n_nodes=2):
        plan_on = lively_plan(seed)
        on, _ = run_cell(program, n_nodes=n_nodes, fast=True,
                         faults=plan_on)
        plan_off = lively_plan(seed)
        off, _ = run_cell(program, n_nodes=n_nodes, fast=False,
                          faults=plan_off)
        assert on == off
        assert plan_on.total_injected > 0, "plan never fired"
        assert plan_on.total_injected == plan_off.total_injected
        assert plan_on.counters == plan_off.counters
        assert plan_on.events == plan_off.events
        assert plan_on.as_dict() == plan_off.as_dict()

    @seeds
    def test_pt2pt_faulted_draws_identical(self, seed):
        self._faulted(pt2pt_program("strided", seed), seed)

    @seeds
    def test_osc_faulted_draws_identical(self, seed):
        self._faulted(osc_program("strided", seed), seed)

    @seeds
    def test_collectives_faulted_draws_identical(self, seed):
        self._faulted(collectives_program("strided", seed), seed,
                      n_nodes=4)

    @seeds
    def test_pt2pt_faulted_windows_disengage(self, seed):
        _, cluster = run_cell(pt2pt_program("strided", seed), fast=True,
                              faults=lively_plan(seed))
        assert windows(cluster) == 0
