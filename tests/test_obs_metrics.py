"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricError, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("a.count")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.sample() == {"a.count": 5}

    def test_counter_rejects_negative(self):
        c = Counter("a.count")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("a.level")
        g.set(7.5)
        g.set(2.0)
        assert g.sample() == {"a.level": 2.0}

    def test_histogram_expands_to_eight_keys(self):
        h = Histogram("a.size")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.sample() == {
            "a.size.count": 3,
            "a.size.sum": 6.0,
            "a.size.min": 1.0,
            "a.size.max": 3.0,
            "a.size.mean": 2.0,
            "a.size.p50": 2.0,
            "a.size.p95": pytest.approx(2.9),
            "a.size.p99": pytest.approx(2.98),
        }

    def test_histogram_empty_is_all_zero(self):
        assert set(Histogram("a").sample().values()) == {0}

    def test_histogram_percentiles_exact(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100, observed out of order
            h.observe(float(101 - v))
        assert h.percentile(0.0) == 1.0
        assert h.percentile(1.0) == 100.0
        assert h.percentile(0.50) == pytest.approx(50.5)
        assert h.percentile(0.95) == pytest.approx(95.05)
        assert h.percentile(0.99) == pytest.approx(99.01)

    def test_histogram_percentile_single_value_and_bounds(self):
        h = Histogram("lat")
        h.observe(7.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 7.0
        with pytest.raises(MetricError):
            h.percentile(1.5)

    def test_histogram_observe_after_percentile(self):
        h = Histogram("lat")
        h.observe(10.0)
        h.observe(20.0)
        assert h.percentile(0.5) == 15.0
        h.observe(0.0)  # arrives unsorted after a percentile query
        assert h.percentile(0.5) == 10.0

    def test_invalid_names_rejected(self):
        for bad in ("", "Upper.case", "trailing.", ".leading", "sp ace", "a..b"):
            with pytest.raises(MetricError):
                Counter(bad)


class TestRegistry:
    def test_snapshot_in_registration_order(self):
        reg = MetricsRegistry()
        reg.counter("b.second")
        reg.gauge("a.first")  # registration order, not alphabetical
        reg.register_collector(["c.third"], lambda: {"c.third": 9})
        assert list(reg.snapshot()) == ["b.second", "a.first", "c.third"]

    def test_instrument_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x.y")
        with pytest.raises(MetricError):
            reg.gauge("x.y")

    def test_collector_collision_rejected(self):
        reg = MetricsRegistry()
        reg.register_collector(["x.y"], lambda: {"x.y": 1})
        with pytest.raises(MetricError):
            reg.counter("x.y")
        with pytest.raises(MetricError):
            reg.register_collector(["z", "x.y"], lambda: {})

    def test_histogram_derived_keys_collide(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(MetricError):
            reg.counter("h.count")

    def test_collector_output_validated(self):
        reg = MetricsRegistry()
        reg.register_collector(["a", "b"], lambda: {"a": 1})
        with pytest.raises(MetricError):
            reg.snapshot()

    def test_names_contains_len_get(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        reg.histogram("h")
        reg.register_collector(["z"], lambda: {"z": 0})
        assert reg.names() == ["a", "h.count", "h.sum", "h.min", "h.max",
                              "h.mean", "h.p50", "h.p95", "h.p99", "z"]
        assert "a" in reg and "h.count" in reg and "h.p99" in reg and "z" in reg
        assert "missing" not in reg
        assert len(reg) == 10
        assert reg.get("a") is c
        with pytest.raises(MetricError):
            reg.get("z")  # collector names have no instrument object

    def test_diff(self):
        before = {"a": 1, "b": 10.0}
        after = {"a": 4, "b": 10.5, "new": 2}
        assert MetricsRegistry.diff(before, after) == {"a": 3, "b": 0.5}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        assert json.loads(reg.to_json()) == {"a": 3, "b": 1.5}

    def test_collectors_pull_live_values(self):
        state = {"hits": 0}
        reg = MetricsRegistry()
        reg.register_collector(["cache.hits"],
                               lambda: {"cache.hits": state["hits"]})
        assert reg.snapshot() == {"cache.hits": 0}
        state["hits"] = 7
        assert reg.snapshot() == {"cache.hits": 7}
