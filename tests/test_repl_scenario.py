"""Fault-matrix leg: migration determinism and kv_failover cells.

The live-migration oracle is byte-level: a run with the rebalancer
migrating hot shards must leave *exactly* the bytes a no-migration run
leaves (per-shard crc32 digests of the serving head tables), because the
freeze -> drain -> copy -> epoch-flip sequence happens only while the
shard is quiescent.  The comparison holds per seed, faults on or off —
a wire-level fault plan underneath must be absorbed by the recovery
layer without perturbing the final state.

Move-only configurations (``split_hot_imbalance=None``) and a single
client: with concurrent writers, last-writer-wins races resolve
differently under different op interleavings, which is a legitimate
divergence, not a migration bug — the oracle isolates the migration
machinery itself.

Runs under CI's fault-matrix ``repl`` suite (``-m faults -k "repl and
seedN"``) — the ``repl`` marker selects the suite, the seed ids pick
the leg.
"""

import json

import pytest

from repro.hardware.sci.faults import FaultPlan
from repro.mpi.flatten import reset_plan_cache
from repro.scenarios import run_scenario
from repro.svc.repl import ReplicatedServiceConfig, run_replicated_service
from repro.svc.workload import WorkloadSpec

pytestmark = [pytest.mark.faults, pytest.mark.repl]

SEEDS = [1, 2, 3]
SEED_IDS = [f"seed{s}" for s in SEEDS]


def _spec(seed):
    return WorkloadSpec(n_keys=64, read_fraction=0.4, incr_fraction=0.0,
                        dist="zipfian", zipf_s=1.6, ops_per_client=120,
                        value_size=32, seed=seed)


def _config(seed, migrate):
    return ReplicatedServiceConfig(
        n_groups=4, replication=1, n_clients=1, slots_per_shard=16,
        tables_per_server=2, hot_factor=1.5,
        rebalance_interval_us=150.0 if migrate else 0.0,
        rebalance_max_moves=3, split_hot_imbalance=None,
        workload=_spec(seed))


def _fault_plan(seed):
    return FaultPlan(seed=seed * 31 + 7, transient_rate=0.05,
                     torn_rate=0.05, stall_rate=0.02, stall_time=200.0)


def _run(seed, migrate, faults):
    reset_plan_cache()
    plan = _fault_plan(seed) if faults else None
    return run_replicated_service(_config(seed, migrate), faults=plan)


@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulty"])
@pytest.mark.parametrize("seed", SEEDS, ids=SEED_IDS)
def test_migration_preserves_state_bytes(seed, faults):
    """Migrated shards hold byte-identical state to a no-migration run."""
    migrated = _run(seed, migrate=True, faults=faults)
    oracle = _run(seed, migrate=False, faults=faults)
    assert migrated["verified"], migrated["checks"]
    assert oracle["verified"], oracle["checks"]
    assert migrated["rebalance"]["migrations"] > 0, migrated["rebalance"]
    assert migrated["state_digests"] == oracle["state_digests"]
    if faults:
        assert migrated["faults"]["injected"] > 0


@pytest.mark.parametrize("seed", SEEDS, ids=SEED_IDS)
def test_migration_run_byte_identical(seed):
    """The migrating cell itself reproduces bit-for-bit per seed."""
    first = json.dumps(_run(seed, migrate=True, faults=True),
                       sort_keys=True)
    second = json.dumps(_run(seed, migrate=True, faults=True),
                        sort_keys=True)
    assert first == second


@pytest.mark.parametrize("seed", [1, 2], ids=["seed1", "seed2"])
def test_kv_failover_cell_survives_wire_faults(seed):
    """The scenario's faulty variant: primary kill + lively wire faults
    still verify (failover and fault recovery compose)."""
    report = run_scenario("kv_failover", seed=seed, faults=True).report
    assert report["verified"], report["app"]["checks"]
    assert report["invariants_ok"], report["invariants"]
    assert report["faults"]["injected"] > 0
    assert report["app"]["availability"] >= 0.95
