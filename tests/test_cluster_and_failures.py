"""Tests for the cluster façade, rank placement, and failure injection."""

import numpy as np
import pytest

from repro._units import KiB, MiB
from repro.cluster import Cluster
from repro.hardware import DEFAULT_NODE
from repro.hardware.sci import SCIConnectionError, TorusTopology
from repro.sim import Deadlock


class TestClusterBuilder:
    def test_rank_placement_block(self):
        cluster = Cluster(n_nodes=2, procs_per_node=3)
        assert cluster.n_ranks == 6
        assert cluster.smi.rank_to_node == [0, 0, 0, 1, 1, 1]

    def test_same_node_detection(self):
        cluster = Cluster(n_nodes=2, procs_per_node=2)
        assert cluster.smi.same_node(0, 1)
        assert not cluster.smi.same_node(1, 2)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)
        with pytest.raises(ValueError):
            Cluster(n_nodes=1, procs_per_node=0)

    def test_run_returns_results_in_rank_order(self):
        def program(ctx):
            yield ctx.cluster.engine.timeout(float(10 - ctx.rank))
            return ctx.rank * 2

        run = Cluster(n_nodes=3).run(program)
        assert run.results == [0, 2, 4]

    def test_run_on_ranks_subset(self):
        def worker(ctx):
            yield ctx.cluster.engine.timeout(1.0)
            return f"r{ctx.rank}"

        cluster = Cluster(n_nodes=4)
        run = cluster.run_on_ranks({0: worker, 2: worker})
        assert run.results == ["r0", "r2"]

    def test_torus_cluster(self):
        cluster = Cluster(n_nodes=8, topology=TorusTopology((2, 2, 2)))

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(1 * KiB)
            peer = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            out = ctx.alloc(1 * KiB)
            buf.fill(comm.rank + 1)
            yield from comm.sendrecv(buf, peer, out, src)
            return out.read(0, 1)[0]

        run = cluster.run(program)
        assert run.results == [(r - 1) % 8 + 1 for r in range(8)]

    def test_custom_link_frequency(self):
        fast = Cluster(n_nodes=2, node_params=DEFAULT_NODE.with_link_mhz(200.0))
        assert fast.fabric.node_params.link.bandwidth == pytest.approx(800.0)

    def test_wtime_and_now(self):
        def program(ctx):
            yield ctx.cluster.engine.timeout(1234.0)
            return (ctx.now, ctx.wtime())

        run = Cluster(n_nodes=1).run(program)
        now, wtime = run.results[0]
        assert now == 1234.0
        assert wtime == pytest.approx(1234e-6)

    def test_deadlocked_program_detected(self):
        """Two ranks both blocking-recv first: textbook MPI deadlock."""

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(64)
            peer = 1 - comm.rank
            yield from comm.recv(buf, source=peer, tag=0)
            yield from comm.send(buf, dest=peer, tag=0)

        with pytest.raises(Deadlock):
            Cluster(n_nodes=2).run(program)

    def test_memory_budget_respected(self):
        cluster = Cluster(n_nodes=1, mem_per_node=8 * MiB)
        assert cluster.nodes[0].space.size == 8 * MiB


class TestFailureInjection:
    def test_send_to_failed_node_raises(self):
        cluster = Cluster(n_nodes=3)
        cluster.fabric.fail_node(2)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(64 * KiB)
            if comm.rank == 0:
                yield from comm.send(buf, dest=2, tag=0)
            elif comm.rank == 2:
                yield from comm.recv(buf, source=0, tag=0)
            else:
                return "idle"

        with pytest.raises(SCIConnectionError):
            cluster.run(program)

    def test_broken_segment_detected_by_monitoring(self):
        cluster = Cluster(n_nodes=4)
        assert cluster.fabric.ping(0, 2)
        cluster.fabric.fail_segment(1)
        assert not cluster.fabric.ping(0, 2)
        cluster.fabric.restore_segment(1)
        assert cluster.fabric.ping(0, 2)

    def test_traffic_resumes_after_restore(self):
        cluster = Cluster(n_nodes=2)
        cluster.fabric.fail_node(1)
        cluster.fabric.restore_node(1)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(1 * KiB)
            if comm.rank == 0:
                buf.fill(5)
                yield from comm.send(buf, dest=1, tag=0)
                return None
            yield from comm.recv(buf, source=0, tag=0)
            return buf.read(0, 1)[0]

        assert cluster.run(program).results[1] == 5

    def test_failure_mid_simulation(self):
        """A node failing between two transfers breaks only the second."""
        cluster = Cluster(n_nodes=2)
        outcome = {}

        def killer():
            yield cluster.engine.timeout(50.0)
            cluster.fabric.fail_node(1)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(4 * KiB)  # eager: completes well before t=50
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=0)
                outcome["first"] = "ok"
                yield ctx.cluster.engine.timeout(100.0)
                try:
                    yield from comm.send(buf, dest=1, tag=1)
                except SCIConnectionError:
                    outcome["second"] = "failed"
                return None
            yield from comm.recv(buf, source=0, tag=0)
            # The second message never arrives; just wait bounded time.
            yield ctx.cluster.engine.timeout(10_000.0)
            return None

        cluster.engine.process(killer(), daemon=True)
        cluster.run(program)
        assert outcome.get("first") == "ok"
        assert outcome.get("second") == "failed"

    def test_osc_put_to_failed_node(self):
        cluster = Cluster(n_nodes=2)

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(1 * KiB, shared=True)
            yield from win.fence()
            if comm.rank == 0:
                ctx.cluster.fabric.fail_node(1)
                yield from win.put(np.ones(512, dtype=np.uint8), 1, 0)
            yield from win.fence()

        with pytest.raises(SCIConnectionError):
            cluster.run(program)
