"""Property tests for ring/torus routing and the congestion curve."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.params import congestion_fraction
from repro.hardware.sci.ringlet import RingTopology, TorusTopology


@given(
    n=st.integers(min_value=2, max_value=32),
    src=st.integers(min_value=0, max_value=31),
    dst=st.integers(min_value=0, max_value=31),
)
def test_property_ring_route_invariants(n, src, dst):
    src %= n
    dst %= n
    ring = RingTopology(n)
    route = ring.route(src, dst)
    # Data route length equals the forward distance.
    assert route.hops == ring.distance(src, dst)
    # Data + echo segments tile the whole ring exactly once (src != dst).
    if src != dst:
        combined = sorted(route.data_segments + route.echo_segments)
        assert combined == list(range(n))
        # Data route starts at src's output segment.
        assert route.data_segments[0] == src
        # Echo route starts at dst's output segment.
        assert route.echo_segments[0] == dst
    else:
        assert route.data_segments == () and route.echo_segments == ()


@st.composite
def torus_and_nodes(draw):
    dims = tuple(
        draw(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3))
    )
    torus = TorusTopology(dims)
    a = draw(st.integers(min_value=0, max_value=torus.n_nodes - 1))
    b = draw(st.integers(min_value=0, max_value=torus.n_nodes - 1))
    return torus, a, b


@settings(max_examples=200, deadline=None)
@given(data=torus_and_nodes())
def test_property_torus_route_invariants(data):
    torus, a, b = data
    route = torus.route(a, b)
    # Route length equals the Manhattan-with-wrap distance.
    assert route.hops == torus.distance(a, b)
    # Every segment used exists in the topology.
    valid = set(torus.segments())
    for seg in route.data_segments + route.echo_segments:
        assert seg in valid
    # Dimension-order: segment dimensions never decrease along the route.
    dims_crossed = [seg[0] for seg in route.data_segments]
    assert dims_crossed == sorted(dims_crossed)
    # Self-route is empty.
    assert torus.route(a, a).hops == 0


@settings(max_examples=200, deadline=None)
@given(load=st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
def test_property_congestion_fraction_bounds(load):
    frac = congestion_fraction(load)
    assert 0.0 < frac <= 1.0
    # Delivered traffic (load x fraction) never exceeds the nominal
    # capacity equivalent.
    assert load * frac <= max(1.0, load) + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    lo=st.floats(min_value=0.0, max_value=4.9, allow_nan=False),
    delta=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
)
def test_property_congestion_fraction_monotone_nonincreasing(lo, delta):
    assert congestion_fraction(lo + delta) <= congestion_fraction(lo) + 1e-9


def test_torus_512_node_configuration():
    """The paper's outlook: 8-node ringlets in a 3-D torus -> 512 nodes."""
    torus = TorusTopology((8, 8, 8))
    assert torus.n_nodes == 512
    # Each node participates in 3 rings; total segments = 3 * 512.
    assert len(torus.segments()) == 3 * 512
    # Worst-case distance: 7 hops in each dimension.
    a = torus.node_at((0, 0, 0))
    b = torus.node_at((1, 1, 1))
    # Forward arcs wrap: (1,1,1) is 1+1+1 away, (0,0,0)<-... is 7+7+7.
    assert torus.distance(a, b) == 3
    assert torus.distance(b, a) == 21
