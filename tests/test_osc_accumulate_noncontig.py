"""Accumulate / fetch_and_op on non-contiguous window datatypes.

The target layout travels as a :class:`~repro.mpi.flatten.plan.PackPlan`:
the target's handler gathers the previous contents along the plan,
combines element-wise and scatters the result back; the fetched value is
the previous contents in packed order.  Verified differentially against a
pure tree-walk oracle (``tests/test_pack_oracle.py`` style) and for
plan-cache on/off equivalence.
"""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE, Vector
from repro.mpi.errors import RMAError
from repro.mpi.flatten import plan_cache_disabled

from .test_pack_oracle import tree_walk_offsets

WIN_SIZE = 8 * KiB
DISP = 64

STRIDED = lambda: Vector(4, 2, 4, DOUBLE)  # noqa: E731
NESTED = lambda: Vector(3, 1, 2, Vector(2, 2, 3, DOUBLE))  # noqa: E731


def data_byte_offsets(dtype, count, disp):
    """Absolute window offsets of every data byte, in packed order
    (single-leaf trees: tree order == leaf-major stream order)."""
    per_instance = tree_walk_offsets(dtype)
    return np.array(
        [disp + i * dtype.extent + o
         for i in range(count) for o in per_instance],
        dtype=np.int64,
    )


def init_window_bytes():
    return (np.arange(WIN_SIZE // 8, dtype=np.float64) * 0.125).view(np.uint8)


def oracle_accumulate(dtype, count, incoming, op):
    """Expected window bytes + fetched packed bytes, by pure numpy."""
    window = np.array(init_window_bytes(), copy=True)
    offs = data_byte_offsets(dtype, count, DISP)
    prev = np.array(window[offs], copy=True)
    typed_prev = prev.view(np.float64)
    typed_in = incoming.view(np.float64)
    if op == "replace":
        result = typed_in
    else:
        assert op == "sum"
        result = typed_prev + typed_in
    window[offs] = np.ascontiguousarray(result).view(np.uint8)
    return window, prev


def run_accumulate(make_dtype, count, op="sum", fetch=False, shared=True):
    dtype = make_dtype().commit()
    total = dtype.size * count
    incoming = (np.arange(total // 8, dtype=np.float64) + 1.0).view(np.uint8)

    def program(ctx):
        comm = ctx.comm
        win = yield from comm.win_create(WIN_SIZE, shared=shared)
        if comm.rank == 1:
            win.local_view()[:] = init_window_bytes()
        yield from win.fence()
        fetched = None
        if comm.rank == 0:
            fetched = yield from win.accumulate(
                incoming, target=1, target_disp=DISP, op=op,
                datatype=DOUBLE, fetch=fetch,
                target_datatype=dtype, target_count=count,
            )
        yield from win.fence()
        if comm.rank == 1:
            return win.local_view().tobytes()
        return fetched.tobytes() if fetched is not None else None

    run = Cluster(n_nodes=2).run(program)
    expected_window, expected_prev = oracle_accumulate(
        dtype, count, incoming, op
    )
    return run, expected_window, expected_prev


class TestNoncontigAccumulate:
    @pytest.mark.parametrize("make_dtype,count", [
        (STRIDED, 1), (STRIDED, 5), (NESTED, 1), (NESTED, 4),
    ])
    @pytest.mark.parametrize("shared", [True, False])
    def test_sum_matches_oracle(self, make_dtype, count, shared):
        run, expected_window, _ = run_accumulate(
            make_dtype, count, shared=shared
        )
        assert run.results[1] == expected_window.tobytes()

    @pytest.mark.parametrize("make_dtype,count", [(STRIDED, 3), (NESTED, 2)])
    def test_replace_matches_oracle(self, make_dtype, count):
        run, expected_window, _ = run_accumulate(
            make_dtype, count, op="replace"
        )
        assert run.results[1] == expected_window.tobytes()

    @pytest.mark.parametrize("make_dtype,count", [(STRIDED, 2), (NESTED, 3)])
    def test_fetch_returns_previous_packed_contents(self, make_dtype, count):
        run, expected_window, expected_prev = run_accumulate(
            make_dtype, count, fetch=True
        )
        assert run.results[0] == expected_prev.tobytes()
        assert run.results[1] == expected_window.tobytes()

    def test_fetch_and_op_noncontig_target(self):
        dtype = STRIDED().commit()
        count = 2
        total = dtype.size * count
        incoming = np.full(total // 8, 2.5, dtype=np.float64).view(np.uint8)

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(WIN_SIZE, shared=True)
            if comm.rank == 1:
                win.local_view()[:] = init_window_bytes()
            yield from win.fence()
            out = None
            if comm.rank == 0:
                out = yield from win.fetch_and_op(
                    incoming, target=1, target_disp=DISP,
                    target_datatype=dtype, target_count=count,
                )
            yield from win.fence()
            return out.tobytes() if out is not None else None

        run = Cluster(n_nodes=2).run(program)
        _, expected_prev = oracle_accumulate(dtype, count, incoming, "sum")
        assert run.results[0] == expected_prev.tobytes()

    def test_local_rank_accumulate_noncontig(self):
        """Origin == target: the local branch takes the same plan path."""
        dtype = NESTED().commit()
        count = 2
        total = dtype.size * count
        incoming = (np.arange(total // 8, dtype=np.float64) - 3.0).view(np.uint8)

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(WIN_SIZE, shared=True)
            if comm.rank == 0:
                win.local_view()[:] = init_window_bytes()
            yield from win.fence()
            fetched = None
            if comm.rank == 0:
                fetched = yield from win.accumulate(
                    incoming, target=0, target_disp=DISP, fetch=True,
                    datatype=DOUBLE, target_datatype=dtype,
                    target_count=count,
                )
            yield from win.fence()
            if comm.rank == 0:
                return fetched.tobytes(), win.local_view().tobytes()
            return None

        run = Cluster(n_nodes=2).run(program)
        expected_window, expected_prev = oracle_accumulate(
            dtype, count, incoming, "sum"
        )
        fetched, window = run.results[0]
        assert fetched == expected_prev.tobytes()
        assert window == expected_window.tobytes()

    def test_size_mismatch_rejected(self):
        dtype = STRIDED().commit()

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(WIN_SIZE, shared=True)
            yield from win.fence()
            if comm.rank == 0:
                with pytest.raises(RMAError):
                    yield from win.accumulate(
                        np.zeros(3, dtype=np.float64), target=1,
                        target_disp=DISP, datatype=DOUBLE,
                        target_datatype=dtype, target_count=1,
                    )
            yield from win.fence()
            return True

        assert all(Cluster(n_nodes=2).run(program).results)


class TestPlanCacheEquivalence:
    @pytest.mark.parametrize("make_dtype,count", [(STRIDED, 4), (NESTED, 3)])
    def test_cache_on_off_identical(self, make_dtype, count):
        """The memoized-plan path and the cache-disabled path produce the
        same window bytes, the same fetched bytes and the same simulated
        time (plans only memoize work; they never change results)."""
        on_run, _, _ = run_accumulate(make_dtype, count, fetch=True)
        with plan_cache_disabled():
            off_run, _, _ = run_accumulate(make_dtype, count, fetch=True)
        assert on_run.results == off_run.results
        assert on_run.elapsed == pytest.approx(off_run.elapsed)
