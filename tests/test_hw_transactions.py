"""Tests for the SCI transaction-formation and PIO cost models.

These tests pin the *paper-calibrated* behaviour: write-combine alignment
sensitivity (Sec. 4.3), read/write asymmetry (Sec. 2), WC-off halving
(Sec. 4.3), and PIO-vs-DMA crossover (Fig. 1).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import KiB, MiB, to_mib_s
from repro.hardware import DEFAULT_NODE
from repro.hardware.cpu import (
    coalesce_within_windows,
    count_store_units,
    store_units,
    wc_flush_chunks,
)
from repro.hardware.sci.transactions import (
    AccessRun,
    dma_cost,
    remote_read_cost,
    remote_read_txns,
    remote_write_cost,
    summarize_block,
    summarize_block_reference,
    summarize_run,
)


def write_bandwidth(run: AccessRun, params=DEFAULT_NODE, **kw) -> float:
    cost = remote_write_cost(run, params, **kw)
    return to_mib_s(run.total_bytes / cost.duration)


def read_bandwidth(run: AccessRun, params=DEFAULT_NODE) -> float:
    return to_mib_s(run.total_bytes / remote_read_cost(run, params))


class TestStoreUnits:
    def test_aligned_block_uses_full_width(self):
        assert store_units(0, 32) == [(0, 8), (8, 8), (16, 8), (24, 8)]

    def test_misaligned_head_and_tail(self):
        units = store_units(3, 8)
        # 3..4 (1B), 4..8 (4B), 8..10 (2B), 10..11 (1B)
        assert units == [(3, 1), (4, 4), (8, 2), (10, 1)]
        assert sum(s for _, s in units) == 8

    def test_zero_size(self):
        assert store_units(100, 0) == []

    def test_count_matches_list(self):
        for addr in range(0, 16):
            for size in range(0, 70):
                assert count_store_units(addr, size) == len(store_units(addr, size))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            store_units(0, 8, store_width=6)


class TestCoalesce:
    def test_adjacent_within_window_merge(self):
        chunks = [(0, 8), (8, 8), (16, 8), (24, 8)]
        assert list(coalesce_within_windows(chunks, 32)) == [(0, 32)]

    def test_window_boundary_splits(self):
        chunks = [(24, 8), (32, 8)]
        assert list(coalesce_within_windows(chunks, 32)) == [(24, 8), (32, 8)]

    def test_gap_splits(self):
        chunks = [(0, 8), (16, 8)]
        assert list(coalesce_within_windows(chunks, 32)) == [(0, 8), (16, 8)]

    def test_chunk_spanning_window_is_split(self):
        assert list(coalesce_within_windows([(28, 8)], 32)) == [(28, 4), (32, 4)]

    def test_wc_flush_contiguous_block(self):
        # A 64-byte aligned block flushes as two full WC lines.
        assert wc_flush_chunks(0, 64) == [(0, 32), (32, 32)]

    def test_wc_flush_misaligned_block(self):
        # 8 bytes at offset 28 straddles two lines -> two partial flushes.
        assert wc_flush_chunks(28, 8) == [(28, 4), (32, 4)]


class TestSummaries:
    def test_contiguous_64B_is_one_sci_txn(self):
        s = summarize_block(0, 64, DEFAULT_NODE)
        assert s.sci_txns == 1
        assert s.pci_txns == 2  # two WC lines
        assert s.n_stores == 8

    def test_aligned_8B_block_is_one_txn(self):
        s = summarize_block(64, 8, DEFAULT_NODE)
        assert s.sci_txns == 1 and s.pci_txns == 1 and s.n_stores == 1

    def test_misaligned_8B_block_splits(self):
        s = summarize_block(68, 8, DEFAULT_NODE)  # 68..76: 4+4 naturally aligned
        assert s.sci_txns == 2

    def test_oddly_misaligned_block_splits_badly(self):
        s = summarize_block(3, 8, DEFAULT_NODE)  # 1+4+2+1
        assert s.sci_txns == 4

    def test_run_extrapolation_matches_loop(self):
        run = AccessRun(base=4, size=24, stride=56, count=37)
        total = summarize_run(run, DEFAULT_NODE)
        looped = summarize_block(4, 24, DEFAULT_NODE)
        acc = looped.scaled(0)
        for i in range(run.count):
            acc = acc + summarize_block(4 + i * 56, 24, DEFAULT_NODE)
        assert total == acc

    def test_contiguous_run_collapses(self):
        run = AccessRun(base=0, size=64, stride=64, count=16)
        assert summarize_run(run, DEFAULT_NODE) == summarize_block(0, 1024, DEFAULT_NODE)

    def test_overlapping_run_rejected(self):
        with pytest.raises(ValueError):
            AccessRun(base=0, size=64, stride=32, count=2)


@settings(max_examples=200, deadline=None)
@given(
    addr=st.integers(min_value=0, max_value=200),
    size=st.integers(min_value=0, max_value=300),
)
def test_property_block_summary_matches_reference(addr, size):
    """Closed-form block summary == chunk-level reference simulation."""
    fast = summarize_block(addr, size, DEFAULT_NODE)
    slow = summarize_block_reference(addr, size, DEFAULT_NODE)
    assert fast == slow


@settings(max_examples=150, deadline=None)
@given(
    addr=st.integers(min_value=0, max_value=130),
    size=st.integers(min_value=0, max_value=260),
)
def test_property_block_summary_matches_reference_wc_off(addr, size):
    params = DEFAULT_NODE.with_write_combining(False)
    assert summarize_block(addr, size, params) == summarize_block_reference(
        addr, size, params
    )


@settings(max_examples=100, deadline=None)
@given(
    base=st.integers(min_value=0, max_value=64),
    size=st.integers(min_value=1, max_value=48),
    gap=st.integers(min_value=0, max_value=80),
    count=st.integers(min_value=1, max_value=60),
)
def test_property_run_summary_matches_per_block_sum(base, size, gap, count):
    """Cycle-detected run summary == naive per-block accumulation.

    Cross-block gathering only happens for contiguous runs (gap 0 handled
    by the collapse path), so per-block summation is the ground truth when
    gap > 0.
    """
    stride = size + gap
    run = AccessRun(base=base, size=size, stride=stride, count=count)
    total = summarize_run(run, DEFAULT_NODE)
    if gap == 0:
        expected = summarize_block(base, size * count, DEFAULT_NODE)
    else:
        expected = summarize_block(base, size, DEFAULT_NODE).scaled(0)
        for i in range(count):
            expected = expected + summarize_block(base + i * stride, size, DEFAULT_NODE)
    assert total == expected


class TestPaperCalibration:
    """Pin the quantitative shapes the paper reports (Sec. 4.3, Sec. 2, Fig. 1)."""

    def test_contiguous_write_peak(self):
        run = AccessRun.contiguous(0, 256 * KiB)
        bw = write_bandwidth(run)
        assert 140 <= bw <= 190  # peak PIO write ~160 MiB/s

    def test_strided_8B_aligned_near_28(self):
        # 8-byte accesses, stride a multiple of 32: paper max 28 MiB/s.
        run = AccessRun(base=0, size=8, stride=32, count=4096)
        bw = write_bandwidth(run)
        assert 20 <= bw <= 32

    def test_strided_8B_misaligned_much_slower(self):
        # Odd stride: accesses straddle WC lines -> paper min ~5 MiB/s.
        run = AccessRun(base=0, size=8, stride=31, count=4096)
        bw = write_bandwidth(run)
        aligned = write_bandwidth(AccessRun(base=0, size=8, stride=32, count=4096))
        assert bw < 0.6 * aligned
        assert 3 <= bw <= 16

    def test_strided_256B_aligned_near_160(self):
        run = AccessRun(base=0, size=256, stride=512, count=512)
        bw = write_bandwidth(run)
        assert 140 <= bw <= 185  # paper: up to 162 MiB/s

    def test_strided_256B_worst_case_much_slower(self):
        run = AccessRun(base=3, size=256, stride=509, count=512)
        bw = write_bandwidth(run)
        assert bw < 100  # paper: down to 7 MiB/s for bad strides (coarse bound)

    def test_stride_multiple_of_32_is_local_maximum(self):
        """Sweep strides for 8-byte accesses: multiples of 32 win (Sec. 4.3)."""
        results = {}
        for stride in range(8, 129):
            run = AccessRun(base=0, size=8, stride=stride, count=2048)
            results[stride] = write_bandwidth(run)
        best_aligned = max(results[s] for s in results if s % 32 == 0)
        worst_misaligned = min(results[s] for s in results if s % 32)
        # Paper: 5 vs 28 MiB/s between worst and best stride.
        assert best_aligned > 2.5 * worst_misaligned
        # And every stride that is a multiple of 32 performs at the top.
        for s in results:
            if s % 32 == 0:
                assert results[s] == pytest.approx(best_aligned, rel=0.05)

    def test_wc_disabled_halves_contiguous_bandwidth(self):
        run = AccessRun.contiguous(0, 256 * KiB)
        on = write_bandwidth(run)
        off = write_bandwidth(run, DEFAULT_NODE.with_write_combining(False))
        assert 0.35 * on <= off <= 0.65 * on  # "about 50%"

    def test_wc_disabled_avoids_stride_drops(self):
        """Without WC, alignment no longer matters much (Sec. 4.3)."""
        params = DEFAULT_NODE.with_write_combining(False)
        aligned = write_bandwidth(AccessRun(0, 8, 32, 2048), params)
        misaligned = write_bandwidth(AccessRun(0, 8, 36, 2048), params)
        assert misaligned >= 0.8 * aligned

    def test_read_much_slower_than_write(self):
        run = AccessRun.contiguous(0, 64 * KiB)
        assert read_bandwidth(run) < 0.25 * write_bandwidth(run)

    def test_small_read_latency_is_low(self):
        """Sec. 2: remote reads of small data still have low latency (µs-scale)."""
        cost = remote_read_cost(AccessRun.contiguous(0, 8), DEFAULT_NODE)
        assert cost < 10.0

    def test_dma_loses_small_wins_large(self):
        small = 1 * KiB
        large = 1 * MiB
        pio_small = remote_write_cost(AccessRun.contiguous(0, small), DEFAULT_NODE).duration
        pio_large = remote_write_cost(
            AccessRun.contiguous(0, large), DEFAULT_NODE, src_cached=False
        ).duration
        assert dma_cost(small, DEFAULT_NODE) > pio_small
        assert dma_cost(large, DEFAULT_NODE) < pio_large

    def test_uncached_source_dips_large_transfers(self):
        run = AccessRun.contiguous(0, 512 * KiB)
        cached = write_bandwidth(run, src_cached=True)
        uncached = write_bandwidth(run, src_cached=False)
        assert uncached < cached  # the Fig. 1 PIO dip beyond the L2 size

    def test_read_txn_count_strided(self):
        # 8-byte aligned reads, one txn each.
        run = AccessRun(base=0, size=8, stride=32, count=100)
        assert remote_read_txns(run, DEFAULT_NODE) == 100

    def test_write_cost_bottleneck_reporting(self):
        cost = remote_write_cost(AccessRun.contiguous(0, 64 * KiB), DEFAULT_NODE)
        assert cost.bottleneck in {"cpu", "pci", "sci", "src_read"}
        assert cost.duration == pytest.approx(
            max(cost.cpu_time, cost.pci_time, cost.sci_time, cost.src_read_time)
        )
