"""Tests for the RMA key-value service (repro.svc).

Covers the deterministic placement layer, the seeded workload generator,
the slot protocol's semantics under concurrent clients (torn-read
detection, counter exactness), and the driver's headline guarantee: the
full JSON report is bit-identical across repeated runs for a given
(workload, fault plan) pair — uniform and zipfian, faults on and off.
"""

import json

import pytest

from repro.cluster import Cluster
from repro.hardware.sci.faults import FaultPlan
from repro.mpi.flatten import reset_plan_cache
from repro.svc import (
    Op,
    RmaKvStore,
    ServiceConfig,
    ShardMap,
    SvcInstruments,
    WorkloadSpec,
    client_ops,
    hash_key,
    mix64,
    replay,
    run_service,
    slot_bytes,
)


class TestShardMap:
    def test_hash_is_stable_and_nonzero(self):
        assert hash_key("alpha") == hash_key("alpha")
        assert hash_key("alpha") != hash_key("beta")
        for i in range(200):
            assert hash_key(f"k{i}") != 0

    def test_mix64_avalanche(self):
        # Neighbouring inputs land far apart (no low-bit clustering).
        outs = {mix64(i) & 0xFF for i in range(64)}
        assert len(outs) > 40

    def test_blob_placement_in_bounds(self):
        shards = ShardMap([0, 1, 2], slots_per_shard=16, counter_slots=4)
        for i in range(300):
            shard, slot = shards.locate_blob(f"key-{i}")
            assert 0 <= shard < 3
            assert 4 <= slot < 16  # never a counter slot

    def test_counter_placement_exact_and_disjoint(self):
        shards = ShardMap([0, 1], slots_per_shard=8, counter_slots=3)
        assert shards.max_counter_keys == 6
        seen = set()
        for cid in range(shards.max_counter_keys):
            loc = shards.locate_counter(cid)
            assert loc not in seen  # no aliasing below the cap
            seen.add(loc)
            assert loc[1] < 3

    def test_load_accounting(self):
        shards = ShardMap([0, 1], slots_per_shard=8, counter_slots=2,
                          hot_factor=1.5)
        assert shards.imbalance() == 0.0 and shards.hot_shards() == []
        for _ in range(9):
            shards.record(0)
        shards.record(1)
        assert shards.total_ops() == 10
        assert shards.imbalance() == pytest.approx(1.8)
        assert shards.hot_shards() == [0]

    def test_hot_shard_degenerate_cases(self):
        """The module-level helper must stay quiet on inputs where
        "hot" is meaningless: a single shard, no traffic at all, or so
        little traffic that one op can tip the threshold."""
        from repro.svc import hot_shard_indices

        assert hot_shard_indices([], 1.5) == []
        assert hot_shard_indices([7], 1.5) == []          # n < 2
        assert hot_shard_indices([0, 0], 1.5) == []       # no traffic
        assert hot_shard_indices([1, 0], 1.5) == []       # below min_total
        assert hot_shard_indices([1, 0], 1.5, min_total=1) == [0]
        assert hot_shard_indices([9, 1], 1.5) == [0]
        # A perfectly balanced load is never hot, whatever the volume.
        assert hot_shard_indices([100, 100], 1.5) == []

    def test_hot_shard_threshold_is_strict(self):
        from repro.svc import hot_shard_indices

        # threshold = 1.5 * 12 / 2 = 9: count 9 is NOT hot, 10 is.
        assert hot_shard_indices([9, 3], 1.5) == []
        assert hot_shard_indices([10, 2], 1.5) == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap([], 8)
        with pytest.raises(ValueError):
            ShardMap([0], slots_per_shard=4, counter_slots=4)
        with pytest.raises(ValueError):
            ShardMap([0], 8, hot_factor=1.0)
        with pytest.raises(ValueError):
            ShardMap([0], 8).locate_counter(-1)


class TestWorkload:
    def test_streams_are_deterministic(self):
        spec = WorkloadSpec(seed=7, ops_per_client=50)
        assert client_ops(spec, 0) == client_ops(spec, 0)
        assert client_ops(spec, 0) != client_ops(spec, 1)

    def test_op_mix_respects_fractions(self):
        spec = WorkloadSpec(read_fraction=1.0, incr_fraction=0.0,
                            ops_per_client=40)
        assert all(op.kind == "get" for op in client_ops(spec, 0))
        spec = WorkloadSpec(read_fraction=0.0, incr_fraction=1.0,
                            ops_per_client=40)
        assert all(op.kind == "incr" for op in client_ops(spec, 0))

    def test_zipfian_skews_toward_head_keys(self):
        base = dict(ops_per_client=2000, read_fraction=1.0,
                    incr_fraction=0.0, n_keys=64, seed=3)
        uni = client_ops(WorkloadSpec(dist="uniform", **base), 0)
        zipf = client_ops(WorkloadSpec(dist="zipfian", zipf_s=1.3, **base), 0)

        def head_share(ops):
            head = sum(op.key == "key-0" for op in ops)
            return head / len(ops)

        assert head_share(zipf) > 4 * head_share(uni)

    def test_replay_oracle_sums_increments(self):
        streams = [
            [Op("incr", "", counter_id=0, delta=2),
             Op("put", "k", value=b"x")],
            [Op("incr", "", counter_id=0, delta=3),
             Op("incr", "", counter_id=1, delta=1)],
        ]
        assert replay(streams) == {0: 5, 1: 1}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(dist="pareto")
        with pytest.raises(ValueError):
            WorkloadSpec(read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(read_fraction=0.9, incr_fraction=0.2)
        with pytest.raises(ValueError):
            WorkloadSpec(n_keys=0)


VALUE_SIZE = 16


def fill(byte: int) -> bytes:
    return bytes([byte]) * VALUE_SIZE


def run_store_program(client_bodies, n_servers=1, slots_per_shard=8,
                      counter_slots=4, faults=None):
    """Run one generator body per client rank against passive servers."""
    n_clients = len(client_bodies)
    cluster = Cluster(n_nodes=n_servers + n_clients, faults=faults)
    shards = ShardMap(list(range(n_servers)), slots_per_shard,
                      counter_slots=counter_slots)
    instruments = SvcInstruments.standalone()

    def program(ctx):
        rank = ctx.comm.rank
        is_server = rank < n_servers
        size = (slots_per_shard * slot_bytes(VALUE_SIZE)
                if is_server else 8)
        win = yield from ctx.comm.win_create(size, shared=True)
        if is_server:
            win.local_view()[:] = 0
        yield from win.fence()
        out = None
        if not is_server:
            store = RmaKvStore(win, shards, VALUE_SIZE,
                               instruments=instruments)
            out = yield from client_bodies[rank - n_servers](store, ctx)
        yield from win.fence()
        return out

    run = Cluster.run(cluster, program)
    return run.results[n_servers:], instruments


class TestStoreSemantics:
    def test_put_then_get_roundtrip(self):
        def body(store, ctx):
            yield from store.put("alpha", fill(7))
            value = yield from store.get("alpha")
            return value

        results, m = run_store_program([body])
        assert results[0] == fill(7)
        assert m.counters["write_fast"].value == 1
        assert m.counters["read_misses"].value == 0

    def test_get_missing_key_is_a_miss(self):
        def body(store, ctx):
            value = yield from store.get("never-written")
            return value

        results, m = run_store_program([body])
        assert results[0] is None
        assert m.counters["read_misses"].value == 1

    def test_overwrite_wins(self):
        def body(store, ctx):
            yield from store.put("k", fill(1))
            yield from store.put("k", fill(2))
            return (yield from store.get("k"))

        results, _ = run_store_program([body])
        assert results[0] == fill(2)

    def test_hash_collision_evicts_previous_key(self):
        """Two keys in the same slot: the table is a cache, last wins."""
        shards = ShardMap([0], slots_per_shard=4, counter_slots=2)
        seen: dict[tuple, str] = {}
        pair = None
        for i in range(1000):
            key = f"collide-{i}"
            loc = shards.locate_blob(key)
            if loc in seen:
                pair = (seen[loc], key)
                break
            seen[loc] = key
        assert pair is not None, "no collision in 1000 keys over 2 slots?"
        first, second = pair

        def body(store, ctx):
            yield from store.put(first, fill(3))
            yield from store.put(second, fill(4))
            a = yield from store.get(first)
            b = yield from store.get(second)
            return a, b

        results, m = run_store_program([body], slots_per_shard=4,
                                       counter_slots=2)
        assert results[0] == (None, fill(4))  # first evicted, hash mismatch
        assert m.counters["read_misses"].value == 1

    def test_concurrent_writers_never_expose_torn_values(self):
        """Clients hammer one key; every successful read is a uniform
        byte fill (any mix of two writes would not be)."""

        def writer(byte):
            def body(store, ctx):
                for i in range(6):
                    yield from store.put("hot", fill(byte + i))
                return None
            return body

        def reader(store, ctx):
            observed = []
            for _ in range(12):
                value = yield from store.get("hot")
                if value is not None:
                    observed.append(value)
            return observed

        results, m = run_store_program([writer(10), writer(40), reader])
        for value in results[2]:
            assert len(set(value)) == 1, f"torn read: {value!r}"
        # Every put resolved through exactly one of the two paths.
        assert (m.counters["write_fast"].value
                + m.counters["write_fallbacks"].value) == 12

    def test_counter_increments_are_exact(self):
        """Two clients increment disjoint counters concurrently; each
        reads its own back exactly (shared-counter exactness is covered
        by the driver's replay oracle)."""

        def client(cid, deltas):
            def body(store, ctx):
                for delta in deltas:
                    yield from store.incr(cid, delta)
                return (yield from store.get_counter(cid))
            return body

        results, m = run_store_program(
            [client(0, [1, 5, 2]), client(1, [10, 1, -4])], n_servers=2)
        assert results == [8, 7]
        assert m.counters["incrs"].value == 6

    def test_value_size_enforced(self):
        def body(store, ctx):
            with pytest.raises(ValueError):
                yield from store.put("k", b"wrong size")
            return "ok"

        results, _ = run_store_program([body])
        assert results[0] == "ok"


class TestDriver:
    def small_config(self, dist="uniform", seed=1):
        return ServiceConfig(
            n_servers=2, n_clients=2, slots_per_shard=16, counter_slots=4,
            workload=WorkloadSpec(n_keys=16, n_counter_keys=8,
                                  ops_per_client=30, value_size=32,
                                  dist=dist, seed=seed),
        )

    def test_report_shape_and_verification(self):
        report = run_service(self.small_config())
        assert report["verified"]
        assert report["counter_mismatches"] == []
        assert report["total_ops"] == 60
        assert report["throughput_ops"] > 0
        lat = report["latency_us"]
        ops = sum(lat[kind]["count"] for kind in ("read", "write", "incr"))
        assert ops == 60
        for kind in ("read", "write", "incr"):
            assert lat[kind]["p50"] <= lat[kind]["p95"] <= lat[kind]["p99"]
        # Percentiles come from the registry snapshot, not a side channel.
        assert (report["metrics"]["svc.read_latency_us.p99"]
                == lat["read"]["p99"])

    @pytest.mark.parametrize("dist", ["uniform", "zipfian"])
    @pytest.mark.parametrize("faulty", [False, True],
                             ids=["clean", "faults"])
    def test_report_bit_identical_across_runs(self, dist, faulty):
        """The acceptance bar: same seed -> byte-equal JSON, per dist,
        faults on and off."""

        def one_run():
            reset_plan_cache()  # process-global; isolate the two runs
            faults = (FaultPlan(seed=5, transient_rate=0.05, torn_rate=0.05,
                                stall_rate=0.02, stall_time=300.0,
                                unmap_after=150)
                      if faulty else None)
            report = run_service(self.small_config(dist=dist), faults=faults)
            return json.dumps(report, sort_keys=True)

        first, second = one_run(), one_run()
        assert first == second
        assert json.loads(first)["verified"]

    def test_different_seeds_differ(self):
        a = run_service(self.small_config(seed=1))
        b = run_service(self.small_config(seed=2))
        assert (json.dumps(a, sort_keys=True)
                != json.dumps(b, sort_keys=True))

    def test_faults_degrade_cleanly(self):
        """Under an unmapping fault plan the service keeps verifying and
        records the direct->emulated degradation."""
        plan = FaultPlan(seed=3, transient_rate=0.1, torn_rate=0.05,
                         stall_rate=0.02, stall_time=300.0, unmap_after=60)
        report = run_service(self.small_config(), faults=plan)
        assert report["verified"]
        assert report["faults"]["injected"] > 0
        assert report["faults"]["fallbacks"] > 0


@pytest.mark.faults
@pytest.mark.parametrize("seed", [1, 2, 3], ids=["seed1", "seed2", "seed3"])
def test_svc_storm_under_faults_stays_exact(seed):
    """Fault-matrix leg: the full service keeps its replay-oracle
    exactness per seed with the fault injector running hot."""
    report = run_service(
        ServiceConfig(n_servers=2, n_clients=2, slots_per_shard=16,
                      counter_slots=4,
                      workload=WorkloadSpec(n_keys=16, n_counter_keys=8,
                                            ops_per_client=25, seed=seed,
                                            value_size=32)),
        faults=FaultPlan(seed=seed, transient_rate=0.1, torn_rate=0.05,
                         stall_rate=0.03, stall_time=300.0),
    )
    assert report["verified"], report["counter_mismatches"]
    assert report["faults"]["injected"] > 0


class TestCli:
    def test_json_file_output(self, tmp_path, capsys):
        from repro.svc.cli import main

        out_path = tmp_path / "svc.json"
        rc = main(["--servers", "1", "--clients", "1", "--ops", "15",
                   "--keys", "8", "--slots", "16", "--counter-slots", "4",
                   "--counter-keys", "4", "--json", str(out_path)])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["verified"]
        assert "throughput" in capsys.readouterr().out

    def test_bad_dist_rejected(self):
        from repro.svc.cli import main

        with pytest.raises(SystemExit):
            main(["--dist", "pareto"])
