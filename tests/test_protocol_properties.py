"""Property tests on MPI protocol semantics (hypothesis over the full stack)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.pt2pt import NonContigMode, ProtocolConfig

# Sizes spanning all three protocols (short <=128, eager <=16k, rndv above).
SIZES = st.sampled_from([8, 64, 129, 1024, 8 * KiB, 16 * KiB + 8, 40 * KiB])


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(SIZES, min_size=1, max_size=6))
def test_property_non_overtaking_across_protocols(sizes):
    """Same (source, dest, tag): messages arrive in send order even when
    they travel via different protocols (MPI non-overtaking)."""

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            for i, size in enumerate(sizes):
                buf = ctx.alloc(size)
                buf.as_array()[0:8] = np.frombuffer(
                    np.int64(i).tobytes(), dtype=np.uint8
                )
                yield from comm.send(buf, dest=1, tag=7)
            return None
        order = []
        for size in sizes:
            buf = ctx.alloc(max(size, 8))
            status = yield from comm.recv(buf, source=0, tag=7)
            order.append(int(buf.as_array()[0:8].view(np.int64)[0]))
        return order

    run = Cluster(n_nodes=2).run(program)
    assert run.results[1] == list(range(len(sizes)))


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(SIZES, min_size=1, max_size=4),
    mode=st.sampled_from([NonContigMode.GENERIC, NonContigMode.DIRECT]),
    data=st.data(),
)
def test_property_payload_integrity_random_sizes(sizes, mode, data):
    """Random payloads of random sizes arrive byte-exactly in any mode."""
    seeds = [data.draw(st.integers(0, 2**31 - 1)) for _ in sizes]

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            for size, seed in zip(sizes, seeds):
                buf = ctx.alloc(size)
                rng = np.random.default_rng(seed)
                buf.read()[:] = rng.integers(0, 256, size, dtype=np.uint8)
                yield from comm.send(buf, dest=1, tag=1)
            return None
        digests = []
        for size in sizes:
            buf = ctx.alloc(size)
            yield from comm.recv(buf, source=0, tag=1)
            digests.append(buf.tobytes())
        return digests

    protocol = ProtocolConfig(noncontig_mode=mode)
    run = Cluster(n_nodes=2, protocol=protocol).run(program)
    for size, seed, got in zip(sizes, seeds, run.results[1]):
        rng = np.random.default_rng(seed)
        assert got == rng.integers(0, 256, size, dtype=np.uint8).tobytes()


@settings(max_examples=15, deadline=None)
@given(
    tags=st.lists(st.integers(min_value=0, max_value=5), min_size=2,
                  max_size=5, unique=True),
)
def test_property_tag_matching_selects_correct_message(tags):
    """Receives by specific tag pick the right message regardless of the
    arrival order of differently tagged messages."""

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            for tag in tags:
                buf = ctx.alloc(16)
                buf.fill(tag + 1)
                yield from comm.send(buf, dest=1, tag=tag)
            return None
        # Receive in reverse tag order: matching must be by tag.
        values = {}
        for tag in reversed(tags):
            buf = ctx.alloc(16)
            yield from comm.recv(buf, source=0, tag=tag)
            values[tag] = buf.read(0, 1)[0]
        return values

    run = Cluster(n_nodes=2).run(program)
    assert run.results[1] == {tag: tag + 1 for tag in tags}


@settings(max_examples=10, deadline=None)
@given(nprocs=st.integers(min_value=2, max_value=6), seed=st.integers(0, 999))
def test_property_allreduce_equals_numpy(nprocs, seed):
    rng = np.random.default_rng(seed)
    contributions = rng.random((nprocs, 4))

    def program(ctx):
        comm = ctx.comm
        send = ctx.alloc(32)
        recv = ctx.alloc(32)
        send.as_array(np.float64)[:] = contributions[comm.rank]
        yield from comm.allreduce(send, recv, op="sum")
        return recv.as_array(np.float64).copy()

    run = Cluster(n_nodes=nprocs).run(program)
    expected = contributions.sum(axis=0)
    for got in run.results:
        assert np.allclose(got, expected)
