"""Unit tests for the benchmark infrastructure (repro.bench)."""

import pytest

from repro._units import KiB, MiB
from repro.bench.noncontig import measure_point
from repro.bench.raw import fig1_bandwidth, fig1_latency
from repro.bench.ring import (
    PAPER_DEMAND_MIB_S,
    measure_put_rate,
    ring_scalability_table,
)
from repro.bench.series import Series, Table, render_series, render_table
from repro.bench.sparse import SparseResult, run_sparse
from repro.bench.strided import stride_sweep, strided_write_bandwidth


class TestSeries:
    def test_add_and_at(self):
        s = Series("x")
        s.add(8, 1.0)
        s.add(16, 2.0)
        assert s.at(16) == 2.0
        assert s.peak == 2.0
        with pytest.raises(ValueError):
            s.at(99)

    def test_interpolate(self):
        s = Series("x")
        s.add(0, 0.0)
        s.add(10, 10.0)
        assert s.interpolate(5) == 5.0
        assert s.interpolate(-1) == 0.0
        assert s.interpolate(99) == 10.0

    def test_interpolate_empty(self):
        with pytest.raises(ValueError):
            Series("empty").interpolate(1.0)

    def test_render_series(self):
        a = Series("alpha")
        b = Series("beta")
        for x in (8, 1024):
            a.add(x, 1.0)
            b.add(x, 2.0)
        text = render_series("title", [a, b])
        assert "alpha" in text and "beta" in text and "1 kiB" in text


class TestTable:
    def test_add_row_and_column(self):
        t = Table("t", columns=["a", "b"])
        t.add_row(1, 2.0)
        t.add_row(3, 4.0)
        assert t.column("b") == [2.0, 4.0]

    def test_row_arity_checked(self):
        t = Table("t", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render(self):
        t = Table("My Table", columns=["n", "v"])
        t.add_row(1, 2.5)
        text = render_table(t)
        assert "My Table" in text and "2.50" in text


class TestRawBench:
    def test_series_structure(self):
        write, read, dma = fig1_bandwidth(sizes=[64, 4 * KiB, 1 * MiB])
        assert len(write.x) == 3
        assert write.y[-1] > read.y[-1]

    def test_latency_monotone_for_pio_write(self):
        write, _, _ = fig1_latency(sizes=[8, 64, 512])
        assert write.y[0] <= write.y[1] <= write.y[2]


class TestNoncontigBench:
    def test_blocksize_must_be_double_multiple(self):
        with pytest.raises(ValueError):
            measure_point(12)

    def test_deterministic(self):
        a = measure_point(256, total=64 * KiB)
        b = measure_point(256, total=64 * KiB)
        assert a == b

    def test_contiguous_flag(self):
        c = measure_point(8, contiguous=True, total=64 * KiB)
        nc = measure_point(8, contiguous=False, total=64 * KiB)
        assert c > nc


class TestSparseBench:
    def test_result_properties(self):
        r = SparseResult(access_size=8, calls=100, elapsed=200.0, bytes_moved=800)
        assert r.latency == 2.0
        assert r.bandwidth == pytest.approx(800 / 200.0 * 1e6 / (1 << 20))

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            run_sparse(8, op="swap")

    def test_stride_two_call_count(self):
        r = run_sparse(1 * KiB, winsize=16 * KiB)
        assert r.calls == 8  # (16k - 1k) // 2k + 1


class TestStridedBench:
    def test_contiguous_stride_rejected(self):
        with pytest.raises(ValueError):
            strided_write_bandwidth(8, 4)

    def test_sweep_excludes_contiguous(self):
        s = stride_sweep(8, [8, 16, 32])
        assert 8 not in s.x

    def test_aligned_stride_wins(self):
        aligned = strided_write_bandwidth(8, 32)
        odd = strided_write_bandwidth(8, 33)
        assert aligned > 2 * odd


class TestRingBench:
    def test_table_shape(self):
        t = ring_scalability_table(PAPER_DEMAND_MIB_S, node_counts=[4, 8])
        assert t.column("nodes") == [4, 8]
        assert t.column("pn-max")[0] > t.column("pn-max")[1]

    def test_measure_put_rate_positive(self):
        rate = measure_put_rate(4 * KiB)
        assert 100.0 < rate < 250.0
