"""Tests for the direct_pack_ff pack/unpack engine, incl. property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    INT,
    SHORT,
    Contiguous,
    Hindexed,
    Hvector,
    Indexed,
    Resized,
    Struct,
    Subarray,
    Vector,
)
from repro.mpi.flatten import (
    PackError,
    as_access_run,
    block_groups_in_range,
    block_runs,
    pack,
    pack_range,
    unpack,
    unpack_range,
)


def make_mem(size=8192, seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8)


def reference_pack(mem, base, ft, count):
    """Slow, obviously correct pack: per-block python loop."""
    out = bytearray()
    for inst in range(count):
        inst_base = base + inst * ft.extent
        for leaf in ft.leaves:
            for off in leaf.block_offsets():
                start = inst_base + int(off)
                out.extend(mem[start : start + leaf.size].tobytes())
    return np.frombuffer(bytes(out), dtype=np.uint8)


SAMPLE_TYPES = [
    ("contig", lambda: Contiguous(12, INT)),
    ("vector-d", lambda: Vector(16, 1, 2, DOUBLE)),
    ("vector-blk", lambda: Vector(5, 3, 7, INT)),
    ("hvector-neg", lambda: Hvector(4, 2, -24, DOUBLE)),
    ("indexed", lambda: Indexed([3, 1, 2], [0, 7, 12], INT)),
    ("hindexed", lambda: Hindexed([2, 2], [4, 40], SHORT)),
    ("struct-gap", lambda: Struct([1, 2, 1], [0, 16, 48], [INT, DOUBLE, CHAR])),
    (
        "vec-of-struct",
        lambda: Hvector(
            6, 1, 20, Resized(Struct([1, 2], [0, 4], [INT, CHAR]), lb=0, extent=12)
        ),
    ),
    (
        "nested",
        lambda: Hvector(3, 2, 300, Vector(4, 1, 3, INT)),
    ),
]


@pytest.mark.parametrize("label,factory", SAMPLE_TYPES)
@pytest.mark.parametrize("count", [1, 2, 5])
def test_pack_matches_reference(label, factory, count):
    dtype = factory().commit()
    ft = dtype.flattened
    mem = make_mem()
    base = 1024
    assert np.array_equal(
        pack(mem, base, ft, count), reference_pack(mem, base, ft, count)
    )


@pytest.mark.parametrize("label,factory", SAMPLE_TYPES)
def test_unpack_roundtrip(label, factory):
    dtype = factory().commit()
    ft = dtype.flattened
    count = 3
    src = make_mem(seed=2)
    dst = make_mem(seed=3)
    base = 2048
    payload = pack(src, base, ft, count)
    unpack(dst, base, ft, count, payload)
    assert np.array_equal(pack(dst, base, ft, count), payload)


@pytest.mark.parametrize("label,factory", SAMPLE_TYPES)
def test_pack_range_equals_slice_of_full_pack(label, factory):
    dtype = factory().commit()
    ft = dtype.flattened
    count = 4
    mem = make_mem(seed=4)
    base = 2048
    full = pack(mem, base, ft, count)
    total = ft.size * count
    for start, n in [
        (0, total),
        (0, 1),
        (1, total - 1),
        (3, 5),
        (total // 2, total - total // 2),
        (total - 1, 1),
        (7, 0),
    ]:
        got = pack_range(mem, base, ft, count, start, n)
        assert np.array_equal(got, full[start : start + n]), (start, n)


@pytest.mark.parametrize("label,factory", SAMPLE_TYPES)
def test_unpack_range_chunked_roundtrip(label, factory):
    """Unpacking in arbitrary chunks reproduces the full unpack."""
    dtype = factory().commit()
    ft = dtype.flattened
    count = 3
    src = make_mem(seed=5)
    base = 1024
    payload = pack(src, base, ft, count)

    whole = make_mem(seed=6)
    unpack(whole, base, ft, count, payload)

    chunked = make_mem(seed=6)
    total = payload.nbytes
    pos = 0
    for chunk_len in [1, 7, 13, 64, total]:
        if pos >= total:
            break
        n = min(chunk_len, total - pos)
        unpack_range(chunked, base, ft, count, pos, payload[pos : pos + n])
        pos += n
    while pos < total:
        n = min(11, total - pos)
        unpack_range(chunked, base, ft, count, pos, payload[pos : pos + n])
        pos += n
    assert np.array_equal(chunked, whole)


def test_block_runs_order_and_coverage():
    dtype = Vector(8, 1, 2, DOUBLE).commit()
    ft = dtype.flattened
    runs = list(block_runs(ft, 1, 4, 24))
    # partial first block (4 B), two full blocks, partial last (4 B).
    lengths = [(len(o), l) for o, l in runs]
    assert lengths == [(1, 4), (2, 8), (1, 4)]


def test_block_groups_in_range():
    dtype = Vector(8, 1, 2, DOUBLE).commit()
    groups = block_groups_in_range(dtype.flattened, 2, 0, 128)
    assert groups == [(8, 16)]
    groups = block_groups_in_range(dtype.flattened, 1, 4, 24)
    assert groups == [(4, 1), (8, 2), (4, 1)]


def test_bad_ranges_rejected():
    ft = Contiguous(4, INT).commit().flattened
    mem = make_mem()
    with pytest.raises(PackError):
        pack_range(mem, 0, ft, 1, 10, 10)
    with pytest.raises(PackError):
        list(block_runs(ft, 1, -1, 4))


class TestAsAccessRun:
    def test_simple_vector(self):
        ft = Vector(16, 1, 2, DOUBLE).commit().flattened
        run = as_access_run(ft, 1, base=100)
        assert (run.base, run.size, run.stride, run.count) == (100, 8, 16, 16)

    def test_contiguous(self):
        ft = Contiguous(4, DOUBLE).commit().flattened
        run = as_access_run(ft, 3, base=0)
        assert (run.size, run.stride, run.count) == (32, 32, 3)

    def test_count_collapses_when_tiling(self):
        # vector extent != blocks*stride -> the trailing gap is missing, so
        # multiple instances don't tile uniformly.
        ft = Vector(4, 1, 2, DOUBLE).commit().flattened
        assert ft.extent == 3 * 16 + 8
        assert as_access_run(ft, 2) is None
        padded = Resized(Vector(4, 1, 2, DOUBLE), lb=0, extent=64).commit()
        run = as_access_run(padded.flattened, 2)
        assert (run.size, run.stride, run.count) == (8, 16, 8)

    def test_struct_returns_none(self):
        ft = Struct([1, 1], [0, 16], [DOUBLE, DOUBLE]).commit().flattened
        assert as_access_run(ft, 1) is None


# -- hypothesis: random datatype trees -------------------------------------------

BASICS = [BYTE, CHAR, SHORT, INT, DOUBLE]


@st.composite
def subarray_strategy(draw, children):
    old = draw(children)
    rank = draw(st.integers(min_value=1, max_value=2))
    sizes, subsizes, starts = [], [], []
    for _ in range(rank):
        full = draw(st.integers(min_value=1, max_value=5))
        sub = draw(st.integers(min_value=0, max_value=full))
        start = draw(st.integers(min_value=0, max_value=full - sub))
        sizes.append(full)
        subsizes.append(sub)
        starts.append(start)
    return Subarray(sizes, subsizes, starts, old)


def datatype_strategy(max_depth=3):
    base = st.sampled_from(BASICS)

    def extend(children):
        return st.one_of(
            subarray_strategy(children),
            st.builds(
                Contiguous, st.integers(min_value=0, max_value=4), children
            ),
            st.builds(
                Vector,
                st.integers(min_value=1, max_value=4),   # count
                st.integers(min_value=1, max_value=3),   # blocklength
                st.integers(min_value=3, max_value=6),   # stride (>= blocklen)
                children,
            ),
            st.builds(
                Hvector,
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=1, max_value=2),
                st.integers(min_value=64, max_value=128),
                children,
            ),
            children.flatmap(
                lambda old: st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=3),
                        st.integers(min_value=0, max_value=8),
                    ),
                    min_size=1,
                    max_size=3,
                ).map(
                    lambda items: Indexed(
                        [b for b, _ in items],
                        # Spread entries far apart to avoid overlaps.
                        [d + 16 * i for i, (_, d) in enumerate(items)],
                        old,
                    )
                )
            ),
        )

    return st.recursive(base, extend, max_leaves=4)


def _base_and_mem(ft, count, seed):
    """Anchor + memory sized so every instance fits with margin."""
    lo, hi = ft.span()
    lo_total = min(lo, lo + (count - 1) * ft.extent) if count else 0
    hi_total = max(hi, hi + (count - 1) * ft.extent) if count else 0
    base = 64 - min(0, lo_total)
    return base, make_mem(size=base + max(0, hi_total) + 128, seed=seed)


@settings(max_examples=120, deadline=None)
@given(dtype=datatype_strategy(), count=st.integers(min_value=0, max_value=3))
def test_property_pack_matches_reference(dtype, count):
    dtype.commit()
    ft = dtype.flattened
    base, mem = _base_and_mem(ft, count, seed=7)
    fast = pack(mem, base, ft, count)
    slow = reference_pack(mem, base, ft, count)
    assert np.array_equal(fast, slow)


@settings(max_examples=120, deadline=None)
@given(
    dtype=datatype_strategy(),
    count=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
def test_property_pack_range_is_slice(dtype, count, data):
    dtype.commit()
    ft = dtype.flattened
    base, mem = _base_and_mem(ft, count, seed=8)
    full = pack(mem, base, ft, count)
    total = ft.size * count
    start = data.draw(st.integers(min_value=0, max_value=total))
    n = data.draw(st.integers(min_value=0, max_value=total - start))
    assert np.array_equal(
        pack_range(mem, base, ft, count, start, n), full[start : start + n]
    )


@settings(max_examples=100, deadline=None)
@given(dtype=datatype_strategy(), count=st.integers(min_value=1, max_value=3))
def test_property_find_position_consistent_with_runs(dtype, count):
    """find_position's packed accounting agrees with leaf starts/sizes."""
    dtype.commit()
    ft = dtype.flattened
    total = ft.size * count
    if total == 0:
        return
    for offset in {0, 1, total // 2, total - 1}:
        if offset == total:
            # End sentinel: instance == count, nothing left to pack.
            assert ft.find_position(offset, count).instance == count
            continue
        pos = ft.find_position(offset, count)
        assert 0 <= pos.instance < count
        leaf = ft.leaves[pos.leaf_index]
        recomputed = (
            pos.instance * ft.size
            + ft.leaf_starts[pos.leaf_index]
            + pos.block_index * leaf.size
            + pos.byte_in_block
        )
        assert recomputed == offset


@settings(max_examples=80, deadline=None)
@given(dtype=datatype_strategy())
def test_property_flatten_invariants(dtype):
    """Flattening conserves size; leaves never report negative geometry."""
    dtype.commit()
    ft = dtype.flattened
    assert sum(l.packed_size for l in ft.leaves) == dtype.size == ft.size
    for leaf in ft.leaves:
        assert leaf.size >= 0
        for level in leaf.levels:
            assert level.count >= 2  # count-1 levels must have been dropped


class TestAsAccessRunRegressions:
    """Layouts that must NOT collapse to a uniform strided run.

    Each case would produce wrong remote accesses if ``as_access_run``
    returned a run for it; they pin the guards in the collapse logic.
    """

    def test_shrunk_resized_overlapping_instances(self):
        # extent (4) < size (8): instance k+1 starts inside instance k.
        dtype = Resized(DOUBLE, lb=0, extent=4).commit()
        assert as_access_run(dtype.flattened, 2) is None

    def test_shrunk_resized_vector(self):
        # Natural span is 56 bytes but the resized extent is only 16, so
        # counted instances interleave their blocks.
        dtype = Resized(Vector(4, 1, 2, DOUBLE), lb=0, extent=16).commit()
        ft = dtype.flattened
        assert ft.extent < ft.span()[1] - ft.span()[0]
        assert as_access_run(ft, 2) is None

    def test_blocks_times_stride_not_extent(self):
        # No trailing gap: extent = 56 != 4 * 16, so count > 1 does not
        # tile as one longer vector.
        ft = Vector(4, 1, 2, DOUBLE).commit().flattened
        assert ft.extent != 4 * 16
        assert as_access_run(ft, 3) is None
        assert as_access_run(ft, 1) is not None  # single instance is fine

    def test_stride_smaller_than_block(self):
        # Hvector with byte stride 4 < block size 8: blocks overlap.
        ft = Hvector(3, 1, 4, DOUBLE).commit().flattened
        assert as_access_run(ft, 1) is None
