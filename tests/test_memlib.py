"""Unit + property tests for the memory substrate (repro.memlib)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memlib import (
    AddressSpace,
    Block,
    OutOfMemory,
    copy_between,
    double_strided_blocks,
    merge_adjacent,
    strided_blocks,
    total_bytes,
)


class TestAddressSpace:
    def test_alloc_returns_zeroed_buffer(self):
        space = AddressSpace(1024)
        buf = space.alloc(100)
        assert buf.nbytes == 100
        assert not buf.read().any()

    def test_alloc_alignment(self):
        space = AddressSpace(1024)
        space.alloc(3)
        buf = space.alloc(8, alignment=64)
        assert buf.base % 64 == 0

    def test_alloc_exhaustion(self):
        space = AddressSpace(128)
        space.alloc(100)
        with pytest.raises(OutOfMemory):
            space.alloc(100)

    def test_write_read_roundtrip(self):
        space = AddressSpace(256)
        payload = bytes(range(64))
        space.write(10, payload)
        assert space.read(10, 64).tobytes() == payload

    def test_out_of_range_access_rejected(self):
        space = AddressSpace(64)
        with pytest.raises(IndexError):
            space.read(60, 10)
        with pytest.raises(IndexError):
            space.write(-1, b"x")

    def test_copy_within_non_overlapping(self):
        space = AddressSpace(256)
        space.write(0, bytes(range(16)))
        space.copy_within(100, 0, 16)
        assert space.read(100, 16).tobytes() == bytes(range(16))

    def test_copy_within_overlapping_forward(self):
        space = AddressSpace(64)
        space.write(0, bytes(range(16)))
        space.copy_within(4, 0, 16)  # overlap, memmove semantics
        assert space.read(4, 16).tobytes() == bytes(range(16))

    def test_copy_between_spaces(self):
        a = AddressSpace(128, owner="a")
        b = AddressSpace(128, owner="b")
        a.write(0, b"hello world!")
        copy_between(b, 50, a, 0, 12)
        assert b.read(50, 12).tobytes() == b"hello world!"

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AddressSpace(0)


class TestBuffer:
    def test_slice_and_typed_view(self):
        space = AddressSpace(256)
        buf = space.alloc(64)
        view = buf.as_array(np.float64)
        view[:] = np.arange(8, dtype=np.float64)
        sub = buf.slice(8, 8)
        assert sub.as_array(np.float64)[0] == 1.0

    def test_slice_bounds_checked(self):
        space = AddressSpace(64)
        buf = space.alloc(16)
        with pytest.raises(ValueError):
            buf.slice(10, 10)

    def test_typed_view_size_mismatch(self):
        space = AddressSpace(64)
        buf = space.alloc(10)
        with pytest.raises(ValueError):
            buf.as_array(np.float64)

    def test_write_offset_and_fill(self):
        space = AddressSpace(64)
        buf = space.alloc(16)
        buf.fill(0xAB)
        buf.write(b"\x01\x02", offset=4)
        raw = buf.tobytes()
        assert raw[0] == 0xAB and raw[4] == 1 and raw[5] == 2

    def test_write_overflow_rejected(self):
        space = AddressSpace(64)
        buf = space.alloc(4)
        with pytest.raises(ValueError):
            buf.write(b"12345")


class TestLayout:
    def test_strided_blocks_basic(self):
        blocks = strided_blocks(count=3, blocklen=8, stride=32, base=100)
        assert blocks == [Block(100, 8), Block(132, 8), Block(164, 8)]
        assert total_bytes(blocks) == 24

    def test_double_strided(self):
        blocks = double_strided_blocks(
            outer_count=2, outer_stride=100, inner_count=2, inner_stride=20, blocklen=4
        )
        assert blocks == [Block(0, 4), Block(20, 4), Block(100, 4), Block(120, 4)]

    def test_merge_adjacent_coalesces(self):
        blocks = [Block(0, 8), Block(8, 8), Block(32, 4)]
        assert merge_adjacent(blocks) == [Block(0, 16), Block(32, 4)]

    def test_merge_rejects_overlap(self):
        with pytest.raises(ValueError):
            merge_adjacent([Block(0, 10), Block(5, 10)])

    def test_merge_unsorted_input(self):
        blocks = [Block(16, 8), Block(0, 16)]
        assert merge_adjacent(blocks) == [Block(0, 24), ]

    def test_zero_stride_vector_rejected_only_by_merge(self):
        # strided_blocks itself permits any stride (hvector semantics);
        # overlap is caught when merging.
        blocks = strided_blocks(count=2, blocklen=8, stride=0)
        with pytest.raises(ValueError):
            merge_adjacent(blocks)


@given(
    count=st.integers(min_value=0, max_value=20),
    blocklen=st.integers(min_value=1, max_value=64),
    gap=st.integers(min_value=0, max_value=64),
)
def test_property_strided_blocks_cover_expected_bytes(count, blocklen, gap):
    """Strided blocks with stride >= blocklen never overlap and cover
    count*blocklen bytes; merging preserves total coverage."""
    stride = blocklen + gap
    blocks = strided_blocks(count, blocklen, stride)
    assert total_bytes(blocks) == count * blocklen
    merged = merge_adjacent(blocks)
    assert total_bytes(merged) == count * blocklen
    if gap > 0:
        assert len(merged) == count
    elif count:
        assert len(merged) == 1


@given(data=st.binary(min_size=1, max_size=256), offset=st.integers(0, 64))
def test_property_space_roundtrip(data, offset):
    space = AddressSpace(512)
    space.write(offset, data)
    assert space.read(offset, len(data)).tobytes() == data
