"""Tests for the end-to-end scenario matrix (``repro.scenarios``).

Three layers of assurance:

* **determinism** — every cell's JSON report is byte-identical across
  two runs, faults on and off (``run_scenario`` resets the process-wide
  plan cache itself, the ``reset_plan_cache`` pattern from
  ``tests/test_svc.py``);
* **acceptance** — the full 5-scenario × 2-seed matrix verifies its
  application oracles and cross-layer invariants;
* **oracle sharpness** — the invariant checks are unit-tested against
  tampered snapshots, so a scenario "passing" means the checks could
  actually have failed.
"""

import json

import pytest

from repro.scenarios import (
    ScenarioError,
    ScenarioParams,
    canonical,
    check_invariants,
    get_scenario,
    run_scenario,
    scenario_fault_plan,
    scenario_names,
)
from repro.scenarios.base import _REGISTRY, Scenario, register_scenario
from repro.scenarios.cli import main as cli_main

ALL_SCENARIOS = ("colocation", "colocation_rings", "graph", "kv_failover",
                 "qos_contention", "training", "work_stealing")

# Reports are expensive (each is a full cluster simulation): cells are
# computed once per test session and shared read-only.
_CACHE: dict = {}


def cell(name: str, seed: int = 1, faults: bool = False) -> dict:
    key = (name, seed, faults)
    if key not in _CACHE:
        _CACHE[key] = run_scenario(name, seed=seed, faults=faults).report
    return _CACHE[key]


class TestFramework:
    def test_scenario_names_sorted_and_complete(self):
        assert tuple(scenario_names()) == ALL_SCENARIOS

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("nope")

    def test_params_validation(self):
        with pytest.raises(ScenarioError):
            ScenarioParams(ranks=-1)
        with pytest.raises(ScenarioError):
            ScenarioParams(scale=0.0)
        with pytest.raises(ScenarioError):
            ScenarioParams(scale=65.0)

    def test_fault_plans_distinct_per_scenario_and_stable(self):
        seeds = {scenario_fault_plan(n, 1).seed for n in ALL_SCENARIOS}
        assert len(seeds) == len(ALL_SCENARIOS)
        assert (scenario_fault_plan("graph", 1).seed
                == scenario_fault_plan("graph", 1).seed)
        assert (scenario_fault_plan("graph", 1).seed
                != scenario_fault_plan("graph", 2).seed)

    def test_run_scenario_requires_verified_oracle(self):
        @register_scenario
        class _Unverified(Scenario):
            name = "_unverified"
            headline_metric = "x"

            def resolve(self, params):
                return {}

            def run(self, cluster, params, inst):
                return {}  # no "verified" key

        try:
            with pytest.raises(ScenarioError, match="verified"):
                run_scenario("_unverified")
        finally:
            del _REGISTRY["_unverified"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            register_scenario(type(get_scenario("graph")))


class TestCanonical:
    def test_sorts_nested_mappings(self):
        obj = {"b": {"z": 1, "a": 2}, "a": [{"y": 1, "x": 2}]}
        out = canonical(obj)
        assert list(out) == ["a", "b"]
        assert list(out["b"]) == ["a", "z"]
        assert list(out["a"][0]) == ["x", "y"]

    def test_preserves_list_order_and_sorts_sets(self):
        assert canonical([3, 1, 2]) == [3, 1, 2]
        assert canonical({3, 1, 2}) == [1, 2, 3]
        assert canonical((1, 2)) == [1, 2]

    def test_canonical_dump_equals_sorted_dump(self):
        obj = {"b": {"z": [{"q": 1, "p": 2}], "a": 2}, "a": 1}
        assert (json.dumps(canonical(obj))
                == json.dumps(canonical(obj), sort_keys=True))


class TestInvariantOracles:
    """The cross-layer checks must be able to fail (tampered snapshots)."""

    @staticmethod
    def snapshot(**overrides):
        base = {
            "faults.injected": 0, "faults.transient": 0, "faults.torn": 0,
            "faults.unmap": 0, "faults.stall": 0, "fabric.faults": 0,
            "fabric.bytes_written": 1000, "fabric.bytes_read": 0,
            "fabric.bytes_torn": 0, "scenario.payload_bytes": 800,
            "recovery.retries": 0, "recovery.resumes": 0,
            "recovery.timeouts": 0, "recovery.remaps": 0,
            "recovery.fallbacks": 0, "recovery.aborts": 0,
        }
        base.update(overrides)
        return base

    def test_clean_snapshot_passes(self):
        checks = check_invariants(self.snapshot(), faults_on=False)
        assert all(c["ok"] for c in checks.values())

    def test_fault_ledger_detects_miscount(self):
        snap = self.snapshot(**{"faults.injected": 3, "faults.torn": 1})
        checks = check_invariants(snap, faults_on=True)
        assert not checks["fault_ledger"]["ok"]

    def test_clean_run_detects_stray_faults(self):
        snap = self.snapshot(**{"faults.injected": 1, "faults.torn": 1})
        checks = check_invariants(snap, faults_on=False)
        assert not checks["clean_run_is_clean"]["ok"]
        # The same snapshot is legitimate when faults were requested.
        assert check_invariants(snap, faults_on=True)["clean_run_is_clean"]["ok"]

    def test_payload_conservation_detects_lost_bytes(self):
        snap = self.snapshot(**{"fabric.bytes_written": 700})
        checks = check_invariants(snap, faults_on=False)
        assert not checks["payload_conservation"]["ok"]

    def test_payload_conservation_requires_traffic(self):
        snap = self.snapshot(**{"scenario.payload_bytes": 0})
        checks = check_invariants(snap, faults_on=False)
        assert not checks["payload_conservation"]["ok"]

    def test_torn_prefix_counts_as_delivered(self):
        snap = self.snapshot(**{"fabric.bytes_written": 600,
                                "fabric.bytes_torn": 300})
        checks = check_invariants(snap, faults_on=True)
        assert checks["payload_conservation"]["ok"]

    def test_recovery_must_cover_surfaced_faults(self):
        snap = self.snapshot(**{"fabric.faults": 2, "recovery.retries": 1})
        checks = check_invariants(snap, faults_on=True)
        assert not checks["recovery_covers_faults"]["ok"]


class TestDeterminism:
    @pytest.mark.parametrize("faults", [False, True],
                             ids=["clean", "faulty"])
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_report_bit_identical_across_runs(self, name, faults):
        first = json.dumps(cell(name, seed=1, faults=faults))
        second = json.dumps(run_scenario(name, seed=1, faults=faults).report)
        assert first == second

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_reports_are_key_sorted(self, name):
        report = cell(name)
        assert (json.dumps(report)
                == json.dumps(report, sort_keys=True))


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("seed", [1, 2])
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_cell_verifies(self, name, seed):
        report = cell(name, seed=seed)
        assert report["verified"], report["app"]
        assert report["invariants_ok"], report["invariants"]
        headline = report["headline"][get_scenario(name).headline_metric]
        assert headline > 0
        assert report["scenario_counters"]["steps"] > 0
        assert report["scenario_counters"]["payload_bytes"] > 0

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_faulty_cell_verifies_and_injects(self, name):
        report = cell(name, faults=True)
        assert report["verified"], report["app"]
        assert report["invariants_ok"], report["invariants"]
        assert report["faults"]["enabled"]
        assert report["faults"]["injected"] > 0

    def test_seeds_produce_different_timings(self):
        assert (cell("training", seed=1)["elapsed_us"]
                != cell("training", seed=2)["elapsed_us"])

    def test_torn_byte_accounting_surfaces_in_reports(self):
        """Under faults the delivered-byte ledger must still balance —
        including torn-transfer prefixes (fabric.bytes_torn)."""
        for name in ALL_SCENARIOS:
            m = cell(name, faults=True)["metrics"]
            delivered = (m["fabric.bytes_written"] + m["fabric.bytes_read"]
                         + m["fabric.bytes_torn"])
            assert delivered >= m["scenario.payload_bytes"] > 0, name


class TestColocationRings:
    """The switched-fabric co-location variant's own invariants."""

    def test_runs_on_a_two_ringlet_fabric(self):
        topo = cell("colocation_rings")["params"]["topology"]
        assert topo["kind"] == "RingOfRings"
        assert topo["n_ringlets"] == 2 and topo["ringlet_size"] == 4

    def test_tenants_straddle_the_crossbar(self):
        from repro.scenarios.colocation import (N_SERVERS,
                                                ColocationRingsScenario)

        scenario = ColocationRingsScenario()
        params = ScenarioParams()
        topology = scenario.topology(params)
        kv = scenario._kv_ranks(8, 4)
        assert kv == (0, 1, 4, 5)
        # Servers in ringlet 0, clients in ringlet 1: every KV op and
        # the halo mesh's y-faces must cross the switch.
        assert {topology.node_group(r) for r in kv[:N_SERVERS]} == {0}
        assert {topology.node_group(r) for r in kv[N_SERVERS:]} == {1}
        halo = [r for r in range(8) if r not in kv]
        assert {topology.node_group(r) for r in halo} == {0, 1}

    def test_cross_links_saturate_local_links_do_not(self):
        """The cell's whole point: contending cross-switch traffic drives
        the crossbar past capacity while ringlet-local links stay cool."""
        m = cell("colocation_rings")["metrics"]
        assert m["fabric.link_peak_cross"] >= 1.0
        assert m["fabric.link_peak_local"] < 1.0
        assert m["fabric.link_saturated"] >= 1
        assert m["fabric.link_bytes"] > 0

    def test_perfetto_tracks_carry_topology_identity(self):
        """The exported trace names one track per ringlet plus the
        switch, from the topology's own labels."""
        from repro.obs.timeline import chrome_trace

        run = run_scenario("colocation_rings", seed=1)
        doc = chrome_trace(run.tracer)
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev.get("ph") == "M" and ev["name"] == "thread_name"
                 and ev["pid"] == 1}
        assert {"ringlet 0", "ringlet 1", "switch"} <= names

    def test_rejects_other_rank_counts(self):
        with pytest.raises(ScenarioError, match="exactly 8 ranks"):
            run_scenario("colocation_rings", ranks=12)

    def test_default_colocation_still_runs_on_a_ring(self):
        """The base cell must be untouched by the topology hook."""
        assert "topology" not in cell("colocation")["params"]
        scenario = get_scenario("colocation")
        assert scenario.topology(ScenarioParams()) is None
        assert scenario._kv_ranks(8, 4) == (0, 1, 2, 3)


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_SCENARIOS:
            assert name in out

    def test_no_scenarios_is_an_error(self):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_unknown_scenario_is_an_error(self):
        with pytest.raises(SystemExit):
            cli_main(["nope"])

    def test_json_stdout_purity(self, capsys):
        """With --json -, stdout is exactly one parseable JSON document
        and it is key-sorted; the human summary goes to stderr."""
        rc = cli_main(["training", "--seed", "1", "--json", "-"])
        captured = capsys.readouterr()
        assert rc == 0
        doc = json.loads(captured.out)  # exactly one document
        assert len(doc["cells"]) == 1
        assert doc["cells"][0]["scenario"] == "training"
        assert json.dumps(doc) == json.dumps(doc, sort_keys=True)
        assert "training-s1-clean" in captured.err

    def test_json_file_and_trace_artifacts(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        traces = tmp_path / "traces"
        rc = cli_main(["work_stealing", "--json", str(out),
                       "--trace-dir", str(traces)])
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["cells"][0]["scenario"] == "work_stealing"
        trace = traces / "work_stealing-s1-clean.trace.json"
        assert trace.exists()
        assert "traceEvents" in json.loads(trace.read_text())
