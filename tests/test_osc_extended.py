"""Extended one-sided tests: flush, fetch-and-op, chunked gets, multi-window."""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE, LONG
from repro.mpi.errors import RMAError
from repro.mpi.pt2pt import ProtocolConfig


class TestFlush:
    def test_flush_makes_put_visible_inside_epoch(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(256, shared=True)
            yield from win.fence()
            if comm.rank == 0:
                yield from win.lock(1)
                yield from win.put(np.full(16, 3, dtype=np.uint8), 1, 0)
                yield from win.flush(1)
                # After flush the data is at the target even though the
                # epoch is still open.
                data = yield from win.get(16, 1, 0)
                yield from win.unlock(1)
                return data.tobytes()
            yield ctx.cluster.engine.timeout(2000.0)
            return None

        run = Cluster(n_nodes=2).run(program)
        assert run.results[0] == bytes([3] * 16)

    def test_flush_all(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64, shared=False)
            yield from win.fence()
            if comm.rank == 0:
                for target in (1, 2):
                    yield from win.put(np.full(8, target, dtype=np.uint8),
                                       target, 0)
                yield from win.flush()
                assert not win._pending_acks
            yield from win.fence()
            return int(win.local_view()[0])

        run = Cluster(n_nodes=3).run(program)
        assert run.results[1] == 1 and run.results[2] == 2


class TestFetchAndOp:
    def test_remote_counter(self):
        """A classic RMA counter: fetch_and_op returns the previous value."""

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(8, shared=True)
            win.local_view().view(np.int64)[0] = 0
            yield from win.fence()
            tickets = []
            for _ in range(3):
                yield from win.lock(0)
                old = yield from win.fetch_and_op(
                    np.array([1], dtype=np.int64), 0, 0, op="sum", datatype=LONG
                )
                yield from win.unlock(0)
                tickets.append(int(old.view(np.int64)[0]))
            yield from win.fence()
            final = int(win.local_view().view(np.int64)[0]) if comm.rank == 0 else None
            return (tickets, final)

        run = Cluster(n_nodes=3).run(program)
        all_tickets = sorted(t for tickets, _ in run.results for t in tickets)
        assert all_tickets == list(range(9))  # every increment got a unique ticket
        assert run.results[0][1] == 9

    def test_get_accumulate_returns_previous(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(32, shared=True)
            win.local_view().view(np.float64)[:] = 5.0
            yield from win.fence()
            if comm.rank == 0:
                old = yield from win.accumulate(
                    np.full(4, 2.0), 1, 0, op="sum", datatype=DOUBLE, fetch=True
                )
                yield from win.fence()
                return list(old.view(np.float64))
            yield from win.fence()
            return list(win.local_view().view(np.float64))

        run = Cluster(n_nodes=2).run(program)
        assert run.results[0] == [5.0] * 4       # previous contents
        assert run.results[1] == [7.0] * 4       # accumulated


class TestChunkedGet:
    def test_get_larger_than_response_region(self):
        """Gets bigger than the response staging region are chunked."""
        protocol = ProtocolConfig(osc_response_size=16 * KiB)

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64 * KiB, shared=True)
            if comm.rank == 1:
                win.local_view()[:] = np.arange(64 * KiB, dtype=np.uint8) % 251
            yield from win.fence()
            if comm.rank == 0:
                data = yield from win.get(64 * KiB, 1, 0)
                yield from win.fence()
                return data
            yield from win.fence()
            return None

        run = Cluster(n_nodes=2, protocol=protocol).run(program)
        expected = np.arange(64 * KiB, dtype=np.uint8) % 251
        assert np.array_equal(run.results[0], expected)


class TestMultiWindow:
    def test_two_windows_are_independent(self):
        def program(ctx):
            comm = ctx.comm
            win_a = yield from comm.win_create(64, shared=True)
            win_b = yield from comm.win_create(64, shared=True)
            yield from win_a.fence()
            yield from win_b.fence()
            if comm.rank == 0:
                yield from win_a.put(np.full(8, 0xAA, dtype=np.uint8), 1, 0)
                yield from win_b.put(np.full(8, 0xBB, dtype=np.uint8), 1, 0)
            yield from win_a.fence()
            yield from win_b.fence()
            return (int(win_a.local_view()[0]), int(win_b.local_view()[0]))

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == (0xAA, 0xBB)

    def test_mixed_shared_private_windows(self):
        def program(ctx):
            comm = ctx.comm
            shared_win = yield from comm.win_create(64, shared=True)
            private_win = yield from comm.win_create(64, shared=False)
            yield from shared_win.fence()
            yield from private_win.fence()
            if comm.rank == 0:
                yield from shared_win.put(np.full(4, 1, dtype=np.uint8), 1, 0)
                yield from private_win.put(np.full(4, 2, dtype=np.uint8), 1, 0)
            yield from shared_win.fence()
            yield from private_win.fence()
            return (shared_win.counters["direct_puts"],
                    private_win.counters["emulated_puts"],
                    int(shared_win.local_view()[0]),
                    int(private_win.local_view()[0]))

        run = Cluster(n_nodes=2).run(program)
        assert run.results[0][:2] == (1, 1)
        assert run.results[1][2:] == (1, 2)


class TestRMAValidation:
    def test_bad_target_rank(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64, shared=True)
            yield from win.fence()
            if comm.rank == 0:
                yield from win.put(np.zeros(8, dtype=np.uint8), 7, 0)
            yield from win.fence()

        with pytest.raises(RMAError):
            Cluster(n_nodes=2).run(program)

    def test_negative_window_size(self):
        def program(ctx):
            yield from ctx.comm.win_create(-1)

        with pytest.raises(RMAError):
            Cluster(n_nodes=1).run(program)

    def test_unknown_accumulate_op(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64, shared=True)
            yield from win.fence()
            yield from win.accumulate(np.zeros(8), 0, 0, op="xor")

        with pytest.raises(RMAError):
            Cluster(n_nodes=1).run(program)

    def test_accumulate_prod_min_max(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(24, shared=True)
            view = win.local_view().view(np.float64)
            view[:] = [4.0, 4.0, 4.0]
            yield from win.fence()
            if comm.rank == 0:
                yield from win.accumulate(np.array([3.0]), 1, 0, op="prod",
                                          datatype=DOUBLE)
                yield from win.accumulate(np.array([9.0]), 1, 8, op="min",
                                          datatype=DOUBLE)
                yield from win.accumulate(np.array([9.0]), 1, 16, op="max",
                                          datatype=DOUBLE)
            yield from win.fence()
            return list(win.local_view().view(np.float64))

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == [12.0, 4.0, 9.0]


class TestSelfCommunication:
    def test_put_get_to_self(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(64, shared=True)
            yield from win.fence()
            yield from win.put(np.full(8, 7, dtype=np.uint8), comm.rank, 8)
            data = yield from win.get(8, comm.rank, 8)
            yield from win.fence()
            return data.tobytes()

        run = Cluster(n_nodes=2).run(program)
        assert all(r == bytes([7] * 8) for r in run.results)

    def test_accumulate_to_self(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(8, shared=True)
            win.local_view().view(np.float64)[0] = 1.5
            yield from win.fence()
            old = yield from win.accumulate(np.array([2.0]), comm.rank, 0,
                                            op="sum", datatype=DOUBLE,
                                            fetch=True)
            yield from win.fence()
            return (float(old.view(np.float64)[0]),
                    float(win.local_view().view(np.float64)[0]))

        run = Cluster(n_nodes=1).run(program)
        assert run.results[0] == (1.5, 3.5)
