"""Tests for the unit helpers (repro._units)."""

import pytest

from repro._units import (
    KiB,
    MiB,
    align_down,
    align_up,
    fmt_size,
    is_aligned,
    mib_s,
    to_mib_s,
    transfer_time,
)


def test_mib_s_roundtrip():
    assert to_mib_s(mib_s(123.0)) == pytest.approx(123.0)


def test_mib_s_value():
    # 1 MiB/s = 1048576 bytes / 1e6 µs.
    assert mib_s(1.0) == pytest.approx(1.048576)


def test_transfer_time():
    assert transfer_time(0, 100.0) == 0.0
    assert transfer_time(1000, 100.0) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        transfer_time(10, 0.0)


def test_align_helpers():
    assert align_up(13, 8) == 16
    assert align_up(16, 8) == 16
    assert align_down(13, 8) == 8
    assert is_aligned(64, 32)
    assert not is_aligned(65, 32)
    with pytest.raises(ValueError):
        align_up(3, 6)  # not a power of two
    with pytest.raises(ValueError):
        is_aligned(3, 0)


def test_fmt_size():
    assert fmt_size(8) == "8 B"
    assert fmt_size(KiB) == "1 kiB"
    assert fmt_size(2 * KiB) == "2 kiB"
    assert fmt_size(int(1.5 * MiB)) == "1.5 MiB"
