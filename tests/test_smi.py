"""Tests for the SMI shared-region and synchronization layer."""

import numpy as np
import pytest

from repro._units import KiB, MiB
from repro.hardware import Node
from repro.hardware.sci import AccessRun, RingTopology, SCIFabric
from repro.sim import Engine
from repro.smi import SMIBarrier, SMIContext, SMIError, SMILock, SMIRWLock


def make_context(rank_to_node=(0, 1, 2, 3), n_nodes=4):
    eng = Engine()
    nodes = [Node(i, mem_size=8 * MiB) for i in range(n_nodes)]
    fabric = SCIFabric(eng, RingTopology(n_nodes))
    ctx = SMIContext(eng, fabric, nodes, list(rank_to_node))
    return eng, ctx


class TestRegions:
    def test_create_and_remote_write(self):
        eng, ctx = make_context()
        region = ctx.create_region(owner_rank=1, nbytes=4 * KiB)
        handle = region.handle(0)
        assert not handle.is_local
        payload = np.arange(128, dtype=np.uint8)

        def body():
            yield from handle.write_bytes(64, payload)
            yield from handle.barrier()

        eng.run_process(body())
        assert np.array_equal(region.local_view()[64:192], payload)

    def test_local_handle_for_same_node_rank(self):
        eng, ctx = make_context(rank_to_node=(0, 0, 1, 1), n_nodes=2)
        region = ctx.create_region(owner_rank=0, nbytes=1 * KiB)
        assert region.handle(1).is_local  # rank 1 shares node 0
        assert not region.handle(2).is_local

    def test_read_back(self):
        eng, ctx = make_context()
        region = ctx.create_region(owner_rank=2, nbytes=1 * KiB)
        region.local_view()[:8] = np.arange(8, dtype=np.uint8)
        handle = region.handle(0)

        def body():
            data = yield from handle.read_bytes(0, 8)
            return data

        data = eng.run_process(body())
        assert np.array_equal(data, np.arange(8, dtype=np.uint8))

    def test_remote_access_slower_than_local(self):
        eng, ctx = make_context(rank_to_node=(0, 0, 1), n_nodes=2)
        region = ctx.create_region(owner_rank=0, nbytes=256 * KiB)
        payload = np.zeros(128 * KiB, dtype=np.uint8)

        def timed(handle):
            t0 = eng.now
            yield from handle.write(payload, AccessRun.contiguous(0, payload.nbytes))
            return eng.now - t0

        t_local = eng.run_process(timed(region.handle(1)))
        t_remote = eng.run_process(timed(region.handle(2)))
        assert t_remote > t_local

    def test_bad_rank_rejected(self):
        _, ctx = make_context()
        with pytest.raises(SMIError):
            ctx.node_of(7)
        with pytest.raises(SMIError):
            ctx.create_region(owner_rank=9, nbytes=64)


class TestSMILock:
    def test_exclusion_and_fifo(self):
        eng, ctx = make_context()
        lock = SMILock(ctx, home_rank=0)
        trace = []

        def worker(rank, hold):
            yield from lock.acquire(rank)
            trace.append(("acq", rank, eng.now))
            yield eng.timeout(hold)
            yield from lock.release(rank)

        eng.process(worker(1, 50.0))
        eng.process(worker(2, 10.0))
        eng.run()
        assert [t[1] for t in trace] == [1, 2]
        assert trace[1][2] > trace[0][2] + 50.0
        assert lock.contended_acquires == 1

    def test_local_acquire_cheaper_than_remote(self):
        eng, ctx = make_context(rank_to_node=(0, 0, 1), n_nodes=2)
        lock = SMILock(ctx, home_rank=0)

        def timed(rank):
            t0 = eng.now
            yield from lock.acquire(rank)
            dt = eng.now - t0
            yield from lock.release(rank)
            return dt

        t_local = eng.run_process(timed(1))
        t_remote = eng.run_process(timed(2))
        assert t_remote > 10 * t_local

    def test_not_locked_after_release(self):
        eng, ctx = make_context()
        lock = SMILock(ctx, home_rank=0)

        def body():
            yield from lock.acquire(3)
            assert lock.locked
            yield from lock.release(3)

        eng.run_process(body())
        assert not lock.locked


class TestSMIRWLock:
    def test_shared_holders_overlap(self):
        eng, ctx = make_context()
        lock = SMIRWLock(ctx, home_rank=0)
        held = []

        def reader(rank, hold):
            yield from lock.acquire(rank, exclusive=False)
            t_in = eng.now
            yield eng.timeout(hold)
            t_out = eng.now
            yield from lock.release(rank, exclusive=False)
            held.append((t_in, t_out))

        for rank in (1, 2, 3):
            eng.process(reader(rank, 40.0))
        eng.run()
        assert lock.max_concurrent_shared == 3
        # All three hold intervals overlap somewhere.
        assert max(t for t, _ in held) < min(t for _, t in held)
        assert not lock.locked

    def test_exclusive_excludes_everyone(self):
        eng, ctx = make_context()
        lock = SMIRWLock(ctx, home_rank=0)
        trace = []

        def worker(rank, exclusive, hold):
            yield from lock.acquire(rank, exclusive=exclusive)
            trace.append(("acq", rank, eng.now))
            yield eng.timeout(hold)
            trace.append(("rel", rank, eng.now))
            yield from lock.release(rank, exclusive=exclusive)

        eng.process(worker(1, True, 50.0))
        eng.process(worker(2, False, 10.0))
        eng.process(worker(3, True, 10.0))
        eng.run()
        # Strict serialization: each acquire happens after the previous release.
        events = sorted(trace, key=lambda t: t[2])
        kinds = [e[0] for e in events]
        assert kinds == ["acq", "rel"] * 3
        assert [e[1] for e in events] == [1, 1, 2, 2, 3, 3]

    def test_writer_not_starved_by_reader_stream(self):
        """A writer queued behind active readers is granted before any
        reader that arrived after it (FIFO starvation-freedom)."""
        eng, ctx = make_context()
        lock = SMIRWLock(ctx, home_rank=0)
        grants = []

        def reader(rank, start, hold):
            yield eng.timeout(start)
            yield from lock.acquire(rank, exclusive=False)
            grants.append(("r", rank, eng.now))
            yield eng.timeout(hold)
            yield from lock.release(rank, exclusive=False)

        def writer(rank, start, hold):
            yield eng.timeout(start)
            yield from lock.acquire(rank, exclusive=True)
            grants.append(("w", rank, eng.now))
            yield eng.timeout(hold)
            yield from lock.release(rank, exclusive=True)

        # Readers 1,2 acquire immediately; the writer arrives at t=20;
        # readers 3,0 arrive later and must wait behind the writer even
        # though the lock is in shared mode when they ask.
        eng.process(reader(1, 0.0, 100.0))
        eng.process(reader(2, 5.0, 100.0))
        eng.process(writer(3, 20.0, 30.0))
        eng.process(reader(0, 40.0, 10.0))
        eng.run()
        order = [(kind, rank) for kind, rank, _ in grants]
        assert order[:2] == [("r", 1), ("r", 2)]
        assert order[2] == ("w", 3), f"writer starved: {order}"
        assert order[3] == ("r", 0)
        assert lock.exclusive_grants == 1 and lock.shared_grants == 3

    def test_release_without_hold_rejected(self):
        eng, ctx = make_context()
        lock = SMIRWLock(ctx, home_rank=0)
        with pytest.raises(SMIError):
            eng.run_process(lock.release(1, exclusive=True))
        with pytest.raises(SMIError):
            eng.run_process(lock.release(1, exclusive=False))

    def test_contended_handover_costs_poll_latency(self):
        """A contended shared->exclusive hand-over pays the spin poll."""
        eng, ctx = make_context()
        lock = SMIRWLock(ctx, home_rank=0)
        times = {}

        def reader(rank):
            yield from lock.acquire(rank, exclusive=False)
            yield eng.timeout(10.0)
            yield from lock.release(rank, exclusive=False)
            times["release"] = eng.now

        def writer(rank):
            yield eng.timeout(1.0)
            yield from lock.acquire(rank, exclusive=True)
            times["acquired"] = eng.now
            yield from lock.release(rank, exclusive=True)

        eng.process(reader(1))
        eng.process(writer(2))
        eng.run()
        assert lock.contended_acquires == 1
        assert times["acquired"] > times["release"]  # poll + set word


class TestSMIBarrier:
    def test_all_ranks_leave_together(self):
        eng, ctx = make_context()
        barrier = SMIBarrier(ctx, ranks=[0, 1, 2, 3])
        leave_times = {}

        def worker(rank, delay):
            yield eng.timeout(delay)
            yield from barrier.enter(rank)
            leave_times[rank] = eng.now

        for rank, delay in enumerate([5.0, 1.0, 30.0, 2.0]):
            eng.process(worker(rank, delay))
        eng.run()
        # Nobody leaves before the slowest arrival at t=30.
        assert min(leave_times.values()) >= 30.0
        assert max(leave_times.values()) - min(leave_times.values()) < 5.0

    def test_reusable_across_generations(self):
        eng, ctx = make_context()
        barrier = SMIBarrier(ctx, ranks=[0, 1])
        crossings = []

        def worker(rank):
            for round_no in range(3):
                yield eng.timeout(1.0 + rank)
                yield from barrier.enter(rank)
                crossings.append((round_no, rank, eng.now))

        eng.process(worker(0))
        eng.process(worker(1))
        eng.run()
        assert len(crossings) == 6
        rounds = [c[0] for c in sorted(crossings, key=lambda c: c[2])]
        assert rounds == [0, 0, 1, 1, 2, 2]

    def test_foreign_rank_rejected(self):
        eng, ctx = make_context()
        barrier = SMIBarrier(ctx, ranks=[0, 1])

        def body():
            yield from barrier.enter(3)

        with pytest.raises(SMIError):
            eng.run_process(body())

    def test_empty_barrier_rejected(self):
        _, ctx = make_context()
        with pytest.raises(SMIError):
            SMIBarrier(ctx, ranks=[])
