"""Tests for the remaining sim primitives: Broadcast, callback_channel,
daemon processes, and engine counters."""

import pytest

from repro.sim import (
    Broadcast,
    Channel,
    Deadlock,
    Engine,
    callback_channel,
)


class TestBroadcast:
    def test_wait_before_fire(self):
        eng = Engine()
        sig = Broadcast(eng)
        woken = []

        def waiter(tag):
            value = yield sig.wait()
            woken.append((tag, value, eng.now))

        def firer():
            yield eng.timeout(5.0)
            sig.fire("go")

        for tag in range(3):
            eng.process(waiter(tag))
        eng.process(firer())
        eng.run()
        assert [w[1] for w in woken] == ["go"] * 3
        assert all(w[2] == 5.0 for w in woken)

    def test_wait_after_fire_immediate(self):
        eng = Engine()
        sig = Broadcast(eng)
        sig.fire(42)

        def late():
            value = yield sig.wait()
            return (value, eng.now)

        assert eng.run_process(late()) == (42, 0.0)

    def test_double_fire_rejected(self):
        eng = Engine()
        sig = Broadcast(eng)
        sig.fire()
        with pytest.raises(RuntimeError):
            sig.fire()

    def test_reset_rearms(self):
        eng = Engine()
        sig = Broadcast(eng)
        sig.fire(1)
        sig.reset()
        assert not sig.fired

        def waiter():
            value = yield sig.wait()
            return value

        def firer():
            yield eng.timeout(1.0)
            sig.fire(2)

        eng.process(firer())
        assert eng.run_process(waiter()) == 2


class TestCallbackChannel:
    def test_plain_handler(self):
        eng = Engine()
        chan = Channel(eng)
        seen = []
        eng.process(callback_channel(chan, seen.append), daemon=True)

        def producer():
            for i in range(3):
                yield eng.timeout(1.0)
                chan.put(i)

        eng.process(producer())
        eng.run()
        assert seen == [0, 1, 2]

    def test_generator_handler_is_driven(self):
        eng = Engine()
        chan = Channel(eng)
        done = []

        def handler(item):
            yield eng.timeout(10.0)
            done.append((item, eng.now))

        eng.process(callback_channel(chan, handler), daemon=True)
        chan.put("a")
        chan.put("b")
        eng.run()
        # Handlers are serialized: second item handled after the first.
        assert done == [("a", 10.0), ("b", 20.0)]


class TestDaemons:
    def test_daemon_does_not_deadlock_engine(self):
        eng = Engine()
        chan = Channel(eng)

        def forever():
            while True:
                yield chan.get()

        eng.process(forever(), daemon=True)

        def worker():
            yield eng.timeout(3.0)
            return "done"

        assert eng.run_process(worker()) == "done"

    def test_non_daemon_still_deadlocks(self):
        eng = Engine()
        chan = Channel(eng)

        def forever():
            while True:
                yield chan.get()

        eng.process(forever(), daemon=False)
        with pytest.raises(Deadlock):
            eng.run()


class TestEngineCounters:
    def test_events_processed_counts(self):
        eng = Engine()

        def body():
            for _ in range(5):
                yield eng.timeout(1.0)

        eng.run_process(body())
        assert eng.events_processed >= 5

    def test_peek(self):
        eng = Engine()
        assert eng.peek() == float("inf")
        eng.timeout(7.0)
        assert eng.peek() == 7.0
