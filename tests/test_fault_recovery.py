"""Deterministic fault-injection and recovery suite (``-m faults``).

Differential oracle: every test runs a program once on a clean fabric and
once (or more) under a seeded :class:`~repro.hardware.sci.faults.FaultPlan`,
and asserts the delivered payloads are byte-identical — lost chunks are
retransmitted, torn chunks resumed at the tear offset, revoked segments
remapped or degraded to emulation, stalled receivers waited out.  CI runs
this file as a 3-seed × {pt2pt, osc, collectives} matrix via
``-m faults -k "<suite> and seed<N>"`` (the ``fault-matrix`` job).
"""

import numpy as np
import pytest

from repro import BYTE, Cluster, FaultPlan, Indexed, Struct, Vector
from repro._units import KiB
from repro.hardware.sci.faults import FaultKind
from repro.mpi.transport import RecoveryPolicy, TransferPolicy
from repro.trace import attach_tracer

pytestmark = pytest.mark.faults

SEEDS = (1, 2, 3)
seeds = pytest.mark.parametrize(
    "seed", SEEDS, ids=[f"seed{s}" for s in SEEDS]
)

#: A lively plan: lost transfers, torn chunks and receiver stalls.
def lively_plan(seed):
    return FaultPlan(seed=seed, transient_rate=0.25, torn_rate=0.25,
                     stall_rate=0.15, stall_time=3000.0)


def total_recovery(cluster):
    out = {}
    for device in cluster.world.devices:
        for key, value in device.recovery.items():
            out[key] = out.get(key, 0) + value
    return out


def datatype_case(kind):
    """(datatype, count, extent) triples whose packed stream is ~192 KiB
    (several rendezvous chunks at the default 64 KiB chunk size)."""
    if kind == "strided":
        dtype = Vector(3072, 64, 96, BYTE)
        return dtype, 1, 3072 * 96
    if kind == "indexed":
        blocks = [48, 16, 64, 32] * 768
        disps, at = [], 0
        for b in blocks:
            disps.append(at)
            at += b + 17
        dtype = Indexed(blocks, disps, BYTE)
        return dtype, 1, at
    assert kind == "struct"
    dtype = Struct([24, 40], [0, 48], [BYTE, BYTE])
    return dtype, 3072, 3072 * 88


def pt2pt_program(kind):
    dtype, count, extent = datatype_case(kind)

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        buf = ctx.alloc(extent)
        if comm.rank == 0:
            buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
            yield from comm.send(buf, dest=1, datatype=dtype, count=count)
            return None
        yield from comm.recv(buf, source=0, datatype=dtype, count=count)
        return bytes(buf.read())

    return program


class TestFaultPlan:
    """Unit behaviour of the plan itself (draws, budget, determinism)."""

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=0.7, torn_rate=0.7)
        with pytest.raises(ValueError):
            FaultPlan(stall_time=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(unmap_after=0)
        with pytest.raises(ValueError):
            FaultPlan(max_consecutive=0)

    def test_deterministic_draws(self):
        def draws(seed):
            plan = FaultPlan(seed=seed, transient_rate=0.3, torn_rate=0.3)
            return [plan.draw_transfer(0, 1, 4096, tearable=True)
                    for _ in range(64)]

        assert draws(5) == draws(5)
        assert draws(5) != draws(6)

    def test_torn_needs_tearable(self):
        plan = FaultPlan(seed=0, torn_rate=1.0)
        kind, delivered = plan.draw_transfer(0, 1, 4096, tearable=False)
        assert kind == FaultKind.TRANSIENT and delivered == 0
        plan2 = FaultPlan(seed=0, torn_rate=1.0, max_consecutive=10)
        kind, delivered = plan2.draw_transfer(0, 1, 4096, tearable=True)
        assert kind == FaultKind.TORN and 0 < delivered < 4096

    def test_max_consecutive_forces_clean_attempt(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, max_consecutive=2)
        results = [plan.draw_transfer(0, 1, 1024) for _ in range(6)]
        # Every third attempt on the path is forced clean.
        assert results[0] is not None and results[1] is not None
        assert results[2] is None

    def test_budget_caps_total(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, max_faults=3,
                         max_consecutive=100)
        for _ in range(10):
            plan.draw_transfer(0, 1, 1024)
        assert plan.total_injected == 3

    def test_unmap_is_one_shot(self):
        plan = FaultPlan(seed=0, unmap_after=3)

        class Seg:
            seg_id = 7

        hits = [plan.draw_unmap(Seg()) for _ in range(6)]
        assert hits == [False, False, True, False, False, False]
        assert plan.counters[FaultKind.UNMAP] == 1

    def test_replay_log_and_summary(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, max_consecutive=3)
        plan.draw_transfer(0, 1, 1024)
        assert plan.events and plan.events[0].kind == FaultKind.TRANSIENT
        assert "transient=1" in plan.one_line()
        assert "[0] transient" in plan.summary()


class TestPt2ptRecovery:
    """Point-to-point differential oracle + the specific recovery paths."""

    @seeds
    @pytest.mark.parametrize("kind", ["strided", "indexed", "struct"])
    def test_pt2pt_differential_oracle(self, seed, kind):
        program = pt2pt_program(kind)
        reference = Cluster(n_nodes=2).run(program).results[1]
        plan = lively_plan(seed)
        faulty = Cluster(n_nodes=2, faults=plan)
        got = faulty.run(program).results[1]
        assert got == reference
        assert plan.total_injected > 0
        assert sum(total_recovery(faulty).values()) > 0

    @seeds
    def test_pt2pt_torn_chunks_resume_at_offset(self, seed):
        program = pt2pt_program("strided")
        reference = Cluster(n_nodes=2).run(program).results[1]
        plan = FaultPlan(seed=seed, torn_rate=0.5)
        faulty = Cluster(n_nodes=2, faults=plan)
        got = faulty.run(program).results[1]
        assert got == reference
        assert plan.counters[FaultKind.TORN] > 0
        assert total_recovery(faulty)["resumes"] > 0

    @seeds
    def test_pt2pt_resume_disabled_still_correct(self, seed):
        """The ``resume_torn=False`` knob retransmits torn chunks whole."""
        program = pt2pt_program("strided")
        reference = Cluster(n_nodes=2).run(program).results[1]
        plan = FaultPlan(seed=seed, torn_rate=0.5)
        policy = TransferPolicy(recovery=RecoveryPolicy(resume_torn=False))
        faulty = Cluster(n_nodes=2, faults=plan, policy=policy)
        got = faulty.run(program).results[1]
        assert got == reference
        recovery = total_recovery(faulty)
        assert recovery["resumes"] == 0
        assert recovery["retries"] > 0

    @seeds
    def test_pt2pt_stalled_receiver_trips_timeout(self, seed):
        program = pt2pt_program("strided")
        reference = Cluster(n_nodes=2).run(program).results[1]
        plan = FaultPlan(seed=seed, stall_rate=1.0, stall_time=5000.0)
        faulty = Cluster(n_nodes=2, faults=plan)
        got = faulty.run(program).results[1]
        assert got == reference
        assert plan.counters[FaultKind.STALL] > 0
        assert total_recovery(faulty)["timeouts"] > 0

    @seeds
    def test_pt2pt_unmapped_packet_buffer_remapped(self, seed):
        program = pt2pt_program("strided")
        reference = Cluster(n_nodes=2).run(program).results[1]
        plan = FaultPlan(seed=seed, unmap_after=2)
        faulty = Cluster(n_nodes=2, faults=plan)
        got = faulty.run(program).results[1]
        assert got == reference
        assert plan.counters[FaultKind.UNMAP] == 1
        assert total_recovery(faulty)["remaps"] > 0

    @seeds
    def test_pt2pt_trace_summary_reports_recovery(self, seed):
        program = pt2pt_program("strided")
        plan = lively_plan(seed)
        faulty = Cluster(n_nodes=2, faults=plan)
        tracer = attach_tracer(faulty)
        faulty.run(program)
        summary = tracer.summary()
        assert "recovery:" in summary
        assert f"fault plan (seed={seed})" in summary
        recovery = total_recovery(faulty)
        if sum(recovery.values()):
            assert any(s.kind.startswith("recover.")
                       for s in tracer.spans()) or recovery["timeouts"] >= 0
            # The headline counters match the device totals.
            for key, value in recovery.items():
                assert f"{key}={value}" in summary

    def test_pt2pt_fault_free_timing_untouched(self):
        """A plan that injects nothing must not change the transfer's
        simulated duration (the receiver's observed completion time);
        only the engine drains a trailing watchdog timer afterwards."""
        dtype, count, extent = datatype_case("strided")

        def program(ctx):
            comm = ctx.comm
            dtype.commit()
            buf = ctx.alloc(extent)
            t0 = ctx.now
            if comm.rank == 0:
                buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
                yield from comm.send(buf, dest=1, datatype=dtype, count=count)
            else:
                yield from comm.recv(buf, source=0, datatype=dtype, count=count)
            return ctx.now - t0

        t_clean = Cluster(n_nodes=2).run(program).results
        silent_plan = FaultPlan(seed=0)
        t_silent = Cluster(n_nodes=2, faults=silent_plan).run(program).results
        assert silent_plan.total_injected == 0
        assert t_silent == t_clean

    def test_pt2pt_gives_up_after_bounded_retransmits(self):
        from repro.mpi.errors import TransferAborted

        program = pt2pt_program("strided")
        plan = FaultPlan(seed=1, transient_rate=1.0, max_consecutive=10**9)
        faulty = Cluster(n_nodes=2, faults=plan)
        with pytest.raises(TransferAborted):
            faulty.run(program)


class TestOscRecovery:
    """One-sided differential oracle: direct, degraded, and torn paths."""

    @staticmethod
    def osc_program(nbytes=8 * KiB, rounds=6):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(nbytes, shared=True)
            yield from win.fence()
            if comm.rank == 0:
                for i in range(rounds):
                    data = (np.arange(nbytes, dtype=np.uint8) + i) % 241
                    yield from win.put(data, target=1, target_disp=0)
                    yield from win.fence()
                    yield from win.fence()
                return None
            results = []
            for _ in range(rounds):
                yield from win.fence()
                results.append(bytes(win.local_view()))
                yield from win.fence()
            return results

        return program

    @seeds
    def test_osc_differential_oracle(self, seed):
        program = self.osc_program()
        reference = Cluster(n_nodes=2).run(program).results[1]
        plan = FaultPlan(seed=seed, transient_rate=0.4)
        faulty = Cluster(n_nodes=2, faults=plan)
        got = faulty.run(program).results[1]
        assert got == reference
        assert plan.total_injected > 0
        assert total_recovery(faulty)["retries"] > 0

    @seeds
    def test_osc_unmap_degrades_to_emulation(self, seed):
        program = self.osc_program()
        reference = Cluster(n_nodes=2).run(program).results[1]
        plan = FaultPlan(seed=seed, unmap_after=2)
        faulty = Cluster(n_nodes=2, faults=plan)
        got = faulty.run(program).results[1]
        assert got == reference
        assert plan.counters[FaultKind.UNMAP] == 1
        assert total_recovery(faulty)["fallbacks"] > 0

    @seeds
    def test_osc_get_survives_faults(self, seed):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(1 * KiB, shared=True)
            view = win.local_view()
            view[:] = (np.arange(1 * KiB, dtype=np.uint8) + comm.rank) % 239
            yield from win.fence()
            if comm.rank == 0:
                data = yield from win.get(1 * KiB, target=1, target_disp=0)
                yield from win.fence()
                return bytes(data)
            yield from win.fence()
            return None

        reference = Cluster(n_nodes=2).run(program).results[0]
        plan = FaultPlan(seed=seed, transient_rate=0.5)
        faulty = Cluster(n_nodes=2, faults=plan)
        got = faulty.run(program).results[0]
        assert got == reference


class TestCollectivesRecovery:
    """Collectives ride the same transport: the oracle covers bcast,
    allgather and alltoall under every fault class at once."""

    @staticmethod
    def collectives_program(nbytes=24 * KiB):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(nbytes)
            if comm.rank == 0:
                buf.read()[:] = np.arange(nbytes, dtype=np.uint8) % 233
            yield from comm.bcast(buf, root=0)

            send = ctx.alloc(2 * KiB)
            send.read()[:] = (np.arange(2 * KiB, dtype=np.uint8)
                              + 31 * comm.rank) % 227
            gathered = ctx.alloc(2 * KiB * comm.size)
            yield from comm.allgather(send, gathered)

            sendall = ctx.alloc(2 * KiB * comm.size)
            sendall.read()[:] = (np.arange(2 * KiB * comm.size,
                                           dtype=np.uint8)
                                 + 7 * comm.rank) % 229
            exchanged = ctx.alloc(2 * KiB * comm.size)
            yield from comm.alltoall(sendall, exchanged)
            return (bytes(buf.read()), bytes(gathered.read()),
                    bytes(exchanged.read()))

        return program

    @seeds
    def test_collectives_differential_oracle(self, seed):
        program = self.collectives_program()
        reference = Cluster(n_nodes=4).run(program).results
        plan = lively_plan(seed)
        faulty = Cluster(n_nodes=4, faults=plan)
        got = faulty.run(program).results
        assert got == reference
        assert plan.total_injected > 0
        assert sum(total_recovery(faulty).values()) > 0

    @seeds
    def test_collectives_survive_one_unmap(self, seed):
        program = self.collectives_program()
        reference = Cluster(n_nodes=4).run(program).results
        plan = FaultPlan(seed=seed, unmap_after=4)
        faulty = Cluster(n_nodes=4, faults=plan)
        got = faulty.run(program).results
        assert got == reference
        assert plan.counters[FaultKind.UNMAP] == 1
