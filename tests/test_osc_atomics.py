"""Atomics interleaving tests: many ranks storming one target window.

The service layer's correctness rests on two properties of the OSC
layer, checked here under deliberately scrambled interleavings (each
rank jitters by a seeded, rank-dependent delay before every operation):

* ``accumulate`` / ``fetch_and_op`` are serialized by the target-side
  handler, so concurrent increments from every rank sum exactly (and
  every ``fetch_and_op`` observes a *distinct* intermediate value);
* passive-target lock/unlock epochs are mutually exclusive, so
  read-modify-write storms under exclusive locks lose no updates, and
  shared-mode holders interleave with exclusive ones without corruption.

Each test is parametrized over seeds (the seed only perturbs *timing*),
and the ``faults``-marked variants rerun the storms under a lively
seeded :class:`~repro.hardware.sci.faults.FaultPlan` — CI's fault-matrix
job picks them up via ``-m faults -k "osc and seed<N>"``.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.hardware.sci.faults import FaultPlan
from repro.mpi.datatypes import LONG, UNSIGNED_LONG

SEEDS = [1, 2, 3]


def jitter(rng):
    """A small seeded delay: scrambles rank interleavings per seed."""
    return float(rng.uniform(0.0, 25.0))


def fault_plan(seed):
    return FaultPlan(seed=seed, transient_rate=0.15, torn_rate=0.1,
                     stall_rate=0.05, stall_time=300.0)


def run_fetch_and_op_storm(seed, faults=None, n=4, rounds=6):
    """Every non-target rank bumps a counter ``rounds`` times."""

    def program(ctx):
        comm = ctx.comm
        rng = np.random.default_rng((seed, comm.rank))
        win = yield from comm.win_create(8, shared=True)
        win.local_view()[:] = 0
        yield from win.fence()
        observed = []
        if comm.rank != 0:
            for _ in range(rounds):
                yield ctx.cluster.engine.timeout(jitter(rng))
                prev = yield from win.fetch_and_op(
                    np.array([1], dtype=np.int64), 0, 0,
                    op="sum", datatype=LONG,
                )
                observed.append(int(np.asarray(prev).view(np.int64)[0]))
        yield from win.fence()
        if comm.rank == 0:
            return int(win.local_view().view(np.int64)[0])
        return observed

    run = Cluster(n_nodes=n, faults=faults).run(program)
    return run.results


def run_lock_storm(seed, faults=None, n=4, rounds=5):
    """Exclusive-lock read-modify-write increments on rank 0's window."""

    def program(ctx):
        comm = ctx.comm
        rng = np.random.default_rng((seed, comm.rank))
        win = yield from comm.win_create(8, shared=True)
        win.local_view()[:] = 0
        yield from win.fence()
        if comm.rank != 0:
            for _ in range(rounds):
                yield ctx.cluster.engine.timeout(jitter(rng))
                yield from win.lock(0)
                current = yield from win.get(8, 0, 0)
                value = int.from_bytes(current.tobytes(), "little")
                yield from win.put(
                    np.array([value + 1], dtype=np.int64), 0, 0
                )
                yield from win.unlock(0)
        yield from win.fence()
        return int(win.local_view().view(np.int64)[0])

    return Cluster(n_nodes=n, faults=faults).run(program)


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
class TestFetchAndOpStorm:
    def test_exact_final_count(self, seed):
        results = run_fetch_and_op_storm(seed)
        assert results[0] == 3 * 6  # (n - 1) ranks x rounds, no lost updates

    def test_every_intermediate_distinct(self, seed):
        """Handler serialization: each fetch_and_op sees a unique prior
        value, and together they cover exactly [0, total)."""
        results = run_fetch_and_op_storm(seed)
        observed = sorted(v for vs in results[1:] for v in vs)
        assert observed == list(range(3 * 6))

    def test_bitwise_claim_wins_once(self, seed):
        """fetch_and_op(op="bor") of one bit: exactly one rank observes
        the bit clear — the svc write-claim idiom."""

        def program(ctx):
            comm = ctx.comm
            rng = np.random.default_rng((seed, comm.rank))
            win = yield from comm.win_create(8, shared=True)
            win.local_view()[:] = 0
            yield from win.fence()
            won = False
            if comm.rank != 0:
                yield ctx.cluster.engine.timeout(jitter(rng))
                prev = yield from win.fetch_and_op(
                    np.array([1], dtype=np.uint64), 0, 0,
                    op="bor", datatype=UNSIGNED_LONG,
                )
                won = int(np.asarray(prev).view(np.uint64)[0]) & 1 == 0
            yield from win.fence()
            return won

        results = Cluster(n_nodes=4).run(program).results
        assert sum(results[1:]) == 1


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
class TestLockStorm:
    def test_exclusive_rmw_loses_no_updates(self, seed):
        run = run_lock_storm(seed)
        assert run.results[0] == 3 * 5  # (n - 1) ranks x rounds

    def test_shared_and_exclusive_mix(self, seed):
        """Readers under shared locks never see a torn intermediate while
        writers increment both halves under exclusive locks."""

        def program(ctx):
            comm = ctx.comm
            rng = np.random.default_rng((seed, comm.rank))
            win = yield from comm.win_create(16, shared=True)
            win.local_view()[:] = 0
            yield from win.fence()
            bad = 0
            if comm.rank in (1, 2):  # writers: keep both words equal
                for _ in range(4):
                    yield ctx.cluster.engine.timeout(jitter(rng))
                    yield from win.lock(0)
                    current = yield from win.get(16, 0, 0)
                    value = int.from_bytes(current.tobytes()[:8], "little")
                    pair = np.array([value + 1, value + 1], dtype=np.int64)
                    yield from win.put(pair, 0, 0)
                    yield from win.unlock(0)
            elif comm.rank == 3:  # reader: both words must always match
                for _ in range(8):
                    yield ctx.cluster.engine.timeout(jitter(rng))
                    yield from win.lock(0, exclusive=False)
                    current = yield from win.get(16, 0, 0)
                    yield from win.unlock(0)
                    lo = int.from_bytes(current.tobytes()[:8], "little")
                    hi = int.from_bytes(current.tobytes()[8:], "little")
                    bad += lo != hi
            yield from win.fence()
            if comm.rank == 0:
                return int(win.local_view().view(np.int64)[0])
            return bad

        run = Cluster(n_nodes=4).run(program)
        assert run.results[3] == 0  # no torn observation
        assert run.results[0] == 2 * 4  # both writers' increments landed


@pytest.mark.faults
@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
class TestAtomicsUnderFaults:
    """The same exactness guarantees with the fault injector running."""

    def test_fetch_and_op_storm_exact(self, seed):
        results = run_fetch_and_op_storm(seed, faults=fault_plan(seed))
        assert results[0] == 3 * 6
        observed = sorted(v for vs in results[1:] for v in vs)
        assert observed == list(range(3 * 6))

    def test_lock_storm_exact(self, seed):
        run = run_lock_storm(seed, faults=fault_plan(seed))
        assert run.results[0] == 3 * 5
