"""Docs guard: every span kind and metric name in src/ is documented.

``docs/OBSERVABILITY.md`` is the authoritative name registry; this
module greps the code for every name it can emit and fails if one is
missing from the document.  CLI JSON-purity contracts ride along.
"""

import json
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC = (ROOT / "docs" / "OBSERVABILITY.md").read_text()

_TRACE_RE = re.compile(r'_trace\(\s*"([a-z_.]+)"')


def traced_kinds() -> set[str]:
    kinds = set()
    for path in (ROOT / "src").rglob("*.py"):
        kinds.update(_TRACE_RE.findall(path.read_text()))
    return kinds


def base_kinds() -> set[str]:
    out = set()
    for kind in traced_kinds():
        out.add(re.sub(r"\.(begin|end)$", "", kind))
    return out


class TestSpanTaxonomy:
    def test_found_the_known_emitters(self):
        kinds = base_kinds()
        assert {"send", "recv", "chunk.write", "osc.put", "recover.retry",
                "fabric.xfer"} <= kinds

    def test_every_span_kind_documented(self):
        for kind in sorted(base_kinds()):
            assert f"`{kind}`" in DOC, (
                f"span kind {kind!r} is traced in src/ but missing from "
                "docs/OBSERVABILITY.md"
            )


class TestMetricNames:
    def test_every_registry_name_documented(self):
        from repro.cluster import Cluster

        registry = Cluster(n_nodes=2).metrics
        names = registry.names()
        assert len(names) >= 50
        for name in names:
            assert f"`{name}`" in DOC, (
                f"metric {name!r} is wired in build_registry but missing "
                "from docs/OBSERVABILITY.md"
            )

    def test_every_possible_span_metric_documented(self):
        paired = {re.sub(r"\.begin$", "", k) for k in traced_kinds()
                  if k.endswith(".begin")}
        assert paired
        for op in sorted(paired):
            for suffix in ("count", "time_us"):
                name = f"span.{op}.{suffix}"
                assert f"`{name}`" in DOC, (
                    f"span metric {name!r} can be emitted but is missing "
                    "from docs/OBSERVABILITY.md"
                )

    def test_every_smoke_metric_documented(self):
        from repro.bench.smoke import SMOKE_METRICS

        for name in SMOKE_METRICS:
            assert f"`{name}`" in DOC, name

    def test_every_svc_metric_documented(self):
        """The service registers its instruments outside build_registry,
        so the cluster-registry guard above never sees them — enumerate
        them from the svc name tuples instead."""
        from repro.obs.metrics import _HISTOGRAM_FIELDS
        from repro.svc.driver import SVC_COLLECTOR_METRICS
        from repro.svc.store import SVC_COUNTERS, SVC_HISTOGRAMS

        names = [f"svc.{counter}" for counter in SVC_COUNTERS]
        names += [f"svc.{hist}.{field}" for hist in SVC_HISTOGRAMS
                  for field in _HISTOGRAM_FIELDS]
        names += list(SVC_COLLECTOR_METRICS)
        assert len(names) >= 35
        for name in names:
            assert f"`{name}`" in DOC, (
                f"svc metric {name!r} is registered by run_service but "
                "missing from docs/OBSERVABILITY.md"
            )

    def test_every_scenario_metric_documented(self):
        """The scenario driver likewise registers its instruments outside
        build_registry — enumerate them from the scenario name tuples."""
        from repro.obs.metrics import _HISTOGRAM_FIELDS
        from repro.scenarios import SCENARIO_COUNTERS, SCENARIO_HISTOGRAMS

        names = [f"scenario.{counter}" for counter in SCENARIO_COUNTERS]
        names += [f"scenario.{hist}.{field}" for hist in SCENARIO_HISTOGRAMS
                  for field in _HISTOGRAM_FIELDS]
        assert len(names) >= 11
        for name in names:
            assert f"`{name}`" in DOC, (
                f"scenario metric {name!r} is registered by run_scenario "
                "but missing from docs/OBSERVABILITY.md"
            )

    def test_every_qos_metric_documented(self):
        """The QoS manager also registers outside build_registry —
        enumerate counters, gauges and histograms from its name tuples."""
        from repro.obs.metrics import _HISTOGRAM_FIELDS
        from repro.qos import QOS_COUNTERS, QOS_GAUGES, QOS_HISTOGRAMS

        names = [f"qos.{counter}" for counter in QOS_COUNTERS]
        names += [f"qos.{gauge}" for gauge in QOS_GAUGES]
        names += [f"qos.{hist}.{field}" for hist in QOS_HISTOGRAMS
                  for field in _HISTOGRAM_FIELDS]
        assert len(names) >= 25
        for name in names:
            assert f"`{name}`" in DOC, (
                f"qos metric {name!r} is registered by QosManager but "
                "missing from docs/OBSERVABILITY.md"
            )

    def test_every_repl_metric_documented(self):
        """The replication layer registers its instruments outside
        build_registry — enumerate counters, histograms and the two
        collector families from the repl name tuples."""
        from repro.obs.metrics import _HISTOGRAM_FIELDS
        from repro.svc.repl import (REBALANCE_COLLECTOR_METRICS,
                                    REPL_COLLECTOR_METRICS, REPL_COUNTERS,
                                    REPL_HISTOGRAMS)

        names = [f"repl.{counter}" for counter in REPL_COUNTERS]
        names += [f"repl.{hist}.{field}" for hist in REPL_HISTOGRAMS
                  for field in _HISTOGRAM_FIELDS]
        names += list(REPL_COLLECTOR_METRICS)
        names += list(REBALANCE_COLLECTOR_METRICS)
        assert len(names) >= 55
        for name in names:
            assert f"`{name}`" in DOC, (
                f"repl metric {name!r} is registered by execute_replicated "
                "but missing from docs/OBSERVABILITY.md"
            )

    def test_every_scenario_headline_gauge_documented(self):
        from repro.bench.smoke import SCENARIO_HEADLINES
        from repro.scenarios import get_scenario

        for gauge_name, scenario in SCENARIO_HEADLINES:
            assert get_scenario(scenario).headline_metric == gauge_name
            assert f"`{gauge_name}`" in DOC, gauge_name


class TestDocumentationMap:
    def test_readme_links_every_doc(self):
        readme = (ROOT / "README.md").read_text()
        for doc in (ROOT / "docs").glob("*.md"):
            assert f"docs/{doc.name}" in readme, (
                f"README.md documentation map must mention docs/{doc.name}"
            )

    def test_observability_cross_linked(self):
        for name in ("PROTOCOLS.md", "FAULTS.md", "PACK_PLANS.md",
                     "SCENARIOS.md"):
            text = (ROOT / "docs" / name).read_text()
            assert "OBSERVABILITY.md" in text, name

    def test_qos_cross_linked(self):
        for name in ("PROTOCOLS.md", "TOPOLOGY.md", "FAULTS.md",
                     "SCENARIOS.md", "OBSERVABILITY.md"):
            text = (ROOT / "docs" / name).read_text()
            assert "QOS.md" in text, name

    def test_replication_cross_linked(self):
        for name in ("SERVICE.md", "FAULTS.md", "QOS.md",
                     "SCENARIOS.md", "OBSERVABILITY.md"):
            text = (ROOT / "docs" / name).read_text()
            assert "REPLICATION.md" in text, name

    def test_experiments_have_regeneration_commands(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        assert experiments.count("> Regenerate: `") >= 10


class TestCliJsonPurity:
    def test_bench_smoke_json_stdout_is_pure(self, monkeypatch, capsys):
        from repro.bench import __main__ as bench_main

        monkeypatch.setattr("repro.bench.smoke.run_smoke",
                            lambda: {"stub_us": 1.5, "stub_mibs": 2.0})
        assert bench_main.main(["--smoke", "--json", "-"]) == 0
        out, err = capsys.readouterr()
        assert json.loads(out) == {"stub_us": 1.5, "stub_mibs": 2.0}
        assert "stub_us" in err  # the human table moved to stderr

    def test_repro_faults_json_stdout_is_pure(self, capsys):
        from repro.repro_faults import main

        rc = main(["--suite", "pt2pt", "--seeds", "1", "--json", "-"])
        assert rc == 0
        out, err = capsys.readouterr()
        reports = json.loads(out)
        assert reports[0]["suite"] == "pt2pt" and reports[0]["ok"]
        assert "cells" in err  # the human report moved to stderr

    def test_repro_svc_json_stdout_is_pure(self, capsys):
        from repro.svc.cli import main

        rc = main(["--servers", "1", "--clients", "1", "--ops", "20",
                   "--keys", "8", "--slots", "16", "--counter-slots", "4",
                   "--counter-keys", "4", "--json", "-"])
        assert rc == 0
        out, err = capsys.readouterr()
        report = json.loads(out)  # stdout is exactly one JSON document
        assert report["verified"]
        assert report["throughput_ops"] > 0
        assert "throughput" in err  # the human summary moved to stderr

    def test_repro_trace_writes_artifacts(self, tmp_path, capsys):
        from repro.obs.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main(["--size", "4096", "--trace", str(trace_path),
                   "--metrics", str(metrics_path), "--no-timeline"])
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]
        metrics = json.loads(metrics_path.read_text())
        for name in metrics:
            assert f"`{name}`" in DOC, (
                f"metrics.json key {name!r} missing from docs/OBSERVABILITY.md"
            )
        out = capsys.readouterr().out
        assert str(trace_path) in out and str(metrics_path) in out

    def test_repro_trace_embeds_fault_plan(self, tmp_path):
        from repro.obs.cli import main

        trace_path = tmp_path / "trace.json"
        rc = main(["--size", "4096", "--faults-seed", "1",
                   "--trace", str(trace_path),
                   "--metrics", str(tmp_path / "m.json"), "--no-timeline"])
        assert rc == 0
        doc = json.loads(trace_path.read_text())
        plan = doc["otherData"]["fault_plan"]
        assert plan["seed"] == 1
        assert set(plan["rates"]) == {"transient", "torn", "stall"}


@pytest.mark.parametrize("scenario", ["pingpong", "osc", "collectives"])
def test_all_scenarios_trace_cleanly(scenario, tmp_path):
    from repro.obs.cli import main

    rc = main(["--scenario", scenario, "--size", "8192",
               "--trace", str(tmp_path / "t.json"),
               "--metrics", str(tmp_path / "m.json"), "--no-timeline"])
    assert rc == 0
    doc = json.loads((tmp_path / "t.json").read_text())
    assert len(doc["traceEvents"]) > 3
