"""Tests for the bench CLI entry point and Request utilities."""

import pytest

from repro._units import KiB
from repro.bench.__main__ import EXPERIMENTS, main
from repro.cluster import Cluster
from repro.mpi.request import Request


class TestBenchCLI:
    def test_tab1(self, capsys):
        assert main(["tab1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "M-S" in out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "calibration report" in out and "✗" not in out

    def test_sec43(self, capsys):
        assert main(["sec43"]) == 0
        out = capsys.readouterr().out
        assert "8 B accesses" in out

    def test_multiple_experiments(self, capsys):
        assert main(["tab1", "calibration"]) == 0
        out = capsys.readouterr().out
        assert "=" * 72 in out  # separator between experiments

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "calibration", "pingpong", "fig1", "fig7", "sec43", "fig9",
            "fig10", "fig11", "fig12", "tab1", "tab2",
        }


class TestRequestUtilities:
    def test_waitall_returns_in_request_order(self):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                bufs = [ctx.alloc(64) for _ in range(3)]
                reqs = []
                for i, buf in enumerate(bufs):
                    buf.fill(i + 1)
                    reqs.append(comm.isend(buf, dest=1, tag=i))
                yield from Request.waitall(reqs)
                return "sent"
            statuses = []
            reqs = []
            bufs = [ctx.alloc(64) for _ in range(3)]
            for i, buf in enumerate(bufs):
                reqs.append(comm.irecv(buf, source=0, tag=i))
            statuses = yield from Request.waitall(reqs)
            return [(s.tag, buf.read(0, 1)[0]) for s, buf in zip(statuses, bufs)]

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == [(0, 1), (1, 2), (2, 3)]

    def test_test_method(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(128 * KiB)
            if comm.rank == 0:
                req = comm.isend(buf, dest=1, tag=0)
                done_early, _ = req.test()
                assert not done_early  # rendezvous can't finish instantly
                yield from req.wait()
                done_late, _ = req.test()
                return done_late
            yield from comm.recv(buf, source=0, tag=0)
            return None

        run = Cluster(n_nodes=2).run(program)
        assert run.results[0] is True

    def test_failed_request_raises_on_test(self):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                buf = ctx.alloc(64)
                req = comm.isend(buf, dest=1, tag=0)
                ctx.cluster.fabric.fail_node(1)
                try:
                    yield from req.wait()
                except Exception:
                    return "failed"
                return "ok"
            yield ctx.cluster.engine.timeout(10000.0)
            return None

        # The send is a short message; delivered before the failure —
        # either outcome is legal; the point is no hang/crash.
        run = Cluster(n_nodes=2).run(program)
        assert run.results[0] in ("ok", "failed")


class TestStatusLocalization:
    def test_subcomm_status_sources_are_local(self):
        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(comm.rank % 2, key=comm.rank)
            buf = ctx.alloc(32)
            if sub.rank == 0:
                buf.fill(7)
                yield from sub.send(buf, dest=1, tag=0)
                return None
            status = yield from sub.recv(buf, source=0, tag=0)
            # World rank of the sender is 0 or 1; local source must be 0.
            return status.source

        run = Cluster(n_nodes=4).run(program)
        assert run.results[2] == 0 and run.results[3] == 0
