"""Docs-don't-rot tests: README code blocks run, docstrings are present."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.S)


class TestReadme:
    def test_self_contained_snippets_run(self):
        readme = (ROOT / "README.md").read_text()
        blocks = python_blocks(readme)
        assert blocks, "README must contain python examples"
        ran = 0
        for block in blocks:
            # Only run self-contained snippets (they build their own Cluster
            # and reference no undefined names like fragment examples do).
            if "Cluster(" not in block or "..." in block or "data," in block:
                continue
            exec(compile(block, "<README>", "exec"), {})
            ran += 1
        assert ran >= 1

    def test_mentions_all_examples(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, f"README must mention {script.name}"


class TestDesignAndExperiments:
    def test_design_lists_every_experiment(self):
        design = (ROOT / "DESIGN.md").read_text()
        for eid in [f"E{i}" for i in range(1, 10)]:
            assert eid in design

    def test_experiments_covers_every_artefact(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for artefact in ("Figure 1", "Figure 7", "Figure 9", "Figure 10",
                         "Figure 11", "Figure 12", "Table 1", "Table 2",
                         "Sec. 4.3"):
            assert artefact in experiments, artefact

    def test_benchmark_modules_exist_for_every_experiment(self):
        bench = ROOT / "benchmarks"
        for name in ("test_fig1_raw_sci", "test_fig7_noncontig",
                     "test_sec43_strided_write", "test_fig9_sparse",
                     "test_fig10_platforms_noncontig",
                     "test_fig11_platforms_sparse", "test_fig12_scaling",
                     "test_table1_catalogue", "test_table2_ring",
                     "test_ablations"):
            assert (bench / f"{name}.py").exists(), name


class TestDocstrings:
    def test_public_modules_have_docstrings(self):
        import importlib

        modules = [
            "repro", "repro.sim", "repro.memlib", "repro.hardware",
            "repro.hardware.sci", "repro.smi", "repro.mpi",
            "repro.mpi.datatypes", "repro.mpi.flatten", "repro.mpi.pt2pt",
            "repro.mpi.coll", "repro.mpi.osc", "repro.platforms",
            "repro.bench", "repro.cluster", "repro.apps", "repro.trace",
        ]
        for name in modules:
            mod = importlib.import_module(name)
            assert mod.__doc__ and len(mod.__doc__.strip()) > 20, name

    def test_public_api_items_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type(repro.KiB)):
                assert obj.__doc__, f"repro.{name} lacks a docstring"
