"""Tests for the extended point-to-point features: ssend, probe, persistent
requests, communicator split/dup, DMA mode, pack/unpack API."""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.datatypes import DOUBLE, INT, Vector
from repro.mpi.pt2pt import NonContigMode, ProtocolConfig


class TestSsend:
    @pytest.mark.parametrize("nbytes", [32, 4 * KiB])
    def test_ssend_completes_only_after_match(self, nbytes):
        """Synchronous send must not complete before the recv is posted."""

        def program(ctx, nbytes=nbytes):
            comm = ctx.comm
            buf = ctx.alloc(nbytes)
            if comm.rank == 0:
                buf.fill(1)
                yield from comm.ssend(buf, dest=1, tag=4)
                return ctx.now
            yield ctx.cluster.engine.timeout(500.0)
            yield from comm.recv(buf, source=0, tag=4)
            return ctx.now

        run = Cluster(n_nodes=2).run(program)
        sender_done, recv_done = run.results
        assert sender_done >= 500.0  # waited for the late receiver

    def test_standard_send_completes_early(self):
        """Contrast: an eager-sized standard send completes locally."""

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(4 * KiB)
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=4)
                return ctx.now
            yield ctx.cluster.engine.timeout(500.0)
            yield from comm.recv(buf, source=0, tag=4)
            return ctx.now

        run = Cluster(n_nodes=2).run(program)
        assert run.results[0] < 500.0

    def test_ssend_data_integrity(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(1 * KiB)
            if comm.rank == 0:
                buf.read()[:] = np.arange(1024, dtype=np.uint8) % 97
                yield from comm.ssend(buf, dest=1, tag=0)
                return None
            yield from comm.recv(buf, source=0, tag=0)
            return buf.tobytes()

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == (np.arange(1024, dtype=np.uint8) % 97).tobytes()


class TestProbe:
    def test_blocking_probe_reports_without_consuming(self):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                buf = ctx.alloc(300)
                buf.fill(9)
                yield from comm.send(buf, dest=1, tag=13)
                return None
            status = yield from comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            # The message is still receivable afterwards.
            buf = ctx.alloc(status.nbytes)
            recv_status = yield from comm.recv(buf, source=status.source,
                                               tag=status.tag)
            return (status.source, status.nbytes, recv_status.nbytes,
                    buf.read(0, 1)[0])

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == (0, 300, 300, 9)

    def test_probe_blocks_until_message(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(64)
            if comm.rank == 0:
                yield ctx.cluster.engine.timeout(200.0)
                yield from comm.send(buf, dest=1, tag=1)
                return None
            status = yield from comm.probe(source=0, tag=1)
            arrival = ctx.now
            yield from comm.recv(buf, source=0, tag=1)
            return (arrival, status.nbytes)

        run = Cluster(n_nodes=2).run(program)
        arrival, nbytes = run.results[1]
        assert arrival >= 200.0 and nbytes == 64

    def test_iprobe_nonblocking(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(64)
            if comm.rank == 0:
                miss = comm.iprobe(source=1)
                yield from comm.recv(buf, source=1, tag=7)
                return miss
            yield from comm.send(buf, dest=0, tag=7)
            return None

        run = Cluster(n_nodes=2).run(program)
        assert run.results[0] is None  # nothing had arrived at t=0

    def test_rendezvous_probe_reports_full_size(self):
        def program(ctx):
            comm = ctx.comm
            big = ctx.alloc(128 * KiB)
            if comm.rank == 0:
                yield from comm.send(big, dest=1, tag=2)
                return None
            status = yield from comm.probe(source=0, tag=2)
            yield from comm.recv(big, source=0, tag=2)
            return status.nbytes

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == 128 * KiB


class TestPersistentRequests:
    def test_persistent_send_recv_rounds(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(8)
            view = buf.as_array(np.int64)
            results = []
            if comm.rank == 0:
                preq = comm.send_init(buf, dest=1, tag=3)
                for i in range(4):
                    view[0] = i * 7
                    preq.start()
                    yield from preq.wait()
                return None
            preq = comm.recv_init(buf, source=0, tag=3)
            for _ in range(4):
                preq.start()
                yield from preq.wait()
                results.append(int(view[0]))
            return results

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == [0, 7, 14, 21]

    def test_double_start_rejected(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(8)
            if comm.rank == 0:
                preq = comm.send_init(buf, dest=1, tag=1)
                preq.start()
                try:
                    preq.start()
                except RuntimeError:
                    result = "rejected"
                else:
                    result = "allowed"
                yield from preq.wait()
                return result
            yield from comm.recv(buf, source=0, tag=1)
            return None

        run = Cluster(n_nodes=2).run(program)
        assert run.results[0] == "rejected"


class TestCommSplit:
    def test_split_into_halves(self):
        def program(ctx):
            comm = ctx.comm
            color = comm.rank % 2
            sub = yield from comm.split(color, key=comm.rank)
            # Ring exchange within the sub-communicator.
            buf = ctx.alloc(8)
            buf.as_array(np.int64)[0] = comm.rank
            out = ctx.alloc(8)
            peer = (sub.rank + 1) % sub.size
            src = (sub.rank - 1) % sub.size
            yield from sub.sendrecv(buf, peer, out, src)
            return (sub.rank, sub.size, int(out.as_array(np.int64)[0]))

        run = Cluster(n_nodes=4).run(program)
        # world ranks 0,2 -> color 0; 1,3 -> color 1.
        assert run.results[0] == (0, 2, 2)   # got world rank 2's value
        assert run.results[2] == (1, 2, 0)
        assert run.results[1] == (0, 2, 3)
        assert run.results[3] == (1, 2, 1)

    def test_context_isolation(self):
        """Same tag on parent and sub-communicator must not cross-match."""

        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(0, key=comm.rank)  # everyone together
            buf_a = ctx.alloc(8)
            buf_b = ctx.alloc(8)
            if comm.rank == 0:
                buf_a.as_array(np.int64)[0] = 111
                buf_b.as_array(np.int64)[0] = 222
                # Same destination and same tag on both communicators.
                yield from comm.send(buf_a, dest=1, tag=5)
                yield from sub.send(buf_b, dest=1, tag=5)
                return None
            # Receive in the opposite order: context must disambiguate.
            status_sub = yield from sub.recv(buf_b, source=0, tag=5)
            status_parent = yield from comm.recv(buf_a, source=0, tag=5)
            return (int(buf_b.as_array(np.int64)[0]),
                    int(buf_a.as_array(np.int64)[0]))

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == (222, 111)

    def test_split_collectives_in_subgroups(self):
        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(comm.rank // 2)
            send = ctx.alloc(8)
            recv = ctx.alloc(8)
            send.as_array(np.float64)[0] = comm.rank + 1
            yield from sub.allreduce(send, recv, op="sum")
            return float(recv.as_array(np.float64)[0])

        run = Cluster(n_nodes=4).run(program)
        assert run.results == [3.0, 3.0, 7.0, 7.0]  # (1+2), (3+4)

    def test_split_undefined_color(self):
        def program(ctx):
            comm = ctx.comm
            color = 0 if comm.rank < 2 else None
            sub = yield from comm.split(color)
            if sub is None:
                return "excluded"
            return ("in", sub.size)

        run = Cluster(n_nodes=3).run(program)
        assert run.results == [("in", 2), ("in", 2), "excluded"]

    def test_dup_isolates_but_keeps_group(self):
        def program(ctx):
            comm = ctx.comm
            dup = yield from comm.dup()
            assert dup.size == comm.size and dup.rank == comm.rank
            assert dup.context != comm.context
            yield from dup.barrier()
            return dup.context

        run = Cluster(n_nodes=3).run(program)
        assert len(set(run.results)) == 1  # same context on every rank

    def test_osc_on_subcommunicator(self):
        def program(ctx):
            comm = ctx.comm
            sub = yield from comm.split(comm.rank % 2, key=comm.rank)
            win = yield from sub.win_create(256, shared=True)
            yield from win.fence()
            if sub.rank == 0:
                yield from win.put(np.full(8, 10 + comm.rank, dtype=np.uint8),
                                   target=1, target_disp=0)
            yield from win.fence()
            if sub.rank == 1:
                return int(win.local_view()[0])
            return None

        run = Cluster(n_nodes=4).run(program)
        # sub {0,2}: rank0=world0 puts 10 into world2; sub {1,3}: 11 into 3.
        assert run.results[2] == 10
        assert run.results[3] == 11


class TestDMAMode:
    def test_dma_mode_roundtrip(self):
        vec = Vector(4096, 4, 8, DOUBLE).commit()  # 32 B blocks, 128 kiB data

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(vec.extent)
            view = buf.as_array(np.float64)
            if comm.rank == 0:
                view[: 8] = np.arange(8)
                yield from comm.send(buf, dest=1, tag=0, datatype=vec, count=1)
                return None
            yield from comm.recv(buf, source=0, tag=0, datatype=vec, count=1)
            return list(view[:4])

        cluster = Cluster(
            n_nodes=2, protocol=ProtocolConfig(noncontig_mode=NonContigMode.DMA)
        )
        run = cluster.run(program)
        assert run.results[1] == [0.0, 1.0, 2.0, 3.0]
        # The rendezvous chunks went through the DMA engine.
        assert cluster.fabric.counters["dma_transfers"] > 0

    def test_dma_small_messages_fall_back_to_pio(self):
        vec = Vector(16, 1, 2, DOUBLE).commit()  # 128 B -> eager

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(vec.extent)
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=0, datatype=vec, count=1)
            else:
                yield from comm.recv(buf, source=0, tag=0, datatype=vec, count=1)

        cluster = Cluster(
            n_nodes=2, protocol=ProtocolConfig(noncontig_mode=NonContigMode.DMA)
        )
        cluster.run(program)
        assert cluster.fabric.counters["dma_transfers"] == 0

    def test_dma_frees_cpu_but_adds_setup(self):
        """DMA rendezvous: slower than direct PIO for this mid-size strided
        message (setup + extra copies), matching the Fig. 1 trade-off."""
        vec = Vector(8192, 4, 8, DOUBLE).commit()  # 256 kiB in 32 B blocks

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(vec.extent)
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=0, datatype=vec, count=1)
                return None
            t0 = ctx.now
            yield from comm.recv(buf, source=0, tag=0, datatype=vec, count=1)
            return ctx.now - t0

        def timed(mode):
            cluster = Cluster(
                n_nodes=2, protocol=ProtocolConfig(noncontig_mode=mode)
            )
            return cluster.run(program).results[1]

        t_direct = timed(NonContigMode.DIRECT)
        t_dma = timed(NonContigMode.DMA)
        assert t_dma > t_direct


class TestPackAPI:
    def test_pack_unpack_roundtrip(self):
        from repro.memlib import AddressSpace

        vec = Vector(8, 2, 4, INT).commit()
        space = AddressSpace(4096)
        src = space.alloc(vec.extent)
        dst = space.alloc(vec.extent)
        src.read()[:] = np.arange(vec.extent, dtype=np.uint8)
        packed = vec.pack_from(src)
        assert packed.nbytes == vec.pack_size() == vec.size
        vec.unpack_into(dst, packed)
        assert np.array_equal(vec.pack_from(dst), packed)

    def test_pack_size_with_count(self):
        vec = Vector(4, 1, 2, DOUBLE)
        assert vec.pack_size(3) == 3 * 32
