"""The docs-coverage guard itself stays honest.

``tools/docs_check.py`` is what CI runs; these tests pin (a) that the
repo currently passes it, and (b) that its checks actually detect the
failures they claim to — an always-green guard is worse than none.
"""

import importlib.util
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "docs_check", ROOT / "tools" / "docs_check.py")
docs_check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(docs_check)


def test_repo_passes_the_guard(capsys):
    assert docs_check.main([]) == 0
    out = capsys.readouterr().out
    assert "docs_check: ok" in out


def test_mention_forms_include_ancestors_and_paths():
    forms = docs_check._mention_forms("repro.mpi.transport.scheduler")
    # The module itself, with and without the top-level prefix, by path.
    assert "repro.mpi.transport.scheduler" in forms
    assert "mpi.transport.scheduler" in forms
    assert "repro/mpi/transport/scheduler" in forms
    # Any documented ancestor package covers it.
    assert "repro.mpi.transport" in forms
    assert "repro.mpi" in forms
    assert "repro" in forms


def test_module_coverage_detects_an_undocumented_module():
    failures = docs_check.check_module_coverage("nothing relevant here")
    # Every module must be flagged against an unrelated corpus.
    assert len(failures) == len(docs_check.source_modules())
    assert all("is mentioned in no documentation" in f for f in failures)


def test_module_coverage_accepts_ancestor_mention():
    corpus = " ".join(f"repro.{m.split('.')[1]}"
                      for m in docs_check.source_modules() if "." in m)
    corpus += " repro"
    assert docs_check.check_module_coverage(corpus) == []


def test_cli_entry_points_detected_when_missing():
    failures = docs_check.check_cli_entry_points("no CLI names here")
    names = {f.split()[3] for f in failures}
    assert {"repro-trace", "repro-faults",
            "repro-svc", "repro-scenarios"} <= names


def test_cli_entry_points_pass_when_documented():
    assert docs_check.check_cli_entry_points(
        "repro-trace repro-faults repro-svc repro-scenarios") == []


def test_cross_links_all_resolve():
    assert docs_check.check_cross_links() == []


def test_link_regex_extracts_relative_targets_only_once():
    found = docs_check._LINK_RE.findall(
        "see [QOS](QOS.md) and [web](https://x.invalid/p) "
        "and [anchor](#section)")
    assert found == ["QOS.md", "https://x.invalid/p", "#section"]


def test_every_source_module_is_enumerated():
    modules = docs_check.source_modules()
    assert "repro" in modules           # the package __init__
    assert "repro.qos" in modules       # this PR's subsystem
    assert all("__pycache__" not in m and "__init__" not in m
               for m in modules)
    assert len(modules) == len(set(modules))
