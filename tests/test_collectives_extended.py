"""Tests for scatter / alltoall / reduce_scatter_block and collective edges."""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE


class TestScatter:
    @pytest.mark.parametrize("root", [0, 2])
    def test_scatter_pieces(self, root):
        def program(ctx, root=root):
            comm = ctx.comm
            recv = ctx.alloc(16)
            send = None
            if comm.rank == root:
                send = ctx.alloc(16 * comm.size)
                for r in range(comm.size):
                    send.slice(r * 16, 16).fill(r + 1)
            yield from comm.scatter(send, recv, root=root)
            return recv.read(0, 1)[0]

        run = Cluster(n_nodes=4).run(program)
        assert run.results == [1, 2, 3, 4]


class TestAlltoall:
    def test_full_exchange(self):
        def program(ctx):
            comm = ctx.comm
            n = 32
            send = ctx.alloc(n * comm.size)
            recv = ctx.alloc(n * comm.size)
            for peer in range(comm.size):
                send.slice(peer * n, n).fill(comm.rank * 10 + peer)
            yield from comm.alltoall(send, recv)
            return [recv.read(peer * n, 1)[0] for peer in range(comm.size)]

        run = Cluster(n_nodes=4).run(program)
        # recv[src] at rank r must be src*10 + r.
        for r, values in enumerate(run.results):
            assert values == [src * 10 + r for src in range(4)]

    def test_single_rank(self):
        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(8)
            recv = ctx.alloc(8)
            send.fill(9)
            yield from comm.alltoall(send, recv)
            return recv.read(0, 1)[0]

        assert Cluster(n_nodes=1).run(program).results == [9]


class TestReduceScatterBlock:
    def test_sum_blocks(self):
        def program(ctx):
            comm = ctx.comm
            count = 4  # doubles per block
            send = ctx.alloc(count * 8 * comm.size)
            recv = ctx.alloc(count * 8)
            view = send.as_array(np.float64)
            view[:] = comm.rank + 1  # every element contributes rank+1
            yield from comm.reduce_scatter_block(send, recv, op="sum",
                                                 datatype=DOUBLE, count=count)
            return list(recv.as_array(np.float64))

        run = Cluster(n_nodes=3).run(program)
        for values in run.results:
            assert values == [6.0] * 4  # 1+2+3


class TestCollectiveEdges:
    def test_reduce_min_max(self):
        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(8)
            recv = ctx.alloc(8)
            send.as_array(np.float64)[0] = float(comm.rank)
            yield from comm.reduce(send, recv, root=0, op="max")
            result_max = float(recv.as_array(np.float64)[0]) if comm.rank == 0 else None
            yield from comm.reduce(send, recv, root=0, op="min")
            result_min = float(recv.as_array(np.float64)[0]) if comm.rank == 0 else None
            return (result_max, result_min)

        run = Cluster(n_nodes=4).run(program)
        assert run.results[0] == (3.0, 0.0)

    def test_bcast_large_message(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(256 * KiB)
            if comm.rank == 1:
                buf.read()[:] = np.arange(256 * KiB, dtype=np.uint8) % 253
            yield from comm.bcast(buf, root=1)
            return int(buf.read(100, 1)[0])

        run = Cluster(n_nodes=4).run(program)
        assert all(v == 100 % 253 for v in run.results)

    def test_barrier_single_rank(self):
        def program(ctx):
            yield from ctx.comm.barrier()
            return "done"

        assert Cluster(n_nodes=1).run(program).results == ["done"]

    def test_allreduce_prod(self):
        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(8)
            recv = ctx.alloc(8)
            send.as_array(np.float64)[0] = float(comm.rank + 1)
            yield from comm.allreduce(send, recv, op="prod")
            return float(recv.as_array(np.float64)[0])

        run = Cluster(n_nodes=4).run(program)
        assert all(v == 24.0 for v in run.results)

    def test_unknown_op_rejected(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(8)
            yield from comm.reduce(buf, buf, op="median")

        with pytest.raises(ValueError):
            Cluster(n_nodes=2).run(program)
