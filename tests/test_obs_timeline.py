"""Chrome-trace exporter tests: golden file, track layout, B/E pairing.

Regenerate the golden file after an intentional timing or exporter
change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_timeline.py
"""

import json
import os
import pathlib

import pytest

from repro._units import KiB
from repro.obs import FABRIC_RANK, TimeSampler, chrome_trace, text_timeline
from repro.obs.cli import run_scenario

GOLDEN = pathlib.Path(__file__).parent / "golden" / "trace_noncontig.json"
SIZE = 4 * KiB

VALID_PHASES = {"M", "B", "E", "X", "i"}


def rendered(tracer) -> str:
    doc = chrome_trace(tracer, other_data={"scenario": "noncontig",
                                           "size": SIZE})
    return json.dumps(doc, indent=1) + "\n"


@pytest.fixture(scope="module")
def run():
    return run_scenario("noncontig", size=SIZE)


@pytest.fixture(scope="module")
def trace(run):
    _, tracer, _ = run
    return chrome_trace(tracer)


class TestChromeTrace:
    def test_matches_golden(self, run):
        _, tracer, _ = run
        text = rendered(tracer)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.parent.mkdir(exist_ok=True)
            GOLDEN.write_text(text)
        assert GOLDEN.exists(), "golden file missing — regenerate (see module docstring)"
        assert text == GOLDEN.read_text()

    def test_deterministic_across_runs(self, run):
        _, tracer, _ = run
        _, tracer2, _ = run_scenario("noncontig", size=SIZE)
        assert rendered(tracer) == rendered(tracer2)

    def test_well_formed_events(self, trace):
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        for ev in trace["traceEvents"]:
            assert ev["ph"] in VALID_PHASES, ev
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            assert isinstance(ev["args"], dict)
            if ev["ph"] != "M":
                assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
            # args must be JSON-safe scalars
            for value in ev["args"].values():
                assert value is None or isinstance(value, (bool, int, float, str))

    def test_json_serializable(self, trace):
        json.loads(json.dumps(trace))

    def test_metadata_first(self, trace):
        phases = [ev["ph"] for ev in trace["traceEvents"]]
        n_meta = phases.count("M")
        assert n_meta > 0
        assert all(ph == "M" for ph in phases[:n_meta])
        assert all(ph != "M" for ph in phases[n_meta:])

    def test_at_least_three_tracks(self, trace):
        tracks = {(ev["pid"], ev["tid"]) for ev in trace["traceEvents"]
                  if ev["ph"] != "M"}
        assert len(tracks) >= 3  # rank 0, rank 1, ringlet 0
        assert {pid for pid, _ in tracks} == {0, 1}  # ranks + fabric

    def test_begin_end_pairing_nests_per_track(self, trace):
        stacks: dict[tuple, list] = {}
        for ev in trace["traceEvents"]:
            key = (ev["pid"], ev["tid"])
            if ev["ph"] == "B":
                stacks.setdefault(key, []).append(ev["name"])
            elif ev["ph"] == "E":
                stack = stacks.get(key)
                assert stack, f"E without B on track {key}: {ev}"
                assert stack.pop() == ev["name"], ev
        for key, stack in stacks.items():
            assert not stack, f"unclosed spans on track {key}: {stack}"

    def test_fabric_transfers_are_complete_events(self, run, trace):
        _, tracer, _ = run
        assert any(ev.rank == FABRIC_RANK for ev in tracer.events)
        xfers = [ev for ev in trace["traceEvents"]
                 if ev["ph"] == "X" and ev["pid"] == 1]
        assert xfers
        for ev in xfers:
            assert ev["name"] == "fabric.xfer"
            assert ev["args"]["op"] in ("pio_write", "pio_read", "dma", "raw")
            assert "start" not in ev["args"]  # folded into ts/dur

    def test_other_data_passthrough(self, run):
        _, tracer, _ = run
        doc = chrome_trace(tracer, other_data={"k": 1})
        assert doc["otherData"] == {"k": 1}
        assert "otherData" not in chrome_trace(tracer)


class TestTextTimeline:
    def test_contains_rank_and_fabric_lanes(self, run):
        _, tracer, _ = run
        text = text_timeline(tracer)
        assert "rank 0" in text and "rank 1" in text
        assert "fabric" in text
        assert "send" in text

    def test_empty_tracer(self):
        from repro.trace import Tracer

        assert text_timeline(Tracer()) == "(empty timeline)"


class TestSpanMetrics:
    def test_span_counters_fed_from_tracer(self, run):
        _, _, registry = run
        snap = registry.snapshot()
        assert snap["span.send.count"] == 2  # pingpong: one send each way
        assert snap["span.recv.count"] == 2
        assert snap["span.send.time_us"] > 0
        assert snap["span.chunk.write.count"] >= 1


class TestTimeSampler:
    def test_samples_at_interval_boundaries(self):
        from repro.sim.engine import Engine

        engine = Engine()
        sampler = TimeSampler(engine, interval=10.0, probe=lambda: engine.now)

        def program():
            for _ in range(4):
                yield engine.timeout(12.5)

        engine.run_process(program())
        sampler.close()
        assert [t for t, _ in sampler.samples] == [10.0, 20.0, 30.0, 40.0, 50.0]
        for sample_time, value in sampler.samples:
            assert value >= sample_time  # probe ran at-or-after the boundary

    def test_close_detaches(self):
        from repro.sim.engine import Engine

        engine = Engine()
        sampler = TimeSampler(engine, interval=5.0, probe=lambda: 0)
        sampler.close()
        sampler.close()  # idempotent

        def program():
            yield engine.timeout(20.0)

        engine.run_process(program())
        assert sampler.samples == []

    def test_rejects_bad_interval(self):
        from repro.sim.engine import Engine

        with pytest.raises(ValueError):
            TimeSampler(Engine(), interval=0.0, probe=lambda: 0)
