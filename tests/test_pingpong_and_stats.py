"""Tests for the ping-pong micro-benchmark, Cluster.stats and signatures."""

import pytest

from repro._units import KiB, MiB
from repro.bench.pingpong import bandwidth_series, latency_series, pingpong
from repro.cluster import Cluster
from repro.mpi.datatypes import BYTE, DOUBLE, Struct, Vector


class TestPingpong:
    def test_latency_small_message(self):
        one_way = pingpong(8)
        assert 1.0 < one_way < 20.0  # µs-scale MPI latency

    def test_zero_byte_message(self):
        assert pingpong(0) > 0.0

    def test_intranode_faster(self):
        assert pingpong(64 * KiB, intranode=True) < pingpong(64 * KiB)

    def test_bandwidth_series_shape(self):
        series = bandwidth_series(sizes=[1 * KiB, 64 * KiB, 1 * MiB])
        assert series.y[0] < series.y[-1]  # bandwidth rises with size
        assert 60 <= series.y[-1] <= 140   # MPI-level contiguous peak

    def test_latency_series_monotone(self):
        series = latency_series(sizes=[8, 1 * KiB, 64 * KiB])
        assert series.y[0] < series.y[1] < series.y[2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pingpong(-1)
        with pytest.raises(ValueError):
            pingpong(8, iterations=0)


class TestClusterStats:
    def test_stats_reports_counters(self):
        cluster = Cluster(n_nodes=2)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(4 * KiB)
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=0)
            else:
                yield from comm.recv(buf, source=0, tag=0)

        cluster.run(program)
        text = cluster.stats()
        assert "fabric:" in text
        assert "rank 0: " in text and "sends=1" in text
        assert "rank 1:" in text and "recvs=1" in text


class TestSignatures:
    def test_equal_types_equal_signatures(self):
        a = Vector(8, 2, 4, DOUBLE).commit()
        b = Vector(8, 2, 4, DOUBLE).commit()
        assert a.signature() == b.signature()
        assert a.signature_compatible(b)

    def test_contiguous_matches_any_same_size(self):
        vec = Vector(8, 1, 2, DOUBLE).commit()
        from repro.mpi.datatypes import Contiguous

        flat = Contiguous(64, BYTE).commit()
        assert vec.signature_compatible(flat)
        assert flat.signature_compatible(vec)

    def test_different_structures_incompatible(self):
        a = Struct([1, 1], [0, 16], [DOUBLE, DOUBLE]).commit()
        b = Vector(2, 1, 3, DOUBLE).commit()
        # Same size (16 B of data) but different leaf structure.
        assert a.size == b.size
        assert not a.signature_compatible(b)

    def test_size_mismatch_incompatible(self):
        a = Vector(4, 1, 2, DOUBLE).commit()
        b = Vector(8, 1, 2, DOUBLE).commit()
        assert not a.signature_compatible(b)
