"""Tests for the cache-aware local memory-copy model (repro.hardware.memory)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._units import KiB, MiB
from repro.hardware import MemorySystem
from repro.hardware.params import MemoryParams


@pytest.fixture
def mem():
    return MemorySystem(MemoryParams())


class TestCopyBandwidth:
    def test_hierarchy_ordering(self, mem):
        l1 = mem.copy_bandwidth(4 * KiB)
        l2 = mem.copy_bandwidth(64 * KiB)
        main = mem.copy_bandwidth(1 * MiB)
        assert l1 > l2 > main

    def test_thresholds_use_double_working_set(self, mem):
        # 2 * chunk must fit the cache: exactly half the L1 is the edge.
        l1_size = mem.params.caches.l1_size
        assert mem.copy_bandwidth(l1_size // 2) == mem.params.l1_copy_bw
        assert mem.copy_bandwidth(l1_size // 2 + 1) == mem.params.l2_copy_bw

    def test_invalid_chunk(self, mem):
        with pytest.raises(ValueError):
            mem.copy_bandwidth(0)


class TestCopyCost:
    def test_zero_copy_free(self, mem):
        assert mem.copy_cost(0).duration == 0.0

    def test_includes_call_overhead(self, mem):
        tiny = mem.copy_cost(1)
        assert tiny.duration >= mem.params.copy_call_overhead

    def test_chunked_copy_uses_chunk_bandwidth(self, mem):
        whole = mem.copy_cost(1 * MiB)
        chunked = mem.copy_cost(1 * MiB, chunk_len=4 * KiB)
        assert chunked.duration < whole.duration  # L1-friendly chunks

    def test_negative_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.copy_cost(-1)


class TestBlockwiseCost:
    def test_per_block_overhead_dominates_tiny_blocks(self, mem):
        many_small = mem.blockwise_copy_cost(8192, 8)
        few_large = mem.blockwise_copy_cost(8, 8192)
        assert many_small.bytes_copied == few_large.bytes_copied
        assert many_small.duration > few_large.duration

    def test_bandwidth_property(self, mem):
        cost = mem.blockwise_copy_cost(16, 4 * KiB)
        assert cost.bandwidth == pytest.approx(
            cost.bytes_copied / cost.duration
        )

    def test_empty(self, mem):
        assert mem.blockwise_copy_cost(0, 128).duration == 0.0
        assert mem.blockwise_copy_cost(128, 0).duration == 0.0

    def test_grouped_matches_blockwise_for_uniform(self, mem):
        grouped = mem.grouped_blocks_cost([(256, 100)])
        blockwise = mem.blockwise_copy_cost(100, 256)
        assert grouped.duration == pytest.approx(blockwise.duration)

    def test_grouped_mixed_lengths(self, mem):
        cost = mem.grouped_blocks_cost([(8, 10), (4096, 2)])
        assert cost.blocks == 12
        assert cost.bytes_copied == 80 + 8192

    def test_blocks_copy_cost_list(self, mem):
        cost = mem.blocks_copy_cost([8, 0, 4096, 8])
        assert cost.blocks == 3
        assert cost.bytes_copied == 8 + 4096 + 8

    def test_negative_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.blockwise_copy_cost(-1, 8)
        with pytest.raises(ValueError):
            mem.grouped_blocks_cost([(-1, 2)])


@given(
    nblocks=st.integers(min_value=1, max_value=1000),
    blocklen=st.integers(min_value=1, max_value=8192),
)
def test_property_blockwise_cost_positive_and_monotone(nblocks, blocklen):
    mem = MemorySystem(MemoryParams())
    cost = mem.blockwise_copy_cost(nblocks, blocklen)
    assert cost.duration > 0
    more = mem.blockwise_copy_cost(nblocks + 1, blocklen)
    assert more.duration > cost.duration
