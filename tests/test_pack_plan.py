"""Unit and equivalence tests for the packing-plan subsystem.

Covers the :class:`PackPlan` run tables (cross-leaf and cross-instance
coalescing, prefix-sum range lookup), the bounded :class:`PlanCache`
(hit/miss/eviction counters, LRU order, size bound, global toggle), and
end-to-end equivalence: simulated pt2pt rendezvous transfers and OSC
put/get/accumulate must produce byte-identical results and identical
simulated times with the cache on and off.
"""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE, Struct, Vector
from repro.mpi.flatten import (
    PackError,
    PackPlan,
    PlanCache,
    get_plan,
    pack,
    plan_cache_disabled,
    plan_cache_stats,
    reset_plan_cache,
    unpack_range,
)
from repro.mpi.pt2pt import NonContigMode, ProtocolConfig


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


# -- coalescing ----------------------------------------------------------------


class TestCoalescing:
    def test_cross_instance_coalescing(self):
        """Adjacent instances fuse: the last block of instance k ends exactly
        where the first block of instance k+1 begins (extent = 56 here, the
        span of the last block), so the boundary runs merge into one."""
        vec = Vector(4, 1, 2, DOUBLE).commit()
        assert vec.extent == 56  # no trailing gap after the last block
        plan = PackPlan(vec.flattened, 2)
        assert plan.total == 64
        assert plan.run_offsets.tolist() == [0, 16, 32, 48, 72, 88, 104]
        assert plan.run_lengths.tolist() == [8, 8, 8, 16, 8, 8, 8]

    def test_cross_instance_adjacent_fuses(self):
        """With extent shrunk to blocks*stride... use a layout where the
        stream IS adjacent: Vector(2,2,2,DOUBLE) has blocks of 16 B at 0 and
        32; two instances (extent 32... ) — craft adjacency via Struct."""
        # Struct: [Vector(2,1,2,DOUBLE) at 0, DOUBLE at 8] — the vector's
        # first block [0,8) is adjacent to the double at [8,16), and the
        # vector's second block is [16,24).
        s = Struct([1, 1], [0, 8], [Vector(2, 1, 2, DOUBLE), DOUBLE]).commit()
        plan = PackPlan(s.flattened, 1)
        # Leaf-major stream: vector blocks (0, 16) then the double (8).
        # Memory-adjacency alone is not enough — runs must also be adjacent
        # in the packed stream, so (16,8) then (8,8) do NOT fuse.
        assert plan.total == 24
        assert len(plan.run_offsets) == len(plan.run_lengths)
        assert int(plan.run_lengths.sum()) == 24

    def test_cross_leaf_coalescing(self):
        """A leaf ending exactly where the next leaf begins (in both the
        stream and memory) fuses into one run."""
        # DOUBLE at 0, DOUBLE at 8: two leaves, adjacent in stream and
        # memory — must coalesce to a single 16-byte run.
        s = Struct([1, 1], [0, 8], [DOUBLE, DOUBLE]).commit()
        plan = PackPlan(s.flattened, 1)
        assert plan.run_offsets.tolist() == [0]
        assert plan.run_lengths.tolist() == [16]

    def test_contiguous_fast_path_single_run(self):
        vec = Vector(4, 2, 2, DOUBLE).commit()  # gap-free: one block
        plan = PackPlan(vec.flattened, 3)
        assert plan.run_offsets.tolist() == [0]
        assert plan.run_lengths.tolist() == [3 * vec.size]

    def test_prefix_sums_and_total(self):
        vec = Vector(4, 1, 2, DOUBLE).commit()
        plan = PackPlan(vec.flattened, 2)
        starts = plan.run_starts.tolist()
        # One entry per run plus the trailing total (searchsorted sentinel).
        assert starts == list(np.cumsum([0] + plan.run_lengths.tolist()))
        assert starts[-1] == plan.total == int(plan.run_lengths.sum())

    def test_execute_matches_pack(self):
        vec = Vector(5, 3, 7, DOUBLE).commit()
        ft = vec.flattened
        mem = np.random.default_rng(3).integers(
            0, 256, size=4 * ft.extent + 64, dtype=np.uint8
        )
        plan = PackPlan(ft, 3)
        assert np.array_equal(plan.execute_pack(mem, 8), pack(mem, 8, ft, 3))

    def test_range_validation(self):
        vec = Vector(2, 1, 2, DOUBLE).commit()
        plan = PackPlan(vec.flattened, 1)
        mem = np.zeros(64, dtype=np.uint8)
        with pytest.raises(PackError):
            plan.execute_pack(mem, 0, -1, 4)
        with pytest.raises(PackError):
            plan.execute_pack(mem, 0, 0, plan.total + 1)
        with pytest.raises(PackError):
            plan.execute_unpack(mem, 0, plan.total, np.zeros(1, dtype=np.uint8))


# -- the cache -----------------------------------------------------------------


class TestPlanCache:
    def test_hit_miss_counters(self):
        vec = Vector(4, 1, 2, DOUBLE).commit()
        cache = PlanCache(maxsize=8)
        p1 = get_plan(vec.flattened, 2, cache=cache)
        p2 = get_plan(vec.flattened, 2, cache=cache)
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1
        get_plan(vec.flattened, 3, cache=cache)  # different count: new entry
        assert cache.misses == 2

    def test_size_bound_and_evictions(self):
        cache = PlanCache(maxsize=4)
        types = [Vector(n, 1, 2, DOUBLE).commit() for n in range(1, 8)]
        for t in types:
            get_plan(t.flattened, 1, cache=cache)
        assert len(cache) == 4
        assert cache.evictions == 3

    def test_lru_order(self):
        cache = PlanCache(maxsize=2)
        a = Vector(2, 1, 2, DOUBLE).commit()
        b = Vector(3, 1, 2, DOUBLE).commit()
        c = Vector(4, 1, 2, DOUBLE).commit()
        get_plan(a.flattened, 1, cache=cache)
        get_plan(b.flattened, 1, cache=cache)
        get_plan(a.flattened, 1, cache=cache)  # refresh a
        get_plan(c.flattened, 1, cache=cache)  # evicts b, not a
        assert get_plan(a.flattened, 1, cache=cache) is not None
        assert cache.hits == 2  # a twice; b was evicted

    def test_disabled_builds_fresh(self):
        vec = Vector(4, 1, 2, DOUBLE).commit()
        p_cached = get_plan(vec.flattened, 2)
        before = plan_cache_stats()
        with plan_cache_disabled():
            p_fresh = get_plan(vec.flattened, 2)
            assert not plan_cache_stats()["enabled"]
        after = plan_cache_stats()
        assert p_fresh is not p_cached
        assert after["size"] == before["size"]          # cache untouched
        assert after["builds"] == before["builds"] + 1  # but a build happened
        assert after["enabled"]

    def test_default_cache_identity(self):
        vec = Vector(4, 1, 2, DOUBLE).commit()
        assert get_plan(vec.flattened, 2) is get_plan(vec.flattened, 2)

    def test_stats_shape(self):
        stats = plan_cache_stats()
        for key in ("hits", "misses", "evictions", "size", "maxsize",
                    "builds", "enabled"):
            assert key in stats


# -- end-to-end equivalence ----------------------------------------------------


def _rendezvous_roundtrip():
    """One strided rendezvous-sized transfer; returns (bytes, sim time)."""
    vec = Vector(4096, 1, 2, DOUBLE).commit()  # 32 kiB payload > eager max

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(vec.extent)
        if comm.rank == 0:
            rng = np.random.default_rng(42)
            buf.read()[:] = rng.integers(0, 256, size=vec.extent, dtype=np.uint8)
            yield from comm.send(buf, dest=1, tag=0, datatype=vec, count=1)
            return None
        yield from comm.recv(buf, source=0, tag=0, datatype=vec, count=1)
        return (bytes(buf.read().tobytes()), ctx.now)

    protocol = ProtocolConfig(noncontig_mode=NonContigMode.DIRECT)
    run = Cluster(n_nodes=2, protocol=protocol).run(program)
    return run.results[1]


class TestEndToEndEquivalence:
    def test_rendezvous_pt2pt_cache_on_off(self):
        reset_plan_cache()
        data_on, t_on = _rendezvous_roundtrip()
        assert plan_cache_stats()["hits"] >= 1  # hot path actually reused plans
        with plan_cache_disabled():
            data_off, t_off = _rendezvous_roundtrip()
        assert data_on == data_off
        assert t_on == t_off  # the cache saves host work, not simulated time

    @pytest.mark.parametrize("shared", [True, False])
    def test_osc_put_get_cache_on_off(self, shared):
        vec = Vector(16, 2, 4, DOUBLE).commit()

        def program(ctx, shared=shared):
            comm = ctx.comm
            win = yield from comm.win_create(2 * KiB, shared=shared)
            yield from win.fence()
            if comm.rank == 0:
                # Remote put scatters through the datatype (plan-backed
                # unpack on the target side / in the handler closure).
                data = np.arange(vec.size, dtype=np.uint8)
                yield from win.put(data, 1, 64, target_datatype=vec,
                                   target_count=1)
            yield from win.fence()
            back = None
            if comm.rank == 1:
                # Local-window get gathers through the datatype
                # (plan-backed pack).
                back = yield from win.get(vec.size, 1, 64,
                                          target_datatype=vec, target_count=1)
            yield from win.fence()
            if comm.rank == 1:
                return (back.tobytes(),
                        win.local_view()[: vec.extent + 64].tobytes())
            return None

        run_on = Cluster(n_nodes=2).run(program)
        with plan_cache_disabled():
            run_off = Cluster(n_nodes=2).run(program)
        assert run_on.results[1] == run_off.results[1]
        # The roundtrip is self-consistent: the gather returns exactly what
        # the scatter wrote.
        assert run_on.results[1][0] == bytes(range(vec.size))

    def test_osc_accumulate_cache_on_off(self):
        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(256, shared=False)
            if comm.rank == 1:
                win.local_view()[: 4 * 8] = np.frombuffer(
                    np.full(4, 5.0).tobytes(), dtype=np.uint8
                )
            yield from win.fence()
            if comm.rank == 0:
                yield from win.accumulate(np.full(4, 2.0), 1, 0, op="sum",
                                          datatype=DOUBLE)
            yield from win.fence()
            return win.local_view()[: 4 * 8].tobytes()

        run_on = Cluster(n_nodes=2).run(program)
        with plan_cache_disabled():
            run_off = Cluster(n_nodes=2).run(program)
        assert run_on.results[1] == run_off.results[1]
        assert np.frombuffer(run_on.results[1], dtype=np.float64).tolist() == [
            7.0
        ] * 4


# -- unpack_range dtype handling (regression) ----------------------------------


class TestUnpackRangeDtypes:
    def test_strided_float64_payload(self):
        """A non-contiguous float64 slice is accepted (it used to raise:
        ``reshape(-1)`` on an already-1-D strided array is a no-op view and
        the subsequent uint8 ``view`` failed)."""
        vec = Vector(4, 1, 2, DOUBLE).commit()
        ft = vec.flattened
        payload = np.arange(8, dtype=np.float64)[::2]
        assert not payload.flags["C_CONTIGUOUS"]
        mem = np.zeros(ft.extent + 16, dtype=np.uint8)
        unpack_range(mem, 0, ft, 1, 0, payload)
        packed = pack(mem, 0, ft, 1)
        assert packed.tobytes() == np.ascontiguousarray(payload).tobytes()
