"""Tests for intra-node memory-bus contention (the Fig. 12 SMP mechanism)."""

import numpy as np

from repro._units import KiB, MiB
from repro.cluster import Cluster
from repro.hardware.sci.flows import fair_share


class TestFairShare:
    def test_no_loss_below_capacity(self):
        assert fair_share(0.5) == 1.0
        assert fair_share(1.0) == 1.0

    def test_proportional_above_capacity(self):
        assert fair_share(2.0) == 0.5
        assert fair_share(4.0) == 0.25

    def test_delivered_never_exceeds_capacity(self):
        for load in (0.1, 1.0, 1.7, 5.0):
            assert load * fair_share(load) <= 1.0 + 1e-12


class TestBusContention:
    def _intranode_put_times(self, nprocs):
        """Concurrent window puts between ranks on one node."""
        cluster = Cluster(n_nodes=1, procs_per_node=max(nprocs, 2))

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(1 * MiB, shared=True)
            yield from win.fence()
            t0 = ctx.now
            if comm.rank < nprocs:
                payload = np.zeros(512 * KiB, dtype=np.uint8)
                partner = (comm.rank + 1) % nprocs
                yield from win.put(payload, partner, 0)
            elapsed = ctx.now - t0
            yield from win.fence()
            return elapsed

        run = cluster.run(program)
        return [t for t in run.results[:nprocs]]

    def test_concurrent_local_copies_contend(self):
        solo = max(self._intranode_put_times(2)) / 1.0  # 2 ranks = mild
        four = max(self._intranode_put_times(4))
        assert four > 1.5 * solo

    def test_solo_copy_unaffected_by_bus(self):
        """A single local copy runs below bus capacity: no slowdown."""
        cluster_a = Cluster(n_nodes=1, procs_per_node=2)
        cluster_b = Cluster(n_nodes=1, procs_per_node=2)

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(1 * MiB, shared=True)
            yield from win.fence()
            t0 = ctx.now
            if comm.rank == 0:
                yield from win.put(np.zeros(512 * KiB, dtype=np.uint8), 1, 0)
            elapsed = ctx.now - t0
            yield from win.fence()
            return elapsed

        a = cluster_a.run(program).results[0]
        b = cluster_b.run(program).results[0]
        assert a == b  # deterministic and contention-free

    def test_internode_transfers_do_not_touch_the_bus(self):
        """Remote writes are PIO streams; they must not register bus flows."""
        cluster = Cluster(n_nodes=2)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(64 * KiB)
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=0)
            else:
                yield from comm.recv(buf, source=0, tag=0)

        cluster.run(program)
        for node in cluster.nodes:
            assert node._bus is None or node._bus.active_flows == 0
