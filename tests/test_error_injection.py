"""Tests for transient-error (retry) injection on the SCI fabric."""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.trace import attach_tracer


def timed_transfer(cluster, nbytes=64 * KiB):
    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(nbytes)
        yield from comm.barrier()
        t0 = ctx.now
        if comm.rank == 0:
            buf.read()[:] = np.arange(nbytes, dtype=np.uint8) % 211
            yield from comm.send(buf, dest=1, tag=0)
            return None
        yield from comm.recv(buf, source=0, tag=0)
        return (ctx.now - t0, buf.tobytes())

    return cluster.run(program).results[1]


class TestErrorInjection:
    def test_retries_slow_down_but_preserve_data(self):
        clean = Cluster(n_nodes=2)
        t_clean, payload_clean = timed_transfer(clean)

        flaky = Cluster(n_nodes=2)
        flaky.fabric.set_error_rate(1.0, penalty=0.5, seed=1)
        tracer = attach_tracer(flaky)
        t_flaky, payload_flaky = timed_transfer(flaky)

        assert payload_flaky == payload_clean  # retries are transparent
        assert t_flaky > 1.2 * t_clean
        retries = flaky.fabric.counters["retries"]
        assert retries > 0
        # The retry counter must be surfaced in the trace summary.
        assert f"retries={retries}" in tracer.summary()

    def test_zero_rate_is_noop(self):
        cluster = Cluster(n_nodes=2)
        cluster.fabric.set_error_rate(0.0)
        t, _ = timed_transfer(cluster)
        reference = Cluster(n_nodes=2)
        t_ref, _ = timed_transfer(reference)
        assert t == t_ref
        assert cluster.fabric.counters["retries"] == 0

    def test_deterministic_for_seed(self):
        def run(seed):
            cluster = Cluster(n_nodes=2)
            cluster.fabric.set_error_rate(0.3, seed=seed)
            t, _ = timed_transfer(cluster)
            return (t, cluster.fabric.counters["retries"])

        assert run(7) == run(7)

    def test_invalid_rate(self):
        cluster = Cluster(n_nodes=2)
        with pytest.raises(ValueError):
            cluster.fabric.set_error_rate(1.5)

    def test_partial_rate_affects_some_transfers(self):
        cluster = Cluster(n_nodes=2)
        cluster.fabric.set_error_rate(0.5, seed=3)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(4 * KiB)
            for i in range(20):
                if comm.rank == 0:
                    yield from comm.send(buf, dest=1, tag=i)
                else:
                    yield from comm.recv(buf, source=0, tag=i)

        cluster.run(program)
        retries = cluster.fabric.counters["retries"]
        writes = cluster.fabric.counters["pio_writes"]
        assert 0 < retries < writes
