"""Property test: random RMA op sequences vs a shadow reference model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE

WIN_DOUBLES = 32


@st.composite
def rma_ops(draw):
    """A random sequence of fenced epochs of puts/accumulates by rank 0.

    Ops within one epoch never overlap — MPI leaves the ordering of
    conflicting accesses in the same epoch undefined, so a deterministic
    shadow model only exists for the non-conflicting case.
    """
    epochs = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        ops = []
        used: set[int] = set()
        for _ in range(draw(st.integers(min_value=0, max_value=5))):
            kind = draw(st.sampled_from(["put", "acc_sum", "acc_replace"]))
            count = draw(st.integers(min_value=1, max_value=6))
            disp = draw(st.integers(min_value=0, max_value=WIN_DOUBLES - count))
            span = set(range(disp, disp + count))
            if span & used:
                continue  # skip conflicting ops within the epoch
            used |= span
            values = [
                draw(st.integers(min_value=-50, max_value=50)) * 1.0
                for _ in range(count)
            ]
            ops.append((kind, disp, values))
        epochs.append(ops)
    return epochs


def shadow_apply(epochs):
    """Reference semantics on a plain numpy array."""
    shadow = np.zeros(WIN_DOUBLES)
    for ops in epochs:
        for kind, disp, values in ops:
            arr = np.array(values)
            if kind in ("put", "acc_replace"):
                shadow[disp : disp + len(values)] = arr
            else:
                shadow[disp : disp + len(values)] += arr
    return shadow


@settings(max_examples=30, deadline=None)
@given(epochs=rma_ops(), shared=st.booleans())
def test_property_rma_sequences_match_shadow(epochs, shared):
    def program(ctx):
        comm = ctx.comm
        win = yield from comm.win_create(WIN_DOUBLES * 8, shared=shared)
        win.local_view().view(np.float64)[:] = 0.0
        yield from win.fence()
        for ops in epochs:
            if comm.rank == 0:
                for kind, disp, values in ops:
                    data = np.array(values, dtype=np.float64)
                    if kind == "put":
                        yield from win.put(data, 1, disp * 8)
                    elif kind == "acc_sum":
                        yield from win.accumulate(data, 1, disp * 8, op="sum",
                                                  datatype=DOUBLE)
                    else:
                        yield from win.accumulate(data, 1, disp * 8,
                                                  op="replace", datatype=DOUBLE)
            yield from win.fence()
        if comm.rank == 1:
            return np.array(win.local_view().view(np.float64), copy=True)
        return None

    run = Cluster(n_nodes=2).run(program)
    assert np.array_equal(run.results[1], shadow_apply(epochs))
