"""Unit tests for the bandwidth-reservation / QoS subsystem (``repro.qos``).

Four layers, bottom-up:

* the :class:`Reservation` state machine (every edge, including the
  idempotent release and the fault-driven revoke -> reprovision epoch);
* the :class:`AdmissionController` ledger — in particular the
  *inclusive* boundary (a request landing exactly on the budget is
  granted) and charge withdrawal on release;
* the :class:`QosLanePolicy` throttle law and its starvation floor;
* the :class:`QosManager` on a real cluster fabric: lane assignment,
  enforcement shaping (identity when idle, policing for reserved,
  throttling for best-effort) and the fault-ladder sync.

Plus the two scheduling hooks the lanes ride on: priority-aware
:class:`~repro.sim.resources.Resource` grant order and the receiver's
``_rndv_priority``.
"""

import pytest

from repro.cluster import Cluster
from repro.hardware.sci.faults import FaultPlan
from repro.qos import (
    LANE_BEST_EFFORT,
    LANE_RESERVED,
    QOS_COUNTERS,
    AdmissionController,
    AdmissionDenied,
    QosInstruments,
    QosLanePolicy,
    QosManager,
    Reservation,
    ReservationState,
    ReservationStateError,
)
from repro.sim.engine import Engine
from repro.sim.resources import Resource


def make_reservation(rate=10.0, links=("a", "b")):
    return Reservation(0, "t", [(0, 1)], rate, links)


class TestReservationLifecycle:
    def test_happy_path_history(self):
        res = make_reservation()
        res.admit()
        res.provision()
        res.activate()
        assert res.enforcing
        res.release()
        assert res.history == ["requested", "reserved", "provisioned",
                               "active", "released"]

    def test_release_is_idempotent(self):
        res = make_reservation()
        res.admit()
        res.release()
        res.release()  # no-op, not an error
        assert res.state == ReservationState.RELEASED
        assert res.history.count("released") == 1

    def test_revoke_reprovision_bumps_epoch(self):
        res = make_reservation()
        res.admit()
        res.provision()
        res.activate()
        res.revoke()
        assert not res.enforcing
        res.reprovision()
        assert res.epoch == 1
        res.activate()
        assert res.enforcing

    @pytest.mark.parametrize("verb", ["provision", "activate", "revoke",
                                      "reprovision"])
    def test_illegal_transitions_raise(self, verb):
        res = make_reservation()  # REQUESTED: only admit/nothing is legal
        with pytest.raises(ReservationStateError, match=f"cannot {verb}"):
            getattr(res, verb)()

    def test_activate_requires_provisioned(self):
        res = make_reservation()
        res.admit()
        with pytest.raises(ReservationStateError):
            res.activate()

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="rate"):
            make_reservation(rate=0.0)

    def test_describe_is_json_ready(self):
        res = make_reservation(links=(("x", 1), ("r", 0, 2)))
        assert res.describe()["links"] == ["('r', 0, 2)", "('x', 1)"]
        assert res.describe()["state"] == "requested"


class TestAdmission:
    def make(self, cap=100.0, max_share=0.8):
        return AdmissionController({"l0": cap, "l1": cap},
                                   max_share=max_share)

    def test_exact_boundary_is_admitted(self):
        """The budget is inclusive: a request landing exactly on
        max_share * capacity is granted, one epsilon above is not."""
        ctl = self.make()
        exact = make_reservation(rate=80.0, links=("l0",))
        ctl.admit(exact)
        assert ctl.headroom("l0") == 0.0
        over = Reservation(1, "t", [(0, 1)], 1e-9, ("l0",))
        with pytest.raises(AdmissionDenied):
            ctl.admit(over)
        assert over.state == ReservationState.REQUESTED  # not charged

    def test_denial_carries_per_link_evidence(self):
        ctl = self.make()
        with pytest.raises(AdmissionDenied) as exc:
            ctl.admit(make_reservation(rate=90.0, links=("l0", "l1")))
        rows = exc.value.decision.links
        assert [row["link"] for row in rows] == ["l0", "l1"]
        assert all(row["requested"] == 90.0 and row["budget"] == 80.0
                   for row in rows)
        assert "l0" in str(exc.value)

    def test_denial_on_any_single_link_blocks_the_whole_path(self):
        ctl = self.make()
        ctl.admit(make_reservation(rate=80.0, links=("l1",)))
        with pytest.raises(AdmissionDenied):
            ctl.admit(Reservation(1, "t", [(0, 1)], 10.0, ("l0", "l1")))
        assert ctl.admitted("l0") == 0.0  # nothing partially charged

    def test_withdraw_returns_the_charge(self):
        ctl = self.make()
        res = make_reservation(rate=80.0, links=("l0",))
        ctl.admit(res)
        res.release()
        ctl.withdraw(res)
        assert ctl.headroom("l0") == 80.0
        ctl.admit(Reservation(1, "t", [(0, 1)], 80.0, ("l0",)))

    def test_withdraw_requires_released_state(self):
        ctl = self.make()
        res = make_reservation(rate=10.0, links=("l0",))
        ctl.admit(res)
        with pytest.raises(ReservationStateError, match="withdraw"):
            ctl.withdraw(res)

    def test_charge_survives_revocation(self):
        """A revoked reservation keeps its budget, so re-provisioning
        cannot be starved by later arrivals."""
        ctl = self.make()
        res = make_reservation(rate=80.0, links=("l0",))
        ctl.admit(res)
        res.provision()
        res.activate()
        res.revoke()
        assert ctl.headroom("l0") == 0.0

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            self.make().check(["nope"], 1.0)

    def test_max_share_validated(self):
        with pytest.raises(ValueError):
            self.make(max_share=0.0)
        with pytest.raises(ValueError):
            self.make(max_share=1.5)


class TestLanePolicy:
    def test_throttle_law_and_floor(self):
        lanes = QosLanePolicy(max_share=0.8, besteffort_floor=0.2)
        assert lanes.throttle_factor(0.0) == 1.0
        assert lanes.throttle_factor(0.5) == 0.5
        # The starvation bound: even a fully reserved link keeps the floor.
        assert lanes.throttle_factor(0.9) == 0.2
        assert lanes.throttle_factor(1.0) == 0.2

    def test_default_floor_is_complement_of_max_share(self):
        lanes = QosLanePolicy()
        assert lanes.besteffort_floor == pytest.approx(1.0 - lanes.max_share)

    def test_describe_for_policy_gauges(self):
        assert QosLanePolicy().describe() == {
            "qos_max_share_pct": 80,
            "qos_besteffort_floor_pct": 20,
            "qos_credit_priority": 1,
        }

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            QosLanePolicy(besteffort_floor=0.0)
        with pytest.raises(ValueError):
            QosLanePolicy(max_share=1.0001)


class TestManagerOnCluster:
    def make(self, n=4, faults=None):
        cluster = Cluster(n_nodes=n, faults=faults)
        qos = QosManager.install(cluster)
        qos.add_tenant("r", [0, 1])
        return cluster, qos

    def activated(self, qos, paths=((0, 1),), share=0.4):
        rate = share * min(qos.route_capacity(s, d) for s, d in paths)
        res = qos.reserve("r", paths, rate)
        qos.provision(res)
        qos.activate(res)
        return res

    def test_install_hooks_the_fabric(self):
        cluster, qos = self.make()
        assert cluster.fabric.qos is qos
        assert not qos.enforcing  # installed-but-idle is behaviour-neutral

    def test_tenant_sets_must_be_disjoint(self):
        _, qos = self.make()
        with pytest.raises(ValueError, match="duplicate tenant"):
            qos.add_tenant("r", [3])
        with pytest.raises(ValueError, match="already belong"):
            qos.add_tenant("b", [1, 2])

    def test_lane_follows_active_reservations_only(self):
        _, qos = self.make()
        assert qos.lane_of_node(0) == LANE_BEST_EFFORT  # tenant, no res
        res = self.activated(qos)
        assert qos.lane_of_node(0) == LANE_RESERVED
        assert qos.lane_of_node(1) == LANE_RESERVED  # same tenant
        assert qos.lane_of_node(2) == LANE_BEST_EFFORT  # no tenant
        qos.release(res)
        assert qos.lane_of_node(0) == LANE_BEST_EFFORT

    def test_shape_is_identity_while_idle(self):
        _, qos = self.make()
        route = qos.fabric.topology.route(2, 3)
        assert qos.shape_duration(2, route, 4096, 7.5) == 7.5
        assert all(v == 0 for v in qos.counters.values())

    def test_besteffort_is_throttled_on_reserved_links_only(self):
        _, qos = self.make()
        self.activated(qos, paths=((0, 1),), share=0.5)
        hot = qos.fabric.topology.route(0, 1)
        shaped = qos.shape_duration(3, hot, 4096, 10.0)
        assert shaped == pytest.approx(10.0 / 0.5)
        assert qos.counters["throttled_transfers"] == 1
        # A route avoiding the reserved link is untouched.
        cold = qos.fabric.topology.route(2, 3)
        if not set(cold.data_segments) & set(hot.data_segments):
            assert qos.shape_duration(2, cold, 4096, 10.0) == 10.0

    def test_reserved_is_policed_to_its_rate(self):
        _, qos = self.make()
        res = self.activated(qos, share=0.4)
        route = qos.fabric.topology.route(0, 1)
        nbytes = 1 << 20
        shaped = qos.shape_duration(0, route, nbytes, 1.0)
        assert shaped == pytest.approx(nbytes / res.rate)
        assert qos.counters["policed_transfers"] == 1
        # Small control messages (overhead-bound duration) pass untouched.
        assert qos.shape_duration(0, route, 8, 5.0) == 5.0
        assert qos.counters["policed_transfers"] == 1

    def test_release_is_idempotent_and_frees_budget(self):
        _, qos = self.make()
        res = self.activated(qos, share=0.8)  # whole budget of the route
        link = res.links[0]
        assert qos.admission.headroom(link) == pytest.approx(0.0)
        qos.release(res)
        qos.release(res)
        assert qos.counters["releases"] == 1
        assert not qos.enforcing
        assert qos.admission.headroom(link) == pytest.approx(
            qos.admission.budget(link))

    def test_denial_is_counted(self):
        _, qos = self.make()
        rate = 2.0 * qos.route_capacity(0, 1)
        with pytest.raises(AdmissionDenied):
            qos.reserve("r", [(0, 1)], rate)
        assert qos.counters["denials"] == 1
        assert qos.reservations == []

    def test_fault_ladder_revokes_then_reprovisions(self):
        """A segment unmap revokes every live reservation; reprovision
        brings it back under a bumped epoch (the scenario's ladder)."""
        plan = FaultPlan(seed=3, unmap_after=5)
        cluster, qos = self.make(n=2, faults=plan)
        res = self.activated(qos, paths=((0, 1),))

        def program(ctx):
            buf = ctx.alloc(4096)
            for _ in range(10):
                if ctx.comm.rank == 0:
                    yield from ctx.comm.send(buf, dest=1, count=4096)
                else:
                    yield from ctx.comm.recv(buf, source=0, count=4096)

        cluster.run(program)
        assert any(ev.kind == "unmap" for ev in plan.events)
        revoked = qos.sync_with_faults()
        assert revoked == [res] and res.state == ReservationState.REVOKED
        assert not qos.enforcing
        qos.reprovision(res)
        qos.activate(res)
        assert res.epoch == 1 and qos.enforcing
        assert qos.sync_with_faults() == []  # cursor advanced: no re-revoke

    def test_metrics_collector_exports_all_names(self):
        cluster, qos = self.make()
        qos.register_metrics(cluster.metrics)
        snap = cluster.metrics.snapshot()
        for name in QOS_COUNTERS:
            assert snap[f"qos.{name}"] == 0.0
        assert snap["qos.tenants"] == 1.0
        self.activated(qos, share=0.4)
        snap = cluster.metrics.snapshot()
        assert snap["qos.active_reservations"] == 1.0
        assert snap["qos.reserved_share_peak"] == pytest.approx(0.4)

    def test_instruments_route_by_lane(self):
        inst = QosInstruments.standalone()
        inst.observe(LANE_RESERVED, 10.0)
        inst.observe(LANE_BEST_EFFORT, 30.0)
        assert inst.histograms["reserved_latency_us"].count == 1
        assert inst.histograms["besteffort_latency_us"].count == 1


class TestSchedulingHooks:
    def test_resource_priority_reorders_waiters_only(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        first = resource.request(priority=5)  # free slot: granted at once
        assert first.triggered
        slow = resource.request(priority=1)
        fast = resource.request(priority=0)
        tie_a = resource.request(priority=0)
        order = []
        for name, ev in (("slow", slow), ("fast", fast), ("tie_a", tie_a)):
            ev.callbacks.append(lambda _e, n=name: order.append(n))
        for _ in range(3):
            resource.release()
            engine.run()
        assert order == ["fast", "tie_a", "slow"]

    def test_rndv_priority_default_is_exact_fifo(self):
        cluster = Cluster(n_nodes=2)
        scheduler = cluster.world.device(1).scheduler
        assert scheduler._rndv_priority(0) == 0  # no QoS manager at all
        qos = QosManager.install(cluster)
        qos.add_tenant("r", [0])
        assert scheduler._rndv_priority(0) == 0  # installed but idle

    def test_rndv_priority_ranks_reserved_ahead(self):
        cluster = Cluster(n_nodes=3)
        qos = QosManager.install(cluster)
        qos.add_tenant("r", [0])
        rate = 0.4 * qos.route_capacity(0, 2)
        res = qos.reserve("r", [(0, 2)], rate)
        qos.provision(res)
        qos.activate(res)
        scheduler = cluster.world.device(2).scheduler
        assert scheduler._rndv_priority(0) == 0
        assert scheduler._rndv_priority(1) == 1

    def test_rndv_priority_respects_credit_priority_knob(self):
        cluster = Cluster(n_nodes=3)
        qos = QosManager.install(cluster,
                                 lanes=QosLanePolicy(credit_priority=False))
        qos.add_tenant("r", [0])
        rate = 0.4 * qos.route_capacity(0, 2)
        res = qos.reserve("r", [(0, 2)], rate)
        qos.provision(res)
        qos.activate(res)
        scheduler = cluster.world.device(2).scheduler
        assert scheduler._rndv_priority(0) == 0
        assert scheduler._rndv_priority(1) == 0  # knob off: FIFO for all
