"""Tests for the unified transport layer (repro.mpi.transport).

Covers the policy decision table, the scheduler's per-chunk accounting,
segmented (plan-aware) sends, chunked collectives — all byte-for-byte
against the monolithic paths — and a grep-based guard that chunk-group
computation stays inside the transport / flatten packages.
"""

import pathlib
import re

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.mpi.datatypes import DOUBLE, Vector
from repro.mpi.errors import MPIError
from repro.mpi.pt2pt import DEFAULT_PROTOCOL, NonContigMode
from repro.mpi.transport import (
    ChunkedCollectivesPolicy,
    OSCStrategy,
    Protocol,
    TransferMode,
    TransferPolicy,
)


class TestTransferPolicy:
    def test_protocol_thresholds(self):
        pol = TransferPolicy(DEFAULT_PROTOCOL)
        cfg = DEFAULT_PROTOCOL
        assert pol.protocol(0) == Protocol.SHORT
        assert pol.protocol(cfg.short_threshold) == Protocol.SHORT
        assert pol.protocol(cfg.short_threshold + 1) == Protocol.EAGER
        assert pol.protocol(cfg.eager_threshold) == Protocol.EAGER
        assert pol.protocol(cfg.eager_threshold + 1) == Protocol.RNDV

    def test_transfer_mode_fixed_and_auto(self):
        contig = DOUBLE.commit()
        strided = Vector(4, 1, 3, DOUBLE).commit()
        for mode, expect in [
            (NonContigMode.GENERIC, TransferMode.GENERIC),
            (NonContigMode.DIRECT, TransferMode.DIRECT),
            (NonContigMode.DMA, TransferMode.DMA),
        ]:
            pol = TransferPolicy(DEFAULT_PROTOCOL.with_mode(mode))
            assert pol.transfer_mode(contig) == TransferMode.CONTIGUOUS
            assert pol.transfer_mode(strided) == expect
        # AUTO: smallest leaf block (8 B doubles) against direct_min_block.
        auto = DEFAULT_PROTOCOL.with_mode(NonContigMode.AUTO)
        small = TransferPolicy(auto.replace(direct_min_block=4))
        large = TransferPolicy(auto.replace(direct_min_block=64))
        assert small.transfer_mode(strided) == TransferMode.DIRECT
        assert large.transfer_mode(strided) == TransferMode.GENERIC

    def test_osc_strategies(self):
        pol = TransferPolicy(DEFAULT_PROTOCOL)
        thr = DEFAULT_PROTOCOL.remote_put_threshold
        assert pol.put_strategy(True, True) == OSCStrategy.DIRECT
        assert pol.put_strategy(True, False) == OSCStrategy.EMULATED
        assert pol.put_strategy(False, True) == OSCStrategy.EMULATED
        assert pol.get_strategy(thr, True, True) == OSCStrategy.DIRECT
        assert pol.get_strategy(thr + 1, True, True) == OSCStrategy.REMOTE_PUT
        assert pol.get_strategy(64, True, False) == OSCStrategy.REMOTE_PUT
        assert pol.get_strategy(64, False, True) == OSCStrategy.EMULATED

    def test_collective_chunk(self):
        base = TransferPolicy(DEFAULT_PROTOCOL)
        assert base.collective_chunk(1 << 20, 8) is None
        chunked = ChunkedCollectivesPolicy(DEFAULT_PROTOCOL)
        assert chunked.collective_chunk(1 << 20, 8) == 64 * KiB
        # Nothing to pipeline below three ranks or the size threshold.
        assert chunked.collective_chunk(1 << 20, 2) is None
        assert chunked.collective_chunk(32 * KiB, 8) is None

    def test_bind_keeps_subclass(self):
        cfg = DEFAULT_PROTOCOL.replace(eager_threshold=4 * KiB)
        pol = ChunkedCollectivesPolicy(coll_chunk=32 * KiB).bind(cfg)
        assert isinstance(pol, ChunkedCollectivesPolicy)
        assert pol.coll_chunk == 32 * KiB
        assert pol.config.eager_threshold == 4 * KiB


class TestSchedulerAccounting:
    def test_chunk_stats_after_rendezvous(self):
        nbytes = 200 * KiB  # > eager threshold: rendezvous, 4 chunks

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(nbytes)
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=1)
            else:
                yield from comm.recv(buf, source=0, tag=1)

        cluster = Cluster(n_nodes=2)
        cluster.run(program)
        stats = cluster.world.device(0).scheduler.stats
        chunk = DEFAULT_PROTOCOL.rendezvous_chunk
        assert stats["chunks"] == -(-nbytes // chunk)
        assert stats["chunk_bytes"] == nbytes
        assert stats["chunk_time"] > 0
        # The receiver wrote nothing through its own scheduler.
        assert cluster.world.device(1).scheduler.stats["chunks"] == 0


class TestSegmentedSends:
    @pytest.mark.parametrize("seg_size", [100, 4 * KiB, 24 * KiB])
    def test_segments_equal_whole_message(self, seg_size):
        """A message sent as packed-stream segments arrives byte-identical
        to the same message sent whole, for every protocol the segment
        size lands in."""
        total = 48 * KiB
        payload = (np.arange(total, dtype=np.int64) % 251).astype(np.uint8)

        def whole(ctx):
            comm = ctx.comm
            buf = ctx.alloc(total)
            if comm.rank == 0:
                buf.write(payload)
                yield from comm.send(buf, dest=1, tag=1)
            else:
                yield from comm.recv(buf, source=0, tag=1)
                return buf.read().tobytes()

        def segmented(ctx):
            comm = ctx.comm
            buf = ctx.alloc(total)
            if comm.rank == 0:
                buf.write(payload)
            pos = 0
            while pos < total:
                n = min(seg_size, total - pos)
                if comm.rank == 0:
                    yield from comm.send(buf, dest=1, tag=1, segment=(pos, n))
                else:
                    yield from comm.recv(buf, source=0, tag=1, segment=(pos, n))
                pos += n
            if comm.rank == 1:
                return buf.read().tobytes()

        expected = Cluster(n_nodes=2).run(whole).results[1]
        got = Cluster(n_nodes=2).run(segmented).results[1]
        assert got == expected == payload.tobytes()

    @pytest.mark.parametrize("mode", [NonContigMode.GENERIC, NonContigMode.DIRECT])
    def test_segments_noncontiguous(self, mode):
        """Plan-aware segments of a strided datatype land in the right
        strided positions (no staging copy to get wrong)."""
        dtype = Vector(8, 2, 4, DOUBLE).commit()
        count = 64
        extent = dtype.extent * count
        total = dtype.size * count
        seg = 1000  # deliberately unaligned with block boundaries

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(extent)
            if comm.rank == 0:
                buf.write((np.arange(extent, dtype=np.int64) % 241).astype(np.uint8))
                pos = 0
                while pos < total:
                    n = min(seg, total - pos)
                    yield from comm.send(buf, dest=1, tag=1, datatype=dtype,
                                         count=count, segment=(pos, n))
                    pos += n
                return buf.read().tobytes()
            pos = 0
            while pos < total:
                n = min(seg, total - pos)
                yield from comm.recv(buf, source=0, tag=1, datatype=dtype,
                                     count=count, segment=(pos, n))
                pos += n
            return buf.read().tobytes()

        protocol = DEFAULT_PROTOCOL.with_mode(mode)
        run = Cluster(n_nodes=2, protocol=protocol).run(program)
        sent = np.frombuffer(run.results[0], dtype=np.uint8)
        recvd = np.frombuffer(run.results[1], dtype=np.uint8)
        # Only the datatype's data bytes were transferred.
        from repro.mpi.flatten import get_plan
        plan = get_plan(dtype.flattened, count)
        np.testing.assert_array_equal(
            plan.execute_pack(recvd, 0), plan.execute_pack(sent, 0)
        )

    def test_segment_out_of_range_rejected(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(1 * KiB)
            if comm.rank == 0:
                with pytest.raises(MPIError):
                    yield from comm.send(buf, dest=1, tag=1,
                                         segment=(512, 1024))
            return True

        assert Cluster(n_nodes=2).run(program).results[0]


def _run_bcast(policy, nbytes, n_nodes=4, datatype=None, count=None,
               extent=None):
    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(extent or nbytes)
        if comm.rank == 0:
            buf.write((np.arange(extent or nbytes, dtype=np.int64) % 253)
                      .astype(np.uint8))
        yield from comm.bcast(buf, root=0, datatype=datatype,
                              count=count if count is not None else nbytes)
        return buf.read().tobytes()

    return Cluster(n_nodes=n_nodes, policy=policy).run(program)


class TestChunkedCollectives:
    def test_chunked_bcast_bytes_equal_monolithic(self):
        nbytes = 300 * KiB
        mono = _run_bcast(None, nbytes)
        chunk = _run_bcast(ChunkedCollectivesPolicy(), nbytes)
        assert mono.results == chunk.results
        assert len(set(chunk.results)) == 1

    def test_chunked_bcast_noncontiguous(self):
        dtype = Vector(16, 4, 8, DOUBLE).commit()
        count = 80
        extent, total = dtype.extent * count, dtype.size * count
        mono = _run_bcast(None, total, datatype=dtype, count=count,
                          extent=extent)
        chunk = _run_bcast(ChunkedCollectivesPolicy(), total, datatype=dtype,
                           count=count, extent=extent)
        from repro.mpi.flatten import get_plan
        plan = get_plan(dtype.flattened, count)
        for m, c in zip(mono.results, chunk.results):
            np.testing.assert_array_equal(
                plan.execute_pack(np.frombuffer(c, dtype=np.uint8), 0),
                plan.execute_pack(np.frombuffer(m, dtype=np.uint8), 0),
            )

    def test_chunked_bcast_faster(self):
        nbytes = 512 * KiB
        mono = _run_bcast(None, nbytes)
        chunk = _run_bcast(ChunkedCollectivesPolicy(), nbytes)
        assert chunk.elapsed < mono.elapsed

    def test_allgather_alltoall_unaffected(self):
        """The chunked policy keeps already-pipelined collectives
        monolithic — identical bytes and identical simulated time."""
        nbytes = 32 * KiB

        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(nbytes)
            send.write((np.full(nbytes, comm.rank, dtype=np.uint8)))
            gathered = ctx.alloc(nbytes * comm.size)
            yield from comm.allgather(send, gathered, count=nbytes)
            exchanged = ctx.alloc(nbytes * comm.size)
            sendall = ctx.alloc(nbytes * comm.size)
            sendall.write((np.arange(nbytes * comm.size, dtype=np.int64)
                           % 199).astype(np.uint8))
            yield from comm.alltoall(sendall, exchanged, count=nbytes)
            return gathered.read().tobytes() + exchanged.read().tobytes()

        mono = Cluster(n_nodes=4).run(program)
        chunk = Cluster(n_nodes=4, policy=ChunkedCollectivesPolicy()).run(program)
        assert mono.results == chunk.results
        assert chunk.elapsed == pytest.approx(mono.elapsed)


GROUPING_HELPERS = re.compile(
    r"block_length_groups|groups_in_range|_chunk_groups|as_access_run"
)
ALLOWED = ("mpi/transport/", "mpi/flatten/")


class TestGroupingStaysInTransport:
    def test_no_chunk_grouping_outside_transport(self):
        """No module outside the transport (and the flatten package that
        defines them) computes chunk groups or access runs — the refactor
        guard the transport layer promises."""
        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            rel = path.relative_to(src).as_posix()
            if any(rel.startswith(a) for a in ALLOWED):
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.split("#", 1)[0]
                if GROUPING_HELPERS.search(stripped):
                    offenders.append(f"{rel}:{lineno}: {line.strip()}")
        assert not offenders, (
            "chunk-group computation leaked outside mpi/transport:\n"
            + "\n".join(offenders)
        )
