"""Tests for the execution tracer (repro.trace)."""

import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.trace import Tracer, attach_tracer


def run_traced(nbytes=4 * KiB):
    cluster = Cluster(n_nodes=2)
    tracer = attach_tracer(cluster)

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(nbytes)
        if comm.rank == 0:
            yield from comm.send(buf, dest=1, tag=9)
        else:
            yield from comm.recv(buf, source=0, tag=9)

    cluster.run(program)
    return tracer


class TestTracer:
    def test_events_recorded(self):
        tracer = run_traced()
        kinds = {ev.kind for ev in tracer.events}
        assert {"send.begin", "send.end", "recv.begin",
                "recv.matched", "recv.end"} <= kinds

    def test_spans_match_begin_end(self):
        tracer = run_traced()
        sends = [s for s in tracer.spans("send")]
        recvs = [s for s in tracer.spans("recv")]
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0].rank == 0 and recvs[0].rank == 1
        assert sends[0].duration > 0
        assert recvs[0].end >= sends[0].start

    def test_protocol_detail(self):
        tracer = run_traced(nbytes=4 * KiB)
        (send,) = tracer.spans("send")
        assert send.detail["protocol"] == "eager"
        tracer = run_traced(nbytes=128 * KiB)
        (send,) = tracer.spans("send")
        assert send.detail["protocol"] == "rndv"

    def test_time_in_and_summary(self):
        tracer = run_traced()
        assert tracer.time_in(0, "send") > 0
        assert tracer.time_in(1, "recv") > 0
        assert tracer.time_in(1, "send") == 0
        text = tracer.summary()
        assert "rank 0" in text and "send" in text

    def test_for_rank_filter(self):
        tracer = run_traced()
        assert all(ev.rank == 0 for ev in tracer.for_rank(0))

    def test_empty_tracer_summary(self):
        t = Tracer()
        assert "no spans" in t.summary()
        assert len(t) == 0

    def test_no_tracer_no_overhead(self):
        """Untraced runs record nothing and behave identically."""
        cluster = Cluster(n_nodes=2)

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(256)
            if comm.rank == 0:
                yield from comm.send(buf, dest=1)
            else:
                yield from comm.recv(buf, source=0)
            return ctx.now

        baseline = cluster.run(program).results
        traced_cluster = Cluster(n_nodes=2)
        attach_tracer(traced_cluster)
        traced = traced_cluster.run(program).results
        assert baseline == traced  # tracing is timing-transparent


def run_osc_traced(shared=True):
    import numpy as np

    cluster = Cluster(n_nodes=2)
    tracer = attach_tracer(cluster)

    def program(ctx):
        comm = ctx.comm
        win = yield from comm.win_create(4 * KiB, shared=shared)
        yield from win.fence()
        if comm.rank == 0:
            yield from win.put(np.ones(64, dtype=np.uint8), target=1)
            yield from win.accumulate(np.ones(8, dtype=np.float64), target=1)
        yield from win.fence()
        if comm.rank == 0:
            yield from win.lock(1)
            yield from win.get(8 * KiB // 2, target=1)
            yield from win.unlock(1)

    cluster.run(program)
    return tracer


class TestOSCSpans:
    OSC_OPS = ("osc.put", "osc.get", "osc.acc", "osc.fence", "osc.lock",
               "osc.unlock")

    @pytest.mark.parametrize("shared", [True, False])
    def test_every_begin_has_matching_end(self, shared):
        tracer = run_osc_traced(shared=shared)
        for op in self.OSC_OPS:
            begins = [ev for ev in tracer.events if ev.kind == f"{op}.begin"]
            ends = [ev for ev in tracer.events if ev.kind == f"{op}.end"]
            assert len(begins) == len(ends) > 0, op
            spans = list(tracer.spans(op))
            assert len(spans) == len(begins), op
            assert all(s.duration >= 0 for s in spans), op

    def test_span_strategies(self):
        tracer = run_osc_traced(shared=True)
        (put,) = tracer.spans("osc.put")
        assert put.detail["strategy"] == "direct"
        (get,) = tracer.spans("osc.get")
        assert get.detail["strategy"] == "remote_put"
        (acc,) = tracer.spans("osc.acc")
        assert acc.detail["strategy"] == "emulated"
        tracer = run_osc_traced(shared=False)
        (put,) = tracer.spans("osc.put")
        assert put.detail["strategy"] == "emulated"
        (get,) = tracer.spans("osc.get")
        assert get.detail["strategy"] == "emulated"

    def test_fence_spans_on_every_rank(self):
        tracer = run_osc_traced()
        fences = list(tracer.spans("osc.fence"))
        assert {s.rank for s in fences} == {0, 1}
        assert len(fences) == 4  # two fences per rank
