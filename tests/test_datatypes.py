"""Tests for MPI datatype construction, commit and flattening."""

import numpy as np
import pytest

from repro.mpi.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    Contiguous,
    DatatypeError,
    Hindexed,
    Hvector,
    Indexed,
    Resized,
    Struct,
    Vector,
)
from repro.mpi.flatten import Level, build_flattened, leaves_of


class TestBasicTypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8
        assert FLOAT.extent == 4

    def test_basic_is_contiguous(self):
        assert DOUBLE.is_contiguous
        assert DOUBLE.depth == 1


class TestContiguous:
    def test_size_extent(self):
        t = Contiguous(10, DOUBLE)
        assert t.size == 80 and t.extent == 80 and t.lb == 0

    def test_flatten_merges_to_single_block(self):
        ft = Contiguous(10, DOUBLE).commit().flattened
        assert len(ft.leaves) == 1
        leaf = ft.leaves[0]
        assert leaf.size == 80 and leaf.levels == ()

    def test_nested_contiguous_still_single_block(self):
        t = Contiguous(4, Contiguous(5, INT))
        ft = t.commit().flattened
        assert len(ft.leaves) == 1 and ft.leaves[0].size == 80

    def test_zero_count(self):
        t = Contiguous(0, INT).commit()
        assert t.size == 0 and t.extent == 0
        assert t.flattened.leaves == ()

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            Contiguous(-1, INT)


class TestVector:
    def test_paper_noncontig_vector(self):
        """The noncontig benchmark's type: blocks of doubles, gap = block."""
        t = Vector(count=16, blocklength=1, stride=2, oldtype=DOUBLE)
        assert t.size == 128
        assert t.extent == (16 - 1) * 16 + 8
        ft = t.commit().flattened
        assert len(ft.leaves) == 1
        leaf = ft.leaves[0]
        assert leaf.size == 8
        assert leaf.levels == (Level(16, 16),)

    def test_blocklength_merges_into_block(self):
        t = Vector(count=4, blocklength=3, stride=5, oldtype=INT)
        leaf = t.commit().flattened.leaves[0]
        assert leaf.size == 12  # 3 ints fused into one block
        assert leaf.levels == (Level(4, 20),)

    def test_unit_stride_vector_is_contiguous(self):
        t = Vector(count=8, blocklength=1, stride=1, oldtype=DOUBLE).commit()
        assert t.is_contiguous

    def test_hvector_byte_stride(self):
        t = Hvector(count=3, blocklength=1, stride_bytes=100, oldtype=INT)
        assert t.extent == 204
        leaf = t.commit().flattened.leaves[0]
        assert leaf.levels == (Level(3, 100),)

    def test_negative_stride(self):
        t = Hvector(count=3, blocklength=1, stride_bytes=-16, oldtype=DOUBLE)
        assert t.lb == -32
        assert t.size == 24
        offs = t.commit().flattened.leaves[0].block_offsets()
        assert list(offs) == [0, -16, -32]

    def test_vector_of_vector_two_levels(self):
        inner = Vector(count=4, blocklength=1, stride=2, oldtype=DOUBLE)
        outer = Hvector(count=3, blocklength=1, stride_bytes=256, oldtype=inner)
        leaf = outer.commit().flattened.leaves[0]
        assert leaf.levels == (Level(3, 256), Level(4, 16))
        assert outer.depth == 3


class TestIndexed:
    def test_block_offsets(self):
        t = Indexed(blocklengths=[2, 1], displacements=[0, 5], oldtype=INT)
        ft = t.commit().flattened
        assert t.size == 12
        # Two leaves: one 8-byte block at 0, one 4-byte block at 20.
        assert [(l.offset, l.size) for l in ft.leaves] == [(0, 8), (20, 4)]

    def test_adjacent_entries_merge(self):
        t = Hindexed(blocklengths=[1, 1], displacements_bytes=[0, 4], oldtype=INT)
        ft = t.commit().flattened
        assert len(ft.leaves) == 1 and ft.leaves[0].size == 8

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatatypeError):
            Indexed([1, 2], [0], INT)


class TestStruct:
    def make_paper_struct(self):
        """The Fig. 3 struct: an int, two chars, and trailing gap to 12 B."""
        inner = Struct(
            blocklengths=[1, 2],
            displacements_bytes=[0, 4],
            types=[INT, CHAR],
        )
        return Resized(inner, lb=0, extent=12)

    def test_paper_struct_merges_int_and_chars(self):
        """Fig. 5: the int at 0 and chars at 4 are adjacent -> one 6 B block."""
        ft = self.make_paper_struct().commit().flattened
        assert len(ft.leaves) == 1
        assert ft.leaves[0] .size == 6
        assert ft.leaves[0].offset == 0

    def test_vector_of_struct(self):
        """Fig. 3's full type: a vector of the struct."""
        struct = self.make_paper_struct()
        vec = Hvector(count=8, blocklength=1, stride_bytes=12, oldtype=struct)
        ft = vec.commit().flattened
        assert ft.size == 8 * 6
        assert len(ft.leaves) == 1
        assert ft.leaves[0].levels == (Level(8, 12),)

    def test_struct_with_gap_keeps_two_leaves(self):
        t = Struct(
            blocklengths=[1, 1],
            displacements_bytes=[0, 16],
            types=[DOUBLE, DOUBLE],
        )
        ft = t.commit().flattened
        assert len(ft.leaves) == 2
        assert ft.leaves[1].offset == 16

    def test_heterogeneous_block_sizes(self):
        t = Struct(
            blocklengths=[1, 1],
            displacements_bytes=[0, 32],
            types=[INT, DOUBLE],
        )
        ft = t.commit().flattened
        assert ft.uniform_block_size() is None
        assert ft.block_length_groups() == [(4, 1), (8, 1)]


class TestResized:
    def test_extent_override(self):
        t = Resized(DOUBLE, lb=0, extent=32)
        assert t.size == 8 and t.extent == 32

    def test_tiling_with_padding(self):
        padded = Resized(INT, lb=0, extent=16)
        arr = Contiguous(4, padded).commit()
        offs = []
        for leaf in arr.flattened.leaves:
            offs.extend(leaf.block_offsets())
        assert offs == [0, 16, 32, 48]


class TestFlattenedQueries:
    def test_block_count_and_depth(self):
        vec = Vector(count=10, blocklength=1, stride=3, oldtype=DOUBLE).commit()
        ft = vec.flattened
        assert ft.block_count == 10
        assert ft.max_depth == 1

    def test_span(self):
        t = Hvector(count=3, blocklength=1, stride_bytes=-16, oldtype=DOUBLE).commit()
        assert t.flattened.span() == (-32, 8)

    def test_find_position_basics(self):
        vec = Vector(count=4, blocklength=1, stride=2, oldtype=DOUBLE).commit()
        ft = vec.flattened
        pos = ft.find_position(0, count=2)
        assert (pos.instance, pos.leaf_index, pos.block_index, pos.byte_in_block) == (0, 0, 0, 0)
        pos = ft.find_position(12, count=2)
        assert (pos.instance, pos.block_index, pos.byte_in_block) == (0, 1, 4)
        pos = ft.find_position(35, count=2)  # second instance, byte 3
        assert (pos.instance, pos.block_index, pos.byte_in_block) == (1, 0, 3)
        end = ft.find_position(64, count=2)
        assert end.instance == 2

    def test_find_position_out_of_range(self):
        ft = Contiguous(2, INT).commit().flattened
        with pytest.raises(ValueError):
            ft.find_position(9, count=1)

    def test_leaf_block_offset_at_matches_array(self):
        vec = Hvector(3, 2, 64, Vector(2, 1, 3, INT)).commit()
        for leaf in vec.flattened.leaves:
            offs = leaf.block_offsets()
            for i in range(leaf.block_count):
                assert leaf.block_offset_at(i) == offs[i]
            assert np.array_equal(leaf.block_offsets_range(1, leaf.block_count), offs[1:])

    def test_leaves_of_premerge_counts(self):
        t = Struct([1, 2], [0, 4], [INT, CHAR])
        raw = leaves_of(t)
        assert [(l.offset, l.size) for l in raw] == [(0, 4), (4, 2)]
        merged = build_flattened(t)
        assert len(merged.leaves) == 1
