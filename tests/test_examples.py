"""Smoke tests: every example script runs to completion and verifies itself."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "ocean_halo.py", "sparse_matrix_rma.py", "ring_saturation.py",
     "stencil_trace.py", "work_stealing.py", "kv_service.py"],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out
