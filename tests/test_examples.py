"""Smoke tests: every example script runs to completion and verifies itself.

The ``work_stealing`` and ``ocean_halo`` examples are thin wrappers over
their scenario counterparts (``repro.scenarios``); the agreement tests
assert the wrappers and the scenarios report the same numbers.
"""

import importlib.util
import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    """Import an example module without running its ``main()``."""
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "ocean_halo.py", "sparse_matrix_rma.py", "ring_saturation.py",
     "stencil_trace.py", "work_stealing.py", "kv_service.py"],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert "OK" in out


class TestWrapperAgreement:
    """The promoted examples and their scenarios report the same numbers."""

    def test_work_stealing_wrapper_matches_scenario(self, capsys):
        from repro.scenarios import run_scenario

        mod = _load_example("work_stealing")
        report = run_scenario("work_stealing", seed=mod.SEED,
                              ranks=mod.NPROCS).report
        app = report["app"]
        assert app["exactly_once"] and app["balanced"]

        mod.main()
        out = capsys.readouterr().out
        assert f"{app['tasks_run']} tasks" in out
        assert f"work stealing {app['imbalance_dynamic']:.2f}x" in out
        assert f"static blocks {app['imbalance_static']:.2f}x" in out

    def test_ocean_halo_wrapper_matches_scenario(self, capsys):
        from repro import NonContigMode, ProtocolConfig
        from repro.scenarios import run_halo_standalone

        mod = _load_example("ocean_halo")
        direct = run_halo_standalone(
            mod.CONFIG,
            protocol=ProtocolConfig(noncontig_mode=NonContigMode.DIRECT),
        )
        assert direct["exact"]

        mod.main()
        out = capsys.readouterr().out
        assert f"{direct['elapsed_us']:9.1f} µs" in out
        assert "OK" in out
