"""Integration tests: point-to-point protocols on the simulated cluster."""

import numpy as np
import pytest

from repro._units import KiB, MiB
from repro.cluster import Cluster
from repro.mpi import ANY_SOURCE, ANY_TAG, MessageTruncated
from repro.mpi.datatypes import BYTE, DOUBLE, INT, Struct, Vector
from repro.mpi.pt2pt import NonContigMode, ProtocolConfig


def two_rank_cluster(**kw):
    return Cluster(n_nodes=2, **kw)


def run_pingpong(cluster, nbytes, tag=5):
    """rank0 sends nbytes, rank1 receives and echoes back; returns timings."""

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(nbytes)
        if comm.rank == 0:
            buf.read()[:] = np.arange(nbytes, dtype=np.uint8) % 251
            t0 = ctx.now
            yield from comm.send(buf, dest=1, tag=tag)
            yield from comm.recv(buf, source=1, tag=tag)
            return ("roundtrip", ctx.now - t0, buf.tobytes())
        status = yield from comm.recv(buf, source=0, tag=tag)
        yield from comm.send(buf, dest=0, tag=tag)
        return ("echoed", status.nbytes, buf.tobytes())

    return cluster.run(program)


class TestProtocolSelection:
    @pytest.mark.parametrize(
        "nbytes,proto",
        [(64, "short"), (4 * KiB, "eager"), (256 * KiB, "rndv")],
    )
    def test_size_selects_protocol(self, nbytes, proto):
        cluster = two_rank_cluster()
        run = run_pingpong(cluster, nbytes)
        dev = cluster.world.device(0)
        assert dev.counters[proto] == 1
        expected = (np.arange(nbytes, dtype=np.uint8) % 251).tobytes()
        assert run.results[0][2] == expected
        assert run.results[1][1] == nbytes


class TestDataIntegrity:
    @pytest.mark.parametrize("nbytes", [1, 127, 128, 129, 8 * KiB,
                                        16 * KiB, 16 * KiB + 1, 200 * KiB])
    def test_pingpong_roundtrip_boundaries(self, nbytes):
        """Exercise every protocol boundary byte-exactly."""
        run = run_pingpong(two_rank_cluster(), nbytes)
        expected = (np.arange(nbytes, dtype=np.uint8) % 251).tobytes()
        assert run.results[0][2] == expected

    def test_intranode_roundtrip(self):
        cluster = Cluster(n_nodes=1, procs_per_node=2)
        run = run_pingpong(cluster, 100 * KiB)
        expected = (np.arange(100 * KiB, dtype=np.uint8) % 251).tobytes()
        assert run.results[0][2] == expected

    def test_multiple_messages_in_order(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(8)
            got = []
            if comm.rank == 0:
                for i in range(10):
                    buf.as_array(np.int64)[0] = i * 11
                    yield from comm.send(buf, dest=1, tag=3)
            else:
                for _ in range(10):
                    yield from comm.recv(buf, source=0, tag=3)
                    got.append(int(buf.as_array(np.int64)[0]))
            return got

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == [i * 11 for i in range(10)]

    def test_wildcard_recv(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(16)
            if comm.rank == 0:
                sources = []
                for _ in range(2):
                    status = yield from comm.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                    sources.append(status.source)
                return sorted(sources)
            yield ctx.cluster.engine.timeout(float(comm.rank))
            buf.fill(comm.rank)
            yield from comm.send(buf, dest=0, tag=comm.rank)
            return None

        run = Cluster(n_nodes=3).run(program)
        assert run.results[0] == [1, 2]

    def test_unexpected_message_is_buffered(self):
        """Send arrives before the recv is posted."""

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(64)
            if comm.rank == 0:
                buf.fill(0xCD)
                yield from comm.send(buf, dest=1, tag=9)
                return None
            yield ctx.cluster.engine.timeout(500.0)  # post the recv late
            yield from comm.recv(buf, source=0, tag=9)
            return buf.tobytes()

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == bytes([0xCD]) * 64

    def test_truncation_error(self):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                big = ctx.alloc(256)
                yield from comm.send(big, dest=1, tag=1)
            else:
                small = ctx.alloc(16)
                yield from comm.recv(small, source=0, tag=1)

        with pytest.raises(MessageTruncated):
            Cluster(n_nodes=2).run(program)


class TestNoncontiguous:
    def make_vector(self, blocks=64, blocklen_doubles=2):
        return Vector(blocks, blocklen_doubles, 2 * blocklen_doubles, DOUBLE)

    @pytest.mark.parametrize("mode", [NonContigMode.GENERIC, NonContigMode.DIRECT])
    def test_vector_roundtrip(self, mode):
        vec = self.make_vector().commit()
        span = vec.extent

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(span)
            view = buf.as_array(np.float64)
            if comm.rank == 0:
                view[:] = np.arange(len(view), dtype=np.float64)
                yield from comm.send(buf, dest=1, tag=2, datatype=vec, count=1)
                return None
            view[:] = -1.0
            yield from comm.recv(buf, source=0, tag=2, datatype=vec, count=1)
            return np.array(view, copy=True)

        cluster = Cluster(n_nodes=2, protocol=ProtocolConfig(noncontig_mode=mode))
        run = cluster.run(program)
        got = run.results[1]
        # Sender's data blocks land in the receiver's data blocks; gaps stay -1.
        for i in range(0, len(got), 4):
            assert got[i] == i and got[i + 1] == i + 1
            if i + 2 < len(got) - 1:
                assert got[i + 2] == -1.0 and got[i + 3] == -1.0

    @pytest.mark.parametrize("mode", [NonContigMode.GENERIC, NonContigMode.DIRECT])
    @pytest.mark.parametrize("total_kib", [4, 64, 512])
    def test_large_vector_roundtrip_both_modes(self, mode, total_kib):
        """Rendezvous-sized strided sends arrive byte-exactly in both modes."""
        nblocks = total_kib * KiB // 8
        vec = Vector(nblocks, 1, 2, DOUBLE).commit()

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(vec.extent)
            view = buf.as_array(np.float64)
            if comm.rank == 0:
                view[::2] = np.arange(nblocks, dtype=np.float64)
                yield from comm.send(buf, dest=1, tag=4, datatype=vec, count=1)
                return None
            yield from comm.recv(buf, source=0, tag=4, datatype=vec, count=1)
            return np.array(view[::2], copy=True)

        cluster = Cluster(n_nodes=2, protocol=ProtocolConfig(noncontig_mode=mode))
        run = cluster.run(program)
        assert np.array_equal(run.results[1], np.arange(nblocks, dtype=np.float64))

    def test_sender_vector_receiver_contiguous(self):
        """Mixed layouts: strided send into a contiguous receive."""
        vec = Vector(32, 1, 2, DOUBLE).commit()

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                buf = ctx.alloc(vec.extent)
                view = buf.as_array(np.float64)
                view[::2] = np.arange(32, dtype=np.float64)
                yield from comm.send(buf, dest=1, tag=6, datatype=vec, count=1)
                return None
            flat = ctx.alloc(32 * 8)
            yield from comm.recv(flat, source=0, tag=6, datatype=BYTE, count=32 * 8)
            return np.array(flat.as_array(np.float64), copy=True)

        run = Cluster(n_nodes=2).run(program)
        assert np.array_equal(run.results[1], np.arange(32, dtype=np.float64))

    def test_struct_of_mixed_blocks(self):
        st = Struct([1, 1], [0, 16], [INT, DOUBLE]).commit()

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(st.extent * 4)
            if comm.rank == 0:
                for i in range(4):
                    buf.slice(i * st.extent, 4).as_array(np.int32)[0] = i
                    buf.slice(i * st.extent + 16, 8).as_array(np.float64)[0] = i * 0.5
                yield from comm.send(buf, dest=1, tag=8, datatype=st, count=4)
                return None
            yield from comm.recv(buf, source=0, tag=8, datatype=st, count=4)
            ints = [int(buf.slice(i * st.extent, 4).as_array(np.int32)[0]) for i in range(4)]
            dbls = [float(buf.slice(i * st.extent + 16, 8).as_array(np.float64)[0]) for i in range(4)]
            return ints, dbls

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == ([0, 1, 2, 3], [0.0, 0.5, 1.0, 1.5])


class TestNonblocking:
    def test_isend_irecv_wait(self):
        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(32 * KiB)
            if comm.rank == 0:
                buf.fill(0x5A)
                req = comm.isend(buf, dest=1, tag=11)
                yield from req.wait()
                return None
            req = comm.irecv(buf, source=0, tag=11)
            status = yield from req.wait()
            return (status.nbytes, buf.read(0, 4).tobytes())

        run = Cluster(n_nodes=2).run(program)
        assert run.results[1] == (32 * KiB, b"\x5a\x5a\x5a\x5a")

    def test_sendrecv_exchange(self):
        def program(ctx):
            comm = ctx.comm
            sendbuf = ctx.alloc(1 * KiB)
            recvbuf = ctx.alloc(1 * KiB)
            sendbuf.fill(comm.rank + 1)
            peer = 1 - comm.rank
            yield from comm.sendrecv(sendbuf, peer, recvbuf, peer)
            return recvbuf.read(0, 1)[0]

        run = Cluster(n_nodes=2).run(program)
        assert run.results == [2, 1]


class TestCollectives:
    def test_barrier_synchronizes(self):
        def program(ctx):
            comm = ctx.comm
            yield ctx.cluster.engine.timeout(float(comm.rank * 100))
            yield from comm.barrier()
            return ctx.now

        run = Cluster(n_nodes=4).run(program)
        # Nobody leaves the barrier before the slowest arrival (t=300).
        assert min(run.results) >= 300.0

    def test_bcast_all_roots(self):
        for root in range(4):
            def program(ctx, root=root):
                comm = ctx.comm
                buf = ctx.alloc(2 * KiB)
                if comm.rank == root:
                    buf.fill(0xEE)
                yield from comm.bcast(buf, root=root)
                return buf.read(0, 8).tobytes()

            run = Cluster(n_nodes=4).run(program)
            assert all(r == bytes([0xEE] * 8) for r in run.results)

    def test_allreduce_sum(self):
        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(8 * 8)
            recv = ctx.alloc(8 * 8)
            send.as_array(np.float64)[:] = comm.rank + 1
            yield from comm.allreduce(send, recv, op="sum")
            return list(recv.as_array(np.float64))

        run = Cluster(n_nodes=4).run(program)
        for values in run.results:
            assert values == [10.0] * 8  # 1+2+3+4

    def test_gather_and_allgather(self):
        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(16)
            send.fill(comm.rank + 1)
            recv = ctx.alloc(16 * comm.size)
            yield from comm.allgather(send, recv)
            return [recv.read(i * 16, 1)[0] for i in range(comm.size)]

        run = Cluster(n_nodes=4).run(program)
        assert all(r == [1, 2, 3, 4] for r in run.results)


class TestTimingShapes:
    def test_latency_small_message_is_microseconds(self):
        run = run_pingpong(two_rank_cluster(), 8)
        roundtrip = run.results[0][1]
        assert 2.0 < roundtrip < 40.0  # µs-scale MPI latency

    def test_bandwidth_large_contiguous(self):
        from repro._units import to_mib_s

        nbytes = 1 * MiB

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(nbytes)
            if comm.rank == 0:
                t0 = ctx.now
                yield from comm.send(buf, dest=1, tag=0)
                return ctx.now - t0
            yield from comm.recv(buf, source=0, tag=0)
            return None

        run = Cluster(n_nodes=2).run(program)
        bw = to_mib_s(nbytes / run.results[0])
        assert 60 <= bw <= 140  # MPI-level contiguous, around ~95 MiB/s

    def test_intranode_faster_than_internode(self):
        inter = run_pingpong(Cluster(n_nodes=2), 256 * KiB).results[0][1]
        intra = run_pingpong(Cluster(n_nodes=1, procs_per_node=2), 256 * KiB).results[0][1]
        assert intra < inter

    def test_direct_beats_generic_for_midsize_blocks(self):
        """The paper's headline: direct_pack_ff ~2x generic at >=16 B blocks."""
        nblocks = 16 * KiB // 8  # 128 kiB of data in 64-byte blocks
        vec = Vector(2048, 8, 16, DOUBLE).commit()  # 64 B blocks, gap 64 B

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(vec.extent)
            if comm.rank == 0:
                t0 = ctx.now
                yield from comm.send(buf, dest=1, tag=0, datatype=vec, count=1)
                return ctx.now - t0
            yield from comm.recv(buf, source=0, tag=0, datatype=vec, count=1)
            return None

        t_direct = Cluster(
            n_nodes=2, protocol=ProtocolConfig(noncontig_mode=NonContigMode.DIRECT)
        ).run(program).results[0]
        t_generic = Cluster(
            n_nodes=2, protocol=ProtocolConfig(noncontig_mode=NonContigMode.GENERIC)
        ).run(program).results[0]
        assert t_generic > 1.5 * t_direct
