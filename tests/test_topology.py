"""The Topology protocol: differential oracle, routing, link accounting.

Four layers of assurance for the switched-fabric refactor:

* **differential oracle** — ring-topology timings are *bit-identical* to
  the pre-refactor implementation.  The golden lists below were captured
  on the last commit before the Topology protocol landed (the probe
  programs cover pt2pt strided sends, one-sided epochs, and the
  bcast/allreduce pair); any drift in a float is a behaviour change.
* **routing determinism and structure** — for every topology, routes are
  pure functions of (src, dst), stay inside the declared link set, and
  satisfy each topology's structural invariants (ring tiling, one
  crossbar hop per cross-ringlet route, fat-tree mirror echo).
* **per-link accounting** — the FlowNetwork's peak-load and
  delivered-byte statistics, and the fabric's local/cross split: a
  narrow crossbar saturates while ringlet-local links stay below
  capacity.
* **topology-aware policy and collectives** — group-aware decisions in
  TransferPolicy, data correctness of the hierarchical bcast/allreduce
  on switched topologies, and the hierarchical-over-chain speedup.
"""

import numpy as np
import pytest

from repro._units import KiB
from repro.cluster import Cluster
from repro.hardware.sci import SCIFabric
from repro.hardware.sci.topology import (
    TOPOLOGY_NAMES,
    FatTree,
    RingOfRings,
    RingTopology,
    TorusTopology,
    topology_from_name,
)
from repro.mpi.datatypes import BYTE, Vector
from repro.mpi.flatten import reset_plan_cache
from repro.mpi.transport.policy import ChunkedCollectivesPolicy, TransferPolicy
from repro.sim import Engine

# -- the differential oracle ---------------------------------------------------
#
# Captured with tools' probe programs on the pre-Topology tree.  Exact
# float equality is the contract: the refactor moved code, not behaviour.

GOLDEN_PT2PT = [94.68337349397589, 0.0, 159.09397955458195, 0.0]
GOLDEN_OSC = [68.67771084337349, 68.62771084337349,
              69.62771084337349, 69.62771084337349]
GOLDEN_COLL = [305.2446065512047, 310.6986169678713, 310.6986169678713,
               316.15262738453794, 310.6986169678713, 316.15262738453794,
               316.15262738453794, 321.60663780120456]


class TestRingDifferentialOracle:
    def test_pt2pt_strided_timings_unchanged(self):
        reset_plan_cache()
        dtype = Vector(256, 64, 96, BYTE)
        extent = 256 * 96

        def program(ctx):
            comm = ctx.comm
            dtype.commit()
            buf = ctx.alloc(extent)
            if comm.rank == 0:
                buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
                yield from comm.send(buf, dest=2, datatype=dtype, count=1)
            elif comm.rank == 2:
                yield from comm.recv(buf, source=0, datatype=dtype, count=1)
            return ctx.now

        assert Cluster(n_nodes=4).run(program).results == GOLDEN_PT2PT

    def test_osc_epoch_timings_unchanged(self):
        reset_plan_cache()

        def program(ctx):
            comm = ctx.comm
            win = yield from comm.win_create(4 * KiB, shared=True)
            src = ctx.alloc(1 * KiB)
            yield from win.fence()
            if comm.rank == 1:
                src.read()[:] = 7
                yield from win.put(src, target=0)
                yield from win.get(1 * KiB, target=3)
            yield from win.fence()
            return ctx.now

        assert Cluster(n_nodes=4).run(program).results == GOLDEN_OSC

    def test_collective_timings_unchanged(self):
        reset_plan_cache()

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(8 * KiB)
            if comm.rank == 0:
                buf.read()[:] = 3
            yield from comm.bcast(buf, root=0)
            send = ctx.alloc(1 * KiB)
            recv = ctx.alloc(1 * KiB)
            send.read()[:] = comm.rank + 1
            yield from comm.allreduce(send, recv, op="sum", datatype=BYTE)
            return ctx.now

        assert Cluster(n_nodes=8).run(program).results == GOLDEN_COLL


# -- routing: determinism and structure ----------------------------------------

TOPOLOGIES = {
    "ring": lambda: RingTopology(8),
    "torus": lambda: TorusTopology((4, 2)),
    "ring_of_rings": lambda: RingOfRings(2, 4),
    "fat_tree": lambda: FatTree(2, 4),
}


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
class TestRoutingContract:
    def test_routes_deterministic_across_instances(self, name):
        a, b = TOPOLOGIES[name](), TOPOLOGIES[name]()
        assert a.segments() == b.segments()
        for src in range(a.n_nodes):
            for dst in range(a.n_nodes):
                assert a.route(src, dst) == b.route(src, dst)

    def test_routes_stay_inside_declared_links(self, name):
        topo = TOPOLOGIES[name]()
        links = set(topo.segments())
        assert len(links) == len(topo.segments()), "duplicate link ids"
        for src in range(topo.n_nodes):
            for dst in range(topo.n_nodes):
                route = topo.route(src, dst)
                assert set(route.data_segments) <= links
                assert set(route.echo_segments) <= links
                assert set(topo.links_on(route)) <= links

    def test_distance_matches_route_hops(self, name):
        topo = TOPOLOGIES[name]()
        for src in range(topo.n_nodes):
            for dst in range(topo.n_nodes):
                assert topo.distance(src, dst) == topo.route(src, dst).hops
        assert all(topo.distance(n, n) == 0 for n in range(topo.n_nodes))

    def test_link_metadata_total(self, name):
        """Every declared link classifies, names a ringlet, and prices."""
        topo = TOPOLOGIES[name]()
        for link in topo.segments():
            assert topo.link_kind(link) in ("local", "cross")
            assert topo.link_capacity(link, 100.0) > 0
            key = topo.ringlet_of(link)
            hash(key)  # ringlet keys must be hashable
            label = topo.ringlet_label(key)
            assert label is None or isinstance(label, str)

    def test_groups_partition_the_nodes(self, name):
        topo = TOPOLOGIES[name]()
        groups = {topo.node_group(n) for n in range(topo.n_nodes)}
        assert len(groups) == topo.n_groups
        described = topo.describe()
        assert described["n_nodes"] == topo.n_nodes
        assert described["n_groups"] == topo.n_groups
        assert described["n_links"] == len(topo.segments())


class TestRingOfRingsRouting:
    def test_local_route_is_a_plain_ring_arc(self):
        topo = RingOfRings(2, 4)
        route = topo.route(1, 3)  # both in ringlet 0
        assert route.data_segments == (("r", 0, 1), ("r", 0, 2))
        # The echo completes the ringlet loop (positions 0..4, the last
        # being the switch port).
        assert route.echo_segments == (("r", 0, 3), ("r", 0, 4), ("r", 0, 0))

    def test_cross_route_crosses_the_crossbar_once(self):
        topo = RingOfRings(2, 4)
        for src in range(4):
            for dst in range(4, 8):
                route = topo.route(src, dst)
                xlinks = [s for s in route.data_segments if s[0] == "x"]
                assert xlinks == [("x", 1)], "one crossbar hop, dst ringlet"
                # The switched crossbar carries no ring echo.
                assert all(s[0] != "x" for s in route.echo_segments)

    def test_cross_route_tiles_both_ringlet_loops(self):
        topo = RingOfRings(3, 4)
        route = topo.route(1, 10)  # ringlet 0 pos 1 -> ringlet 2 pos 2
        occupied = route.data_segments + route.echo_segments
        for ringlet in (0, 2):
            positions = sorted(s[2] for s in occupied
                               if s[0] == "r" and s[1] == ringlet)
            assert positions == list(range(5)), (
                "data + echo must tile the traversed ringlet's loop exactly"
            )
        assert all(s[1] != 1 for s in occupied if s[0] == "r"), (
            "untraversed ringlets carry no traffic"
        )

    def test_crossbar_capacity_scales_with_switch_capacity(self):
        topo = RingOfRings(2, 4, switch_capacity=0.25)
        assert topo.link_capacity(("x", 0), 200.0) == 50.0
        assert topo.link_capacity(("r", 0, 0), 200.0) == 200.0

    def test_ringlet_identity(self):
        topo = RingOfRings(2, 4)
        assert topo.ringlet_of(("r", 1, 2)) == ("r", 1)
        assert topo.ringlet_of(("x", 0)) == "switch"
        assert topo.ringlet_label(("r", 1)) == "ringlet 1"
        assert topo.ringlet_label("switch") == "switch"
        assert topo.link_kind(("x", 0)) == "cross"
        assert topo.link_kind(("r", 0, 4)) == "local"
        assert [topo.node_group(n) for n in range(8)] == [0] * 4 + [1] * 4

    def test_single_ringlet_has_no_crossbar(self):
        topo = RingOfRings(1, 4)
        assert all(link[0] == "r" for link in topo.segments())


class TestFatTreeRouting:
    def test_same_leaf_is_two_hops_cross_leaf_four(self):
        topo = FatTree(2, 4)
        assert topo.route(0, 1).data_segments == (("h", 0, "up"),
                                                  ("h", 1, "dn"))
        assert topo.route(0, 5).data_segments == (
            ("h", 0, "up"), ("l", 0, "up"), ("l", 1, "dn"), ("h", 5, "dn"))
        assert topo.distance(0, 1) == 2
        assert topo.distance(0, 5) == 4

    def test_echo_is_the_mirror_route(self):
        topo = FatTree(2, 4)
        for src in range(topo.n_nodes):
            for dst in range(topo.n_nodes):
                assert (topo.route(src, dst).echo_segments
                        == topo.route(dst, src).data_segments)

    def test_spine_links_are_fat(self):
        topo = FatTree(2, 4)  # fat_factor defaults to the arity
        assert topo.link_capacity(("l", 0, "up"), 100.0) == 400.0
        assert topo.link_capacity(("h", 0, "up"), 100.0) == 100.0
        assert FatTree(2, 4, fat_factor=1.5).link_capacity(
            ("l", 1, "dn"), 100.0) == 150.0

    def test_link_identity(self):
        topo = FatTree(2, 4)
        assert topo.link_kind(("l", 0, "up")) == "cross"
        assert topo.link_kind(("h", 3, "dn")) == "local"
        assert topo.ringlet_of(("l", 1, "dn")) == "spine"
        assert topo.ringlet_of(("h", 5, "up")) == ("leaf", 1)
        assert topo.ringlet_label("spine") == "spine"
        assert topo.ringlet_label(("leaf", 1)) == "leaf 1"


class TestTopologyFromName:
    def test_every_name_builds_at_8_nodes(self):
        for name in TOPOLOGY_NAMES:
            topo = topology_from_name(name, 8)
            assert topo.n_nodes == 8

    def test_shapes(self):
        assert isinstance(topology_from_name("ring", 5), RingTopology)
        assert topology_from_name("torus", 8).dims == (2, 4)
        rr = topology_from_name("ring_of_rings", 8)
        assert (rr.n_ringlets, rr.ringlet_size) == (4, 2)
        ft = topology_from_name("fat_tree", 6)
        assert (ft.n_leaves, ft.arity) == (2, 3)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            topology_from_name("hypercube", 8)

    def test_unsplittable_count_rejected(self):
        with pytest.raises(ValueError, match="do not split"):
            topology_from_name("ring_of_rings", 7)


# -- per-link accounting -------------------------------------------------------


class TestPerLinkAccounting:
    def test_peak_load_records_concurrent_demand(self):
        from repro.hardware.sci import FlowNetwork

        eng = Engine()
        ring = RingTopology(4)
        net = FlowNetwork(eng, {s: 10.0 for s in ring.segments()})
        net.transfer(ring.route(0, 1), 100.0, 8.0)
        net.transfer(ring.route(0, 1), 100.0, 8.0)
        # Two concurrent flows of demand 8 on a capacity-10 link.
        assert net.link_peak()[0] == pytest.approx(1.6)
        eng.run()
        # Peaks are high-water marks: they persist after the flows drain.
        assert net.link_peak()[0] == pytest.approx(1.6)

    def test_delivered_bytes_credited_to_data_links_only(self):
        from repro.hardware.sci import FlowNetwork

        eng = Engine()
        ring = RingTopology(4)
        net = FlowNetwork(eng, {s: 10.0 for s in ring.segments()})
        net.transfer(ring.route(0, 2), 500.0, 5.0)  # data links 0, 1
        eng.run()
        delivered = net.link_bytes()
        assert delivered[0] == pytest.approx(500.0)
        assert delivered[1] == pytest.approx(500.0)
        assert delivered[2] == 0.0 and delivered[3] == 0.0

    def test_echo_traffic_counts_toward_demand(self):
        from repro.hardware.sci import FlowNetwork

        eng = Engine()
        ring = RingTopology(4)
        net = FlowNetwork(eng, {s: 10.0 for s in ring.segments()},
                          echo_ratio=0.5)
        net.transfer(ring.route(0, 2), 100.0, 8.0)  # echo links 2, 3
        demand = net.link_demand()
        assert demand[0] == demand[1] == pytest.approx(8.0)
        assert demand[2] == demand[3] == pytest.approx(4.0)

    def test_narrow_crossbar_saturates_while_ringlets_stay_cool(self):
        """The per-link split the refactor exists for: a cross-ringlet
        stream drives a narrow crossbar port past capacity, while every
        ringlet-local link — including a second, unrelated local stream —
        stays below it."""
        eng = Engine()
        topo = RingOfRings(3, 2, switch_capacity=0.2)
        fabric = SCIFabric(eng, topo)

        def cross():
            yield from fabric.dma_transfer(2, 0, 64 * KiB)  # ringlet 1 -> 0

        def local():
            yield from fabric.dma_transfer(4, 5, 64 * KiB)  # inside ringlet 2

        eng.process(cross())
        eng.process(local())
        eng.run()
        stats = fabric.link_stats()
        assert stats["peak_cross"] >= 1.0, stats
        assert 0 < stats["peak_local"] < 1.0, stats
        assert stats["saturated"] == 1.0, "only the crossbar port saturated"
        assert stats["bytes"] > 0
        peaks = fabric.network.link_peak()
        saturated = [link for link, p in peaks.items() if p >= 1.0]
        assert saturated == [("x", 0)]

    def test_fabric_link_stats_cover_every_link(self):
        eng = Engine()
        topo = FatTree(2, 2)
        fabric = SCIFabric(eng, topo)
        stats = fabric.link_stats()
        assert stats["count"] == len(topo.segments())
        assert stats["saturated"] == 0.0 and stats["bytes"] == 0.0


# -- topology-aware policy and collectives -------------------------------------


class TestTopologyAwarePolicy:
    def test_hierarchical_wants_multiple_groups(self):
        policy = TransferPolicy()
        assert policy.hierarchical_collective("bcast", 64 * KiB, 64, 8)
        assert not policy.hierarchical_collective("bcast", 64 * KiB, 64, 1)
        assert not policy.hierarchical_collective("bcast", 64 * KiB, 8, 8)

    def test_hierarchical_can_be_disabled(self):
        policy = TransferPolicy(hier_collectives=False)
        assert not policy.hierarchical_collective("allreduce", 64 * KiB, 64, 8)
        assert policy.describe()["hier_collectives"] == 0

    def test_cross_switch_chunk(self):
        policy = TransferPolicy(cross_chunk=4 * KiB)
        assert policy.cross_switch_chunk(1 * KiB) is None
        assert policy.cross_switch_chunk(64 * KiB) == 4 * KiB


class TestHierarchicalCollectives:
    @staticmethod
    def _cluster(topology):
        return Cluster(n_nodes=topology.n_nodes, topology=topology,
                       policy=ChunkedCollectivesPolicy())

    def test_allreduce_correct_on_ring_of_rings(self):
        reset_plan_cache()
        n = 8

        def program(ctx):
            comm = ctx.comm
            send = ctx.alloc(256)
            recv = ctx.alloc(256)
            send.read()[:] = comm.rank + 1
            yield from comm.allreduce(send, recv, op="sum", datatype=BYTE)
            return int(recv.read(0, 1)[0])

        run = self._cluster(RingOfRings(2, 4)).run(program)
        expected = sum(range(1, n + 1)) % 256
        assert run.results == [expected] * n

    def test_bcast_correct_on_fat_tree(self):
        reset_plan_cache()

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(32 * KiB)
            if comm.rank == 3:
                buf.read()[:] = np.arange(32 * KiB, dtype=np.uint8) % 251
            yield from comm.bcast(buf, root=3)
            return int(np.sum(buf.read(), dtype=np.int64))

        run = self._cluster(FatTree(2, 4)).run(program)
        assert len(set(run.results)) == 1
        assert run.results[0] == int(
            np.sum(np.arange(32 * KiB, dtype=np.uint8) % 251, dtype=np.int64))

    def test_hierarchical_beats_flat_chain(self):
        """The tentpole's payoff, cheap enough for tier-1: at 16 nodes on
        two 8-node ringlets, the hierarchical allreduce must beat the
        flat chain-pipelined algorithm (the pre-topology behaviour).
        The payload sits above the chain's 64 KiB pipeline threshold —
        below it the flat binomial tree on block rank placement is
        already hierarchy-aligned and the timings tie exactly."""
        from repro.bench.hier import run_hier_allreduce

        flat = run_hier_allreduce(16, hierarchical=False, payload=128 * KiB)
        hier = run_hier_allreduce(16, hierarchical=True, payload=128 * KiB)
        assert hier < flat
