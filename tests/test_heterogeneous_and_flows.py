"""Tests for heterogeneous node parameters and flow-network conservation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._units import KiB, MiB
from repro.hardware import DEFAULT_NODE, Node
from repro.hardware.sci import AccessRun, FlowNetwork, RingTopology, SCIFabric
from repro.hardware.sci.segments import SegmentDirectory
from repro.sim import Engine


class TestHeterogeneousNodes:
    def test_per_node_params_affect_source_side(self):
        """A node with write-combining disabled sends slower; receiving at
        it is unaffected (PIO cost is origin-side)."""
        eng = Engine()
        nodes = [Node(i, mem_size=8 * MiB) for i in range(2)]
        slow = DEFAULT_NODE.with_write_combining(False)
        fabric = SCIFabric(
            eng, RingTopology(2), per_node_params={0: slow}
        )
        directory = SegmentDirectory(fabric)
        seg0 = directory.export(nodes[0], nodes[0].space.alloc(1 * MiB))
        seg1 = directory.export(nodes[1], nodes[1].space.alloc(1 * MiB))
        payload = np.zeros(256 * KiB, dtype=np.uint8)

        def timed(imported):
            t0 = eng.now
            yield from imported.write(payload, AccessRun.contiguous(0, payload.nbytes))
            return eng.now - t0

        t_from_slow = eng.run_process(
            timed(directory.import_segment(nodes[0], seg1))
        )
        t_from_fast = eng.run_process(
            timed(directory.import_segment(nodes[1], seg0))
        )
        assert t_from_slow > 1.5 * t_from_fast

    def test_params_for_lookup(self):
        eng = Engine()
        slow = DEFAULT_NODE.with_link_mhz(100.0)
        fabric = SCIFabric(eng, RingTopology(4), per_node_params={2: slow})
        assert fabric.params_for(2).link.frequency_mhz == 100.0
        assert fabric.params_for(0).link.frequency_mhz == 166.0


class TestFlowConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        nbytes=st.lists(st.integers(min_value=1, max_value=10_000),
                        min_size=1, max_size=6),
        caps=st.lists(st.floats(min_value=1.0, max_value=100.0),
                      min_size=1, max_size=6),
    )
    def test_property_all_flows_complete(self, nbytes, caps):
        """Every flow completes, regardless of contention level."""
        eng = Engine()
        ring = RingTopology(4)
        net = FlowNetwork(eng, {s: 50.0 for s in ring.segments()})
        done = []
        for i, (n, cap) in enumerate(zip(nbytes, caps * len(nbytes))):
            ev = net.transfer(ring.route(i % 4, (i + 1) % 4), float(n), cap)
            ev.callbacks.append(lambda _e: done.append(eng.now))
        eng.run()
        assert len(done) == len(nbytes)
        assert net.active_flows == 0

    def test_rates_never_exceed_caps(self):
        eng = Engine()
        ring = RingTopology(2)
        net = FlowNetwork(eng, {s: 1000.0 for s in ring.segments()})
        net.transfer(ring.route(0, 1), 500.0, 10.0)

        def check():
            yield eng.timeout(1.0)
            for flow in net._flows.values():
                assert flow.rate <= flow.rate_cap + 1e-9

        eng.process(check())
        eng.run()

    def test_completion_time_scales_with_share(self):
        """Two identical competing flows take about twice as long as one,
        when the segment is the binding constraint."""
        def run(n_flows):
            eng = Engine()
            ring = RingTopology(2)
            # Capacity below the sum of caps -> congestion response kicks in.
            net = FlowNetwork(eng, {s: 15.0 for s in ring.segments()})
            for _ in range(n_flows):
                net.transfer(ring.route(0, 1), 1500.0, 10.0)
            eng.run()
            return eng.now

        t1, t2 = run(1), run(2)
        assert t2 > 1.5 * t1
