"""Every paper-anchored calibration target must hold (regression guard).

If a change to the hardware cost models drifts away from the paper's
numbers, this is the test that says so — with the anchor's source quoted
in the failure message.
"""

import pytest

from repro.bench.calibration import TARGETS, check_all, report


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
def test_calibration_target(target):
    measured = target.measured()
    assert target.ok(), (
        f"{target.name}: paper {target.paper_value} {target.unit} "
        f"({target.source}), measured {measured:.2f}, tolerance "
        f"{target.rel_tol:.0%}"
    )


def test_report_renders():
    text = report()
    assert "calibration report" in text
    assert all(t.name in text for t in TARGETS)
    assert "✗" not in text


def test_check_all_shape():
    results = check_all()
    assert len(results) == len(TARGETS)
    assert all(isinstance(ok, bool) for _, _, ok in results)
