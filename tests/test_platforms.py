"""Tests for the comparison-platform cost models (repro.platforms)."""

import pytest

from repro._units import KiB, MiB, to_mib_s
from repro.platforms import (
    TABLE1,
    CrayT3E,
    LamFastEthernet,
    LamSharedMemory,
    SunFireSharedMemory,
    analytic_platforms,
    platform_by_id,
)


class TestCatalogue:
    def test_table1_complete(self):
        assert [s.id for s in TABLE1] == [
            "C", "F-G", "F-s", "M-S", "M-s", "X-f", "X-s", "S-M", "S-s"
        ]

    def test_sci_rows_marked_simulated(self):
        assert platform_by_id("M-S").simulated
        assert platform_by_id("M-s").simulated
        assert platform_by_id("C").model is not None

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            platform_by_id("nope")

    def test_analytic_platforms_filter(self):
        all_models = analytic_platforms()
        osc_models = analytic_platforms(osc_only=True)
        assert len(all_models) == 7
        assert {p.spec.id for p in osc_models} == {"C", "F-s", "X-f", "X-s"}

    def test_xs_put_deadlock_note(self):
        assert "deadlock" in platform_by_id("X-s").spec.note.lower()


class TestGenericModel:
    def test_contiguous_time_monotone(self):
        p = LamSharedMemory()
        assert p.contiguous_time(1 * KiB) < p.contiguous_time(1 * MiB)

    def test_bandwidth_approaches_peak(self):
        p = LamFastEthernet()
        assert p.contiguous_bandwidth(4 * MiB) == pytest.approx(
            to_mib_s(p.peak_bw), rel=0.05
        )

    def test_noncontig_never_faster_than_contiguous(self):
        for p in analytic_platforms():
            for blocksize in (8, 256, 4 * KiB, 64 * KiB):
                assert (
                    p.noncontig_bandwidth(256 * KiB, blocksize)
                    <= 1.01 * p.contiguous_bandwidth(256 * KiB)
                ), (p.spec.id, blocksize)

    def test_pack_time_per_block_overhead(self):
        p = LamSharedMemory()
        small_blocks = p.pack_time(64 * KiB, 8)
        big_blocks = p.pack_time(64 * KiB, 8 * KiB)
        assert small_blocks > big_blocks

    def test_invalid_inputs(self):
        p = CrayT3E()
        with pytest.raises(ValueError):
            p.contiguous_time(-1)
        with pytest.raises(ValueError):
            p.pack_time(100, 0)


class TestOSCModels:
    def test_unsupported_platform_raises(self):
        for pid in ("F-G", "S-M", "S-s"):
            with pytest.raises(NotImplementedError):
                platform_by_id(pid).model.osc_call_time(64)

    def test_get_costs_more_than_put(self):
        p = SunFireSharedMemory()
        assert p.osc_call_time(64, "get") > p.osc_call_time(64, "put")

    def test_lam_ethernet_caps_at_10(self):
        p = LamFastEthernet()
        assert p.osc_bandwidth(1 * MiB) <= 10.1

    def test_t3e_wobble_is_bounded(self):
        p = CrayT3E()
        smooth_ratio = []
        for size in (64, 128, 256, 512):
            base = to_mib_s(size / (p.osc_latency + size / p.osc_bw))
            smooth_ratio.append(p.osc_bandwidth(size) / base)
        assert all(0.8 <= r <= 1.2 for r in smooth_ratio)


class TestScaling:
    def test_t3e_flat(self):
        p = CrayT3E()
        values = [p.scaling_bandwidth(n) for n in (2, 8, 32)]
        assert max(values) == pytest.approx(min(values))

    def test_sunfire_declines_past_six(self):
        p = SunFireSharedMemory()
        assert p.scaling_bandwidth(8) < p.scaling_bandwidth(6)
        assert p.scaling_bandwidth(6) == pytest.approx(
            p.scaling_bandwidth(2), rel=0.05
        )

    def test_xeon_bus_limited(self):
        p = LamSharedMemory()
        four = p.scaling_bandwidth(4, access_size=4 * KiB)
        two = p.scaling_bandwidth(2, access_size=4 * KiB)
        assert four < 0.6 * two

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            CrayT3E().scaling_bandwidth(0)
