"""Tests for the application kernels (repro.apps) and the Subarray datatype."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import DOUBLE, INT, Cluster, Subarray
from repro.apps import CartDecomposition, DistributedSpMV, HaloExchanger
from repro.mpi.datatypes import DatatypeError
from repro.mpi.flatten import pack


class TestSubarray:
    def test_2d_selection_packs_correct_bytes(self):
        full = np.arange(4 * 6, dtype=np.float64).reshape(4, 6)
        sub = Subarray((4, 6), (2, 3), (1, 2), DOUBLE).commit()
        mem = full.reshape(-1).view(np.uint8)
        packed = pack(mem, 0, sub.flattened, 1).view(np.float64)
        assert np.array_equal(packed, full[1:3, 2:5].reshape(-1))

    def test_3d_face(self):
        full = np.arange(3 * 4 * 5, dtype=np.float64).reshape(3, 4, 5)
        sub = Subarray((3, 4, 5), (3, 4, 1), (0, 0, 2), DOUBLE).commit()
        mem = full.reshape(-1).view(np.uint8)
        packed = pack(mem, 0, sub.flattened, 1).view(np.float64)
        assert np.array_equal(packed, full[:, :, 2].reshape(-1))

    def test_full_selection_is_contiguous(self):
        sub = Subarray((4, 4), (4, 4), (0, 0), DOUBLE).commit()
        assert sub.is_contiguous

    def test_extent_covers_full_array(self):
        sub = Subarray((8, 8), (2, 2), (0, 0), INT)
        assert sub.extent == 64 * 4
        assert sub.size == 4 * 4

    def test_invalid_slices(self):
        with pytest.raises(DatatypeError):
            Subarray((4,), (5,), (0,), INT)
        with pytest.raises(DatatypeError):
            Subarray((4,), (2,), (3,), INT)
        with pytest.raises(DatatypeError):
            Subarray((4, 4), (2,), (0, 0), INT)

    def test_dim_strides_row_major(self):
        sub = Subarray((3, 4, 5), (1, 1, 1), (0, 0, 0), DOUBLE)
        assert sub.dim_strides() == (160, 40, 8)

    def test_send_recv_with_subarray(self):
        send_t = Subarray((6, 6), (2, 2), (2, 2), DOUBLE).commit()
        recv_t = Subarray((6, 6), (2, 2), (0, 0), DOUBLE).commit()

        def program(ctx):
            comm = ctx.comm
            buf = ctx.alloc(6 * 6 * 8)
            grid = buf.as_array(np.float64).reshape(6, 6)
            if comm.rank == 0:
                grid[2:4, 2:4] = [[1.0, 2.0], [3.0, 4.0]]
                yield from comm.send(buf, dest=1, tag=0, datatype=send_t, count=1)
                return None
            yield from comm.recv(buf, source=0, tag=0, datatype=recv_t, count=1)
            return grid[0:2, 0:2].copy()

        run = Cluster(n_nodes=2).run(program)
        assert np.array_equal(run.results[1], [[1.0, 2.0], [3.0, 4.0]])


class TestCartDecomposition:
    def test_coords_roundtrip(self):
        cart = CartDecomposition((2, 3))
        for rank in range(6):
            assert cart.rank_at(cart.coords(rank)) == rank

    def test_neighbours_non_periodic(self):
        cart = CartDecomposition((2, 2))
        assert cart.neighbour(0, 0, +1) == 2
        assert cart.neighbour(0, 0, -1) is None
        assert cart.neighbour(3, 1, -1) == 2

    def test_neighbours_periodic(self):
        cart = CartDecomposition((3,), periodic=True)
        assert cart.neighbour(0, 0, -1) == 2
        assert cart.neighbour(2, 0, +1) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            CartDecomposition((0, 2))


class TestHaloExchanger:
    def run_exchange(self, proc_shape, interior, halo=1, periodic=False):
        def program(ctx):
            comm = ctx.comm
            ex = HaloExchanger(comm, proc_shape, interior, halo=halo,
                               periodic=periodic)
            buf = ctx.alloc(ex.nbytes)
            grid = ex.view(buf)
            grid[:] = -1.0
            ex.interior_view(buf)[:] = comm.rank + 1
            yield from ex.exchange(buf)
            return grid.copy()

        nprocs = 1
        for p in proc_shape:
            nprocs *= p
        return Cluster(n_nodes=nprocs).run(program).results

    def test_2d_halo_values(self):
        grids = self.run_exchange((2, 2), (4, 4))
        # Rank 0 (top-left): lower halo row comes from rank 2 (value 3),
        # right halo column from rank 1 (value 2); corners untouched (-1).
        g0 = grids[0]
        assert (g0[-1, 1:-1] == 3.0).all()
        assert (g0[1:-1, -1] == 2.0).all()
        assert (g0[0, 1:-1] == -1.0).all()   # no north neighbour
        assert g0[0, 0] == -1.0

    def test_1d_periodic_ring(self):
        grids = self.run_exchange((4,), (8,), periodic=True)
        for rank, grid in enumerate(grids):
            left = (rank - 1) % 4 + 1
            right = (rank + 1) % 4 + 1
            assert grid[0] == left
            assert grid[-1] == right

    def test_3d_exchange(self):
        grids = self.run_exchange((2, 1, 2), (4, 4, 4))
        g0 = grids[0]
        # +z neighbour of rank 0 in a (2,1,2) grid is rank 1.
        assert (g0[1:-1, 1:-1, -1] == 2.0).all()
        # +x neighbour is rank 2.
        assert (g0[-1, 1:-1, 1:-1] == 3.0).all()

    def test_wide_halo(self):
        grids = self.run_exchange((2,), (6,), halo=2)
        g0, g1 = grids
        assert (g0[-2:] == 2.0).all()
        assert (g1[:2] == 1.0).all()

    def test_validation(self):
        def program(ctx):
            with pytest.raises(ValueError):
                HaloExchanger(ctx.comm, (3,), (8,))  # grid needs 3 ranks
            with pytest.raises(ValueError):
                HaloExchanger(ctx.comm, (2,), (8, 8))  # rank mismatch
            with pytest.raises(ValueError):
                HaloExchanger(ctx.comm, (2,), (8,), halo=0)
            return "ok"
            yield  # pragma: no cover

        run = Cluster(n_nodes=2).run(program)
        assert run.results == ["ok", "ok"]

    def test_face_count(self):
        def program(ctx):
            ex = HaloExchanger(ctx.comm, (2, 2), (4, 4))
            return ex.face_count()
            yield  # pragma: no cover

        run = Cluster(n_nodes=4).run(program)
        assert run.results == [2, 2, 2, 2]  # corner ranks: 2 faces each


class TestDistributedSpMV:
    def make_problem(self, n=128, seed=3):
        rng = np.random.default_rng(seed)
        matrix = sp.random(n, n, density=0.05, random_state=rng, format="csr")
        x = rng.random(n)
        return matrix, x

    @pytest.mark.parametrize("shared", [True, False])
    def test_multiply_matches_scipy(self, shared):
        matrix, x = self.make_problem()

        def program(ctx):
            spmv = yield from DistributedSpMV.create(ctx, matrix, shared=shared)
            y_local = yield from spmv.multiply(x)
            return (spmv.lo, spmv.hi, y_local)

        run = Cluster(n_nodes=4).run(program)
        expected = matrix @ x
        for lo, hi, y_local in run.results:
            assert np.allclose(y_local, expected[lo:hi])

    def test_multiply_transpose_matches_scipy(self):
        matrix, x = self.make_problem()

        def program(ctx):
            spmv = yield from DistributedSpMV.create(ctx, matrix)
            yt_local = yield from spmv.multiply_transpose(x)
            return (spmv.lo, spmv.hi, yt_local)

        run = Cluster(n_nodes=4).run(program)
        expected = matrix.T @ x
        for lo, hi, yt_local in run.results:
            assert np.allclose(yt_local, expected[lo:hi])

    def test_rectangular_rejected(self):
        matrix = sp.random(8, 10, density=0.2, format="csr")

        def program(ctx):
            yield from DistributedSpMV.create(ctx, matrix)

        with pytest.raises(ValueError):
            Cluster(n_nodes=2).run(program)
