"""Distributed sparse matrix-vector products over one-sided communication.

The paper's Sec. 4 motivation made reusable: a row-block-distributed CSR
matrix whose vector accesses go through an MPI window — remote entries are
*gotten* one-sidedly (no receiver involvement), transpose products
*accumulate* into remote result windows.

Usage (inside a rank program)::

    spmv = yield from DistributedSpMV.create(ctx, matrix, shared=True)
    y_local = yield from spmv.multiply(x_global_initial)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..mpi.datatypes import DOUBLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.builder import RankContext

__all__ = ["DistributedSpMV"]


class DistributedSpMV:
    """Row-block-distributed SpMV with window-based vector access."""

    def __init__(self, ctx: "RankContext", matrix: sp.csr_matrix, lo: int,
                 hi: int, x_win, y_win):
        self.ctx = ctx
        self.comm = ctx.comm
        self.n = matrix.shape[1]
        self.local_rows = matrix[lo:hi]
        self.lo, self.hi = lo, hi
        self.x_win = x_win
        self.y_win = y_win
        self.block = self.n // self.comm.size

    # -- construction (collective) ---------------------------------------------------

    @classmethod
    def create(cls, ctx: "RankContext", matrix: sp.csr_matrix,
               shared: bool = True):
        """DES generator: collectively build the distributed operator.

        ``matrix`` must be identical on every rank (it is sliced locally);
        ``shared`` selects SCI-shared vs private window memory.
        """
        comm = ctx.comm
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("square matrices only")
        block = n // comm.size
        lo = comm.rank * block
        hi = n if comm.rank == comm.size - 1 else lo + block
        x_win = yield from comm.win_create((hi - lo) * 8, shared=shared)
        y_win = yield from comm.win_create((hi - lo) * 8, shared=shared)
        return cls(ctx, sp.csr_matrix(matrix), lo, hi, x_win, y_win)

    def owner_bounds(self, owner: int) -> tuple[int, int]:
        lo = owner * self.block
        hi = self.n if owner == self.comm.size - 1 else lo + self.block
        return lo, hi

    # -- operations --------------------------------------------------------------------

    def scatter_x(self, x_global: np.ndarray):
        """DES generator: load this rank's slice of x into its window."""
        self.x_win.local_view().view(np.float64)[:] = x_global[self.lo : self.hi]
        yield from self.x_win.fence()

    def gather_remote_x(self) -> "np.ndarray":
        """DES generator: fetch every remote x entry my rows reference."""
        comm = self.comm
        needed = np.unique(self.local_rows.indices)
        x = np.zeros(self.n)
        for owner in range(comm.size):
            o_lo, o_hi = self.owner_bounds(owner)
            cols = needed[(needed >= o_lo) & (needed < o_hi)]
            if cols.size == 0:
                continue
            if owner == comm.rank:
                local = self.x_win.local_view().view(np.float64)
                x[cols] = local[cols - o_lo]
                continue
            # Coalesce adjacent columns into ranges to reduce call count
            # (the "gathering multiple small accesses" optimization the
            # MPI-2 synchronization semantics allow, Sec. 4.1).
            start = prev = int(cols[0])
            runs = []
            for col in cols[1:]:
                col = int(col)
                if col == prev + 1:
                    prev = col
                    continue
                runs.append((start, prev))
                start = prev = col
            runs.append((start, prev))
            for run_lo, run_hi in runs:
                nbytes = (run_hi - run_lo + 1) * 8
                data = yield from self.x_win.get(
                    nbytes, owner, (run_lo - o_lo) * 8
                )
                x[run_lo : run_hi + 1] = data.view(np.float64)
        yield from self.x_win.fence()
        return x

    def multiply(self, x_global: np.ndarray):
        """DES generator: y = A x; returns this rank's y slice."""
        yield from self.scatter_x(np.asarray(x_global, dtype=np.float64))
        x = yield from self.gather_remote_x()
        y_local = self.local_rows @ x
        return y_local

    def multiply_transpose(self, x_global: np.ndarray):
        """DES generator: y = A^T x via one-sided accumulation;
        returns this rank's slice of y."""
        comm = self.comm
        self.y_win.local_view().view(np.float64)[:] = 0.0
        yield from self.y_win.fence()
        x_slice = np.asarray(x_global[self.lo : self.hi], dtype=np.float64)
        contrib = self.local_rows.T @ x_slice
        for owner in range(comm.size):
            o_lo, o_hi = self.owner_bounds(owner)
            piece = contrib[o_lo:o_hi]
            if not piece.any():
                continue
            yield from self.y_win.accumulate(piece, owner, 0, op="sum",
                                             datatype=DOUBLE)
        yield from self.y_win.fence()
        return np.array(self.y_win.local_view().view(np.float64), copy=True)
