"""Reusable application kernels built on the public API.

* :mod:`~repro.apps.halo` — n-D halo exchange with Subarray datatypes (the
  paper's motivating grid-code pattern);
* :mod:`~repro.apps.spmv` — distributed sparse matrix-vector products over
  one-sided communication (the paper's Sec. 4 motivation).
"""

from .halo import CartDecomposition, HaloExchanger
from .spmv import DistributedSpMV

__all__ = ["CartDecomposition", "DistributedSpMV", "HaloExchanger"]
