"""Reusable n-dimensional halo exchange built on Subarray datatypes.

The paper motivates non-contiguous datatypes with grid-code boundary
exchanges (Sec. 3, Fig. 2).  :class:`HaloExchanger` packages that pattern:
give it a communicator, a Cartesian process grid and a local interior
shape, and it builds the per-face :class:`~repro.mpi.datatypes.Subarray`
types over a halo-padded local array and runs the full exchange with
non-blocking sends/receives.

Example (2-D, 5-point stencil)::

    halo = HaloExchanger(comm, proc_shape=(2, 2), interior=(64, 64))
    buf = ctx.alloc(halo.nbytes)
    grid = halo.view(buf)                 # (66, 66) ndarray incl. halo ring
    ...initialize grid[1:-1, 1:-1]...
    yield from halo.exchange(buf)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..mpi.datatypes import DOUBLE, BasicType, Subarray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..memlib import Buffer
    from ..mpi.comm import Communicator

__all__ = ["CartDecomposition", "HaloExchanger"]

#: Tag space reserved for halo traffic.
HALO_TAG = 1 << 16


class CartDecomposition:
    """A Cartesian process grid (C-order rank numbering)."""

    def __init__(self, proc_shape: Sequence[int], periodic: bool = False):
        if not proc_shape or any(p < 1 for p in proc_shape):
            raise ValueError(f"invalid process grid {proc_shape}")
        self.proc_shape = tuple(proc_shape)
        self.periodic = periodic
        self.size = 1
        for p in self.proc_shape:
            self.size *= p

    def coords(self, rank: int) -> tuple[int, ...]:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside grid of {self.size}")
        out = []
        for p in reversed(self.proc_shape):
            out.append(rank % p)
            rank //= p
        return tuple(reversed(out))

    def rank_at(self, coords: Sequence[int]) -> int:
        rank = 0
        for c, p in zip(coords, self.proc_shape):
            if not 0 <= c < p:
                raise ValueError(f"coordinate {c} outside dimension {p}")
            rank = rank * p + c
        return rank

    def neighbour(self, rank: int, dim: int, direction: int) -> Optional[int]:
        """Rank of the neighbour one step along ``dim`` (+1/-1), or None."""
        coords = list(self.coords(rank))
        coords[dim] += direction
        p = self.proc_shape[dim]
        if self.periodic:
            coords[dim] %= p
        elif not 0 <= coords[dim] < p:
            return None
        return self.rank_at(coords)


class HaloExchanger:
    """Halo exchange over a block-decomposed n-D grid."""

    def __init__(
        self,
        comm: "Communicator",
        proc_shape: Sequence[int],
        interior: Sequence[int],
        halo: int = 1,
        element: BasicType = DOUBLE,
        periodic: bool = False,
    ):
        if len(proc_shape) != len(interior):
            raise ValueError("proc_shape and interior must have equal rank")
        if halo < 1:
            raise ValueError(f"halo width must be >= 1, got {halo}")
        if any(s < halo for s in interior):
            raise ValueError("interior must be at least as wide as the halo")
        self.comm = comm
        self.cart = CartDecomposition(proc_shape, periodic=periodic)
        if self.cart.size != comm.size:
            raise ValueError(
                f"process grid {tuple(proc_shape)} needs {self.cart.size} "
                f"ranks, communicator has {comm.size}"
            )
        self.interior = tuple(interior)
        self.halo = halo
        self.element = element
        #: Local array shape including the halo ring.
        self.padded = tuple(s + 2 * halo for s in self.interior)

        # Per (dim, direction): the Subarray types for the face we send
        # (the interior boundary slab) and the face we receive into (the
        # halo slab), plus the neighbour rank.
        self._faces: list[tuple[int, int, Optional[int], Subarray, Subarray]] = []
        rank = comm.rank
        for dim in range(len(self.interior)):
            for direction in (-1, +1):
                peer = self.cart.neighbour(rank, dim, direction)
                send_t, recv_t = self._face_types(dim, direction)
                self._faces.append((dim, direction, peer, send_t, recv_t))

    @property
    def nbytes(self) -> int:
        """Bytes of the halo-padded local array."""
        n = self.element.size
        for p in self.padded:
            n *= p
        return n

    def view(self, buf: "Buffer") -> np.ndarray:
        """Typed ndarray view of the padded local array."""
        return buf.as_array(self.element.np_dtype).reshape(self.padded)

    def interior_view(self, buf: "Buffer") -> np.ndarray:
        """View of the interior (halo ring excluded)."""
        view = self.view(buf)
        sel = tuple(slice(self.halo, -self.halo) for _ in self.padded)
        return view[sel]

    def _face_types(self, dim: int, direction: int) -> tuple[Subarray, Subarray]:
        h = self.halo
        subsizes = [s for s in self.interior]
        subsizes[dim] = h
        send_starts = [h] * len(self.padded)
        recv_starts = [h] * len(self.padded)
        if direction == -1:
            send_starts[dim] = h               # first interior slab
            recv_starts[dim] = 0               # lower halo
        else:
            send_starts[dim] = self.padded[dim] - 2 * h  # last interior slab
            recv_starts[dim] = self.padded[dim] - h      # upper halo
        send_t = Subarray(self.padded, tuple(subsizes), tuple(send_starts),
                          self.element).commit()
        recv_t = Subarray(self.padded, tuple(subsizes), tuple(recv_starts),
                          self.element).commit()
        return send_t, recv_t

    def exchange(self, buf: "Buffer"):
        """DES generator: one full halo exchange on ``buf``."""
        if buf.nbytes < self.nbytes:
            raise ValueError(
                f"buffer of {buf.nbytes} B too small for padded grid of "
                f"{self.nbytes} B"
            )
        requests = []
        for dim, direction, peer, send_t, recv_t in self._faces:
            if peer is None:
                continue
            # Tag disambiguates dimension and direction; the receive must
            # use the sender's direction (our -1 face pairs their +1 face).
            send_tag = HALO_TAG + 4 * dim + (0 if direction == -1 else 1)
            recv_tag = HALO_TAG + 4 * dim + (1 if direction == -1 else 0)
            requests.append(self.comm.isend(
                buf, peer, tag=send_tag, datatype=send_t, count=1
            ))
            requests.append(self.comm.irecv(
                buf, source=peer, tag=recv_tag, datatype=recv_t, count=1
            ))
        for req in requests:
            yield from req.wait()

    def face_count(self) -> int:
        """Number of active (non-boundary) faces of this rank."""
        return sum(1 for _, _, peer, _, _ in self._faces if peer is not None)
