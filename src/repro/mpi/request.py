"""Nonblocking-communication requests (MPI_Request)."""

from __future__ import annotations

from typing import Any

from ..sim import Engine, Process

__all__ = ["Request"]


class Request:
    """Handle for an in-flight nonblocking operation.

    Wraps the DES process running the blocking protocol; ``wait()`` is a
    generator that joins it and returns its result (a Status for receives,
    ``None`` for sends).
    """

    def __init__(self, engine: Engine, process: Process):
        self.engine = engine
        self._process = process

    @property
    def complete(self) -> bool:
        return self._process.triggered

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: (done, result-or-None)."""
        if self._process.triggered:
            if not self._process.ok:
                raise self._process.value
            return True, self._process.value
        return False, None

    def wait(self):
        """DES generator: block until the operation completes."""
        result = yield self._process
        return result

    @staticmethod
    def waitall(requests: list["Request"]):
        """DES generator: wait for every request; returns their results."""
        results = []
        for req in requests:
            results.append((yield req._process))
        return results


class PersistentRequest:
    """A reusable communication request (MPI_Send_init / MPI_Recv_init).

    ``start()`` launches one instance of the operation and returns the
    active :class:`Request`; a persistent request may be started again
    once the previous instance completed.
    """

    def __init__(self, engine: Engine, factory, name: str = "persistent"):
        self.engine = engine
        self._factory = factory
        self._name = name
        self._active: Request | None = None

    @property
    def active(self) -> bool:
        return self._active is not None and not self._active.complete

    def start(self) -> Request:
        if self.active:
            raise RuntimeError(
                f"persistent request {self._name!r} started while still active"
            )
        proc = self.engine.process(self._factory(), name=self._name)
        self._active = Request(self.engine, proc)
        return self._active

    def wait(self):
        """DES generator: wait for the currently started instance."""
        if self._active is None:
            raise RuntimeError(f"persistent request {self._name!r} never started")
        result = yield from self._active.wait()
        return result
