"""Control messages and matching queues of the point-to-point device.

Control packets are small descriptors written into the receiver's control
packet ring; here they are Python objects delivered through a DES channel,
with the write/poll costs charged by the engine.  Message matching follows
MPI semantics: (source, tag) with wildcards, arrival order preserved per
sender (non-overtaking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ...sim import Channel, Engine, Event

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "ShortMsg",
    "EagerMsg",
    "RndvRequest",
    "CreditReturn",
    "MatchQueues",
    "PostedRecv",
]

#: Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE: int = -1
ANY_TAG: int = -1


@dataclass(frozen=True)
class Envelope:
    """Match information carried by every message.

    ``context`` isolates communicators (MPI context id): messages only
    match receives posted on the same context.
    """

    source: int
    tag: int
    context: int = 0

    def matches(self, want_source: int, want_tag: int, want_context: int = 0) -> bool:
        return (
            self.context == want_context
            and (want_source in (ANY_SOURCE, self.source))
            and (want_tag in (ANY_TAG, self.tag))
        )


@dataclass
class ShortMsg:
    """Payload travels inline in the control packet.

    ``sync_reply``: set for synchronous-mode sends; the receiver posts an
    acknowledgement into it when the message is matched.
    """

    envelope: Envelope
    data: np.ndarray  # packed bytes
    sync_reply: Optional[Channel] = None


@dataclass
class EagerMsg:
    """Payload already written into the receiver's eager slot."""

    envelope: Envelope
    slot_offset: int
    nbytes: int
    slot_index: int
    sync_reply: Optional[Channel] = None


@dataclass
class RndvRequest:
    """Rendezvous handshake: announce a large message."""

    envelope: Envelope
    nbytes: int
    #: Channel the sender listens on for the ack and per-chunk credits.
    reply: Channel


@dataclass
class CreditReturn:
    """Receiver returns an eager slot credit to the sender."""

    slot_index: int


@dataclass
class PostedRecv:
    """A receive (or probe) posted by the application, awaiting a match."""

    source: int
    tag: int
    context: int
    event: Event  # fires with the matched message


class MatchQueues:
    """Posted-receive and unexpected-message queues of one rank."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._posted: list[PostedRecv] = []
        self._probes: list[PostedRecv] = []
        self._unexpected: list[Any] = []

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    @property
    def posted_count(self) -> int:
        return len(self._posted)

    def deliver(self, message: Any) -> None:
        """An incoming message: satisfy pending probes (non-consuming),
        then hand to the oldest matching posted recv or queue as
        unexpected."""
        env: Envelope = message.envelope
        still_waiting = []
        for probe in self._probes:
            if env.matches(probe.source, probe.tag, probe.context):
                probe.event.succeed(message)
            else:
                still_waiting.append(probe)
        self._probes = still_waiting
        for i, posted in enumerate(self._posted):
            if env.matches(posted.source, posted.tag, posted.context):
                del self._posted[i]
                posted.event.succeed(message)
                return
        self._unexpected.append(message)

    def post(self, source: int, tag: int, context: int = 0) -> Event:
        """Post a receive; the event fires with the matching message."""
        for i, message in enumerate(self._unexpected):
            if message.envelope.matches(source, tag, context):
                del self._unexpected[i]
                ev = Event(self.engine, name="recv-match")
                ev.succeed(message)
                return ev
        posted = PostedRecv(source, tag, context, Event(self.engine, name="recv-match"))
        self._posted.append(posted)
        return posted.event

    def post_probe(self, source: int, tag: int, context: int = 0) -> Event:
        """Blocking-probe registration: fires with a matching message
        *without consuming it* (MPI_Probe semantics)."""
        for message in self._unexpected:
            if message.envelope.matches(source, tag, context):
                ev = Event(self.engine, name="probe-match")
                ev.succeed(message)
                return ev
        probe = PostedRecv(source, tag, context, Event(self.engine, name="probe-match"))
        self._probes.append(probe)
        return probe.event

    def probe(self, source: int, tag: int, context: int = 0) -> Optional[Any]:
        """Non-destructive, non-blocking check (MPI_Iprobe semantics)."""
        for message in self._unexpected:
            if message.envelope.matches(source, tag, context):
                return message
        return None
