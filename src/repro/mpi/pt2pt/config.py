"""Protocol configuration and software-cost constants of the MPI device.

This is the simulation analogue of SCI-MPICH's device configuration file:
protocol thresholds (short/eager/rendezvous), the rendezvous chunk size
(which the paper says should stay below the L2 size to avoid cache-line
thrashing with direct_pack_ff, Sec. 3.3.2), and the per-block software
costs that differentiate the *generic* (recursive traversal) pack from the
*direct_pack_ff* (flat stack) pack — the paper's first claimed win.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..._units import KiB

__all__ = ["ProtocolConfig", "NonContigMode", "DEFAULT_PROTOCOL"]


class NonContigMode:
    """How non-contiguous datatypes are transmitted."""

    #: Pack into a local buffer, send contiguously, unpack at the receiver
    #: (the generic MPICH path; Fig. 4 top).
    GENERIC = "generic"
    #: Pack directly into the remote packet buffer (Fig. 4 bottom).
    DIRECT = "direct"
    #: Use DIRECT when the smallest basic block is >= direct_min_block.
    AUTO = "auto"
    #: Pack locally, then ship rendezvous chunks with the adapter's DMA
    #: engine instead of PIO stores — the paper's outlook experiment
    #: ("it will be interesting to evaluate the possibilities of
    #: non-contiguous data transfers with DMA-based interconnects",
    #: Sec. 6).  Short/eager messages still go via PIO (DMA setup costs
    #: dwarf them).
    DMA = "dma"


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the point-to-point device."""

    #: Payloads up to this travel inside the control packet.
    short_threshold: int = 128
    #: Payloads up to this go through preallocated eager slots.
    eager_threshold: int = 16 * KiB
    #: Eager slots per (sender, receiver) pair (flow-control credits).
    eager_slots: int = 2
    #: Rendezvous chunk ("handshake cycle") size; the paper requires it
    #: below the L2 size for direct_pack_ff (Sec. 3.3.2).
    rendezvous_chunk: int = 64 * KiB
    #: How non-contiguous sends are handled.
    noncontig_mode: str = NonContigMode.DIRECT
    #: Minimal basic-block size for direct packing in AUTO mode — the
    #: footnote-1 knob ("we have set this to zero for this experiment").
    direct_min_block: int = 0

    # -- software costs (µs) -------------------------------------------------------
    #: Per-basic-element cost of the generic *recursive* datatype
    #: traversal (the old MPICH segment code walks element by element —
    #: "the time consuming repeated recursive traversal of the datatype
    #: tree", Sec. 3.3.2).
    generic_pack_element_cost: float = 0.05
    #: Additional per-block cost of the generic traversal.
    generic_pack_block_cost: float = 0.04
    #: Width of one basic element for the generic element-cost accounting.
    generic_element_size: int = 8
    #: Per-block cost of the direct_pack_ff stack loop (two nested loops,
    #: "only simple stack (array) operations").
    direct_pack_block_cost: float = 0.015
    #: Basic blocks smaller than this defeat the adapter's stream
    #: gathering when written block-by-block (each sub-line burst becomes
    #: its own SCI transaction) — the reason the generic technique wins at
    #: 8-byte blocks inter-node (Sec. 3.4).
    direct_gather_min_block: int = 16
    #: Extra per-transaction cost of those non-gathered sub-line bursts
    #: (stream-buffer allocate/flush per burst).
    direct_gather_miss_cost: float = 0.08
    #: Cost of posting one control packet (remote write of a descriptor).
    ctrl_send_cost: float = 0.45
    #: Same, for an intra-node (shared-memory) control packet.
    ctrl_send_cost_local: float = 0.15
    #: Receiver-side polling latency before a control packet is noticed.
    poll_latency: float = 0.9
    #: Fixed software overhead per MPI call (argument checks, matching).
    call_overhead: float = 0.25

    # -- one-sided communication (Sec. 4.2) ------------------------------------------
    #: Per-RMA-call software overhead (window checks, address translation).
    osc_call_overhead: float = 0.30
    #: Above this size a direct MPI_Get is converted into a *remote-put*
    #: performed by the target ("direct reading will only be effective up
    #: to a certain amount of data").
    remote_put_threshold: int = 2 * KiB
    #: Size of each rank's response staging region for emulated/remote-put
    #: transfers (bigger gets are chunked through it).
    osc_response_size: int = 256 * KiB

    def with_mode(self, mode: str) -> "ProtocolConfig":
        return replace(self, noncontig_mode=mode)

    def replace(self, **kw) -> "ProtocolConfig":
        return replace(self, **kw)


DEFAULT_PROTOCOL = ProtocolConfig()
