"""Cost composition for the three non-contiguous transfer techniques.

These helpers translate datatype layout information into the stage costs
of the copy pipelines shown in Fig. 4:

* **generic** — recursive pack into a local buffer, contiguous transfer,
  recursive unpack (two extra copies);
* **direct_pack_ff** — pack straight into the remote packet buffer and
  unpack straight out of the local one (no extra copies, but per-block
  loop cost and, for sub-line blocks, degraded stream gathering);
* **contiguous** — the plain reference path.

All functions return durations in µs; none of them move bytes.
"""

from __future__ import annotations

from ...hardware.memory import MemorySystem
from ...hardware.params import NodeParams
from ...hardware.sci.transactions import AccessRun, remote_write_cost
from .config import ProtocolConfig

__all__ = [
    "pack_cost_generic",
    "pack_cost_direct",
    "local_chunk_copy_cost",
    "direct_remote_chunk_duration",
    "contiguous_remote_chunk_duration",
]


def _grouped_bytes_blocks(groups: list[tuple[int, int]]) -> tuple[int, int]:
    nbytes = sum(length * count for length, count in groups)
    nblocks = sum(count for _, count in groups)
    return nbytes, nblocks


def pack_cost_generic(
    memory: MemorySystem,
    groups: list[tuple[int, int]],
    config: ProtocolConfig,
) -> float:
    """Cost of the generic recursive pack (or unpack) of the given blocks.

    The old MPICH segment code the paper replaces walks the datatype tree
    recursively *per basic element*, so the cost has a per-element term,
    a per-block term, and cold main-memory streaming.
    """
    nbytes, nblocks = _grouped_bytes_blocks(groups)
    if nbytes == 0:
        return 0.0
    esize = config.generic_element_size
    nelements = sum(
        count * max(1, -(-length // esize)) for length, count in groups
    )
    return (
        memory.params.copy_call_overhead
        + nelements * config.generic_pack_element_cost
        + nblocks * config.generic_pack_block_cost
        + nbytes / memory.params.main_copy_bw
    )


def pack_cost_direct(
    memory: MemorySystem,
    groups: list[tuple[int, int]],
    config: ProtocolConfig,
) -> float:
    """Cost of the direct_pack_ff copy loop (pack or unpack) for blocks.

    Stack-driven, two nested loops: cheap per-block cost plus streaming.
    Mid-size blocks get the small cache-utilization bonus the paper
    observed intra-node (Sec. 3.4's "surpass" curiosity).
    """
    nbytes, nblocks = _grouped_bytes_blocks(groups)
    if nbytes == 0:
        return 0.0
    bw = memory.params.main_copy_bw
    lengths = {length for length, count in groups if count}
    if lengths and all(64 <= length <= 4096 for length in lengths):
        bw *= 1.1  # better cache utilization for mid-size blocked copies
    if len(lengths) > 1 and nbytes > memory.params.caches.l2_size:
        # Sec. 3.3.2: with differently sized basic blocks the ff accesses
        # are "no longer performed with strictly increasing addresses";
        # once one handshake cycle exceeds the L2 size, cache lines thrash.
        # The cure is keeping the rendezvous chunk below the L2 size.
        bw *= 0.5
    return (
        memory.params.copy_call_overhead
        + nblocks * config.direct_pack_block_cost
        + nbytes / bw
    )


def local_chunk_copy_cost(memory: MemorySystem, nbytes: int) -> float:
    """Cost of the protocol copy of one chunk (packet buffer <-> user).

    The chunk was just produced by the peer, so it is cache-cold: stream
    at main-memory bandwidth.
    """
    if nbytes == 0:
        return 0.0
    return memory.params.copy_call_overhead + nbytes / memory.params.main_copy_bw


def contiguous_remote_chunk_duration(
    params: NodeParams, dst_offset: int, nbytes: int, src_cached: bool
) -> float:
    """Stand-alone duration of a contiguous remote chunk write."""
    cost = remote_write_cost(
        AccessRun.contiguous(dst_offset, nbytes), params, src_cached=src_cached
    )
    return cost.duration + params.adapter.pio_op_overhead


def direct_remote_chunk_duration(
    params: NodeParams,
    memory: MemorySystem,
    dst_offset: int,
    groups: list[tuple[int, int]],
    config: ProtocolConfig,
    src_cached: bool,
) -> float:
    """Stand-alone duration of a direct_pack_ff chunk write.

    Pipeline stages: the stack-loop feed (reading the strided source),
    and the store/transaction stream.  Blocks below
    ``direct_gather_min_block`` are emitted as individual sub-line SCI
    transactions (stream gathering defeated); larger blocks stream like a
    contiguous write because their target addresses are consecutive.
    """
    nbytes, _ = _grouped_bytes_blocks(groups)
    if nbytes == 0:
        return 0.0
    feed = pack_cost_direct(memory, groups, config)
    if not src_cached:
        # The strided source is read from main memory a cache line at a
        # time; blocks smaller than a line fetch mostly gap bytes.
        line = memory.params.caches.line_size
        fetched = sum(
            count * (-(-length // line)) * line for length, count in groups
        )
        feed = max(feed, fetched / memory.params.main_read_bw)

    gathered_bytes = 0
    txn_time = 0.0
    adapter = params.adapter
    link = params.link
    for length, count in groups:
        if length == 0 or count == 0:
            continue
        if length < config.direct_gather_min_block:
            # One SCI transaction per block (plus wire time) and a
            # stream-buffer allocate/flush per burst.
            txn_time += count * (
                adapter.txn_overhead
                + config.direct_gather_miss_cost
                + (length + link.packet_header) / link.bandwidth
            )
        else:
            gathered_bytes += length * count
    if gathered_bytes:
        contiguous = remote_write_cost(
            AccessRun.contiguous(dst_offset, gathered_bytes),
            params,
            src_cached=True,  # the feed term already covers source reads
        )
        txn_time += max(contiguous.pci_time, contiguous.sci_time)

    duration = max(feed, txn_time) + adapter.pio_op_overhead
    return duration
