"""Point-to-point protocols over SCI packet buffers (S8)."""

from .config import DEFAULT_PROTOCOL, NonContigMode, ProtocolConfig
from .engine import MPIWorld, RankDevice, Status, TransferMode
from .messages import ANY_SOURCE, ANY_TAG, Envelope, MatchQueues

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "DEFAULT_PROTOCOL",
    "Envelope",
    "MPIWorld",
    "MatchQueues",
    "NonContigMode",
    "ProtocolConfig",
    "RankDevice",
    "Status",
    "TransferMode",
]
