"""The per-rank MPI device: short / eager / rendezvous protocols.

This mirrors the SCI-MPICH device architecture ([7], Sec. 2): every rank
exports packet buffers (control ring, eager slots, one rendezvous buffer);
senders write payloads *into the receiver's memory* with transparent PIO
stores and then post a control packet.  Three protocols by packed size:

* **short**  — payload inline in the control packet;
* **eager**  — payload into a pre-granted eager slot (credit flow control);
* **rendezvous** — handshake, then chunk-wise transfer through the
  receiver's rendezvous buffer with per-chunk credits ("handshake cycles",
  Sec. 3.3.2).

Non-contiguous datatypes take one of the Fig. 4 paths: *generic* (pack →
contiguous transfer → unpack) or *direct_pack_ff* (pack straight into the
remote buffer / unpack straight out of the local one).

Since the transport refactor, this module holds *protocol state and
matching* only: protocol/mode selection lives in
:class:`~repro.mpi.transport.policy.TransferPolicy` and every payload
byte moves through :class:`~repro.mpi.transport.scheduler.TransferScheduler`
/ :class:`~repro.mpi.transport.store.RemoteStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ...sim import Channel, Engine, Lock, Resource
from ...smi import SMIContext
from ..datatypes.base import Datatype
from ..errors import MPIError
from ..flatten import get_plan
from ..transport.policy import Protocol, TransferMode, TransferPolicy
from ..transport.scheduler import TransferScheduler
from .config import DEFAULT_PROTOCOL, ProtocolConfig
from .messages import (
    ANY_SOURCE,
    ANY_TAG,
    CreditReturn,
    EagerMsg,
    Envelope,
    MatchQueues,
    RndvRequest,
    ShortMsg,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...memlib import Buffer

__all__ = ["MPIWorld", "RankDevice", "Status", "TransferMode"]


@dataclass(frozen=True)
class Status:
    """Result of a completed receive (MPI_Status)."""

    source: int
    tag: int
    nbytes: int


class MPIWorld:
    """All per-rank devices plus shared configuration."""

    def __init__(self, smi: SMIContext, config: ProtocolConfig = DEFAULT_PROTOCOL,
                 policy: Optional[TransferPolicy] = None):
        self.smi = smi
        self.engine: Engine = smi.engine
        self.config = config
        #: The transport policy every device consults (pluggable; bound to
        #: this world's protocol config).
        self.policy = (policy or TransferPolicy(config)).bind(config)
        self.devices = [RankDevice(self, rank) for rank in range(smi.n_ranks)]

    @property
    def n_ranks(self) -> int:
        return self.smi.n_ranks

    def device(self, rank: int) -> "RankDevice":
        return self.devices[rank]


class RankDevice:
    """One rank's communication engine."""

    def __init__(self, world: MPIWorld, rank: int):
        self.world = world
        self.rank = rank
        self.engine = world.engine
        self.smi = world.smi
        self.node = world.smi.node_of(rank)
        self.config = world.config
        self.policy = world.policy
        self.match = MatchQueues(self.engine)
        self.service: Channel = Channel(self.engine, name=f"svc-r{rank}")

        cfg = self.config
        n = world.smi.n_ranks
        #: Eager slots: per sender, ``eager_slots`` slots of eager_threshold.
        self.eager_region = world.smi.create_region(
            rank, n * cfg.eager_slots * cfg.eager_threshold, label=f"eager-r{rank}"
        )
        #: Rendezvous buffer: one chunk, exclusively owned during a transfer.
        self.rndv_region = world.smi.create_region(
            rank, cfg.rendezvous_chunk, label=f"rndv-r{rank}"
        )
        self.rndv_lock = Lock(self.engine, name=f"rndv-lock-r{rank}")
        #: Sender-side credit pools per destination, and free slot indices.
        self._eager_credits: dict[int, Resource] = {}
        self._eager_free: dict[int, list[int]] = {}
        #: Hook the OSC layer installs to serve emulation requests.
        self.osc_handler: Optional[Callable[[Any], Any]] = None
        #: Optional tracer (see repro.trace.attach_tracer).
        self.tracer = None
        #: Perf counters.
        self.counters = {"sends": 0, "recvs": 0, "short": 0, "eager": 0, "rndv": 0}
        #: Recovery counters (nonzero only under an installed fault plan;
        #: see docs/FAULTS.md): chunk retransmits, torn-stream resumes,
        #: credit timeouts, segment remaps, strategy fallbacks, give-ups.
        self.recovery = {"retries": 0, "resumes": 0, "timeouts": 0,
                         "remaps": 0, "fallbacks": 0, "aborts": 0}
        #: The chunked data path (owns the RemoteStore and chunk stats).
        self.scheduler = TransferScheduler(self)
        self.store = self.scheduler.store

        self.engine.process(self._service_loop(), name=f"svc-r{rank}", daemon=True)

    def _trace(self, kind: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.record(self.engine.now, self.rank, kind, **detail)

    # -- plumbing ----------------------------------------------------------------

    def _service_loop(self):
        """The control-packet poll loop / interrupt handler of this rank."""
        while True:
            msg = yield self.service.get()
            yield self.engine.timeout(self.config.poll_latency)
            if isinstance(msg, (ShortMsg, EagerMsg, RndvRequest)):
                self.match.deliver(msg)
            elif isinstance(msg, CreditReturn):
                peer, slot = msg.slot_index
                self._eager_free[peer].append(slot)
                self._eager_credits[peer].release()
            elif self.osc_handler is not None:
                result = self.osc_handler(msg)
                if result is not None and hasattr(result, "send"):
                    yield from result
            else:
                raise MPIError(f"rank {self.rank}: unhandled control message {msg!r}")

    def _ctrl_cost(self, dst: int) -> float:
        if self.smi.same_node(self.rank, dst):
            return self.config.ctrl_send_cost_local
        return self.config.ctrl_send_cost

    def send_ctrl(self, dst: int, msg: Any, to_channel: Optional[Channel] = None):
        """Post a control packet to ``dst`` (its service queue by default).

        Control packets are remote writes too: the connection check here
        is the "connection monitoring and transfer checking" Sec. 2 calls
        for on a cable-based interconnect.
        """
        if not self.smi.same_node(self.rank, dst):
            src_node = self.node.node_id
            dst_node = self.smi.node_of(dst).node_id
            if not self.world.smi.fabric.ping(src_node, dst_node):
                from ...hardware.sci.fabric import SCIConnectionError

                raise SCIConnectionError(
                    f"control packet {self.rank}->{dst}: peer unreachable"
                )
        yield self.engine.timeout(self._ctrl_cost(dst))
        target = to_channel if to_channel is not None else self.world.device(dst).service
        target.put(msg)

    def _eager_pool(self, dst: int) -> tuple[Resource, list[int]]:
        if dst not in self._eager_credits:
            self._eager_credits[dst] = Resource(
                self.engine, capacity=self.config.eager_slots, name=f"eager-{self.rank}->{dst}"
            )
            self._eager_free[dst] = list(range(self.config.eager_slots))
        return self._eager_credits[dst], self._eager_free[dst]

    # -- message geometry ------------------------------------------------------------

    @staticmethod
    def _resolve_segment(plan, segment: Optional[tuple[int, int]]) -> tuple[int, int]:
        """Validated ``(stream offset, nbytes)`` of the transfer."""
        if segment is None:
            return 0, plan.total
        seg_off, seg_len = segment
        if seg_off < 0 or seg_len < 0 or seg_off + seg_len > plan.total:
            raise MPIError(
                f"segment [{seg_off}, {seg_off + seg_len}) outside packed "
                f"stream of {plan.total} B"
            )
        return seg_off, seg_len

    def _message(self, buf: "Buffer", datatype: Optional[Datatype],
                 count: Optional[int], segment: Optional[tuple[int, int]]):
        """Common send/recv prologue: plan + stream segment geometry."""
        from ..datatypes.basic import BYTE

        dtype = datatype if datatype is not None else BYTE
        dtype.commit()
        ft = dtype.flattened
        if count is None:
            if not dtype.is_contiguous:
                raise MPIError("count is required for non-contiguous datatypes")
            count = buf.nbytes // dtype.size if dtype.size else 0
        plan = get_plan(ft, count)
        seg_off, total = self._resolve_segment(plan, segment)
        return dtype, ft, count, plan, seg_off, total

    # -- send ------------------------------------------------------------------------

    def send(self, buf: "Buffer", dest: int, tag: int = 0,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             context: int = 0, sync: bool = False,
             segment: Optional[tuple[int, int]] = None):
        """Blocking send (DES generator).

        ``sync=True`` gives MPI_Ssend semantics: the call completes only
        once the receiver has matched the message.  ``segment`` restricts
        the transfer to a byte range of the packed stream (used by the
        chunked collectives; both sides must agree on the range).
        """
        if not 0 <= dest < self.world.n_ranks:
            raise MPIError(f"invalid destination rank {dest}")
        dtype, ft, count, plan, seg_off, total = self._message(
            buf, datatype, count, segment
        )
        mem = buf.space.mem
        base = buf.base
        self.counters["sends"] += 1
        yield self.engine.timeout(self.config.call_overhead)

        mode = self.policy.transfer_mode(dtype)
        env = Envelope(self.rank, tag, context)
        src_cached = self.policy.src_cached(total, self.node)
        sync_reply = Channel(self.engine, name="ssend-ack") if sync else None
        self._trace("send.begin", dest=dest, tag=tag, nbytes=total, mode=mode)

        scheduler = self.scheduler
        protocol = self.policy.protocol(total)
        if protocol == Protocol.SHORT:
            yield from scheduler.send_short(
                dest, env, mem, base, ft, plan, count, seg_off, total,
                dtype.is_contiguous, sync_reply,
            )
            self.counters["short"] += 1
        elif protocol == Protocol.EAGER:
            yield from scheduler.send_eager(
                dest, env, mem, base, ft, plan, count, seg_off, total, mode,
                src_cached, sync_reply,
            )
            self.counters["eager"] += 1
        else:
            # Rendezvous is inherently synchronous.
            yield from scheduler.send_rndv(
                dest, env, mem, base, ft, plan, count, seg_off, total, mode,
                src_cached,
            )
            self.counters["rndv"] += 1
            sync_reply = None
        if sync_reply is not None:
            yield sync_reply.get()
        self._trace("send.end", dest=dest, protocol=protocol, nbytes=total)

    # -- receive -----------------------------------------------------------------------

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              context: int = 0):
        """Blocking probe (DES generator); returns a Status without
        consuming the message (MPI_Probe)."""
        yield self.engine.timeout(self.config.call_overhead)
        msg = yield self.match.post_probe(source, tag, context)
        nbytes = (
            msg.data.nbytes if isinstance(msg, ShortMsg)
            else msg.nbytes
        )
        return Status(msg.envelope.source, msg.envelope.tag, nbytes)

    def recv(self, buf: "Buffer", source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             context: int = 0, segment: Optional[tuple[int, int]] = None):
        """Blocking receive (DES generator); returns a Status."""
        dtype, ft, count, plan, seg_off, capacity = self._message(
            buf, datatype, count, segment
        )
        mem = buf.space.mem
        base = buf.base
        self.counters["recvs"] += 1
        self._trace("recv.begin", source=source, tag=tag)
        yield self.engine.timeout(self.config.call_overhead)

        msg = yield self.match.post(source, tag, context)
        self._trace("recv.matched", source=msg.envelope.source,
                    message=type(msg).__name__)
        mode = self.policy.transfer_mode(dtype)
        contiguous = dtype.is_contiguous
        scheduler = self.scheduler

        if isinstance(msg, ShortMsg):
            n = yield from scheduler.recv_short(
                msg, mem, base, ft, plan, count, seg_off, capacity, contiguous
            )
            self._trace("recv.end", source=msg.envelope.source,
                        protocol="short", nbytes=n)
            return Status(msg.envelope.source, msg.envelope.tag, n)

        if isinstance(msg, EagerMsg):
            n = yield from scheduler.recv_eager(
                msg, mem, base, ft, plan, count, seg_off, capacity, mode,
                contiguous,
            )
            self._trace("recv.end", source=msg.envelope.source,
                        protocol="eager", nbytes=n)
            return Status(msg.envelope.source, msg.envelope.tag, n)

        assert isinstance(msg, RndvRequest)
        total = yield from scheduler.recv_rndv(
            msg, mem, base, ft, plan, count, seg_off, capacity, mode, contiguous
        )
        self._trace("recv.end", source=msg.envelope.source,
                    protocol="rndv", nbytes=total)
        return Status(msg.envelope.source, msg.envelope.tag, total)
