"""The per-rank MPI device: short / eager / rendezvous protocols.

This mirrors the SCI-MPICH device architecture ([7], Sec. 2): every rank
exports packet buffers (control ring, eager slots, one rendezvous buffer);
senders write payloads *into the receiver's memory* with transparent PIO
stores and then post a control packet.  Three protocols by packed size:

* **short**  — payload inline in the control packet;
* **eager**  — payload into a pre-granted eager slot (credit flow control);
* **rendezvous** — handshake, then chunk-wise transfer through the
  receiver's rendezvous buffer with per-chunk credits ("handshake cycles",
  Sec. 3.3.2).

Non-contiguous datatypes take one of the Fig. 4 paths: *generic* (pack →
contiguous transfer → unpack) or *direct_pack_ff* (pack straight into the
remote buffer / unpack straight out of the local one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from ...sim import Channel, Engine, Lock, Resource
from ...smi import SMIContext
from ..datatypes.base import Datatype
from ..errors import MessageTruncated, MPIError
from ..flatten import get_plan
from .config import DEFAULT_PROTOCOL, NonContigMode, ProtocolConfig
from .costs import (
    contiguous_remote_chunk_duration,
    direct_remote_chunk_duration,
    local_chunk_copy_cost,
    pack_cost_direct,
    pack_cost_generic,
)
from .messages import (
    ANY_SOURCE,
    ANY_TAG,
    CreditReturn,
    EagerMsg,
    Envelope,
    MatchQueues,
    RndvRequest,
    ShortMsg,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...memlib import Buffer

__all__ = ["MPIWorld", "RankDevice", "Status", "TransferMode"]


@dataclass(frozen=True)
class Status:
    """Result of a completed receive (MPI_Status)."""

    source: int
    tag: int
    nbytes: int


class TransferMode:
    CONTIGUOUS = "contiguous"
    GENERIC = NonContigMode.GENERIC
    DIRECT = NonContigMode.DIRECT
    DMA = NonContigMode.DMA


@dataclass
class RndvAck:
    """Receiver's answer to a rendezvous request."""

    chunk_channel: Channel
    region: Any  # the receiver's rendezvous SharedRegion
    chunk_size: int


@dataclass
class ChunkReady:
    index: int
    nbytes: int
    last: bool


@dataclass
class ChunkCredit:
    index: int


class MPIWorld:
    """All per-rank devices plus shared configuration."""

    def __init__(self, smi: SMIContext, config: ProtocolConfig = DEFAULT_PROTOCOL):
        self.smi = smi
        self.engine: Engine = smi.engine
        self.config = config
        self.devices = [RankDevice(self, rank) for rank in range(smi.n_ranks)]

    @property
    def n_ranks(self) -> int:
        return self.smi.n_ranks

    def device(self, rank: int) -> "RankDevice":
        return self.devices[rank]


class RankDevice:
    """One rank's communication engine."""

    def __init__(self, world: MPIWorld, rank: int):
        self.world = world
        self.rank = rank
        self.engine = world.engine
        self.smi = world.smi
        self.node = world.smi.node_of(rank)
        self.config = world.config
        self.match = MatchQueues(self.engine)
        self.service: Channel = Channel(self.engine, name=f"svc-r{rank}")

        cfg = self.config
        n = world.smi.n_ranks
        #: Eager slots: per sender, ``eager_slots`` slots of eager_threshold.
        self.eager_region = world.smi.create_region(
            rank, n * cfg.eager_slots * cfg.eager_threshold, label=f"eager-r{rank}"
        )
        #: Rendezvous buffer: one chunk, exclusively owned during a transfer.
        self.rndv_region = world.smi.create_region(
            rank, cfg.rendezvous_chunk, label=f"rndv-r{rank}"
        )
        self.rndv_lock = Lock(self.engine, name=f"rndv-lock-r{rank}")
        #: Sender-side credit pools per destination, and free slot indices.
        self._eager_credits: dict[int, Resource] = {}
        self._eager_free: dict[int, list[int]] = {}
        #: Hook the OSC layer installs to serve emulation requests.
        self.osc_handler: Optional[Callable[[Any], Any]] = None
        #: Optional tracer (see repro.trace.attach_tracer).
        self.tracer = None
        #: Perf counters.
        self.counters = {"sends": 0, "recvs": 0, "short": 0, "eager": 0, "rndv": 0}

        self.engine.process(self._service_loop(), name=f"svc-r{rank}", daemon=True)

    def _trace(self, kind: str, **detail) -> None:
        if self.tracer is not None:
            self.tracer.record(self.engine.now, self.rank, kind, **detail)

    # -- plumbing ----------------------------------------------------------------

    def _service_loop(self):
        """The control-packet poll loop / interrupt handler of this rank."""
        while True:
            msg = yield self.service.get()
            yield self.engine.timeout(self.config.poll_latency)
            if isinstance(msg, (ShortMsg, EagerMsg, RndvRequest)):
                self.match.deliver(msg)
            elif isinstance(msg, CreditReturn):
                peer, slot = msg.slot_index
                self._eager_free[peer].append(slot)
                self._eager_credits[peer].release()
            elif self.osc_handler is not None:
                result = self.osc_handler(msg)
                if result is not None and hasattr(result, "send"):
                    yield from result
            else:
                raise MPIError(f"rank {self.rank}: unhandled control message {msg!r}")

    def _ctrl_cost(self, dst: int) -> float:
        if self.smi.same_node(self.rank, dst):
            return self.config.ctrl_send_cost_local
        return self.config.ctrl_send_cost

    def send_ctrl(self, dst: int, msg: Any, to_channel: Optional[Channel] = None):
        """Post a control packet to ``dst`` (its service queue by default).

        Control packets are remote writes too: the connection check here
        is the "connection monitoring and transfer checking" Sec. 2 calls
        for on a cable-based interconnect.
        """
        if not self.smi.same_node(self.rank, dst):
            src_node = self.node.node_id
            dst_node = self.smi.node_of(dst).node_id
            if not self.world.smi.fabric.ping(src_node, dst_node):
                from ...hardware.sci.fabric import SCIConnectionError

                raise SCIConnectionError(
                    f"control packet {self.rank}->{dst}: peer unreachable"
                )
        yield self.engine.timeout(self._ctrl_cost(dst))
        target = to_channel if to_channel is not None else self.world.device(dst).service
        target.put(msg)

    def _eager_pool(self, dst: int) -> tuple[Resource, list[int]]:
        if dst not in self._eager_credits:
            self._eager_credits[dst] = Resource(
                self.engine, capacity=self.config.eager_slots, name=f"eager-{self.rank}->{dst}"
            )
            self._eager_free[dst] = list(range(self.config.eager_slots))
        return self._eager_credits[dst], self._eager_free[dst]

    # -- mode selection ------------------------------------------------------------

    def _transfer_mode(self, dtype: Datatype) -> str:
        if dtype.is_contiguous:
            return TransferMode.CONTIGUOUS
        mode = self.config.noncontig_mode
        if mode == NonContigMode.GENERIC:
            return TransferMode.GENERIC
        if mode == NonContigMode.DIRECT:
            return TransferMode.DIRECT
        if mode == NonContigMode.DMA:
            return TransferMode.DMA
        # AUTO: direct if the smallest basic block is big enough (the
        # footnote-1 minimal-block-size knob).
        min_block = min(
            (leaf.size for leaf in dtype.flattened.leaves), default=0
        )
        if min_block >= self.config.direct_min_block:
            return TransferMode.DIRECT
        return TransferMode.GENERIC

    def _src_cached(self, total: int) -> bool:
        return 2 * total <= self.node.params.memory.caches.l2_size

    # -- chunk transfer helpers ------------------------------------------------------

    def _chunk_groups(self, mode, plan, pos, nbytes):
        if mode == TransferMode.CONTIGUOUS:
            return [(nbytes, 1)]
        return plan.groups_in_range(pos, nbytes)

    def _write_chunk(self, dst: int, region, data: np.ndarray, mode: str,
                     groups: list[tuple[int, int]], src_cached: bool):
        """Ship ``data`` into offset 0.. of ``region`` at ``dst`` and place it."""
        n = data.nbytes
        remote = not self.smi.same_node(self.rank, dst)
        memory = self.node.memory
        if remote:
            params = self.node.params
            if mode == TransferMode.DMA:
                yield from self.world.smi.fabric.dma_transfer(
                    self.node.node_id, self.smi.node_of(dst).node_id, n
                )
            else:
                if mode == TransferMode.DIRECT:
                    duration = direct_remote_chunk_duration(
                        params, memory, 0, groups, self.config, src_cached
                    )
                else:
                    duration = contiguous_remote_chunk_duration(params, 0, n, src_cached)
                yield from self.world.smi.fabric.transfer_raw(
                    self.node.node_id, self.smi.node_of(dst).node_id, n, duration
                )
        else:
            if mode == TransferMode.DIRECT:
                yield self.engine.timeout(
                    pack_cost_direct(memory, groups, self.config)
                )
            else:
                yield self.engine.timeout(local_chunk_copy_cost(memory, n))
        region.local_view()[: n] = data

    # -- send ------------------------------------------------------------------------

    def send(self, buf: "Buffer", dest: int, tag: int = 0,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             context: int = 0, sync: bool = False):
        """Blocking send (DES generator).

        ``sync=True`` gives MPI_Ssend semantics: the call completes only
        once the receiver has matched the message.
        """
        from ..datatypes.basic import BYTE

        if not 0 <= dest < self.world.n_ranks:
            raise MPIError(f"invalid destination rank {dest}")
        dtype = datatype if datatype is not None else BYTE
        dtype.commit()
        ft = dtype.flattened
        if count is None:
            if not dtype.is_contiguous:
                raise MPIError("count is required for non-contiguous datatypes")
            count = buf.nbytes // dtype.size if dtype.size else 0
        total = ft.size * count
        plan = get_plan(ft, count)
        mem = buf.space.mem
        base = buf.base
        cfg = self.config
        self.counters["sends"] += 1
        yield self.engine.timeout(cfg.call_overhead)

        mode = self._transfer_mode(dtype)
        env = Envelope(self.rank, tag, context)
        src_cached = self._src_cached(total)
        memory = self.node.memory
        sync_reply = Channel(self.engine, name="ssend-ack") if sync else None
        self._trace("send.begin", dest=dest, tag=tag, nbytes=total, mode=mode)

        if total <= cfg.short_threshold:
            # Short: pack inline (tiny, stack loop either way) + control.
            payload = plan.execute_pack(mem, base)
            if not dtype.is_contiguous:
                groups = ft.block_length_groups(count)
                yield self.engine.timeout(pack_cost_direct(memory, groups, cfg))
            yield from self.send_ctrl(dest, ShortMsg(env, payload, sync_reply))
            self.counters["short"] += 1
        elif total <= cfg.eager_threshold:
            yield from self._send_eager(dest, env, mem, base, ft, plan, count,
                                        total, mode, src_cached, sync_reply)
            self.counters["eager"] += 1
        else:
            # Rendezvous is inherently synchronous.
            yield from self._send_rndv(dest, env, mem, base, ft, plan, count,
                                       total, mode, src_cached)
            self.counters["rndv"] += 1
            sync_reply = None
        if sync_reply is not None:
            yield sync_reply.get()
        protocol = (
            "short" if total <= cfg.short_threshold
            else "eager" if total <= cfg.eager_threshold
            else "rndv"
        )
        self._trace("send.end", dest=dest, protocol=protocol)

    def _send_eager(self, dest, env, mem, base, ft, plan, count, total, mode,
                    src_cached, sync_reply=None):
        cfg = self.config
        if mode == TransferMode.DMA:
            # DMA setup dwarfs eager-sized messages; fall back to the
            # generic PIO path (what SCI-MPICH's DMA protocol does too).
            mode = TransferMode.GENERIC
        credits, free = self._eager_pool(dest)
        yield credits.request()
        slot = free.pop()
        peer_region = self.world.device(dest).eager_region
        slot_offset = (self.rank * cfg.eager_slots + slot) * cfg.eager_threshold

        if mode == TransferMode.GENERIC:
            groups = ft.block_length_groups(count)
            yield self.engine.timeout(
                pack_cost_generic(self.node.memory, groups, cfg)
            )
        data = plan.execute_pack(mem, base)
        groups = self._chunk_groups(mode, plan, 0, total)
        remote = not self.smi.same_node(self.rank, dest)
        memory = self.node.memory
        n = data.nbytes
        if remote:
            params = self.node.params
            if mode == TransferMode.DIRECT:
                duration = direct_remote_chunk_duration(
                    params, memory, slot_offset, groups, cfg, src_cached
                )
            else:
                duration = contiguous_remote_chunk_duration(
                    params, slot_offset, n, src_cached
                )
            yield from self.world.smi.fabric.transfer_raw(
                self.node.node_id, self.smi.node_of(dest).node_id, n, duration
            )
        else:
            if mode == TransferMode.DIRECT:
                yield self.engine.timeout(pack_cost_direct(memory, groups, cfg))
            else:
                yield self.engine.timeout(local_chunk_copy_cost(memory, n))
        peer_region.local_view()[slot_offset : slot_offset + n] = data
        yield from self.send_ctrl(
            dest, EagerMsg(env, slot_offset, n, slot_index=slot,
                           sync_reply=sync_reply)
        )

    def _send_rndv(self, dest, env, mem, base, ft, plan, count, total, mode,
                   src_cached):
        cfg = self.config
        reply: Channel = Channel(self.engine, name=f"rndv-reply-r{self.rank}")
        yield from self.send_ctrl(dest, RndvRequest(env, total, reply))
        ack: RndvAck = yield reply.get()

        packed: Optional[np.ndarray] = None
        if mode == TransferMode.GENERIC:
            # Generic path: recursive pack of the whole message up front
            # (Fig. 4 top).
            groups = ft.block_length_groups(count)
            yield self.engine.timeout(
                pack_cost_generic(self.node.memory, groups, cfg)
            )
            packed = plan.execute_pack(mem, base)
        elif mode == TransferMode.DMA:
            # DMA path (the paper's Sec. 6 outlook): flatten-pack into
            # registered memory with the fast ff loop, then DMA the chunks.
            groups = ft.block_length_groups(count)
            yield self.engine.timeout(
                pack_cost_direct(self.node.memory, groups, cfg)
            )
            packed = plan.execute_pack(mem, base)

        pos = 0
        index = 0
        while pos < total:
            n = min(ack.chunk_size, total - pos)
            if packed is not None:
                data = packed[pos : pos + n]
                groups = [(n, 1)]
                chunk_mode = (
                    TransferMode.DMA if mode == TransferMode.DMA
                    else TransferMode.CONTIGUOUS
                )
            elif mode == TransferMode.CONTIGUOUS:
                data = plan.execute_pack(mem, base, pos, n)
                groups = [(n, 1)]
                chunk_mode = mode
            else:  # direct_pack_ff
                data = plan.execute_pack(mem, base, pos, n)
                groups = plan.groups_in_range(pos, n)
                chunk_mode = mode
            yield from self._write_chunk(
                dest, ack.region, data, chunk_mode, groups, src_cached
            )
            last = pos + n >= total
            yield from self.send_ctrl(
                dest, ChunkReady(index, n, last), to_channel=ack.chunk_channel
            )
            if not last:
                credit = yield reply.get()
                assert isinstance(credit, ChunkCredit)
            pos += n
            index += 1
        # Final credit confirms the receiver drained the last chunk.
        final = yield reply.get()
        assert isinstance(final, ChunkCredit)

    # -- receive -----------------------------------------------------------------------

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              context: int = 0):
        """Blocking probe (DES generator); returns a Status without
        consuming the message (MPI_Probe)."""
        yield self.engine.timeout(self.config.call_overhead)
        msg = yield self.match.post_probe(source, tag, context)
        nbytes = (
            msg.data.nbytes if isinstance(msg, ShortMsg)
            else msg.nbytes
        )
        return Status(msg.envelope.source, msg.envelope.tag, nbytes)

    def recv(self, buf: "Buffer", source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             context: int = 0):
        """Blocking receive (DES generator); returns a Status."""
        from ..datatypes.basic import BYTE

        dtype = datatype if datatype is not None else BYTE
        dtype.commit()
        ft = dtype.flattened
        if count is None:
            if not dtype.is_contiguous:
                raise MPIError("count is required for non-contiguous datatypes")
            count = buf.nbytes // dtype.size if dtype.size else 0
        capacity = ft.size * count
        plan = get_plan(ft, count)
        mem = buf.space.mem
        base = buf.base
        cfg = self.config
        self.counters["recvs"] += 1
        self._trace("recv.begin", source=source, tag=tag)
        yield self.engine.timeout(cfg.call_overhead)

        msg = yield self.match.post(source, tag, context)
        self._trace("recv.matched", source=msg.envelope.source,
                    message=type(msg).__name__)
        mode = self._transfer_mode(dtype)
        memory = self.node.memory

        if isinstance(msg, ShortMsg):
            n = msg.data.nbytes
            if n > capacity:
                raise MessageTruncated(f"short message of {n} B > buffer {capacity} B")
            if not dtype.is_contiguous:
                groups = plan.groups_in_range(0, n)
                yield self.engine.timeout(pack_cost_direct(memory, groups, cfg))
            plan.execute_unpack(mem, base, 0, msg.data)
            if msg.sync_reply is not None:
                yield from self.send_ctrl(msg.envelope.source, True,
                                          to_channel=msg.sync_reply)
            self._trace("recv.end", source=msg.envelope.source, protocol="short")
            return Status(msg.envelope.source, msg.envelope.tag, n)

        if isinstance(msg, EagerMsg):
            n = msg.nbytes
            if n > capacity:
                raise MessageTruncated(f"eager message of {n} B > buffer {capacity} B")
            region = self.eager_region
            data = np.array(
                region.local_view()[msg.slot_offset : msg.slot_offset + n], copy=True
            )
            if (mode in (TransferMode.DIRECT, TransferMode.DMA)
                    and not dtype.is_contiguous):
                groups = plan.groups_in_range(0, n)
                yield self.engine.timeout(pack_cost_direct(memory, groups, cfg))
            elif mode == TransferMode.GENERIC:
                yield self.engine.timeout(local_chunk_copy_cost(memory, n))
                groups = plan.groups_in_range(0, n)
                yield self.engine.timeout(pack_cost_generic(memory, groups, cfg))
            else:
                yield self.engine.timeout(local_chunk_copy_cost(memory, n))
            plan.execute_unpack(mem, base, 0, data)
            # Credit keyed by *this* rank at the sender's pool.
            yield from self.send_ctrl(
                msg.envelope.source, CreditReturn((self.rank, msg.slot_index))
            )
            if msg.sync_reply is not None:
                yield from self.send_ctrl(msg.envelope.source, True,
                                          to_channel=msg.sync_reply)
            self._trace("recv.end", source=msg.envelope.source, protocol="eager")
            return Status(msg.envelope.source, msg.envelope.tag, n)

        assert isinstance(msg, RndvRequest)
        total = msg.nbytes
        if total > capacity:
            raise MessageTruncated(f"rendezvous of {total} B > buffer {capacity} B")
        yield self.rndv_lock.request()
        try:
            chunk_channel: Channel = Channel(self.engine, name=f"rndv-chunks-r{self.rank}")
            ack = RndvAck(chunk_channel, self.rndv_region, cfg.rendezvous_chunk)
            yield from self.send_ctrl(msg.envelope.source, ack, to_channel=msg.reply)

            packed_tmp: Optional[np.ndarray] = (
                np.empty(total, dtype=np.uint8)
                if mode == TransferMode.GENERIC
                else None
            )
            pos = 0
            while pos < total:
                ready: ChunkReady = yield chunk_channel.get()
                n = ready.nbytes
                data = np.array(self.rndv_region.local_view()[:n], copy=True)
                if packed_tmp is not None:
                    # Generic: protocol copy into the packed temp buffer.
                    yield self.engine.timeout(local_chunk_copy_cost(memory, n))
                    packed_tmp[pos : pos + n] = data
                elif (mode in (TransferMode.DIRECT, TransferMode.DMA)
                      and not dtype.is_contiguous):
                    # Direct (and DMA) receivers unpack each chunk straight
                    # into the user buffer with the ff loop.
                    groups = plan.groups_in_range(pos, n)
                    yield self.engine.timeout(pack_cost_direct(memory, groups, cfg))
                    plan.execute_unpack(mem, base, pos, data)
                else:
                    yield self.engine.timeout(local_chunk_copy_cost(memory, n))
                    plan.execute_unpack(mem, base, pos, data)
                pos += n
                yield from self.send_ctrl(
                    msg.envelope.source, ChunkCredit(ready.index), to_channel=msg.reply
                )
            if packed_tmp is not None:
                # Generic: the final recursive unpack of the whole message.
                groups = ft.block_length_groups(count)
                yield self.engine.timeout(pack_cost_generic(memory, groups, cfg))
                plan.execute_unpack(mem, base, 0, packed_tmp)
        finally:
            self.rndv_lock.release()
        self._trace("recv.end", source=msg.envelope.source, protocol="rndv")
        return Status(msg.envelope.source, msg.envelope.tag, total)

    @staticmethod
    def _recv_count(ft, nbytes: int) -> int:
        return nbytes // ft.size if ft.size else 0
