"""The MPI library (S6-S10): datatypes, pt2pt, collectives, one-sided."""

from .comm import ANY_SOURCE, ANY_TAG, Communicator, Status
from .errors import CommunicationError, MessageTruncated, MPIError, RMAError
from .request import Request

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CommunicationError",
    "Communicator",
    "MPIError",
    "MessageTruncated",
    "RMAError",
    "Request",
    "Status",
]
