"""Transfer policies: every data-path decision in one pluggable object.

The paper's protocol machinery is a collection of thresholds — short vs.
eager vs. rendezvous (Sec. 3.3), generic vs. direct_pack_ff vs. DMA
(Fig. 4, footnote 1), direct one-sided access vs. remote-put vs.
emulation (Sec. 4.2) — that the seed implementation had scattered across
``pt2pt/engine.py``, ``osc/window.py`` and the collectives.  A
:class:`TransferPolicy` centralizes them: the device, the window and the
collectives all *ask the policy* instead of comparing against config
fields themselves, so the paper's threshold experiments (and
``benchmarks/test_ablations.py``) become one-line policy swaps.

Policies are frozen dataclasses around a :class:`ProtocolConfig`;
subclasses override individual decisions (see
:class:`ChunkedCollectivesPolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ...qos.lanes import DEFAULT_LANES, QosLanePolicy
from ..pt2pt.config import DEFAULT_PROTOCOL, NonContigMode, ProtocolConfig
from .fastpath import DEFAULT_FASTPATH, FastPathPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...hardware.node import Node
    from ..datatypes.base import Datatype

__all__ = [
    "ChunkedCollectivesPolicy",
    "DEFAULT_POLICY",
    "DEFAULT_RECOVERY",
    "FastPathPolicy",
    "OSCStrategy",
    "Protocol",
    "QosLanePolicy",
    "RecoveryPolicy",
    "TransferMode",
    "TransferPolicy",
]


class Protocol:
    """Point-to-point protocol names (by packed payload size)."""

    SHORT = "short"
    EAGER = "eager"
    RNDV = "rndv"


class TransferMode:
    """How the bytes of one message cross the wire (Fig. 4 paths)."""

    CONTIGUOUS = "contiguous"
    GENERIC = NonContigMode.GENERIC
    DIRECT = NonContigMode.DIRECT
    DMA = NonContigMode.DMA


class OSCStrategy:
    """How a one-sided operation reaches the target window (Sec. 4.2)."""

    DIRECT = "direct"          # transparent remote stores / loads
    REMOTE_PUT = "remote_put"  # target pushes into the origin's response region
    EMULATED = "emulated"      # control message + remote interrupt + handler


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the fault-recovery state machine (see ``docs/FAULTS.md``).

    All times are simulated µs.  ``max_retransmits`` bounds the retries
    of one chunk/operation; together with
    :attr:`~repro.hardware.sci.faults.FaultPlan.max_consecutive` it
    guarantees convergence.  ``resume_torn=False`` disables the
    range-resume optimisation (torn chunks retransmit whole) — the knob
    the recovery-overhead ablation flips.
    """

    max_retransmits: int = 6
    retry_backoff: float = 5.0       # first-retry delay
    backoff_factor: float = 2.0      # exponential growth per retry
    chunk_timeout: float = 2000.0    # rndv per-chunk credit timeout
    remap_cost: float = 25.0         # driver cost of re-importing a segment
    resume_torn: bool = True         # resume torn chunks at the tear offset

    def backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        return self.retry_backoff * self.backoff_factor ** (attempt - 1)


DEFAULT_RECOVERY = RecoveryPolicy()


@dataclass(frozen=True)
class TransferPolicy:
    """The decision table of the unified transport layer.

    One instance serves a whole :class:`~repro.mpi.pt2pt.engine.MPIWorld`;
    it is stateless (all state lives in the scheduler and the device).
    """

    config: ProtocolConfig = DEFAULT_PROTOCOL
    recovery: RecoveryPolicy = DEFAULT_RECOVERY
    #: RMA payloads at or below this size are latency-bound: one PIO
    #: transaction beats an interrupt round-trip regardless of the
    #: coarse put/get split (the ``repro.svc`` slot accesses live here).
    small_rma_threshold: int = 256
    #: Use hierarchical collective algorithms (ringlet-local aggregation
    #: before cross-switch hops) on topologies with more than one
    #: locality domain.  Single-domain topologies (plain ring) always
    #: run the flat algorithms regardless of this flag.
    hier_collectives: bool = True
    #: Segment size for the cross-switch leader stage of hierarchical
    #: collectives: crossbar/spine hops are the scarce links, so leader
    #: exchanges pipeline in chunks of this size once payloads exceed it.
    cross_chunk: int = 128 * 1024
    #: Fast-path engine knobs (cost tables + closed-form stream windows;
    #: see ``docs/ENGINE.md``).  Both paths are bit-identical in
    #: simulated time to the event-stepped reference and can be forced
    #: off here (per policy) or via
    #: :func:`repro.mpi.transport.fastpath.set_fastpath_enabled`
    #: (process-wide).
    fastpath: FastPathPolicy = DEFAULT_FASTPATH
    #: QoS lane knobs (reserved-share budget, best-effort throttle floor,
    #: credit priority; see ``docs/QOS.md``).  Only consulted while a
    #: :class:`~repro.qos.QosManager` is installed on the fabric *and*
    #: holds an ACTIVE reservation — otherwise the data path is
    #: bit-identical to a QoS-free build.
    qos: QosLanePolicy = DEFAULT_LANES

    def bind(self, config: ProtocolConfig) -> "TransferPolicy":
        """This policy rebound to another protocol config (keeps subclass)."""
        if config is self.config:
            return self
        return replace(self, config=config)

    # -- point-to-point ------------------------------------------------------------

    def protocol(self, total: int) -> str:
        """Short / eager / rendezvous selection by packed payload size."""
        cfg = self.config
        if total <= cfg.short_threshold:
            return Protocol.SHORT
        if total <= cfg.eager_threshold:
            return Protocol.EAGER
        return Protocol.RNDV

    def transfer_mode(self, dtype: "Datatype") -> str:
        """Generic / direct_pack_ff / DMA selection for one datatype."""
        if dtype.is_contiguous:
            return TransferMode.CONTIGUOUS
        mode = self.config.noncontig_mode
        if mode == NonContigMode.GENERIC:
            return TransferMode.GENERIC
        if mode == NonContigMode.DIRECT:
            return TransferMode.DIRECT
        if mode == NonContigMode.DMA:
            return TransferMode.DMA
        # AUTO: direct if the smallest basic block is big enough (the
        # footnote-1 minimal-block-size knob).
        min_block = min(
            (leaf.size for leaf in dtype.flattened.leaves), default=0
        )
        if min_block >= self.config.direct_min_block:
            return TransferMode.DIRECT
        return TransferMode.GENERIC

    def chunk_size(self) -> int:
        """Rendezvous handshake-cycle size (kept below L2, Sec. 3.3.2)."""
        return self.config.rendezvous_chunk

    def eager_slots(self) -> int:
        """Credit window: eager slots per (sender, receiver) pair."""
        return self.config.eager_slots

    def src_cached(self, total: int, node: "Node") -> bool:
        """Is the source likely still in L2 while being fed to the wire?"""
        return 2 * total <= node.params.memory.caches.l2_size

    # -- one-sided -----------------------------------------------------------------

    def put_strategy(self, shared: bool, simple_run: bool) -> str:
        """Direct remote stores, or emulation via the target's handler."""
        if shared and simple_run:
            return OSCStrategy.DIRECT
        return OSCStrategy.EMULATED

    def get_strategy(self, nbytes: int, shared: bool, simple_run: bool) -> str:
        """Direct remote loads, remote-put conversion, or emulation.

        SCI remote reads stall the CPU per transaction, so direct reading
        "will only be effective up to a certain amount of data".
        """
        if shared and simple_run and nbytes <= self.config.remote_put_threshold:
            return OSCStrategy.DIRECT
        if shared:
            return OSCStrategy.REMOTE_PUT
        return OSCStrategy.EMULATED

    def osc_op_strategy(self, op: str, nbytes: int, shared: bool,
                        simple_run: bool) -> str:
        """Per-operation strategy for one RMA access.

        The window layer (and the ``repro.svc`` hot path) ask here instead
        of the coarse put/get split: accumulate-class operations always
        run at the target (read-modify-write needs the target CPU, SCI has
        no remote atomics); small single-run accesses on shared windows
        (``nbytes <= small_rma_threshold``) always go DIRECT — at that
        size the per-transaction CPU stall of a remote load is cheaper
        than an interrupt round-trip, for reads as well as writes;
        everything else falls through to :meth:`put_strategy` /
        :meth:`get_strategy`.
        """
        if op in ("accumulate", "fetch_and_op"):
            return OSCStrategy.EMULATED
        if shared and simple_run and nbytes <= self.small_rma_threshold:
            return OSCStrategy.DIRECT
        if op == "put":
            return self.put_strategy(shared, simple_run)
        if op == "get":
            return self.get_strategy(nbytes, shared, simple_run)
        raise ValueError(f"unknown RMA operation {op!r}")

    def degraded_strategy(self, strategy: str) -> str:
        """Fallback strategy once a target segment became unmappable.

        Direct stores/loads and remote-put all need a valid mapping of
        the peer's window; when the mapping is revoked mid-epoch the only
        path that still works is emulation (control message + interrupt +
        target-side handler), which maps nothing remotely.
        """
        del strategy  # every degraded path lands on emulation
        return OSCStrategy.EMULATED

    # -- collectives ---------------------------------------------------------------

    def collective_chunk(self, nbytes: int, size: int) -> Optional[int]:
        """Segment size for chunked collectives; ``None`` keeps the
        monolithic algorithms.

        The base policy never chunks — the seed behaviour.  Chunking only
        pays where segments *pipeline* across ranks (see
        :class:`ChunkedCollectivesPolicy`); the ring allgather and the
        pairwise alltoall are already pipelined at message granularity.
        """
        return None

    def hierarchical_collective(self, kind: str, nbytes: int, size: int,
                                n_groups: int) -> bool:
        """Run ``kind`` (``bcast`` / ``allreduce``) hierarchically?

        Hierarchical algorithms aggregate within each locality domain
        (ringlet, leaf switch) before touching a cross-switch link, so
        the scarce crossbar carries one message per group instead of one
        per rank.  They only exist where the topology *has* groups: on a
        single-domain topology (``n_groups <= 1``) this always returns
        ``False`` and the flat algorithms run bit-identically to the
        pre-topology code.  A group must also be non-trivial on average
        (``size > n_groups``) for local aggregation to save anything.
        """
        del kind, nbytes
        if not self.hier_collectives or n_groups <= 1:
            return False
        return size > n_groups

    def cross_switch_chunk(self, nbytes: int) -> Optional[int]:
        """Pipeline chunk for cross-switch leader exchanges, or ``None``.

        Below ``cross_chunk`` the handshake overhead of segmenting beats
        any overlap; above it, chunking lets a leader forward segment
        ``k`` while receiving ``k + 1`` across the switch.
        """
        if nbytes <= self.cross_chunk:
            return None
        return self.cross_chunk

    # -- observability -------------------------------------------------------------

    def describe(self) -> dict[str, int]:
        """The numeric decision knobs, for the metrics registry.

        Exported as ``policy.*`` gauges (bytes unless noted) so every
        metrics snapshot records which threshold regime produced it.
        """
        cfg = self.config
        return {
            "short_threshold": cfg.short_threshold,
            "eager_threshold": cfg.eager_threshold,
            "eager_slots": cfg.eager_slots,
            "rendezvous_chunk": cfg.rendezvous_chunk,
            "direct_min_block": cfg.direct_min_block,
            "remote_put_threshold": cfg.remote_put_threshold,
            "small_rma_threshold": self.small_rma_threshold,
            "hier_collectives": int(self.hier_collectives),
            "cross_chunk": self.cross_chunk,
            "fastpath_cost_tables": int(self.fastpath.cost_tables),
            "fastpath_closed_form": int(self.fastpath.closed_form),
            "fastpath_min_window": self.fastpath.min_window,
            **self.qos.describe(),
        }


@dataclass(frozen=True)
class ChunkedCollectivesPolicy(TransferPolicy):
    """Chunk large collective payloads through the transport scheduler.

    Broadcasts above ``coll_pipeline_threshold`` are split into
    ``coll_chunk``-sized packed-stream segments and streamed down a chain
    of ranks, so rank ``r`` forwards segment ``k`` while receiving segment
    ``k + 1`` — the transport-level analogue of the rendezvous handshake
    cycle, but across ranks.  With fewer than three ranks there is nothing
    to pipeline and the policy falls back to monolithic sends.
    """

    coll_chunk: int = 64 * 1024
    coll_pipeline_threshold: int = 64 * 1024

    def collective_chunk(self, nbytes: int, size: int) -> Optional[int]:
        if size < 3 or nbytes <= self.coll_pipeline_threshold:
            return None
        return self.coll_chunk


DEFAULT_POLICY = TransferPolicy()
