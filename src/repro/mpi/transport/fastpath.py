"""Fast-path machinery of the transport layer: cost tables + stream windows.

The simulated cost of a packet-buffer chunk is a pure function of its
geometry — (transfer mode, destination alignment, block groups, source
cache state) — yet a steady-state rendezvous stream recomputes it for
every handshake cycle.  This module provides the two fast paths that
exploit that (see ``docs/ENGINE.md``):

* :class:`CostTable` — a bounded LRU (mirroring
  :class:`~repro.mpi.flatten.plan.PlanCache`) memoizing per-chunk
  transaction costs.  Pure memoization: the cached value is the exact
  float the cost function returns, so simulated time is unchanged by
  construction.
* :class:`StreamWindow` / :class:`RecvWindowCosts` — the message types of
  the *closed-form window*: when a rendezvous chunk stream is in steady
  state on an otherwise idle engine, the sender replays the whole
  handshake-cycle clock sequence analytically (one arithmetic pass, one
  ``wake_at``) instead of event-stepping ~8 engine events per chunk.
  The receiver advertises its side of the per-cycle cost structure in
  the rendezvous ack (:attr:`RndvAck.window <.scheduler.RndvAck>`).

Both paths are policy-gated (:class:`FastPathPolicy` on
:class:`~repro.mpi.transport.policy.TransferPolicy`) and process-gated
(:func:`set_fastpath_enabled` / :func:`fastpath_disabled`), following the
plan-cache toggle idiom, so every differential oracle can force either
engine.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "CostTable",
    "DEFAULT_FASTPATH",
    "FastPathPolicy",
    "RecvWindowCosts",
    "StreamWindow",
    "cost_table_stats",
    "fastpath_disabled",
    "fastpath_enabled",
    "set_fastpath_enabled",
]


@dataclass(frozen=True)
class FastPathPolicy:
    """Knobs of the fast-path engine (see ``docs/ENGINE.md``).

    ``cost_tables`` gates the per-chunk cost memoization;
    ``closed_form`` gates the analytic stream-window replay.  Both
    default on — the event-stepped path remains the semantic reference
    and the differential oracle (``tests/test_fastpath_oracle.py``)
    pins the two engines to bit-identical simulated time.
    ``min_window`` is the smallest number of steady-state chunks worth
    collapsing into one window (below it the replay bookkeeping beats
    the event loop by too little to matter).
    """

    cost_tables: bool = True
    closed_form: bool = True
    min_window: int = 4
    table_size: int = 512


DEFAULT_FASTPATH = FastPathPolicy()


class CostTable:
    """Bounded LRU of per-chunk transaction costs keyed by geometry.

    Keys are hashable tuples built by the scheduler —
    ``(kind, alignment, block groups, src_cached)`` — and values are the
    exact floats the pure cost functions return, so a hit is
    indistinguishable from a recomputation.
    """

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError(f"cost table maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._costs: "OrderedDict[tuple, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._costs)

    def lookup(self, key: tuple, compute: Callable[[], float]) -> float:
        value = self._costs.get(key)
        if value is not None:
            self._costs.move_to_end(key)
            self.hits += 1
            return value
        self.misses += 1
        value = compute()
        self._costs[key] = value
        while len(self._costs) > self.maxsize:
            self._costs.popitem(last=False)
            self.evictions += 1
        return value

    def clear(self) -> None:
        self._costs.clear()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._costs),
            "maxsize": self.maxsize,
        }


@dataclass
class RecvWindowCosts:
    """The receiver's half of a stream window's per-cycle cost structure.

    Shipped inside the rendezvous ack.  ``chunk_cost(pos, n)`` returns
    the exact per-chunk drain cost (protocol copy or direct unpack) the
    receiver would charge for the chunk at stream position ``pos`` —
    the same pure function the event-stepped receive loop calls, so the
    sender can replay the receiver's clock contribution analytically.
    ``ctrl_cost`` is the receiver's credit-packet cost back to the
    sender.
    """

    chunk_cost: Callable[[int, int], float]
    ctrl_cost: float


@dataclass
class StreamWindow:
    """``count`` steady-state rendezvous chunks collapsed into one message.

    The sender has already advanced the engine clock through every
    handshake cycle of the window (analytically, bit-identical to the
    event-stepped path) and carries the packed payload of all chunks;
    the receiver unpacks in one pass and returns **no** credits — the
    window protocol replaces them (see ``docs/ENGINE.md``).
    ``end_time`` is the simulated instant the last cycle completes
    (receiver-side sanity checks only).
    """

    start_index: int
    pos: int            # stream position (message-relative) of the first chunk
    count: int          # number of chunks in the window
    nbytes: int         # payload bytes per chunk (all full-size)
    payload: np.ndarray  # the packed bytes of all ``count`` chunks
    end_time: float


# -- process-wide toggle (the plan-cache idiom) ------------------------------------

_enabled = True


def fastpath_enabled() -> bool:
    """Is the process-wide fast-path switch on?"""
    return _enabled


def set_fastpath_enabled(enabled: bool) -> bool:
    """Toggle every fast path process-wide; returns the previous setting.

    Off means the event-stepped reference engine runs everywhere —
    the lever the differential oracle and the ``perf-smoke`` CI lane
    pull to compare the two engines.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def fastpath_disabled():
    """Context manager: run on the event-stepped reference engine."""
    previous = set_fastpath_enabled(False)
    try:
        yield
    finally:
        set_fastpath_enabled(previous)


def cost_table_stats(tables) -> dict[str, int]:
    """Aggregated hit/miss/eviction counters over ``tables``."""
    out = {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
    for table in tables:
        stats = table.stats()
        for key in out:
            out[key] += stats[key]
    out["enabled"] = int(_enabled)
    return out
