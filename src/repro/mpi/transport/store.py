"""RemoteStore: the single primitive that moves payload bytes off-rank.

The paper's central mechanism is one and the same for every communication
mode: the CPU stores data *into mapped remote memory* (transparent PIO
writes), falling back to an emulated delivery — a control message plus a
remote interrupt invoking a handler at the target — only where no mapping
exists (Sec. 4.2).  The seed implementation had four copies of that
dichotomy (pt2pt chunk writes, eager-slot writes, OSC direct puts, OSC
emulation shipping); :class:`RemoteStore` is the one place left that
touches the fabric on behalf of the MPI layers.

Every method is a DES generator charging the same costs the scattered
seed paths charged; none of them changes simulated timing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ...hardware.sci.faults import SCITransientError, TornTransferError
from ...hardware.sci.segments import SegmentUnmappedError
from ...hardware.sci.transactions import AccessRun
from ..errors import TransferAborted, TransferFault
from .policy import TransferMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...smi.regions import SharedRegion
    from ..pt2pt.engine import RankDevice

__all__ = ["RemoteStore"]


class RemoteStore:
    """One rank's interface for storing bytes into another rank's memory."""

    def __init__(self, device: "RankDevice"):
        self.device = device

    # -- recovery (the bounded-retransmission state machine) -----------------------

    def deliver_with_retry(self, peer: int, make_attempt, on_unmap=None):
        """Run ``make_attempt()`` (a fresh DES generator per call) until it
        succeeds, with bounded exponential-backoff retransmission.

        Attempts signal recoverable failures by raising
        :class:`~repro.mpi.errors.TransferFault`; ``on_unmap()`` (if given)
        repairs a revoked segment mapping between attempts.  Gives up with
        :class:`~repro.mpi.errors.TransferAborted` after
        ``RecoveryPolicy.max_retransmits`` failed retries.
        """
        device = self.device
        recovery = device.policy.recovery
        attempt = 0
        while True:
            try:
                result = yield from make_attempt()
            except TransferFault as fault:
                attempt += 1
                if attempt > recovery.max_retransmits:
                    device.recovery["aborts"] += 1
                    raise TransferAborted(
                        f"transfer to rank {peer} still failing after "
                        f"{recovery.max_retransmits} retransmissions"
                    ) from fault
                if fault.unmapped:
                    if on_unmap is None:
                        raise
                    device.recovery["remaps"] += 1
                    device._trace("recover.fallback.begin", peer=peer,
                                  action="remap")
                    on_unmap()
                    yield device.engine.timeout(recovery.remap_cost)
                    device._trace("recover.fallback.end", peer=peer)
                    continue
                device.recovery["retries"] += 1
                device._trace("recover.retry.begin", peer=peer,
                              attempt=attempt)
                yield device.engine.timeout(recovery.backoff(attempt))
                device._trace("recover.retry.end", peer=peer)
                continue
            return result

    # -- packet-buffer writes (pt2pt) ----------------------------------------------

    def write_packed(self, dst: int, region: "SharedRegion", offset: int,
                     data: np.ndarray, mode: str,
                     groups: list[tuple[int, int]], src_cached: bool):
        """Ship ``data`` into ``region[offset:]`` at rank ``dst``.

        Remote: transparent PIO stores (or the DMA engine), costed by the
        transfer technique.  Local: the pack loop / protocol copy *is* the
        delivery.

        Injected fabric faults surface as
        :class:`~repro.mpi.errors.TransferFault`; a torn transfer places
        its intact prefix in the packet buffer first (the receiver never
        sees it — no control packet was posted yet), so the caller can
        resume at byte ``fault.delivered``.
        """
        device = self.device
        n = data.nbytes
        remote = not device.smi.same_node(device.rank, dst)
        if remote:
            try:
                region.handle(device.rank).ensure_mapped()
            except SegmentUnmappedError as exc:
                raise TransferFault(str(exc), unmapped=True) from exc
            try:
                if mode == TransferMode.DMA:
                    yield from device.world.smi.fabric.dma_transfer(
                        device.node.node_id, device.smi.node_of(dst).node_id, n
                    )
                else:
                    duration = device.scheduler.chunk_write_duration(
                        mode, offset, n, groups, src_cached
                    )
                    yield from device.world.smi.fabric.transfer_raw(
                        device.node.node_id, device.smi.node_of(dst).node_id,
                        n, duration, tearable=True,
                    )
            except TornTransferError as exc:
                delivered = exc.delivered
                view = region.local_view()
                view[offset : offset + delivered] = data[:delivered]
                raise TransferFault(str(exc), delivered=delivered) from exc
            except SCITransientError as exc:
                raise TransferFault(str(exc)) from exc
        else:
            if mode == TransferMode.DIRECT:
                yield device.engine.timeout(
                    device.scheduler.chunk_pack_cost(groups))
            else:
                yield device.engine.timeout(
                    device.scheduler.chunk_copy_cost(n))
        region.local_view()[offset : offset + n] = data

    # -- direct one-sided access ------------------------------------------------------

    def write_run(self, region: "SharedRegion", run: AccessRun,
                  data: np.ndarray, src_cached: bool):
        """Direct put: transparent remote stores along a strided run.

        Injected faults surface as :class:`TransferFault` — with
        ``unmapped=True`` when the window segment was revoked (the OSC
        layer then degrades to emulation).
        """
        handle = region.handle(self.device.rank)
        try:
            yield from handle.write(data, run, src_cached=src_cached)
        except SegmentUnmappedError as exc:
            raise TransferFault(str(exc), unmapped=True) from exc
        except (SCITransientError, TornTransferError) as exc:
            raise TransferFault(str(exc)) from exc

    def read_run(self, region: "SharedRegion", run: AccessRun):
        """Direct get: transparent remote loads (the CPU stalls per txn)."""
        handle = region.handle(self.device.rank)
        try:
            data = yield from handle.read(run)
        except SegmentUnmappedError as exc:
            raise TransferFault(str(exc), unmapped=True) from exc
        except (SCITransientError, TornTransferError) as exc:
            raise TransferFault(str(exc)) from exc
        return data

    def store_barrier(self, region: "SharedRegion"):
        """All previous direct stores into ``region`` are visible at the owner."""
        handle = region.handle(self.device.rank)
        yield from handle.barrier()

    # -- emulated delivery -----------------------------------------------------------

    def ship_emulated(self, wtarget: int, dst_offset: int, nbytes: int,
                      msg: Any, src_cached: bool):
        """Deliver an emulated operation carrying ``nbytes`` of payload.

        The payload travels as one contiguous remote write into the
        target's staging memory, followed by a remote interrupt that kicks
        the target's handler; intra-node it is a plain protocol copy.
        ``msg`` lands in the target's service queue either way.
        """
        device = self.device
        if not device.smi.same_node(device.rank, wtarget):
            duration = device.scheduler.chunk_write_duration(
                TransferMode.CONTIGUOUS, dst_offset, nbytes, [(nbytes, 1)],
                src_cached,
            )

            def attempt():
                try:
                    yield from device.world.smi.fabric.transfer_raw(
                        device.node.node_id,
                        device.smi.node_of(wtarget).node_id,
                        nbytes, duration,
                    )
                except SCITransientError as exc:
                    raise TransferFault(str(exc)) from exc

            yield from self.deliver_with_retry(wtarget, attempt)
            yield from device.world.smi.fabric.post_interrupt(
                device.node.node_id, device.smi.node_of(wtarget).node_id
            )
        else:
            yield device.engine.timeout(
                device.node.memory.copy_cost(nbytes).duration
            )
        device._trace("store.emulated", target=wtarget, nbytes=nbytes,
                      message=type(msg).__name__)
        device.world.device(wtarget).service.put(msg)

    def request_emulated(self, wtarget: int, msg: Any):
        """Send a payload-free emulated request (control packet + interrupt)."""
        device = self.device
        yield from device.send_ctrl(wtarget, msg)
        if not device.smi.same_node(device.rank, wtarget):
            yield from device.world.smi.fabric.post_interrupt(
                device.node.node_id, device.smi.node_of(wtarget).node_id
            )

    def respond_remote_put(self, origin: int, response: "SharedRegion",
                           offset: int, data: np.ndarray):
        """Remote-put response: this rank (the *target* of a get) writes
        window data into the origin's response region (Sec. 4.2 — writes
        are fast on SCI, so the target pushes instead of the origin
        pulling)."""
        device = self.device
        n = data.nbytes
        if device.smi.same_node(device.rank, origin):
            yield device.engine.timeout(device.node.memory.copy_cost(n).duration)
            response.local_view()[offset : offset + n] = data
        else:
            def attempt():
                handle = response.handle(device.rank)
                try:
                    yield from handle.write(
                        data, AccessRun.contiguous(offset, n), src_cached=False
                    )
                    yield from handle.barrier()
                except SegmentUnmappedError as exc:
                    raise TransferFault(str(exc), unmapped=True) from exc
                except (SCITransientError, TornTransferError) as exc:
                    raise TransferFault(str(exc)) from exc

            yield from self.deliver_with_retry(
                origin, attempt, on_unmap=lambda: response.remap(device.rank)
            )
