"""RemoteStore: the single primitive that moves payload bytes off-rank.

The paper's central mechanism is one and the same for every communication
mode: the CPU stores data *into mapped remote memory* (transparent PIO
writes), falling back to an emulated delivery — a control message plus a
remote interrupt invoking a handler at the target — only where no mapping
exists (Sec. 4.2).  The seed implementation had four copies of that
dichotomy (pt2pt chunk writes, eager-slot writes, OSC direct puts, OSC
emulation shipping); :class:`RemoteStore` is the one place left that
touches the fabric on behalf of the MPI layers.

Every method is a DES generator charging the same costs the scattered
seed paths charged; none of them changes simulated timing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ...hardware.sci.transactions import AccessRun
from ..pt2pt.costs import (
    contiguous_remote_chunk_duration,
    direct_remote_chunk_duration,
    local_chunk_copy_cost,
    pack_cost_direct,
)
from .policy import TransferMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...smi.regions import SharedRegion
    from ..pt2pt.engine import RankDevice

__all__ = ["RemoteStore"]


class RemoteStore:
    """One rank's interface for storing bytes into another rank's memory."""

    def __init__(self, device: "RankDevice"):
        self.device = device

    # -- packet-buffer writes (pt2pt) ----------------------------------------------

    def write_packed(self, dst: int, region: "SharedRegion", offset: int,
                     data: np.ndarray, mode: str,
                     groups: list[tuple[int, int]], src_cached: bool):
        """Ship ``data`` into ``region[offset:]`` at rank ``dst``.

        Remote: transparent PIO stores (or the DMA engine), costed by the
        transfer technique.  Local: the pack loop / protocol copy *is* the
        delivery.
        """
        device = self.device
        n = data.nbytes
        remote = not device.smi.same_node(device.rank, dst)
        memory = device.node.memory
        cfg = device.config
        if remote:
            params = device.node.params
            if mode == TransferMode.DMA:
                yield from device.world.smi.fabric.dma_transfer(
                    device.node.node_id, device.smi.node_of(dst).node_id, n
                )
            else:
                if mode == TransferMode.DIRECT:
                    duration = direct_remote_chunk_duration(
                        params, memory, offset, groups, cfg, src_cached
                    )
                else:
                    duration = contiguous_remote_chunk_duration(
                        params, offset, n, src_cached
                    )
                yield from device.world.smi.fabric.transfer_raw(
                    device.node.node_id, device.smi.node_of(dst).node_id, n,
                    duration,
                )
        else:
            if mode == TransferMode.DIRECT:
                yield device.engine.timeout(pack_cost_direct(memory, groups, cfg))
            else:
                yield device.engine.timeout(local_chunk_copy_cost(memory, n))
        region.local_view()[offset : offset + n] = data

    # -- direct one-sided access ------------------------------------------------------

    def write_run(self, region: "SharedRegion", run: AccessRun,
                  data: np.ndarray, src_cached: bool):
        """Direct put: transparent remote stores along a strided run."""
        handle = region.handle(self.device.rank)
        yield from handle.write(data, run, src_cached=src_cached)

    def read_run(self, region: "SharedRegion", run: AccessRun):
        """Direct get: transparent remote loads (the CPU stalls per txn)."""
        handle = region.handle(self.device.rank)
        data = yield from handle.read(run)
        return data

    def store_barrier(self, region: "SharedRegion"):
        """All previous direct stores into ``region`` are visible at the owner."""
        handle = region.handle(self.device.rank)
        yield from handle.barrier()

    # -- emulated delivery -----------------------------------------------------------

    def ship_emulated(self, wtarget: int, dst_offset: int, nbytes: int,
                      msg: Any, src_cached: bool):
        """Deliver an emulated operation carrying ``nbytes`` of payload.

        The payload travels as one contiguous remote write into the
        target's staging memory, followed by a remote interrupt that kicks
        the target's handler; intra-node it is a plain protocol copy.
        ``msg`` lands in the target's service queue either way.
        """
        device = self.device
        if not device.smi.same_node(device.rank, wtarget):
            duration = contiguous_remote_chunk_duration(
                device.node.params, dst_offset, nbytes, src_cached
            )
            yield from device.world.smi.fabric.transfer_raw(
                device.node.node_id, device.smi.node_of(wtarget).node_id,
                nbytes, duration,
            )
            yield from device.world.smi.fabric.post_interrupt(
                device.node.node_id, device.smi.node_of(wtarget).node_id
            )
        else:
            yield device.engine.timeout(
                device.node.memory.copy_cost(nbytes).duration
            )
        device.world.device(wtarget).service.put(msg)

    def request_emulated(self, wtarget: int, msg: Any):
        """Send a payload-free emulated request (control packet + interrupt)."""
        device = self.device
        yield from device.send_ctrl(wtarget, msg)
        if not device.smi.same_node(device.rank, wtarget):
            yield from device.world.smi.fabric.post_interrupt(
                device.node.node_id, device.smi.node_of(wtarget).node_id
            )

    def respond_remote_put(self, origin: int, response: "SharedRegion",
                           offset: int, data: np.ndarray):
        """Remote-put response: this rank (the *target* of a get) writes
        window data into the origin's response region (Sec. 4.2 — writes
        are fast on SCI, so the target pushes instead of the origin
        pulling)."""
        device = self.device
        n = data.nbytes
        if device.smi.same_node(device.rank, origin):
            yield device.engine.timeout(device.node.memory.copy_cost(n).duration)
            response.local_view()[offset : offset + n] = data
        else:
            handle = response.handle(device.rank)
            yield from handle.write(
                data, AccessRun.contiguous(offset, n), src_cached=False
            )
            yield from handle.barrier()
