"""Target-layout resolution for one-sided transfers.

Whether a one-sided operation can use direct remote stores depends on the
*target* datatype collapsing to a single strided access run the SCI
adapter can stream (``as_access_run``); anything richer goes through the
emulated path with a full packing plan.  This is the transport layer's
one place that makes the call — ``osc/window.py`` used to duplicate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...hardware.sci.transactions import AccessRun
from ..errors import RMAError
from ..flatten import as_access_run

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..datatypes.base import Datatype

__all__ = ["resolve_target_run"]


def resolve_target_run(disp: int, nbytes: int,
                       target_datatype: Optional["Datatype"],
                       target_count: int) -> Optional[AccessRun]:
    """The single strided run of a one-sided target layout, if one exists.

    Returns a contiguous run for untyped targets, a strided run when the
    (committed) target datatype collapses to one, and ``None`` when the
    layout is too complex for transparent stores (emulation required).
    Raises :class:`RMAError` when the origin byte count does not match the
    target type's packed size.
    """
    if target_datatype is None:
        return AccessRun.contiguous(disp, nbytes)
    target_datatype.commit()
    run = as_access_run(target_datatype.flattened, target_count, base=disp)
    if run is not None and run.total_bytes != nbytes:
        raise RMAError(
            f"origin data of {nbytes} B does not match target type of "
            f"{run.total_bytes} B"
        )
    return run
