"""The unified SCI transport layer: one chunked data path for everything.

The paper's core claim is that *one* mechanism — direct CPU stores into
mapped remote memory, streamed through bounded packet buffers — serves
non-contiguous point-to-point sends, one-sided communication and (through
them) the collectives.  This package is that mechanism's home:

* :class:`~repro.mpi.transport.policy.TransferPolicy` — every data-path
  decision (short/eager/rendezvous thresholds, generic vs. direct_pack_ff
  vs. DMA, direct vs. remote-put vs. emulated one-sided access, chunked
  vs. monolithic collectives) in one pluggable object;
* :class:`~repro.mpi.transport.scheduler.TransferScheduler` — streams a
  :class:`~repro.mpi.flatten.plan.PackPlan`'s coalesced runs through the
  bounded SCI buffers with credit-based flow control and per-chunk cost
  accounting;
* :class:`~repro.mpi.transport.store.RemoteStore` — the single primitive
  that moves payload bytes off-rank, wrapping direct-store vs. emulated
  (control message + interrupt handler) delivery;
* :func:`~repro.mpi.transport.layout.resolve_target_run` — the one place
  that decides whether a one-sided target layout is streamable.

``mpi/pt2pt``, ``mpi/osc`` and ``mpi/coll`` contain protocol logic only;
every payload byte they move goes through this package.
"""

from .fastpath import (
    DEFAULT_FASTPATH,
    CostTable,
    FastPathPolicy,
    StreamWindow,
    fastpath_disabled,
    fastpath_enabled,
    set_fastpath_enabled,
)
from .layout import resolve_target_run
from .policy import (
    DEFAULT_POLICY,
    DEFAULT_RECOVERY,
    ChunkedCollectivesPolicy,
    OSCStrategy,
    Protocol,
    RecoveryPolicy,
    TransferMode,
    TransferPolicy,
)
from .scheduler import ChunkCredit, ChunkReady, RndvAck, TransferScheduler
from .store import RemoteStore

__all__ = [
    "ChunkCredit",
    "ChunkReady",
    "ChunkedCollectivesPolicy",
    "CostTable",
    "DEFAULT_FASTPATH",
    "DEFAULT_POLICY",
    "DEFAULT_RECOVERY",
    "FastPathPolicy",
    "OSCStrategy",
    "Protocol",
    "RecoveryPolicy",
    "RemoteStore",
    "RndvAck",
    "StreamWindow",
    "TransferMode",
    "TransferPolicy",
    "TransferScheduler",
    "fastpath_disabled",
    "fastpath_enabled",
    "set_fastpath_enabled",
    "resolve_target_run",
]
