"""TransferScheduler: streams packing-plan runs through bounded buffers.

This is the chunked data path of the unified transport layer.  Whatever
the communication mode — a pt2pt send, a one-sided response, a collective
segment — the bytes of a message are described by a
:class:`~repro.mpi.flatten.plan.PackPlan` (coalesced run tables over the
packed stream) and streamed through bounded SCI packet buffers with
credit-based flow control:

* **short** — payload inline in the control packet;
* **eager** — payload into a pre-granted eager slot (credit window of
  ``eager_slots`` per sender/receiver pair);
* **rendezvous** — handshake, then chunk-wise streaming through the
  receiver's rendezvous buffer, one credit per chunk ("handshake
  cycles", Sec. 3.3.2).

All protocol bodies take a *stream segment* ``(seg_off, total)``: the
byte range of the packed stream they move.  Whole-message transfers use
``(0, plan.total)``; chunked collectives hand in sub-ranges, which makes
plan-aware segmentation free — each segment packs straight out of (and
unpacks straight into) user memory via the plan's prefix-sum range
lookup, with no staging copy.

The scheduler also keeps the per-chunk cost accounting (``stats``): how
many packet-buffer chunks, payload bytes and simulated microseconds this
rank's transfers consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ...hardware.sci.fabric import SCIConnectionError
from ...hardware.sci.segments import SegmentUnmappedError
from ...sim import Channel
from ..errors import MessageTruncated, TransferAborted, TransferFault
from ..pt2pt.costs import (
    contiguous_remote_chunk_duration,
    direct_remote_chunk_duration,
    local_chunk_copy_cost,
    pack_cost_direct,
    pack_cost_generic,
)
from ..pt2pt.messages import CreditReturn, EagerMsg, RndvRequest, ShortMsg
from ...qos.lanes import LANE_RESERVED
from .fastpath import CostTable, RecvWindowCosts, StreamWindow, fastpath_enabled
from .policy import TransferMode
from .store import RemoteStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..flatten import FlattenedType, PackPlan
    from ..pt2pt.engine import RankDevice

__all__ = ["ChunkCredit", "ChunkReady", "RndvAck", "TransferScheduler"]


@dataclass
class RndvAck:
    """Receiver's answer to a rendezvous request."""

    chunk_channel: Channel
    region: Any  # the receiver's rendezvous SharedRegion
    chunk_size: int
    #: Receiver-side stream-window support (``None`` = event path only).
    window: Optional[RecvWindowCosts] = None


@dataclass
class ChunkReady:
    index: int
    nbytes: int
    last: bool


@dataclass
class ChunkCredit:
    index: int


class TransferScheduler:
    """One rank's chunked data path over the :class:`RemoteStore`."""

    def __init__(self, device: "RankDevice"):
        self.device = device
        self.store = RemoteStore(device)
        #: Per-chunk cost accounting: every packet-buffer write this rank
        #: issued, by count / bytes / simulated time.
        self.stats = {"chunks": 0, "chunk_bytes": 0, "chunk_time": 0.0}
        #: Memoized per-chunk transaction costs (see ``docs/ENGINE.md``).
        self.costs = CostTable(device.policy.fastpath.table_size)
        #: Closed-form window counters: engaged windows and the chunks
        #: they collapsed (sender side).
        self.fastpath = {"windows": 0, "window_chunks": 0}

    # -- memoized chunk costs (fast path: cost tables) --------------------------------

    def _costed(self, key: tuple, build) -> float:
        """``build()``, memoized in the bounded cost table when enabled.

        The cached value is the exact float ``build`` returns — pure
        memoization, so simulated time never depends on the table.
        """
        if not (self.device.policy.fastpath.cost_tables and fastpath_enabled()):
            return build()
        return self.costs.lookup(key, build)

    def chunk_write_duration(self, mode: str, offset: int, nbytes: int,
                             groups: list[tuple[int, int]],
                             src_cached: bool) -> float:
        """Stand-alone duration of one remote chunk write (memoized)."""
        device = self.device
        params = device.node.params
        if mode == TransferMode.DIRECT:
            return self._costed(
                ("direct", offset, tuple(groups), src_cached),
                lambda: direct_remote_chunk_duration(
                    params, device.node.memory, offset, groups,
                    device.config, src_cached),
            )
        return self._costed(
            ("contig", offset, nbytes, src_cached),
            lambda: contiguous_remote_chunk_duration(
                params, offset, nbytes, src_cached),
        )

    def chunk_pack_cost(self, groups: list[tuple[int, int]]) -> float:
        """direct_pack_ff loop cost of one chunk's blocks (memoized)."""
        return self._costed(
            ("pack", tuple(groups)),
            lambda: pack_cost_direct(self.device.node.memory, groups,
                                     self.device.config),
        )

    def chunk_copy_cost(self, nbytes: int) -> float:
        """Protocol-copy cost of one cache-cold chunk (memoized)."""
        return self._costed(
            ("copy", nbytes),
            lambda: local_chunk_copy_cost(self.device.node.memory, nbytes),
        )

    # -- grouping (the single chunk-group implementation) ---------------------------

    @staticmethod
    def chunk_groups(mode: str, plan: "PackPlan", pos: int,
                     nbytes: int) -> list[tuple[int, int]]:
        """``(block_len, n_blocks)`` groups of one chunk of the stream."""
        if mode == TransferMode.CONTIGUOUS:
            return [(nbytes, 1)]
        return plan.groups_in_range(pos, nbytes)

    @staticmethod
    def plan_groups(plan: "PackPlan") -> list[tuple[int, int]]:
        """Whole-plan block groups (what the generic traversal walks)."""
        return plan.ft.block_length_groups(plan.count)

    @staticmethod
    def message_groups(plan: "PackPlan", ft: "FlattenedType", count: int,
                       seg_off: int, total: int) -> list[tuple[int, int]]:
        """Block groups of a whole message (or of one stream segment).

        Whole messages use the flattened type's per-leaf grouping (what
        the generic recursive traversal walks); segments use the plan's
        coalesced range view.
        """
        if seg_off == 0 and total == plan.total:
            return ft.block_length_groups(count)
        return plan.groups_in_range(seg_off, total)

    # -- chunk write with accounting -------------------------------------------------

    def _write_chunk(self, dst: int, region, offset: int, data: np.ndarray,
                     mode: str, groups: list[tuple[int, int]],
                     src_cached: bool, plan: Optional["PackPlan"] = None,
                     stream_off: int = 0):
        """Deliver one packet-buffer chunk, recovering from injected faults.

        On a clean fabric this is a single :meth:`RemoteStore.write_packed`
        plus accounting.  Under a fault plan it is the chunk-level recovery
        state machine: transient losses retransmit the chunk (bounded, with
        exponential backoff); torn transfers *resume* at the delivered byte
        — re-deriving the damaged tail's cost groups from the packing
        plan's range lookup (``plan``/``stream_off`` locate this chunk in
        the packed stream) — and a revoked packet-buffer mapping is
        re-imported for ``RecoveryPolicy.remap_cost``.
        """
        device = self.device
        engine = device.engine
        recovery = device.policy.recovery
        t0 = engine.now
        n = data.nbytes
        device._trace("chunk.write.begin", peer=dst, nbytes=n, mode=mode)
        pos = 0          # delivered bytes of this chunk
        attempt = 0
        while True:
            if pos == 0:
                part, part_groups = data, groups
            elif plan is not None and mode == TransferMode.DIRECT:
                part = data[pos:]
                part_groups = plan.groups_in_range(stream_off + pos, n - pos)
            else:
                part = data[pos:]
                part_groups = [(n - pos, 1)]
            try:
                yield from self.store.write_packed(
                    dst, region, offset + pos, part, mode, part_groups,
                    src_cached,
                )
            except TransferFault as fault:
                attempt += 1
                if attempt > recovery.max_retransmits:
                    device.recovery["aborts"] += 1
                    raise TransferAborted(
                        f"chunk to rank {dst} still failing after "
                        f"{recovery.max_retransmits} retransmissions"
                    ) from fault
                if fault.unmapped:
                    # Fresh mapping of the peer's packet buffer (the pt2pt
                    # degradation path: remap, then carry on).
                    device.recovery["remaps"] += 1
                    device._trace("recover.fallback.begin", peer=dst,
                                  action="remap")
                    region.remap(device.rank)
                    yield engine.timeout(recovery.remap_cost)
                    device._trace("recover.fallback.end", peer=dst)
                    continue
                if fault.delivered and recovery.resume_torn:
                    # Torn mid-stream: the prefix landed; resume the
                    # remaining byte range instead of the whole chunk.
                    # Round the resume point *down* to the adapter's
                    # stream window: a tail starting mid-store-unit
                    # defeats write-combining for every store in it
                    # (each becomes its own PCI/SCI transaction), which
                    # costs far more than re-sending <64 intact bytes.
                    stream = device.node.params.adapter.stream_txn_size
                    delivered = pos + fault.delivered
                    pos = max(delivered - (offset + delivered) % stream, 0)
                    device.recovery["resumes"] += 1
                    device._trace("recover.resume.begin", peer=dst,
                                  delivered=pos, nbytes=n)
                    yield engine.timeout(recovery.backoff(attempt))
                    device._trace("recover.resume.end", peer=dst)
                    continue
                device.recovery["retries"] += 1
                device._trace("recover.retry.begin", peer=dst,
                              attempt=attempt)
                yield engine.timeout(recovery.backoff(attempt))
                device._trace("recover.retry.end", peer=dst)
                continue
            break
        self.stats["chunks"] += 1
        self.stats["chunk_bytes"] += n
        self.stats["chunk_time"] += engine.now - t0
        device._trace("chunk.write.end", peer=dst, nbytes=n,
                      retries=attempt)

    # -- credit waits with timeout ------------------------------------------------------

    def _await_credit(self, reply: Channel, dest: int):
        """Wait for the receiver's :class:`ChunkCredit`.

        On a clean fabric this is a plain channel get.  Under a fault plan
        the wait races a per-chunk timeout (``RecoveryPolicy.chunk_timeout``
        with exponential backoff): a stalled receiver trips the timeout,
        the sender probes the connection (the paper's Sec. 2 "connection
        monitoring") and keeps waiting — control packets and credits are
        never lost, only late, so re-waiting on the *same* pending get
        keeps credit accounting exact.  Gives up after
        ``max_retransmits`` consecutive timeouts.
        """
        device = self.device
        if device.world.smi.fabric.fault_plan is None:
            credit = yield reply.get()
            assert isinstance(credit, ChunkCredit)
            return credit
        engine = device.engine
        recovery = device.policy.recovery
        get_ev = reply.get()
        timeout = recovery.chunk_timeout
        yield engine.any_of([get_ev, engine.timeout(timeout)])
        attempt = 0
        while not get_ev.processed:
            attempt += 1
            if attempt > recovery.max_retransmits:
                device.recovery["aborts"] += 1
                raise TransferAborted(
                    f"no chunk credit from rank {dest} after "
                    f"{attempt - 1} timeout extensions"
                )
            device.recovery["timeouts"] += 1
            src_node = device.node.node_id
            dst_node = device.smi.node_of(dest).node_id
            if src_node != dst_node and not device.world.smi.fabric.ping(
                src_node, dst_node
            ):
                device.recovery["aborts"] += 1
                raise TransferAborted(
                    f"rank {dest} unreachable while awaiting chunk credit"
                )
            timeout *= recovery.backoff_factor
            device._trace("recover.retry.begin", peer=dest,
                          cause="credit-timeout", attempt=attempt)
            yield engine.any_of([get_ev, engine.timeout(timeout)])
            device._trace("recover.retry.end", peer=dest)
        credit = get_ev.value
        assert isinstance(credit, ChunkCredit)
        return credit

    # -- send protocols ---------------------------------------------------------------

    def send_short(self, dest, env, mem, base, ft, plan, count, seg_off,
                   total, contiguous, sync_reply):
        """Short protocol: pack inline (tiny either way) + one ctrl packet."""
        device = self.device
        payload = plan.execute_pack(mem, base, seg_off, total)
        if not contiguous:
            groups = self.message_groups(plan, ft, count, seg_off, total)
            yield device.engine.timeout(
                pack_cost_direct(device.node.memory, groups, device.config)
            )
        yield from device.send_ctrl(dest, ShortMsg(env, payload, sync_reply))

    def send_eager(self, dest, env, mem, base, ft, plan, count, seg_off,
                   total, mode, src_cached, sync_reply=None):
        """Eager protocol: one credited slot write + control packet."""
        device = self.device
        cfg = device.config
        if mode == TransferMode.DMA:
            # DMA setup dwarfs eager-sized messages; fall back to the
            # generic PIO path (what SCI-MPICH's DMA protocol does too).
            mode = TransferMode.GENERIC
        credits, free = device._eager_pool(dest)
        yield credits.request()
        slot = free.pop()
        peer_region = device.world.device(dest).eager_region
        slot_offset = (device.rank * cfg.eager_slots + slot) * cfg.eager_threshold

        if mode == TransferMode.GENERIC:
            groups = self.message_groups(plan, ft, count, seg_off, total)
            yield device.engine.timeout(
                pack_cost_generic(device.node.memory, groups, cfg)
            )
        data = plan.execute_pack(mem, base, seg_off, total)
        groups = self.chunk_groups(mode, plan, seg_off, total)
        yield from self._write_chunk(
            dest, peer_region, slot_offset, data, mode, groups, src_cached,
            plan=plan, stream_off=seg_off,
        )
        yield from device.send_ctrl(
            dest, EagerMsg(env, slot_offset, data.nbytes, slot_index=slot,
                           sync_reply=sync_reply)
        )

    # -- closed-form stream windows (fast path: analytic replay) ----------------------

    def _window_size(self, ack: RndvAck, pos: int, total: int) -> int:
        """Chunks worth collapsing: every remaining *full* chunk except
        the stream's final chunk, which always runs event-stepped (it
        carries the ``last`` flag, may be partial, and closes the credit
        handshake naturally)."""
        chunk = ack.chunk_size
        remaining = total - pos
        full = remaining // chunk
        return full - 1 if remaining % chunk == 0 else full

    def _stream_window(self, dest, ack: RndvAck, mem, base, plan, packed,
                       mode, seg_off, pos, index, total, src_cached):
        """Collapse the steady-state tail of a rendezvous stream.

        When the engine is otherwise quiescent — no scheduled events, no
        time hooks, no concurrent flows, clean deterministic fabric — the
        next ``k`` handshake cycles are a closed arithmetic form: per
        cycle the clock advances by hop latency, the exclusive flow
        delay, the sender's control cost, the receiver's drain cost and
        the receiver's credit cost, in that order.  This method replays
        that sequence analytically (bit-identical floats, identical
        per-link byte/peak accounting), ships all ``k`` chunks as one
        :class:`StreamWindow`, and advances the clock with a single
        ``wake_at``.  Returns ``(pos, index)`` past the window, or
        ``None`` to run the event-stepped path.
        """
        device = self.device
        policy = device.policy.fastpath
        if not (policy.closed_form and fastpath_enabled()):
            return None
        if ack.window is None or mode == TransferMode.DMA:
            return None
        k = self._window_size(ack, pos, total)
        if k < policy.min_window:
            return None
        engine = device.engine
        if not engine.quiescent:
            return None
        if device.smi.same_node(device.rank, dest):
            return None
        fabric = device.world.smi.fabric
        if fabric.fault_plan is not None or fabric._error_rate != 0.0:
            return None
        if fabric.qos is not None and fabric.qos.enforcing:
            # Active reservations shape per-transfer durations; the
            # closed-form replay assumes the unshaped cost model, so the
            # event-stepped path (which consults the QoS hook on every
            # wire op) must run instead.
            return None
        if device.tracer is not None or fabric.tracer is not None:
            return None
        network = fabric.network
        if network.active_flows != 0:
            return None
        src_node = device.node.node_id
        dst_node = device.smi.node_of(dest).node_id
        try:
            route = fabric._check_route(src_node, dst_node)
            ack.region.handle(device.rank).ensure_mapped()
        except (SCIConnectionError, SegmentUnmappedError):
            return None  # let the event path surface the failure properly
        if not route.data_segments:
            return None

        n = ack.chunk_size
        chunk_mode = TransferMode.CONTIGUOUS if packed is not None else mode
        hop = route.hops * fabric.params_for(src_node).link.hop_latency
        ctrl_send = device._ctrl_cost(dest)
        ctrl_credit = ack.window.ctrl_cost
        if chunk_mode == TransferMode.DIRECT:
            write_durs = [
                self.chunk_write_duration(
                    chunk_mode, 0, n,
                    plan.groups_in_range(seg_off + pos + i * n, n), src_cached)
                for i in range(k)
            ]
        else:
            write_durs = [self.chunk_write_duration(
                chunk_mode, 0, n, [(n, 1)], src_cached)] * k
        drain_costs = [ack.window.chunk_cost(pos + i * n, n) for i in range(k)]
        rate_caps = [n / d for d in write_durs]

        homogeneous = (all(d == write_durs[0] for d in write_durs)
                       and all(d == drain_costs[0] for d in drain_costs))
        if homogeneous:
            # Numpy cohort: one accumulate pass over the tiled per-cycle
            # delta pattern [hop, flow, ctrl, drain, credit].
            rate = network.exclusive_rate(route, rate_caps[0])
            delay = float(n) / rate
            deltas = np.tile(np.array(
                [hop, delay, ctrl_send, drain_costs[0], ctrl_credit],
                dtype=np.float64), k)
            times = engine.coalesce_delays(engine.now, deltas)
            t1, t2 = times[0::5], times[1::5]
            starts = np.concatenate(([engine.now], times[4::5][:-1]))
            network.replay_exclusive_cohort(route, n, rate_caps[0], t1, t2)
            chunk_durs = t2 - starts
            end = float(times[-1])
        else:
            t = engine.now
            chunk_durs = []
            for i in range(k):
                t0 = t
                t = t + hop
                t = network.replay_exclusive(route, n, rate_caps[i], t)
                chunk_durs.append(t - t0)
                t = t + ctrl_send
                t = t + drain_costs[i]
                t = t + ctrl_credit
            engine.events_coalesced += 5 * k
            end = t

        payload = (packed[pos : pos + k * n] if packed is not None
                   else plan.execute_pack(mem, base, seg_off + pos, k * n))
        # The event path leaves the last-written chunk in the packet
        # buffer; mirror that so memory state cannot diverge either.
        ack.region.local_view()[:n] = payload[(k - 1) * n :]
        fabric.counters["pio_writes"] += k
        fabric.counters["bytes_written"] += k * n
        self.stats["chunks"] += k
        self.stats["chunk_bytes"] += k * n
        for dur in chunk_durs:
            self.stats["chunk_time"] += float(dur)
        self.fastpath["windows"] += 1
        self.fastpath["window_chunks"] += k

        ack.chunk_channel.put(
            StreamWindow(index, pos, k, n, payload, end))
        yield engine.wake_at(end, name="stream-window")
        return pos + k * n, index + k

    def send_rndv(self, dest, env, mem, base, ft, plan, count, seg_off,
                  total, mode, src_cached):
        """Rendezvous protocol: handshake, then credit-paced chunk stream."""
        device = self.device
        cfg = device.config
        reply: Channel = Channel(device.engine, name=f"rndv-reply-r{device.rank}")
        yield from device.send_ctrl(dest, RndvRequest(env, total, reply))
        ack: RndvAck = yield reply.get()

        packed: Optional[np.ndarray] = None
        if mode == TransferMode.GENERIC:
            # Generic path: recursive pack of the whole message up front
            # (Fig. 4 top).
            groups = self.message_groups(plan, ft, count, seg_off, total)
            yield device.engine.timeout(
                pack_cost_generic(device.node.memory, groups, cfg)
            )
            packed = plan.execute_pack(mem, base, seg_off, total)
        elif mode == TransferMode.DMA:
            # DMA path (the paper's Sec. 6 outlook): flatten-pack into
            # registered memory with the fast ff loop, then DMA the chunks.
            groups = self.message_groups(plan, ft, count, seg_off, total)
            yield device.engine.timeout(
                pack_cost_direct(device.node.memory, groups, cfg)
            )
            packed = plan.execute_pack(mem, base, seg_off, total)

        pos = 0
        index = 0
        while pos < total:
            advanced = yield from self._stream_window(
                dest, ack, mem, base, plan, packed, mode, seg_off, pos,
                index, total, src_cached,
            )
            if advanced is not None:
                pos, index = advanced
                continue
            n = min(ack.chunk_size, total - pos)
            if packed is not None:
                data = packed[pos : pos + n]
                groups = [(n, 1)]
                chunk_mode = (
                    TransferMode.DMA if mode == TransferMode.DMA
                    else TransferMode.CONTIGUOUS
                )
            elif mode == TransferMode.CONTIGUOUS:
                data = plan.execute_pack(mem, base, seg_off + pos, n)
                groups = [(n, 1)]
                chunk_mode = mode
            else:  # direct_pack_ff
                data = plan.execute_pack(mem, base, seg_off + pos, n)
                groups = plan.groups_in_range(seg_off + pos, n)
                chunk_mode = mode
            yield from self._write_chunk(
                dest, ack.region, 0, data, chunk_mode, groups, src_cached,
                plan=plan, stream_off=seg_off + pos,
            )
            last = pos + n >= total
            yield from device.send_ctrl(
                dest, ChunkReady(index, n, last), to_channel=ack.chunk_channel
            )
            if not last:
                yield from self._await_credit(reply, dest)
            pos += n
            index += 1
        # Final credit confirms the receiver drained the last chunk.
        yield from self._await_credit(reply, dest)

    # -- receive protocols -------------------------------------------------------------

    def recv_short(self, msg: ShortMsg, mem, base, ft, plan, count, seg_off,
                   capacity, contiguous):
        device = self.device
        n = msg.data.nbytes
        if n > capacity:
            raise MessageTruncated(f"short message of {n} B > buffer {capacity} B")
        if not contiguous:
            groups = plan.groups_in_range(seg_off, n)
            yield device.engine.timeout(
                pack_cost_direct(device.node.memory, groups, device.config)
            )
        plan.execute_unpack(mem, base, seg_off, msg.data)
        if msg.sync_reply is not None:
            yield from device.send_ctrl(msg.envelope.source, True,
                                        to_channel=msg.sync_reply)
        return n

    def recv_eager(self, msg: EagerMsg, mem, base, ft, plan, count, seg_off,
                   capacity, mode, contiguous):
        device = self.device
        memory = device.node.memory
        cfg = device.config
        n = msg.nbytes
        if n > capacity:
            raise MessageTruncated(f"eager message of {n} B > buffer {capacity} B")
        region = device.eager_region
        data = np.array(
            region.local_view()[msg.slot_offset : msg.slot_offset + n], copy=True
        )
        if (mode in (TransferMode.DIRECT, TransferMode.DMA)
                and not contiguous):
            groups = plan.groups_in_range(seg_off, n)
            yield device.engine.timeout(self.chunk_pack_cost(groups))
        elif mode == TransferMode.GENERIC:
            yield device.engine.timeout(self.chunk_copy_cost(n))
            groups = plan.groups_in_range(seg_off, n)
            yield device.engine.timeout(pack_cost_generic(memory, groups, cfg))
        else:
            yield device.engine.timeout(self.chunk_copy_cost(n))
        plan.execute_unpack(mem, base, seg_off, data)
        # Credit keyed by *this* rank at the sender's pool.
        yield from device.send_ctrl(
            msg.envelope.source, CreditReturn((device.rank, msg.slot_index))
        )
        if msg.sync_reply is not None:
            yield from device.send_ctrl(msg.envelope.source, True,
                                        to_channel=msg.sync_reply)
        return n

    def _window_support(self, mode, contiguous, plan,
                        seg_off) -> Optional[RecvWindowCosts]:
        """This receiver's half of the stream-window cost structure.

        Advertised in the rendezvous ack; ``None`` when the closed-form
        path is off, so the sender streams event-stepped chunks.  The
        ``chunk_cost`` closure mirrors the three drain branches of the
        event-stepped receive loop below — same pure cost functions,
        same memoization table — so the sender's analytic replay charges
        exactly what this rank would have charged per cycle.
        """
        device = self.device
        if not (device.policy.fastpath.closed_form and fastpath_enabled()):
            return None

        def chunk_cost(pos: int, n: int) -> float:
            if mode == TransferMode.GENERIC:
                return self.chunk_copy_cost(n)
            if (mode in (TransferMode.DIRECT, TransferMode.DMA)
                    and not contiguous):
                return self.chunk_pack_cost(plan.groups_in_range(seg_off + pos, n))
            return self.chunk_copy_cost(n)

        return RecvWindowCosts(chunk_cost=chunk_cost,
                               ctrl_cost=device.config.ctrl_send_cost)

    def _drain_window(self, window: StreamWindow, mem, base, plan,
                      packed_tmp, seg_off: int, pos: int) -> int:
        """Unpack one stream window in a single pass (no simulated time:
        the sender's analytic replay already advanced the clock through
        every cycle, drain costs included).  Returns the new stream
        position; no credits are returned — the window protocol replaces
        them."""
        assert window.pos == pos, (window.pos, pos)
        nbytes = window.count * window.nbytes
        if packed_tmp is not None:
            packed_tmp[pos : pos + nbytes] = window.payload
        else:
            plan.execute_unpack(mem, base, seg_off + pos, window.payload)
        return pos + nbytes

    def _rndv_priority(self, source: int) -> int:
        """Queue priority of ``source``'s rendezvous stream at this
        receiver's slot (lower wins).

        With QoS enforcement active and ``credit_priority`` on,
        reserved-lane senders rank ahead (0) of best-effort senders (1),
        so a reserved stream is granted the rendezvous buffer before
        best-effort streams that queued earlier.  In every other case all
        requests rank 0 — exact FIFO, bit-identical to the QoS-free
        scheduler.
        """
        qos = self.device.world.smi.fabric.qos
        if qos is None or not qos.enforcing or not qos.lanes.credit_priority:
            return 0
        node = self.device.smi.node_of(source).node_id
        return 0 if qos.lane_of_node(node) == LANE_RESERVED else 1

    def recv_rndv(self, msg: RndvRequest, mem, base, ft, plan, count, seg_off,
                  capacity, mode, contiguous):
        """Receiver side of the chunk stream: drain, unpack, credit."""
        device = self.device
        memory = device.node.memory
        cfg = device.config
        total = msg.nbytes
        if total > capacity:
            raise MessageTruncated(f"rendezvous of {total} B > buffer {capacity} B")
        yield device.rndv_lock.request(
            priority=self._rndv_priority(msg.envelope.source))
        try:
            chunk_channel: Channel = Channel(
                device.engine, name=f"rndv-chunks-r{device.rank}"
            )
            ack = RndvAck(chunk_channel, device.rndv_region, cfg.rendezvous_chunk,
                          window=self._window_support(mode, contiguous, plan,
                                                      seg_off))
            yield from device.send_ctrl(msg.envelope.source, ack,
                                        to_channel=msg.reply)

            packed_tmp: Optional[np.ndarray] = (
                np.empty(total, dtype=np.uint8)
                if mode == TransferMode.GENERIC
                else None
            )
            fault_plan = device.world.smi.fabric.fault_plan
            pos = 0
            while pos < total:
                ready = yield chunk_channel.get()
                if isinstance(ready, StreamWindow):
                    pos = self._drain_window(ready, mem, base, plan,
                                             packed_tmp, seg_off, pos)
                    continue
                if fault_plan is not None:
                    # Injected node stall: this rank's receive path is
                    # descheduled — unpacking and the credit run late,
                    # exercising the sender's per-chunk timeout.
                    stall = fault_plan.draw_stall(device.node.node_id)
                    if stall:
                        yield device.engine.timeout(stall)
                n = ready.nbytes
                data = np.array(device.rndv_region.local_view()[:n], copy=True)
                if packed_tmp is not None:
                    # Generic: protocol copy into the packed temp buffer.
                    yield device.engine.timeout(self.chunk_copy_cost(n))
                    packed_tmp[pos : pos + n] = data
                elif (mode in (TransferMode.DIRECT, TransferMode.DMA)
                      and not contiguous):
                    # Direct (and DMA) receivers unpack each chunk straight
                    # into the user buffer with the ff loop.
                    groups = plan.groups_in_range(seg_off + pos, n)
                    yield device.engine.timeout(self.chunk_pack_cost(groups))
                    plan.execute_unpack(mem, base, seg_off + pos, data)
                else:
                    yield device.engine.timeout(self.chunk_copy_cost(n))
                    plan.execute_unpack(mem, base, seg_off + pos, data)
                pos += n
                yield from device.send_ctrl(
                    msg.envelope.source, ChunkCredit(ready.index),
                    to_channel=msg.reply,
                )
            if packed_tmp is not None:
                # Generic: the final recursive unpack of the whole message.
                groups = self.message_groups(plan, ft, count, seg_off, total)
                yield device.engine.timeout(
                    pack_cost_generic(memory, groups, cfg)
                )
                plan.execute_unpack(mem, base, seg_off, packed_tmp)
        finally:
            device.rndv_lock.release()
        return total

    # -- one-sided chunked fetch -------------------------------------------------------

    def fetch_via_response(self, target_disp: int, nbytes: int, make_request):
        """Chunk a remote-put / emulated get through the response region.

        ``make_request(disp, n)`` issues the control message for one chunk
        (a DES generator returning the chunk's completion event); the
        target's handler remote-puts each chunk into this rank's response
        region, which is then drained with a cache-cold protocol copy.
        """
        device = self.device
        response = device.response_region
        chunk = response.nbytes
        out = np.empty(nbytes, dtype=np.uint8)
        pos = 0
        while pos < nbytes:
            n = min(chunk, nbytes - pos)
            done = yield from make_request(target_disp + pos, n)
            yield done
            yield device.engine.timeout(self.chunk_copy_cost(n))
            out[pos : pos + n] = response.local_view()[:n]
            pos += n
        return out
