"""MPI-level exception types."""

from __future__ import annotations

__all__ = [
    "MPIError",
    "MessageTruncated",
    "CommunicationError",
    "RMAError",
    "TransferFault",
    "TransferAborted",
]


class MPIError(RuntimeError):
    """Base class of all MPI usage/runtime errors."""


class MessageTruncated(MPIError):
    """A received message is larger than the posted receive buffer
    (MPI_ERR_TRUNCATE)."""


class CommunicationError(MPIError):
    """A transfer failed at the interconnect level (node/link failure)."""


class TransferFault(CommunicationError):
    """A single transfer attempt failed recoverably.

    ``delivered`` is how many payload bytes of the attempt arrived intact
    (nonzero for torn transfers — the resume point); ``unmapped`` is set
    when the failure was a revoked segment mapping rather than a lost
    transfer (recover by remapping or falling back to emulation).
    """

    def __init__(self, msg: str, delivered: int = 0, unmapped: bool = False):
        super().__init__(msg)
        self.delivered = delivered
        self.unmapped = unmapped


class TransferAborted(CommunicationError):
    """Recovery gave up: the bounded retransmission budget
    (``RecoveryPolicy.max_retransmits``) was exhausted."""


class RMAError(MPIError):
    """One-sided communication misuse (bad window, bad epoch, bad target)."""
