"""MPI-level exception types."""

from __future__ import annotations

__all__ = ["MPIError", "MessageTruncated", "CommunicationError", "RMAError"]


class MPIError(RuntimeError):
    """Base class of all MPI usage/runtime errors."""


class MessageTruncated(MPIError):
    """A received message is larger than the posted receive buffer
    (MPI_ERR_TRUNCATE)."""


class CommunicationError(MPIError):
    """A transfer failed at the interconnect level (node/link failure)."""


class RMAError(MPIError):
    """One-sided communication misuse (bad window, bad epoch, bad target)."""
