"""MPI datatype engine (S6): basic types, constructors, commit/flatten.

Factory helpers mirror the MPI ``MPI_Type_*`` calls::

    vec = Vector(count=64, blocklength=1, stride=2, oldtype=DOUBLE).commit()
"""

from .base import Datatype, DatatypeError
from .basic import (
    BASIC_TYPES,
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    UNSIGNED,
    UNSIGNED_CHAR,
    UNSIGNED_LONG,
    UNSIGNED_SHORT,
    BasicType,
)
from .constructors import (
    Contiguous,
    Hindexed,
    Hvector,
    Indexed,
    Resized,
    Struct,
    Subarray,
    Vector,
)

__all__ = [
    "BASIC_TYPES",
    "BYTE",
    "BasicType",
    "CHAR",
    "Contiguous",
    "DOUBLE",
    "Datatype",
    "DatatypeError",
    "FLOAT",
    "Hindexed",
    "Hvector",
    "INT",
    "Indexed",
    "LONG",
    "Resized",
    "SHORT",
    "Struct",
    "Subarray",
    "UNSIGNED",
    "UNSIGNED_CHAR",
    "UNSIGNED_LONG",
    "UNSIGNED_SHORT",
    "Vector",
]
