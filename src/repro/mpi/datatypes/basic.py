"""Basic (predefined) MPI datatypes.

These mirror the C basic types the MPI standard defines; each carries the
numpy dtype used for typed views of simulated buffers.
"""

from __future__ import annotations

import numpy as np

from .base import Datatype

__all__ = [
    "BasicType",
    "BYTE",
    "CHAR",
    "SHORT",
    "INT",
    "LONG",
    "UNSIGNED_CHAR",
    "UNSIGNED_SHORT",
    "UNSIGNED",
    "UNSIGNED_LONG",
    "FLOAT",
    "DOUBLE",
    "BASIC_TYPES",
]


class BasicType(Datatype):
    """A predefined elementary datatype (a leaf of every datatype tree)."""

    combiner = "basic"

    def __init__(self, name: str, np_dtype: np.dtype | str):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        itemsize = self.np_dtype.itemsize
        super().__init__(size=itemsize, lb=0, ub=itemsize)

    def __repr__(self) -> str:
        return f"<BasicType {self.name} ({self.size} B)>"


BYTE = BasicType("MPI_BYTE", np.uint8)
CHAR = BasicType("MPI_CHAR", np.int8)
SHORT = BasicType("MPI_SHORT", np.int16)
INT = BasicType("MPI_INT", np.int32)
LONG = BasicType("MPI_LONG", np.int64)
UNSIGNED_CHAR = BasicType("MPI_UNSIGNED_CHAR", np.uint8)
UNSIGNED_SHORT = BasicType("MPI_UNSIGNED_SHORT", np.uint16)
UNSIGNED = BasicType("MPI_UNSIGNED", np.uint32)
UNSIGNED_LONG = BasicType("MPI_UNSIGNED_LONG", np.uint64)
FLOAT = BasicType("MPI_FLOAT", np.float32)
DOUBLE = BasicType("MPI_DOUBLE", np.float64)

#: All predefined types by MPI name.
BASIC_TYPES: dict[str, BasicType] = {
    t.name: t
    for t in (
        BYTE,
        CHAR,
        SHORT,
        INT,
        LONG,
        UNSIGNED_CHAR,
        UNSIGNED_SHORT,
        UNSIGNED,
        UNSIGNED_LONG,
        FLOAT,
        DOUBLE,
    )
}
