"""MPI derived-datatype constructors.

Each constructor mirrors its MPI counterpart (Sec. 3.1 of the paper /
MPI-1 Sec. 3.12): contiguous, vector, hvector, indexed, hindexed, struct,
plus ``Resized`` for explicit lb/extent control (MPI-2's
``MPI_Type_create_resized``, subsuming the MPI_LB/MPI_UB markers).

Strides and displacements follow MPI conventions:

* ``Vector``/``Indexed`` measure stride/displacements in *extents of the
  old type*;
* ``Hvector``/``Hindexed``/``Struct`` measure them in *bytes* (the "h"
  stands for heterogeneous);
* negative strides/displacements are legal and produce a negative lb.
"""

from __future__ import annotations

from typing import Sequence

from .base import Datatype, DatatypeError

__all__ = [
    "Contiguous",
    "Vector",
    "Hvector",
    "Indexed",
    "Hindexed",
    "Struct",
    "Subarray",
    "Resized",
]


def _span(parts: list[tuple[int, Datatype, int]]) -> tuple[int, int]:
    """(lb, ub) over (displacement, type, replication) parts.

    Each part occupies [disp + lb, disp + lb + repl*extent) in the usual
    MPI sense (replication advances by the type extent).
    """
    lbs: list[int] = []
    ubs: list[int] = []
    for disp, dtype, repl in parts:
        if repl == 0:
            continue
        lbs.append(disp + dtype.lb)
        ubs.append(disp + dtype.lb + repl * dtype.extent)
        # With negative extent-like layouts (lb > 0 etc.) the raw bounds
        # still apply:
        lbs.append(disp + dtype.lb)
        ubs.append(disp + dtype.ub)
    if not lbs:
        return (0, 0)
    return (min(lbs), max(ubs))


class Contiguous(Datatype):
    """``count`` consecutive instances of ``oldtype``."""

    combiner = "contiguous"

    def __init__(self, count: int, oldtype: Datatype):
        if count < 0:
            raise DatatypeError(f"negative count: {count}")
        self.count = count
        self.oldtype = oldtype
        lb, ub = _span([(0, oldtype, count)])
        super().__init__(size=count * oldtype.size, lb=lb, ub=ub)

    def children(self) -> tuple[Datatype, ...]:
        return (self.oldtype,)


class Hvector(Datatype):
    """``count`` blocks of ``blocklength`` oldtypes, ``stride_bytes`` apart."""

    combiner = "hvector"

    def __init__(self, count: int, blocklength: int, stride_bytes: int, oldtype: Datatype):
        if count < 0 or blocklength < 0:
            raise DatatypeError("count and blocklength must be non-negative")
        self.count = count
        self.blocklength = blocklength
        self.stride_bytes = stride_bytes
        self.oldtype = oldtype
        parts = [(i * stride_bytes, oldtype, blocklength) for i in range(count)]
        lb, ub = _span(parts)
        super().__init__(size=count * blocklength * oldtype.size, lb=lb, ub=ub)

    def children(self) -> tuple[Datatype, ...]:
        return (self.oldtype,)


class Vector(Hvector):
    """Like :class:`Hvector` but with the stride in oldtype extents."""

    combiner = "vector"

    def __init__(self, count: int, blocklength: int, stride: int, oldtype: Datatype):
        self.stride = stride
        super().__init__(count, blocklength, stride * oldtype.extent, oldtype)


class Hindexed(Datatype):
    """Blocks of varying length at explicit byte displacements."""

    combiner = "hindexed"

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements_bytes: Sequence[int],
        oldtype: Datatype,
    ):
        if len(blocklengths) != len(displacements_bytes):
            raise DatatypeError(
                f"{len(blocklengths)} blocklengths vs "
                f"{len(displacements_bytes)} displacements"
            )
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("negative blocklength")
        self.blocklengths = tuple(blocklengths)
        self.displacements_bytes = tuple(displacements_bytes)
        self.oldtype = oldtype
        parts = [
            (disp, oldtype, blk)
            for disp, blk in zip(self.displacements_bytes, self.blocklengths)
        ]
        lb, ub = _span(parts)
        super().__init__(
            size=sum(self.blocklengths) * oldtype.size, lb=lb, ub=ub
        )

    def children(self) -> tuple[Datatype, ...]:
        return (self.oldtype,)


class Indexed(Hindexed):
    """Like :class:`Hindexed` with displacements in oldtype extents."""

    combiner = "indexed"

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        oldtype: Datatype,
    ):
        self.displacements = tuple(displacements)
        super().__init__(
            blocklengths,
            [d * oldtype.extent for d in displacements],
            oldtype,
        )


class Struct(Datatype):
    """Heterogeneous fields: per-field blocklength, byte displacement, type."""

    combiner = "struct"

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements_bytes: Sequence[int],
        types: Sequence[Datatype],
    ):
        if not (len(blocklengths) == len(displacements_bytes) == len(types)):
            raise DatatypeError("struct field lists must have equal length")
        if any(b < 0 for b in blocklengths):
            raise DatatypeError("negative blocklength")
        self.blocklengths = tuple(blocklengths)
        self.displacements_bytes = tuple(displacements_bytes)
        self.types = tuple(types)
        parts = list(zip(self.displacements_bytes, self.types, self.blocklengths))
        lb, ub = _span(parts)
        size = sum(b * t.size for b, t in zip(self.blocklengths, self.types))
        super().__init__(size=size, lb=lb, ub=ub)

    def children(self) -> tuple[Datatype, ...]:
        return self.types


class Subarray(Datatype):
    """An n-dimensional subarray of a larger array (MPI_Type_create_subarray).

    ``sizes`` are the full array dimensions, ``subsizes`` the selected
    region, ``starts`` its origin — all in elements of ``oldtype``, with
    C (row-major) ordering.  The extent equals the full array, so
    consecutive instances tile whole arrays.

    This is the natural datatype for halo exchanges: a face of a 3-D grid
    is one Subarray definition instead of nested (h)vectors.
    """

    combiner = "subarray"

    def __init__(
        self,
        sizes: Sequence[int],
        subsizes: Sequence[int],
        starts: Sequence[int],
        oldtype: Datatype,
    ):
        if not (len(sizes) == len(subsizes) == len(starts)):
            raise DatatypeError("sizes/subsizes/starts must have equal rank")
        if not sizes:
            raise DatatypeError("subarray needs at least one dimension")
        for full, sub, start in zip(sizes, subsizes, starts):
            if full <= 0 or sub < 0 or start < 0 or start + sub > full:
                raise DatatypeError(
                    f"invalid subarray slice: start {start} size {sub} "
                    f"within {full}"
                )
        self.sizes = tuple(sizes)
        self.subsizes = tuple(subsizes)
        self.starts = tuple(starts)
        self.oldtype = oldtype
        nelems = 1
        for sub in self.subsizes:
            nelems *= sub
        total = 1
        for full in self.sizes:
            total *= full
        super().__init__(
            size=nelems * oldtype.size, lb=0, ub=total * oldtype.extent
        )

    def children(self) -> tuple[Datatype, ...]:
        return (self.oldtype,)

    def dim_strides(self) -> tuple[int, ...]:
        """Byte stride of each dimension of the *full* array (row-major)."""
        elem = self.oldtype.extent
        strides = [elem] * len(self.sizes)
        for dim in range(len(self.sizes) - 2, -1, -1):
            strides[dim] = strides[dim + 1] * self.sizes[dim + 1]
        return tuple(strides)


class Resized(Datatype):
    """``oldtype`` with an explicitly overridden lb and extent."""

    combiner = "resized"

    def __init__(self, oldtype: Datatype, lb: int, extent: int):
        if extent < 0:
            raise DatatypeError(f"negative extent: {extent}")
        self.oldtype = oldtype
        super().__init__(size=oldtype.size, lb=lb, ub=lb + extent)

    def children(self) -> tuple[Datatype, ...]:
        return (self.oldtype,)
