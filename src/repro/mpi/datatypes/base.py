"""Datatype base class: the user-visible MPI datatype object.

An MPI datatype describes a (possibly non-contiguous) layout of basic
typed elements relative to a base address.  Datatypes form a tree — the
leaves are basic types and inner nodes are constructors (contiguous,
vector, hvector, indexed, hindexed, struct), exactly the representation
sketched in Fig. 3 of the paper.

Key quantities (MPI semantics):

* ``size``   — number of bytes of actual data (gaps excluded);
* ``lb``/``ub`` — lower/upper bound of the occupied span;
* ``extent`` — ``ub - lb``: the stride between consecutive instances when
  a count > 1 is communicated.

``commit()`` freezes the type and builds the flattened representation
(:class:`repro.mpi.flatten.FlattenedType`) used by both the generic pack
engine and the direct_pack_ff transfer path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..flatten.stack import FlattenedType

__all__ = ["Datatype", "DatatypeError"]


class DatatypeError(ValueError):
    """Invalid datatype construction or use."""


class Datatype:
    """Base class of all MPI datatypes."""

    #: A short constructor tag for repr/debugging ("basic", "vector", ...).
    combiner: str = "abstract"

    def __init__(self, size: int, lb: int, ub: int):
        if size < 0:
            raise DatatypeError(f"negative size: {size}")
        if ub < lb:
            raise DatatypeError(f"ub {ub} < lb {lb}")
        self._size = size
        self._lb = lb
        self._ub = ub
        self._flattened: Optional["FlattenedType"] = None

    # -- MPI quantities ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Bytes of data per instance (gaps excluded)."""
        return self._size

    @property
    def lb(self) -> int:
        return self._lb

    @property
    def ub(self) -> int:
        return self._ub

    @property
    def extent(self) -> int:
        """Span of one instance, including gaps (= instance stride)."""
        return self._ub - self._lb

    @property
    def committed(self) -> bool:
        return self._flattened is not None

    @property
    def is_contiguous(self) -> bool:
        """True when data occupies one gap-free run starting at lb."""
        flat = self.flattened
        return (
            len(flat.leaves) == 1
            and not flat.leaves[0].levels
            and flat.leaves[0].offset == self.lb
            and flat.leaves[0].size == self.size
        )

    # -- structure --------------------------------------------------------------

    def children(self) -> tuple["Datatype", ...]:
        """Component types (empty for basic types)."""
        return ()

    @property
    def depth(self) -> int:
        """Height of the datatype tree (basic type = 1)."""
        kids = self.children()
        return 1 + (max(k.depth for k in kids) if kids else 0)

    def walk(self) -> Iterator["Datatype"]:
        """Pre-order traversal of the datatype tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- commit / flatten ---------------------------------------------------------

    def commit(self) -> "Datatype":
        """Freeze the type and build the flattened representation.

        Committing is when the library "may generate an optimized
        representation of the datatype" (paper Sec. 3.1) — here, the
        ff-stacks of Sec. 3.3.1.
        """
        if self._flattened is None:
            from ..flatten.build import build_flattened

            self._flattened = build_flattened(self)
        return self

    @property
    def flattened(self) -> "FlattenedType":
        """The committed flat representation (commits on first use)."""
        if self._flattened is None:
            self.commit()
        assert self._flattened is not None
        return self._flattened

    # -- user-level pack/unpack (MPI_Pack / MPI_Unpack) ---------------------------

    def pack_from(self, buf, count: int = 1):
        """Pack ``count`` instances anchored at ``buf`` into a byte array.

        ``buf`` is a :class:`repro.memlib.Buffer` whose base address is the
        datatype's anchor (MPI's ``inbuf``).
        """
        from ..flatten.engine import pack as _pack

        return _pack(buf.space.mem, buf.base, self.flattened, count)

    def unpack_into(self, buf, data, count: int = 1) -> None:
        """Unpack a packed byte array into ``count`` instances at ``buf``."""
        import numpy as np

        from ..flatten.engine import unpack as _unpack

        if not isinstance(data, np.ndarray):
            data = np.frombuffer(bytes(data), dtype=np.uint8)
        _unpack(buf.space.mem, buf.base, self.flattened, count, data)

    def pack_size(self, count: int = 1) -> int:
        """Bytes needed to pack ``count`` instances (MPI_Pack_size)."""
        return self.size * count

    def signature(self) -> tuple[tuple[int, int], ...]:
        """Flattened type signature: (block length, repetitions) per leaf.

        Equal signatures guarantee byte-compatible packed streams
        (leaf-major order, see :mod:`repro.mpi.flatten`).  The check is
        conservative: structurally different types can still be stream
        compatible (e.g. any two layouts of the same basic elements in
        identical order).
        """
        return tuple(
            (leaf.size, leaf.block_count) for leaf in self.flattened.leaves
        )

    def signature_compatible(self, other: "Datatype") -> bool:
        """Whether packed data of ``self`` unpacks correctly as ``other``.

        Equal signatures always match; a contiguous stream of the same
        total size matches anything (one side fully flat).
        """
        if self.size != other.size:
            return False
        if self.signature() == other.signature():
            return True
        return self.is_contiguous or other.is_contiguous

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.combiner} size={self.size} "
            f"extent={self.extent}>"
        )
