"""The flattened datatype representation (the ff-stacks of Sec. 3.3.1).

A committed datatype is represented as a *list of leaves*; each leaf is a
uniformly sized basic block plus a stack of ``(count, extent)`` levels
describing its repeat pattern — "the path from the root to a specific
leaf describes the repeat pattern of this basic datatype in the
user-buffer ... defined by two informations on each level of the datatype
tree: the replication count and the extent" (paper, Sec. 3.3).

Iteration order is **leaf-major** (Fig. 6: the transfer loop traverses the
list of leaves, copying each leaf's blocks completely before moving on),
with a leaf's blocks ordered by its levels, outermost level varying
slowest.  The packed byte stream of a count-``n`` send is instance-major:
instance 0's leaves, then instance 1's, etc.

The representation is deliberately compact — O(leaves x depth), never
O(blocks) — which is the property that lets ``find_position`` resume a
partial pack in O(N) + O(D) (paper, Sec. 3.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["Level", "LeafSpec", "FlattenedType", "Position"]


@dataclass(frozen=True)
class Level:
    """One repeat level: ``count`` repetitions ``extent`` bytes apart."""

    count: int
    extent: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"level count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class LeafSpec:
    """One leaf: a basic block and its repeat-pattern stack."""

    #: Offset of the first block relative to the instance base address.
    offset: int
    #: Contiguous bytes per basic block.
    size: int
    #: Repeat levels, outermost first (empty = a single block).
    levels: tuple[Level, ...] = ()

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative leaf size: {self.size}")

    @property
    def block_count(self) -> int:
        n = 1
        for level in self.levels:
            n *= level.count
        return n

    @property
    def packed_size(self) -> int:
        """Bytes this leaf contributes to the packed stream, per instance."""
        return self.size * self.block_count

    @property
    def depth(self) -> int:
        return len(self.levels)

    # -- block address computation -------------------------------------------------

    def block_offsets(self) -> np.ndarray:
        """Offsets of every block of one instance, in iteration order."""
        offs = np.array([self.offset], dtype=np.int64)
        for level in self.levels:
            step = np.arange(level.count, dtype=np.int64) * level.extent
            offs = (offs[:, None] + step[None, :]).reshape(-1)
        return offs

    def block_offset_at(self, index: int) -> int:
        """Offset of block ``index`` (mixed-radix digit decomposition)."""
        if not 0 <= index < self.block_count:
            raise IndexError(f"block index {index} out of {self.block_count}")
        off = self.offset
        rem = index
        weight = self.block_count
        for level in self.levels:
            weight //= level.count
            digit, rem = divmod(rem, weight)
            off += digit * level.extent
        return off

    def block_offsets_range(self, start: int, stop: int) -> np.ndarray:
        """Offsets of blocks ``start..stop`` (vectorized mixed radix)."""
        if not 0 <= start <= stop <= self.block_count:
            raise IndexError(f"block range [{start}, {stop}) out of {self.block_count}")
        idx = np.arange(start, stop, dtype=np.int64)
        offs = np.full(idx.shape, self.offset, dtype=np.int64)
        weight = self.block_count
        rem = idx
        for level in self.levels:
            weight //= level.count
            digits = rem // weight
            rem = rem - digits * weight
            offs += digits * level.extent
        return offs

    def span(self) -> tuple[int, int]:
        """(min, max+size) byte bounds touched by this leaf's blocks."""
        lo = self.offset
        hi = self.offset
        for level in self.levels:
            delta = (level.count - 1) * level.extent
            if delta >= 0:
                hi += delta
            else:
                lo += delta
        return lo, hi + self.size


@dataclass(frozen=True)
class Position:
    """A resume position inside the packed stream (``find_position`` result)."""

    instance: int
    leaf_index: int
    block_index: int
    byte_in_block: int

    @property
    def at_block_start(self) -> bool:
        return self.byte_in_block == 0


@dataclass(frozen=True)
class FlattenedType:
    """The committed flat representation of one datatype."""

    leaves: tuple[LeafSpec, ...]
    #: Data bytes per instance (== datatype.size).
    size: int
    #: Instance stride (== datatype.extent).
    extent: int
    #: Lower bound (offset of the occupied span; may be negative).
    lb: int

    #: Packed-stream start offset of each leaf within one instance.
    leaf_starts: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        starts = []
        acc = 0
        for leaf in self.leaves:
            starts.append(acc)
            acc += leaf.packed_size
        if acc != self.size:
            raise ValueError(
                f"leaves pack {acc} bytes but datatype size is {self.size}"
            )
        object.__setattr__(self, "leaf_starts", tuple(starts))

    @property
    def block_count(self) -> int:
        """Basic blocks per instance."""
        return sum(leaf.block_count for leaf in self.leaves)

    @property
    def max_depth(self) -> int:
        return max((leaf.depth for leaf in self.leaves), default=0)

    @property
    def is_single_block(self) -> bool:
        return len(self.leaves) == 1 and not self.leaves[0].levels

    def uniform_block_size(self) -> int | None:
        """Common basic-block size, or None if leaves differ."""
        sizes = {leaf.size for leaf in self.leaves}
        return sizes.pop() if len(sizes) == 1 else None

    def block_length_groups(self, count: int = 1) -> list[tuple[int, int]]:
        """``(block_len, n_blocks)`` groups for ``count`` instances."""
        return [
            (leaf.size, leaf.block_count * count)
            for leaf in self.leaves
            if leaf.size and leaf.block_count
        ]

    def span(self) -> tuple[int, int]:
        """(min, max) byte bounds touched by one instance."""
        if not self.leaves:
            return (0, 0)
        lows, highs = zip(*(leaf.span() for leaf in self.leaves))
        return min(lows), max(highs)

    # -- find_position (paper Sec. 3.3.2) -------------------------------------------

    def find_position(self, byte_offset: int, count: int) -> Position:
        """Locate ``byte_offset`` of the packed stream of ``count`` instances.

        "The function find_position is used to resume after a part of a
        large message block was already sent" — O(N) over the leaf list
        plus O(D) for the block decomposition (done lazily by
        ``block_offset_at``).
        """
        total = self.size * count
        if not 0 <= byte_offset <= total:
            raise ValueError(f"byte offset {byte_offset} outside [0, {total}]")
        if byte_offset == total:
            return Position(count, 0, 0, 0)
        instance, within = divmod(byte_offset, self.size)
        for leaf_index, (leaf, start) in enumerate(zip(self.leaves, self.leaf_starts)):
            if within < start + leaf.packed_size:
                block, byte_in_block = divmod(within - start, leaf.size)
                return Position(instance, leaf_index, block, byte_in_block)
        raise AssertionError("unreachable: offset within instance not found")

    def __iter__(self) -> Iterator[LeafSpec]:
        return iter(self.leaves)
