"""The direct_pack_ff data engine: pack/unpack at arbitrary offsets.

This implements the two capabilities Sec. 3.3 demands of the algorithm:

* "the ability to pack only parts of the data starting at an arbitrary
  point in the structure and having no constraints about the length of the
  data to pack" — :func:`pack_range` / :func:`unpack_range`;
* replacing the "time consuming repeated recursive traversal of the
  datatype tree by two nested loops with only simple stack (array)
  operations" — block addresses come straight from the per-leaf stacks
  (vectorized with numpy here, which is this reproduction's version of a
  tight C loop).

On the receiving side "the same function is used just by swapping the
direction of the copy operation": ``unpack*`` mirrors ``pack*``.

All functions take ``mem`` (the process's flat uint8 memory) and ``base``
(the address the datatype instance is anchored at).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ...hardware.sci.transactions import AccessRun
from .stack import FlattenedType, LeafSpec

__all__ = [
    "pack",
    "unpack",
    "pack_range",
    "unpack_range",
    "block_runs",
    "block_groups_in_range",
    "as_access_run",
    "PackError",
]


class PackError(ValueError):
    """Invalid pack/unpack request (bounds, size mismatch)."""


def _contiguous_base(ft: FlattenedType) -> Optional[int]:
    """Leaf offset if instances of ``ft`` tile into one gap-free run.

    When this holds, packed byte k of a count-n stream maps to memory
    ``base + offset + k`` and all pack machinery reduces to one memcpy.
    """
    if len(ft.leaves) != 1:
        return None
    leaf = ft.leaves[0]
    if leaf.levels or leaf.size != ft.size or ft.size != ft.extent:
        return None
    return leaf.offset


def _gather(mem: np.ndarray, offsets: np.ndarray, length: int) -> np.ndarray:
    """Gather ``length`` bytes at each offset -> (n, length) array."""
    idx = offsets[:, None] + np.arange(length, dtype=np.int64)[None, :]
    return mem[idx]


def _scatter(mem: np.ndarray, offsets: np.ndarray, length: int, data: np.ndarray) -> None:
    idx = offsets[:, None] + np.arange(length, dtype=np.int64)[None, :]
    mem[idx] = data.reshape(len(offsets), length)


# -- full pack/unpack (vectorized across instances) ------------------------------


def pack(mem: np.ndarray, base: int, ft: FlattenedType, count: int) -> np.ndarray:
    """Pack ``count`` instances into a contiguous byte array."""
    if count < 0:
        raise PackError(f"negative count: {count}")
    total = ft.size * count
    out = np.empty(total, dtype=np.uint8)
    if total == 0:
        return out
    contig = _contiguous_base(ft)
    if contig is not None:
        start = base + contig
        out[:] = mem[start : start + total]
        return out
    out2 = out.reshape(count, ft.size)
    inst = np.arange(count, dtype=np.int64) * ft.extent + base
    for leaf, start in zip(ft.leaves, ft.leaf_starts):
        boffs = leaf.block_offsets()
        offsets = (inst[:, None] + boffs[None, :]).reshape(-1)
        gathered = _gather(mem, offsets, leaf.size)
        out2[:, start : start + leaf.packed_size] = gathered.reshape(count, -1)
    return out


def unpack(
    mem: np.ndarray, base: int, ft: FlattenedType, count: int, data: np.ndarray
) -> None:
    """Unpack a contiguous byte array into ``count`` instances."""
    total = ft.size * count
    if data.nbytes != total:
        raise PackError(f"payload {data.nbytes} B, expected {total} B")
    if total == 0:
        return
    contig = _contiguous_base(ft)
    if contig is not None:
        start = base + contig
        mem[start : start + total] = data.reshape(-1)
        return
    data2 = data.reshape(count, ft.size)
    inst = np.arange(count, dtype=np.int64) * ft.extent + base
    for leaf, start in zip(ft.leaves, ft.leaf_starts):
        boffs = leaf.block_offsets()
        offsets = (inst[:, None] + boffs[None, :]).reshape(-1)
        chunk = np.ascontiguousarray(data2[:, start : start + leaf.packed_size])
        _scatter(mem, offsets, leaf.size, chunk.reshape(-1))


# -- arbitrary-range machinery (the ff core) -------------------------------------


def _leaf_runs(
    leaf: LeafSpec, inst_base: int, rel_start: int, rel_end: int
) -> Iterator[tuple[np.ndarray, int]]:
    """Runs covering packed bytes [rel_start, rel_end) of one leaf instance.

    Yields ``(absolute_offsets, length)`` groups in packed order: an
    optional partial first block, the full blocks (one vectorized group),
    and an optional partial last block — the "additional functionality for
    the handling of split blocks" of Sec. 3.3.2.
    """
    size = leaf.size
    if size == 0 or rel_start >= rel_end:
        return
    first_block, first_off = divmod(rel_start, size)
    last_block, last_off = divmod(rel_end, size)

    if first_block == last_block:
        # The whole request lives inside one block.
        off = leaf.block_offset_at(first_block) + first_off
        yield (np.array([inst_base + off], dtype=np.int64), rel_end - rel_start)
        return

    if first_off:
        off = leaf.block_offset_at(first_block) + first_off
        yield (np.array([inst_base + off], dtype=np.int64), size - first_off)
        first_block += 1

    if last_block > first_block:
        offs = leaf.block_offsets_range(first_block, last_block)
        yield (offs + inst_base, size)

    if last_off:
        off = leaf.block_offset_at(last_block)
        yield (np.array([inst_base + off], dtype=np.int64), last_off)


def block_runs(
    ft: FlattenedType,
    count: int,
    byte_offset: int,
    nbytes: int,
    base: int = 0,
) -> Iterator[tuple[np.ndarray, int]]:
    """All (offsets, length) groups covering a packed byte range, in order.

    This is the iteration skeleton of Fig. 6: find the initial position,
    copy the rest of a split block, then traverse the leaf list while
    space remains.
    """
    total = ft.size * count
    if not 0 <= byte_offset <= total:
        raise PackError(f"byte offset {byte_offset} outside [0, {total}]")
    if nbytes < 0 or byte_offset + nbytes > total:
        raise PackError(
            f"range [{byte_offset}, {byte_offset + nbytes}) outside packed "
            f"size {total}"
        )
    if nbytes == 0 or ft.size == 0:
        return
    contig = _contiguous_base(ft)
    if contig is not None:
        yield (np.array([base + contig + byte_offset], dtype=np.int64), nbytes)
        return
    end = byte_offset + nbytes
    first_inst = byte_offset // ft.size
    last_inst = (end - 1) // ft.size
    for inst in range(first_inst, last_inst + 1):
        inst_pstart = inst * ft.size
        s = max(byte_offset, inst_pstart) - inst_pstart
        e = min(end, inst_pstart + ft.size) - inst_pstart
        inst_base = base + inst * ft.extent
        for leaf, lstart in zip(ft.leaves, ft.leaf_starts):
            ls = max(s, lstart)
            le = min(e, lstart + leaf.packed_size)
            if ls >= le:
                continue
            yield from _leaf_runs(leaf, inst_base, ls - lstart, le - lstart)


def pack_range(
    mem: np.ndarray,
    base: int,
    ft: FlattenedType,
    count: int,
    byte_offset: int,
    nbytes: int,
) -> np.ndarray:
    """Pack packed-stream bytes [byte_offset, byte_offset + nbytes)."""
    out = np.empty(nbytes, dtype=np.uint8)
    pos = 0
    for offsets, length in block_runs(ft, count, byte_offset, nbytes, base):
        span = len(offsets) * length
        out[pos : pos + span] = _gather(mem, offsets, length).reshape(-1)
        pos += span
    if pos != nbytes:  # pragma: no cover - invariant
        raise AssertionError(f"packed {pos} of {nbytes} bytes")
    return out


def unpack_range(
    mem: np.ndarray,
    base: int,
    ft: FlattenedType,
    count: int,
    byte_offset: int,
    data: np.ndarray,
) -> None:
    """Scatter ``data`` into packed-stream positions starting at byte_offset."""
    if data.dtype != np.uint8:
        # ascontiguousarray first: a strided slice (or any array whose last
        # axis is not contiguous) cannot be re-viewed at a different item
        # size, and reshape(-1) alone does not copy 1-D strided input.
        data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    pos = 0
    for offsets, length in block_runs(ft, count, byte_offset, data.nbytes, base):
        span = len(offsets) * length
        _scatter(mem, offsets, length, data[pos : pos + span])
        pos += span
    if pos != data.nbytes:  # pragma: no cover - invariant
        raise AssertionError(f"unpacked {pos} of {data.nbytes} bytes")


def block_groups_in_range(
    ft: FlattenedType, count: int, byte_offset: int, nbytes: int
) -> list[tuple[int, int]]:
    """``(block_len, n_blocks)`` groups for a packed range — the cost-model
    view of the same iteration (no memory touched)."""
    groups: list[tuple[int, int]] = []
    for offsets, length in block_runs(ft, count, byte_offset, nbytes):
        if groups and groups[-1][0] == length:
            groups[-1] = (length, groups[-1][1] + len(offsets))
        else:
            groups.append((length, len(offsets)))
    return groups


def as_access_run(
    ft: FlattenedType, count: int, base: int = 0
) -> Optional[AccessRun]:
    """Represent the layout as a single strided AccessRun, if possible.

    Works for a single leaf with at most one level when ``count`` either
    is 1 or tiles gap-free (instance extent == span).  This is the case
    the hardware write model can cost directly (e.g. the *sparse*
    benchmark's strided window accesses).
    """
    if len(ft.leaves) != 1:
        return None
    leaf = ft.leaves[0]
    if leaf.depth > 1:
        return None
    if leaf.depth == 0:
        size, stride, blocks = leaf.size, leaf.size, 1
    else:
        level = leaf.levels[0]
        size, stride, blocks = leaf.size, level.extent, level.count
        if stride < size:
            return None
    if count == 1:
        return AccessRun(base=base + leaf.offset, size=size, stride=stride, count=blocks)
    # Multiple instances only collapse when consecutive instances keep the
    # same block stride going.
    if blocks == 1:
        if ft.extent < size:
            return None  # overlapping instances (shrunk Resized extent)
        return AccessRun(base=base + leaf.offset, size=size, stride=ft.extent, count=count)
    if blocks * stride == ft.extent:
        return AccessRun(
            base=base + leaf.offset, size=size, stride=stride, count=blocks * count
        )
    return None
