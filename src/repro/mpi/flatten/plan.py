"""Packing plans: precomputed, coalesced offset tables for pack/unpack.

The ff-stacks of :mod:`stack` are deliberately compact — O(leaves x depth)
— but the transfer engine in :mod:`engine` re-derives every leaf's
block-offset table on *every* ``pack``/``pack_range``/``unpack_range``
call.  For the hot paths (the rendezvous chunk loop, repeated sends of
the same datatype) that repeated derivation is exactly the datatype-path
overhead the paper's ``direct_pack_ff`` sets out to eliminate.

A :class:`PackPlan` materializes, once per ``(FlattenedType, count)``,
the fully resolved run table of the whole packed stream:

* every basic block of every leaf of every instance, in packed order,
  with adjacent runs **coalesced across leaf and instance boundaries**
  whenever block ``k`` ends exactly where block ``k+1`` starts (the
  commit-time merge of :mod:`build` only fuses leaves with *identical*
  stacks; the plan catches the rest, e.g. a vector leaf whose last block
  abuts the next instance's first block);
* a prefix-sum table mapping packed-stream byte offsets to runs, so
  ``execute_pack``/``execute_unpack`` resume at arbitrary byte offsets
  with one ``searchsorted`` instead of per-call ``find_position``
  arithmetic.

Coalescing is sound because runs are merged only when they are adjacent
in *both* the packed stream and memory — the byte order of the stream is
unchanged, only the grouping is coarser (fewer, larger copies).

Plans are memoized in a bounded LRU :class:`PlanCache` with hit/miss
counters (surfaced through :func:`repro.trace` summaries).  The cache can
be disabled globally — :func:`plan_cache_disabled` — which is the
ablation toggle ``benchmarks/test_ablations.py`` uses to measure how many
offset-table constructions the cache saves.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from .engine import PackError, _gather, _scatter
from .stack import FlattenedType

__all__ = [
    "PackPlan",
    "PlanCache",
    "get_plan",
    "plan_cache_disabled",
    "plan_cache_stats",
    "reset_plan_cache",
    "set_plan_cache_enabled",
]

#: Total PackPlan constructions (offset-table materializations) since the
#: last :func:`reset_plan_cache` — the ablation counter.
_BUILDS = 0


def _materialize_runs(ft: FlattenedType, count: int) -> tuple[np.ndarray, np.ndarray]:
    """All (offset, length) runs of ``count`` instances, coalesced.

    Offsets are relative to the instance-0 base address, in packed order.
    """
    empty = np.empty(0, dtype=np.int64)
    if ft.size == 0 or count == 0 or not ft.leaves:
        return empty, empty

    # Contiguous fast path: one gap-free run, no per-block materialization.
    if (
        len(ft.leaves) == 1
        and not ft.leaves[0].levels
        and ft.leaves[0].size == ft.size == ft.extent
    ):
        return (
            np.array([ft.leaves[0].offset], dtype=np.int64),
            np.array([ft.size * count], dtype=np.int64),
        )

    inst_offs = np.concatenate([leaf.block_offsets() for leaf in ft.leaves])
    inst_lens = np.concatenate(
        [np.full(leaf.block_count, leaf.size, dtype=np.int64) for leaf in ft.leaves]
    )
    inst_starts = np.arange(count, dtype=np.int64) * ft.extent
    offs = (inst_starts[:, None] + inst_offs[None, :]).reshape(-1)
    lens = np.tile(inst_lens, count)

    # Coalesce runs adjacent in both the packed stream and memory.
    keep = np.empty(len(offs), dtype=bool)
    keep[0] = True
    np.not_equal(offs[1:], offs[:-1] + lens[:-1], out=keep[1:])
    starts = np.flatnonzero(keep)
    return offs[starts], np.add.reduceat(lens, starts)


class PackPlan:
    """The resolved run table of ``count`` instances of one datatype.

    ``run_offsets``/``run_lengths`` hold the coalesced runs in packed
    order (offsets relative to the base address the plan is executed at);
    ``run_starts`` is the packed-stream prefix-sum table (length
    ``n_runs + 1``, ending at :attr:`total`).
    """

    __slots__ = ("ft", "count", "total", "run_offsets", "run_lengths", "run_starts")

    def __init__(self, ft: FlattenedType, count: int):
        if count < 0:
            raise PackError(f"negative count: {count}")
        global _BUILDS
        _BUILDS += 1
        self.ft = ft
        self.count = count
        self.total = ft.size * count
        self.run_offsets, self.run_lengths = _materialize_runs(ft, count)
        self.run_starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(self.run_lengths))
        )

    @property
    def n_runs(self) -> int:
        return len(self.run_offsets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PackPlan count={self.count} total={self.total} "
            f"runs={self.n_runs}>"
        )

    # -- range walking ---------------------------------------------------------------

    def _check_range(self, byte_offset: int, nbytes: int) -> None:
        if not 0 <= byte_offset <= self.total:
            raise PackError(f"byte offset {byte_offset} outside [0, {self.total}]")
        if nbytes < 0 or byte_offset + nbytes > self.total:
            raise PackError(
                f"range [{byte_offset}, {byte_offset + nbytes}) outside packed "
                f"size {self.total}"
            )

    def run_groups(
        self, byte_offset: int, nbytes: int
    ) -> Iterator[tuple[np.ndarray, int]]:
        """(base-relative offsets, length) groups covering a packed range.

        The plan-backed equivalent of :func:`engine.block_runs`: an
        optional split head run, the fully covered runs grouped by equal
        length (each group one vectorized copy), and an optional split
        tail run.
        """
        self._check_range(byte_offset, nbytes)
        if nbytes == 0:
            return
        starts = self.run_starts
        end = byte_offset + nbytes
        pos = byte_offset
        i = int(np.searchsorted(starts, pos, side="right")) - 1

        if pos > starts[i]:
            # Split head run.
            take = int(min(end, starts[i + 1])) - pos
            head = self.run_offsets[i] + (pos - starts[i])
            yield (np.array([head], dtype=np.int64), take)
            pos += take
            i += 1
        if pos >= end:
            return

        j = int(np.searchsorted(starts, end, side="right")) - 1
        if j > i:
            # Fully covered runs, grouped by equal length.
            lens = self.run_lengths[i:j]
            bounds = np.flatnonzero(np.diff(lens)) + 1
            for a, b in zip(
                np.concatenate(([0], bounds)), np.concatenate((bounds, [len(lens)]))
            ):
                yield (self.run_offsets[i + a : i + b], int(lens[a]))
            pos = int(starts[j])
        if pos < end:
            # Split tail run (starts exactly at a run boundary).
            yield (self.run_offsets[j : j + 1], end - pos)

    def groups_in_range(
        self, byte_offset: int, nbytes: Optional[int] = None
    ) -> list[tuple[int, int]]:
        """``(block_len, n_blocks)`` groups for a packed range — the
        cost-model view of the plan (no memory touched)."""
        if nbytes is None:
            nbytes = self.total - byte_offset
        groups: list[tuple[int, int]] = []
        for offsets, length in self.run_groups(byte_offset, nbytes):
            if groups and groups[-1][0] == length:
                groups[-1] = (length, groups[-1][1] + len(offsets))
            else:
                groups.append((length, len(offsets)))
        return groups

    # -- execution -------------------------------------------------------------------

    def execute_pack(
        self,
        mem: np.ndarray,
        base: int,
        byte_offset: int = 0,
        nbytes: Optional[int] = None,
    ) -> np.ndarray:
        """Pack packed-stream bytes [byte_offset, byte_offset + nbytes)."""
        if nbytes is None:
            nbytes = self.total - byte_offset
        out = np.empty(nbytes, dtype=np.uint8)
        pos = 0
        for offsets, length in self.run_groups(byte_offset, nbytes):
            span = len(offsets) * length
            if len(offsets) == 1:
                start = base + int(offsets[0])
                out[pos : pos + span] = mem[start : start + span]
            else:
                out[pos : pos + span] = _gather(mem, offsets + base, length).reshape(-1)
            pos += span
        if pos != nbytes:  # pragma: no cover - invariant
            raise AssertionError(f"packed {pos} of {nbytes} bytes")
        return out

    def execute_unpack(
        self,
        mem: np.ndarray,
        base: int,
        byte_offset: int,
        data: np.ndarray,
    ) -> None:
        """Scatter ``data`` into packed-stream positions from byte_offset."""
        if data.dtype != np.uint8:
            data = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        pos = 0
        for offsets, length in self.run_groups(byte_offset, data.nbytes):
            span = len(offsets) * length
            if len(offsets) == 1:
                start = base + int(offsets[0])
                mem[start : start + span] = data[pos : pos + span]
            else:
                _scatter(mem, offsets + base, length, data[pos : pos + span])
            pos += span
        if pos != data.nbytes:  # pragma: no cover - invariant
            raise AssertionError(f"unpacked {pos} of {data.nbytes} bytes")


class PlanCache:
    """Bounded LRU cache of :class:`PackPlan` keyed by ``(ft, count)``."""

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: "OrderedDict[tuple[FlattenedType, int], PackPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, ft: FlattenedType, count: int) -> PackPlan:
        key = (ft, count)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.hits += 1
            return plan
        self.misses += 1
        plan = PackPlan(ft, count)
        self._plans[key] = plan
        while len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
            self.evictions += 1
        return plan

    def clear(self) -> None:
        self._plans.clear()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._plans),
            "maxsize": self.maxsize,
        }


#: The process-wide default cache used by all pack/unpack call sites.
_default_cache = PlanCache()
_enabled = True


def get_plan(
    ft: FlattenedType, count: int, cache: Optional[PlanCache] = None
) -> PackPlan:
    """The memoized plan for ``(ft, count)``; builds fresh when disabled."""
    if cache is None:
        cache = _default_cache
    if not _enabled:
        return PackPlan(ft, count)
    return cache.get(ft, count)


def set_plan_cache_enabled(enabled: bool) -> bool:
    """Toggle the process-wide plan cache; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def plan_cache_disabled():
    """Context manager: run with plans rebuilt on every call (ablation)."""
    previous = set_plan_cache_enabled(False)
    try:
        yield
    finally:
        set_plan_cache_enabled(previous)


def plan_cache_stats() -> dict[str, int]:
    """Counters of the default plan cache plus the global build count.

    ``builds`` counts every PackPlan construction (offset-table
    materialization) since the last reset, including cache-disabled ones —
    the quantity the plan-cache ablation compares.
    """
    stats = _default_cache.stats()
    stats["builds"] = _BUILDS
    stats["enabled"] = int(_enabled)
    return stats


def reset_plan_cache() -> None:
    """Clear the default cache and zero all counters (test isolation)."""
    global _BUILDS
    _default_cache.clear()
    _BUILDS = 0
