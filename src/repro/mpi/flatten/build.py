"""Building the flattened representation at commit time (Sec. 3.3.1).

"These stacks are built up when committing the datatype, so it is not
exactly 'on the fly'.  But as the memory consumption of the stacks is very
low, it can be tolerated for an even faster packing operation."

For each constructor there is "a special way to place the information on
the stack":

* basic       -> one leaf, empty stack;
* contiguous  -> wrap every leaf in a ``(count, extent)`` level;
* (h)vector   -> two levels, ``(count, stride)`` outside ``(blocklen, extent)``;
* (h)indexed  -> one shifted copy of the oldtype leaves per index entry,
                 each wrapped in its ``(blocklen, extent)`` level;
* struct      -> like hindexed with a per-field oldtype;
* resized     -> leaves unchanged (only lb/extent move).

The *merge* step then (a) drops levels with replication count 1, (b)
absorbs levels whose copies tile contiguously into a bigger basic block,
and (c) fuses byte-adjacent leaves with identical stacks — "it often is
possible to build up larger blocks of adjacent basic blocks".
"""

from __future__ import annotations

from ..datatypes.base import Datatype, DatatypeError
from .stack import FlattenedType, LeafSpec, Level

__all__ = ["build_flattened", "leaves_of"]


def _wrap(leaves: list[LeafSpec], count: int, extent: int) -> list[LeafSpec]:
    """Replicate every leaf ``count`` times, ``extent`` bytes apart."""
    if count == 0:
        return []
    if count == 1:
        # Merge rule (a): a replication count of 1 carries no information.
        return list(leaves)
    out: list[LeafSpec] = []
    for leaf in leaves:
        # Merge rule (b): copies that tile gap-free extend the basic block.
        # This requires the leaf to be a plain block (no inner levels) whose
        # size equals the replication extent.
        if not leaf.levels and leaf.size == extent and len(leaves) == 1:
            out.append(LeafSpec(offset=leaf.offset, size=leaf.size * count))
        else:
            out.append(
                LeafSpec(
                    offset=leaf.offset,
                    size=leaf.size,
                    levels=(Level(count, extent),) + leaf.levels,
                )
            )
    return out


def _shift(leaves: list[LeafSpec], disp: int) -> list[LeafSpec]:
    return [
        LeafSpec(offset=leaf.offset + disp, size=leaf.size, levels=leaf.levels)
        for leaf in leaves
    ]


def _merge_adjacent(leaves: list[LeafSpec]) -> list[LeafSpec]:
    """Merge rule (c): fuse consecutive leaves forming one bigger block.

    Two leaves fuse when they have identical stacks and the second's block
    starts exactly where the first's ends — e.g. the int and char[2] fields
    of the paper's Fig. 3 struct become one 6-byte (merged) block in Fig. 5.
    """
    if not leaves:
        return []
    out = [leaves[0]]
    for leaf in leaves[1:]:
        prev = out[-1]
        if (
            leaf.levels == prev.levels
            and leaf.offset == prev.offset + prev.size
            and prev.size > 0
        ):
            out[-1] = LeafSpec(
                offset=prev.offset, size=prev.size + leaf.size, levels=prev.levels
            )
        else:
            out.append(leaf)
    return [leaf for leaf in out if leaf.size > 0 and leaf.block_count > 0]


def leaves_of(dtype: Datatype) -> list[LeafSpec]:
    """Leaves (with stacks) of one instance of ``dtype``, pre-merge."""
    # Imported here to avoid a hard dependency cycle at module load.
    from ..datatypes import basic as _basic
    from ..datatypes import constructors as _cons

    if isinstance(dtype, _basic.BasicType):
        return [LeafSpec(offset=0, size=dtype.size)]

    if isinstance(dtype, _cons.Contiguous):
        return _wrap(leaves_of(dtype.oldtype), dtype.count, dtype.oldtype.extent)

    if isinstance(dtype, _cons.Hvector):  # covers Vector too
        inner = _wrap(
            leaves_of(dtype.oldtype), dtype.blocklength, dtype.oldtype.extent
        )
        return _wrap(inner, dtype.count, dtype.stride_bytes)

    if isinstance(dtype, _cons.Hindexed):  # covers Indexed too
        out: list[LeafSpec] = []
        old = leaves_of(dtype.oldtype)
        for disp, blk in zip(dtype.displacements_bytes, dtype.blocklengths):
            out.extend(_shift(_wrap(old, blk, dtype.oldtype.extent), disp))
        return out

    if isinstance(dtype, _cons.Struct):
        out = []
        for disp, blk, field_type in zip(
            dtype.displacements_bytes, dtype.blocklengths, dtype.types
        ):
            out.extend(_shift(_wrap(leaves_of(field_type), blk, field_type.extent), disp))
        return out

    if isinstance(dtype, _cons.Subarray):
        strides = dtype.dim_strides()
        leaves = _wrap(
            leaves_of(dtype.oldtype), dtype.subsizes[-1], dtype.oldtype.extent
        )
        for dim in range(len(dtype.sizes) - 2, -1, -1):
            leaves = _wrap(leaves, dtype.subsizes[dim], strides[dim])
        offset = sum(s * st for s, st in zip(dtype.starts, strides))
        return _shift(leaves, offset)

    if isinstance(dtype, _cons.Resized):
        return leaves_of(dtype.oldtype)

    raise DatatypeError(f"cannot flatten datatype {dtype!r}")


def build_flattened(dtype: Datatype) -> FlattenedType:
    """Commit-time construction of the flattened representation."""
    leaves = _merge_adjacent(leaves_of(dtype))
    return FlattenedType(
        leaves=tuple(leaves),
        size=dtype.size,
        extent=dtype.extent,
        lb=dtype.lb,
    )
