"""direct_pack_ff (S7): flattened datatypes and the arbitrary-offset pack engine.

The representation (:mod:`stack`), its commit-time construction and merge
optimizations (:mod:`build`), and the pack/unpack/range engine
(:mod:`engine`) that both the generic and the direct transfer paths share.
"""

from .build import build_flattened, leaves_of
from .engine import (
    PackError,
    as_access_run,
    block_groups_in_range,
    block_runs,
    pack,
    pack_range,
    unpack,
    unpack_range,
)
from .stack import FlattenedType, LeafSpec, Level, Position

__all__ = [
    "FlattenedType",
    "LeafSpec",
    "Level",
    "PackError",
    "Position",
    "as_access_run",
    "block_groups_in_range",
    "block_runs",
    "build_flattened",
    "leaves_of",
    "pack",
    "pack_range",
    "unpack",
    "unpack_range",
]
