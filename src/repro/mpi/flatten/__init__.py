"""direct_pack_ff (S7): flattened datatypes and the arbitrary-offset pack engine.

The representation (:mod:`stack`), its commit-time construction and merge
optimizations (:mod:`build`), the pack/unpack/range engine (:mod:`engine`)
that both the generic and the direct transfer paths share, and the
memoized packing plans (:mod:`plan`) the hot paths execute from.
"""

from .build import build_flattened, leaves_of
from .engine import (
    PackError,
    as_access_run,
    block_groups_in_range,
    block_runs,
    pack,
    pack_range,
    unpack,
    unpack_range,
)
from .plan import (
    PackPlan,
    PlanCache,
    get_plan,
    plan_cache_disabled,
    plan_cache_stats,
    reset_plan_cache,
    set_plan_cache_enabled,
)
from .stack import FlattenedType, LeafSpec, Level, Position

__all__ = [
    "FlattenedType",
    "LeafSpec",
    "Level",
    "PackError",
    "PackPlan",
    "PlanCache",
    "Position",
    "as_access_run",
    "block_groups_in_range",
    "block_runs",
    "build_flattened",
    "get_plan",
    "leaves_of",
    "pack",
    "pack_range",
    "plan_cache_disabled",
    "plan_cache_stats",
    "reset_plan_cache",
    "set_plan_cache_enabled",
    "unpack",
    "unpack_range",
]
