"""Collective operations built on the point-to-point device.

Classic algorithms: binomial trees for barrier/bcast/reduce, ring
allgather, recursive structure kept simple — these exist to support the
examples and benchmarks (the paper's focus is pt2pt datatypes and
one-sided), but they are real implementations exercising the full
protocol stack: every payload byte moves through the transport layer's
scheduler via ``comm.send``/``comm.recv``.

When the world's :class:`~repro.mpi.transport.policy.TransferPolicy`
asks for it (``collective_chunk``), large broadcasts are split into
packed-stream *segments* and pipelined down a chain of ranks — the
plan-aware chunked data path (each segment packs straight out of user
memory; no staging copy).  The ring allgather and the pairwise alltoall
are already pipelined at message granularity, so the default policy
keeps them monolithic.

On switched multi-ringlet fabrics (any
:class:`~repro.hardware.sci.topology.Topology` with more than one
locality domain), ``bcast`` and ``allreduce`` switch to *hierarchical*
algorithms when the policy's ``hierarchical_collective`` approves:
ranks aggregate within their ringlet first, group leaders exchange
across the switch (one message per ringlet instead of one per rank on
the scarce crossbar links, chunk-pipelined past
``policy.cross_chunk``), and leaders fan the result back out
ringlet-locally.  Single-domain topologies — the plain ring — always
take the flat algorithms, bit-identically to the pre-topology code.

All functions are DES generators taking the caller's Communicator.
Reduction operates on numpy-typed views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..datatypes.basic import BYTE, BasicType, DOUBLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..comm import Communicator
    from ...memlib import Buffer

__all__ = [
    "OPS",
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "reduce_scatter_block",
    "scatter",
]

#: Reserved tag space for collectives (user tags must stay below this).
COLL_TAG = 1 << 20

#: Reduction operators on numpy arrays.
OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": np.minimum,
    "max": np.maximum,
    # Bitwise ops (MPI_BAND/BOR/BXOR) on integer dtypes; `bor` is the
    # repro.svc seqlock write-claim primitive (fetch_and_op of the
    # version word's busy bit).
    "band": np.bitwise_and,
    "bor": np.bitwise_or,
    "bxor": np.bitwise_xor,
}


def barrier(comm: "Communicator"):
    """Dissemination barrier: ceil(log2 n) rounds of pt2pt exchanges."""
    size = comm.size
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    rank = comm.rank
    token = comm.alloc_scratch(1)
    distance = 1
    while distance < size:
        dst = (rank + distance) % size
        src = (rank - distance) % size
        req = comm.isend(token, dst, tag=COLL_TAG + 1)
        yield from comm.recv(token, source=src, tag=COLL_TAG + 1)
        yield from req.wait()
        distance *= 2


def _collective_chunk(comm: "Communicator", buf: "Buffer", datatype,
                      count: Optional[int]):
    """Policy decision for one collective payload: ``(dtype, count,
    total_bytes, chunk_or_None)``."""
    dtype = datatype if datatype is not None else BYTE
    dtype.commit()
    if count is None:
        if not dtype.is_contiguous or not dtype.size:
            return dtype, count, 0, None
        count = buf.nbytes // dtype.size
    total = dtype.flattened.size * count
    chunk = comm.device.policy.collective_chunk(total, comm.size)
    if chunk is not None and chunk >= total:
        chunk = None
    return dtype, count, total, chunk


def _topology_groups(comm: "Communicator") -> Optional[list[list[int]]]:
    """Comm-local ranks per fabric locality domain, ordered by group id.

    Groups come from the topology's ``node_group`` (the ringlet / leaf
    switch each rank's node sits on); ``None`` means the fabric has a
    single domain and the flat algorithms apply.
    """
    topology = comm.device.smi.fabric.topology
    groups: dict[int, list[int]] = {}
    for local, world_rank in enumerate(comm.group):
        node = comm.device.smi.node_of(world_rank)
        groups.setdefault(topology.node_group(node.node_id), []).append(local)
    if len(groups) < 2:
        return None
    return [groups[g] for g in sorted(groups)]


def _hier_groups(comm: "Communicator", kind: str,
                 nbytes: int) -> Optional[list[list[int]]]:
    """The locality groups if this collective should run hierarchically."""
    groups = _topology_groups(comm)
    if groups is None:
        return None
    policy = comm.device.policy
    if not policy.hierarchical_collective(kind, nbytes, comm.size, len(groups)):
        return None
    return groups


def _member_bcast(comm: "Communicator", buf: "Buffer", members: list[int],
                  root: int, tag: int, datatype=None,
                  count: Optional[int] = None, chunk: Optional[int] = None,
                  total: Optional[int] = None):
    """Broadcast over an explicit member list (comm-local ranks).

    Binomial tree by default; with ``chunk`` (and at least three members
    to pipeline through), a chain-pipelined segment stream like
    :func:`_bcast_chained` but confined to ``members``.
    """
    m = len(members)
    if m == 1:
        return
    idx = members.index(comm.rank)
    root_idx = members.index(root)
    relative = (idx - root_idx) % m
    if chunk is not None and m >= 3 and total is not None and chunk < total:
        prev = members[(idx - 1) % m]
        nxt = members[(idx + 1) % m]
        pending = None
        pos = 0
        while pos < total:
            n = min(chunk, total - pos)
            seg = (pos, n)
            if relative != 0:
                yield from comm.recv(buf, source=prev, tag=tag,
                                     datatype=datatype, count=count,
                                     segment=seg)
            if relative != m - 1:
                if pending is not None:
                    yield from pending.wait()
                pending = comm.isend(buf, nxt, tag=tag, datatype=datatype,
                                     count=count, segment=seg)
            pos += n
        if pending is not None:
            yield from pending.wait()
        return
    mask = 1
    while mask < m:
        if relative & mask:
            parent = members[((relative & ~mask) + root_idx) % m]
            yield from comm.recv(buf, source=parent, tag=tag,
                                 datatype=datatype, count=count)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child_rel = relative | mask
        if child_rel != relative and child_rel < m:
            child = members[(child_rel + root_idx) % m]
            yield from comm.send(buf, child, tag=tag, datatype=datatype,
                                 count=count)
        mask >>= 1


def _member_reduce(comm: "Communicator", acc: np.ndarray, nbytes: int,
                   members: list[int], root: int, op: str,
                   datatype: BasicType, tag: int):
    """Binomial reduction of ``acc`` over ``members`` to ``root``.

    Returns the (possibly updated) accumulator; only the root's value is
    the full reduction.
    """
    m = len(members)
    if m == 1:
        return acc
    idx = members.index(comm.rank)
    root_idx = members.index(root)
    relative = (idx - root_idx) % m
    scratch = comm.alloc_scratch(nbytes)
    mask = 1
    while mask < m:
        if relative & mask:
            parent = members[((relative & ~mask) + root_idx) % m]
            scratch.write(acc.view(np.uint8))
            yield from comm.send(scratch, parent, tag=tag,
                                 datatype=BYTE, count=nbytes)
            break
        child_rel = relative | mask
        if child_rel < m:
            child = members[(child_rel + root_idx) % m]
            yield from comm.recv(scratch, source=child, tag=tag,
                                 datatype=BYTE, count=nbytes)
            incoming = np.array(scratch.read(0, nbytes), copy=True).view(
                datatype.np_dtype
            )
            acc = OPS[op](acc, incoming)
        mask <<= 1
    return acc


def _bcast_hier(comm: "Communicator", buf: "Buffer", root: int, datatype,
                count: Optional[int], total: int, groups: list[list[int]]):
    """Hierarchical broadcast: root -> group leaders -> ringlet-local.

    The cross-switch stage moves one message per ringlet over the scarce
    crossbar/spine links (chunk-pipelined when the payload warrants it);
    each leader then fans out inside its own ringlet.
    """
    rank = comm.rank
    my_group = next(g for g in groups if rank in g)
    root_group = next(g for g in groups if root in g)
    # The root speaks for its own group on the cross-switch stage.
    leaders = [root if g is root_group else g[0] for g in groups]
    if rank in leaders:
        chunk = comm.device.policy.cross_switch_chunk(total)
        yield from _member_bcast(comm, buf, leaders, root, COLL_TAG + 9,
                                 datatype=datatype, count=count,
                                 chunk=chunk, total=total)
    my_leader = leaders[groups.index(my_group)]
    yield from _member_bcast(comm, buf, my_group, my_leader, COLL_TAG + 10,
                             datatype=datatype, count=count)


def bcast(comm: "Communicator", buf: "Buffer", root: int = 0,
          datatype=None, count: Optional[int] = None):
    """Broadcast: binomial tree, a chain-pipelined segment stream when
    the transfer policy asks for chunking, or the hierarchical algorithm
    on multi-ringlet topologies."""
    size = comm.size
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    dtype, rcount, total, chunk = _collective_chunk(comm, buf, datatype, count)
    groups = _hier_groups(comm, "bcast", total) if total > 0 else None
    if groups is not None:
        yield from _bcast_hier(comm, buf, root, dtype, rcount, total, groups)
        return
    if chunk is not None:
        yield from _bcast_chained(comm, buf, root, dtype, rcount, total, chunk)
        return
    rank = comm.rank
    relative = (rank - root) % size
    # Climb masks until our lowest set bit: that's where our parent is.
    mask = 1
    while mask < size:
        if relative & mask:
            parent = ((relative & ~mask) + root) % size
            yield from comm.recv(buf, source=parent, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count)
            break
        mask <<= 1
    # Forward to children below the bit where we received.
    mask >>= 1
    while mask > 0:
        child_rel = relative | mask
        if child_rel != relative and child_rel < size:
            child = (child_rel + root) % size
            yield from comm.send(buf, child, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count)
        mask >>= 1


def _bcast_chained(comm: "Communicator", buf: "Buffer", root: int,
                   datatype, count: int, total: int, chunk: int):
    """Chain-pipelined chunked broadcast.

    Ranks form a chain starting at the root; each rank receives segment
    ``k`` of the packed stream from its predecessor while its forward of
    segment ``k - 1`` to the successor is still in flight (one
    outstanding send — the transport-level analogue of the rendezvous
    handshake cycle, but across ranks).  Segments travel as
    ``segment=(offset, nbytes)`` sends: the packing plan packs each range
    straight out of (and unpacks straight into) user memory.
    """
    size, rank = comm.size, comm.rank
    relative = (rank - root) % size
    prev = (rank - 1) % size
    nxt = (rank + 1) % size
    pending = None
    pos = 0
    while pos < total:
        n = min(chunk, total - pos)
        seg = (pos, n)
        if relative != 0:
            yield from comm.recv(buf, source=prev, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count, segment=seg)
        if relative != size - 1:
            if pending is not None:
                yield from pending.wait()
            pending = comm.isend(buf, nxt, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count, segment=seg)
        pos += n
    if pending is not None:
        yield from pending.wait()


def reduce(comm: "Communicator", sendbuf: "Buffer", recvbuf: Optional["Buffer"],
           root: int = 0, op: str = "sum", datatype: BasicType = DOUBLE,
           count: Optional[int] = None):
    """Binomial-tree reduction to ``root``."""
    if op not in OPS:
        raise ValueError(f"unknown reduction op {op!r}")
    size = comm.size
    rank = comm.rank
    if count is None:
        count = sendbuf.nbytes // datatype.size
    nbytes = count * datatype.size
    acc = np.array(sendbuf.read(0, nbytes), copy=True).view(datatype.np_dtype)
    if size > 1:
        relative = (rank - root) % size
        scratch = comm.alloc_scratch(nbytes)
        mask = 1
        while mask < size:
            if relative & mask:
                parent = ((relative & ~mask) + root) % size
                scratch.write(acc.view(np.uint8))
                yield from comm.send(scratch, parent, tag=COLL_TAG + 3,
                                     datatype=BYTE, count=nbytes)
                break
            child_rel = relative | mask
            if child_rel < size:
                child = (child_rel + root) % size
                yield from comm.recv(scratch, source=child, tag=COLL_TAG + 3,
                                     datatype=BYTE, count=nbytes)
                incoming = np.array(scratch.read(0, nbytes), copy=True).view(
                    datatype.np_dtype
                )
                acc = OPS[op](acc, incoming)
            mask <<= 1
    if rank == root:
        target = recvbuf if recvbuf is not None else sendbuf
        target.write(np.ascontiguousarray(acc).view(np.uint8))
    return None


def _allreduce_hier(comm: "Communicator", sendbuf: "Buffer",
                    recvbuf: "Buffer", op: str, datatype: BasicType,
                    count: int, groups: list[list[int]]):
    """Hierarchical allreduce: ringlet-local reduce, leader exchange,
    ringlet-local bcast.

    Each ringlet reduces to its leader without touching a cross-switch
    link; leaders then allreduce among themselves (one payload per
    ringlet across the crossbar, chunk-pipelined when large) and fan the
    result back out locally.
    """
    nbytes = count * datatype.size
    rank = comm.rank
    my_group = next(g for g in groups if rank in g)
    leader = my_group[0]
    leaders = [g[0] for g in groups]
    acc = np.array(sendbuf.read(0, nbytes), copy=True).view(datatype.np_dtype)
    acc = yield from _member_reduce(comm, acc, nbytes, my_group, leader,
                                    op, datatype, COLL_TAG + 8)
    if rank == leader:
        acc = yield from _member_reduce(comm, acc, nbytes, leaders,
                                        leaders[0], op, datatype,
                                        COLL_TAG + 9)
        recvbuf.write(np.ascontiguousarray(acc).view(np.uint8))
        chunk = comm.device.policy.cross_switch_chunk(nbytes)
        yield from _member_bcast(comm, recvbuf, leaders, leaders[0],
                                 COLL_TAG + 9, datatype=BYTE, count=nbytes,
                                 chunk=chunk, total=nbytes)
    yield from _member_bcast(comm, recvbuf, my_group, leader, COLL_TAG + 10,
                             datatype=BYTE, count=nbytes)


def allreduce(comm: "Communicator", sendbuf: "Buffer", recvbuf: "Buffer",
              op: str = "sum", datatype: BasicType = DOUBLE,
              count: Optional[int] = None):
    """Reduce to rank 0 then broadcast; hierarchical on multi-ringlet
    topologies (see :func:`_allreduce_hier`)."""
    if op not in OPS:
        raise ValueError(f"unknown reduction op {op!r}")
    if count is None:
        count = sendbuf.nbytes // datatype.size
    groups = _hier_groups(comm, "allreduce", count * datatype.size)
    if groups is not None:
        yield from _allreduce_hier(comm, sendbuf, recvbuf, op, datatype,
                                   count, groups)
        return
    yield from reduce(comm, sendbuf, recvbuf, root=0, op=op,
                      datatype=datatype, count=count)
    yield from bcast(comm, recvbuf, root=0, datatype=BYTE,
                     count=count * datatype.size)


def gather(comm: "Communicator", sendbuf: "Buffer", recvbuf: Optional["Buffer"],
           root: int = 0, count: Optional[int] = None):
    """Linear gather of equal-sized contributions (bytes)."""
    n = count if count is not None else sendbuf.nbytes
    if comm.rank == root:
        assert recvbuf is not None and recvbuf.nbytes >= n * comm.size
        recvbuf.write(sendbuf.read(0, n), offset=comm.rank * n)
        for peer in range(comm.size):
            if peer == root:
                continue
            part = recvbuf.slice(peer * n, n)
            yield from comm.recv(part, source=peer, tag=COLL_TAG + 4)
    else:
        yield from comm.send(sendbuf.slice(0, n), root, tag=COLL_TAG + 4)


def scatter(comm: "Communicator", sendbuf: Optional["Buffer"], recvbuf: "Buffer",
            root: int = 0, count: Optional[int] = None):
    """Linear scatter of equal-sized pieces (bytes)."""
    n = count if count is not None else recvbuf.nbytes
    if comm.rank == root:
        assert sendbuf is not None and sendbuf.nbytes >= n * comm.size
        recvbuf.write(sendbuf.read(root * n, n))
        for peer in range(comm.size):
            if peer == root:
                continue
            yield from comm.send(sendbuf.slice(peer * n, n), peer,
                                 tag=COLL_TAG + 6)
    else:
        yield from comm.recv(recvbuf, source=root, tag=COLL_TAG + 6)


def alltoall(comm: "Communicator", sendbuf: "Buffer", recvbuf: "Buffer",
             count: Optional[int] = None):
    """Pairwise-exchange all-to-all of equal-sized pieces (bytes).

    Round k: exchange with partner ``rank XOR k``-style shifted peer; the
    classic pairwise algorithm for full exchanges.
    """
    size, rank = comm.size, comm.rank
    n = count if count is not None else sendbuf.nbytes // size
    recvbuf.write(sendbuf.read(rank * n, n), offset=rank * n)
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from comm.sendrecv(
            sendbuf.slice(dst * n, n), dst,
            recvbuf.slice(src * n, n), src,
            sendtag=COLL_TAG + 7, recvtag=COLL_TAG + 7,
        )


def reduce_scatter_block(comm: "Communicator", sendbuf: "Buffer",
                         recvbuf: "Buffer", op: str = "sum",
                         datatype: BasicType = DOUBLE,
                         count: Optional[int] = None):
    """Reduce then scatter equal blocks (MPI_Reduce_scatter_block)."""
    if count is None:
        count = recvbuf.nbytes // datatype.size
    total = count * comm.size
    scratch = comm.alloc_scratch(total * datatype.size)
    yield from reduce(comm, sendbuf, scratch, root=0, op=op,
                      datatype=datatype, count=total)
    yield from scatter(comm, scratch if comm.rank == 0 else None, recvbuf,
                       root=0, count=count * datatype.size)


def allgather(comm: "Communicator", sendbuf: "Buffer", recvbuf: "Buffer",
              count: Optional[int] = None):
    """Ring allgather of equal-sized contributions (bytes)."""
    n = count if count is not None else sendbuf.nbytes
    size, rank = comm.size, comm.rank
    recvbuf.write(sendbuf.read(0, n), offset=rank * n)
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    right = (rank + 1) % size
    left = (rank - 1) % size
    current = rank
    for _ in range(size - 1):
        chunk = recvbuf.slice(current * n, n)
        req = comm.isend(chunk, right, tag=COLL_TAG + 5)
        incoming = (current - 1) % size
        yield from comm.recv(recvbuf.slice(incoming * n, n), source=left,
                             tag=COLL_TAG + 5)
        yield from req.wait()
        current = incoming
