"""Collective operations built on the point-to-point device.

Classic algorithms: binomial trees for barrier/bcast/reduce, ring
allgather, recursive structure kept simple — these exist to support the
examples and benchmarks (the paper's focus is pt2pt datatypes and
one-sided), but they are real implementations exercising the full
protocol stack: every payload byte moves through the transport layer's
scheduler via ``comm.send``/``comm.recv``.

When the world's :class:`~repro.mpi.transport.policy.TransferPolicy`
asks for it (``collective_chunk``), large broadcasts are split into
packed-stream *segments* and pipelined down a chain of ranks — the
plan-aware chunked data path (each segment packs straight out of user
memory; no staging copy).  The ring allgather and the pairwise alltoall
are already pipelined at message granularity, so the default policy
keeps them monolithic.

All functions are DES generators taking the caller's Communicator.
Reduction operates on numpy-typed views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..datatypes.basic import BYTE, BasicType, DOUBLE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..comm import Communicator
    from ...memlib import Buffer

__all__ = [
    "OPS",
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "reduce_scatter_block",
    "scatter",
]

#: Reserved tag space for collectives (user tags must stay below this).
COLL_TAG = 1 << 20

#: Reduction operators on numpy arrays.
OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": np.minimum,
    "max": np.maximum,
    # Bitwise ops (MPI_BAND/BOR/BXOR) on integer dtypes; `bor` is the
    # repro.svc seqlock write-claim primitive (fetch_and_op of the
    # version word's busy bit).
    "band": np.bitwise_and,
    "bor": np.bitwise_or,
    "bxor": np.bitwise_xor,
}


def barrier(comm: "Communicator"):
    """Dissemination barrier: ceil(log2 n) rounds of pt2pt exchanges."""
    size = comm.size
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    rank = comm.rank
    token = comm.alloc_scratch(1)
    distance = 1
    while distance < size:
        dst = (rank + distance) % size
        src = (rank - distance) % size
        req = comm.isend(token, dst, tag=COLL_TAG + 1)
        yield from comm.recv(token, source=src, tag=COLL_TAG + 1)
        yield from req.wait()
        distance *= 2


def _collective_chunk(comm: "Communicator", buf: "Buffer", datatype,
                      count: Optional[int]):
    """Policy decision for one collective payload: ``(dtype, count,
    total_bytes, chunk_or_None)``."""
    dtype = datatype if datatype is not None else BYTE
    dtype.commit()
    if count is None:
        if not dtype.is_contiguous or not dtype.size:
            return dtype, count, 0, None
        count = buf.nbytes // dtype.size
    total = dtype.flattened.size * count
    chunk = comm.device.policy.collective_chunk(total, comm.size)
    if chunk is not None and chunk >= total:
        chunk = None
    return dtype, count, total, chunk


def bcast(comm: "Communicator", buf: "Buffer", root: int = 0,
          datatype=None, count: Optional[int] = None):
    """Broadcast: binomial tree, or a chain-pipelined segment stream when
    the transfer policy asks for chunking."""
    size = comm.size
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    dtype, rcount, total, chunk = _collective_chunk(comm, buf, datatype, count)
    if chunk is not None:
        yield from _bcast_chained(comm, buf, root, dtype, rcount, total, chunk)
        return
    rank = comm.rank
    relative = (rank - root) % size
    # Climb masks until our lowest set bit: that's where our parent is.
    mask = 1
    while mask < size:
        if relative & mask:
            parent = ((relative & ~mask) + root) % size
            yield from comm.recv(buf, source=parent, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count)
            break
        mask <<= 1
    # Forward to children below the bit where we received.
    mask >>= 1
    while mask > 0:
        child_rel = relative | mask
        if child_rel != relative and child_rel < size:
            child = (child_rel + root) % size
            yield from comm.send(buf, child, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count)
        mask >>= 1


def _bcast_chained(comm: "Communicator", buf: "Buffer", root: int,
                   datatype, count: int, total: int, chunk: int):
    """Chain-pipelined chunked broadcast.

    Ranks form a chain starting at the root; each rank receives segment
    ``k`` of the packed stream from its predecessor while its forward of
    segment ``k - 1`` to the successor is still in flight (one
    outstanding send — the transport-level analogue of the rendezvous
    handshake cycle, but across ranks).  Segments travel as
    ``segment=(offset, nbytes)`` sends: the packing plan packs each range
    straight out of (and unpacks straight into) user memory.
    """
    size, rank = comm.size, comm.rank
    relative = (rank - root) % size
    prev = (rank - 1) % size
    nxt = (rank + 1) % size
    pending = None
    pos = 0
    while pos < total:
        n = min(chunk, total - pos)
        seg = (pos, n)
        if relative != 0:
            yield from comm.recv(buf, source=prev, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count, segment=seg)
        if relative != size - 1:
            if pending is not None:
                yield from pending.wait()
            pending = comm.isend(buf, nxt, tag=COLL_TAG + 2,
                                 datatype=datatype, count=count, segment=seg)
        pos += n
    if pending is not None:
        yield from pending.wait()


def reduce(comm: "Communicator", sendbuf: "Buffer", recvbuf: Optional["Buffer"],
           root: int = 0, op: str = "sum", datatype: BasicType = DOUBLE,
           count: Optional[int] = None):
    """Binomial-tree reduction to ``root``."""
    if op not in OPS:
        raise ValueError(f"unknown reduction op {op!r}")
    size = comm.size
    rank = comm.rank
    if count is None:
        count = sendbuf.nbytes // datatype.size
    nbytes = count * datatype.size
    acc = np.array(sendbuf.read(0, nbytes), copy=True).view(datatype.np_dtype)
    if size > 1:
        relative = (rank - root) % size
        scratch = comm.alloc_scratch(nbytes)
        mask = 1
        while mask < size:
            if relative & mask:
                parent = ((relative & ~mask) + root) % size
                scratch.write(acc.view(np.uint8))
                yield from comm.send(scratch, parent, tag=COLL_TAG + 3,
                                     datatype=BYTE, count=nbytes)
                break
            child_rel = relative | mask
            if child_rel < size:
                child = (child_rel + root) % size
                yield from comm.recv(scratch, source=child, tag=COLL_TAG + 3,
                                     datatype=BYTE, count=nbytes)
                incoming = np.array(scratch.read(0, nbytes), copy=True).view(
                    datatype.np_dtype
                )
                acc = OPS[op](acc, incoming)
            mask <<= 1
    if rank == root:
        target = recvbuf if recvbuf is not None else sendbuf
        target.write(np.ascontiguousarray(acc).view(np.uint8))
    return None


def allreduce(comm: "Communicator", sendbuf: "Buffer", recvbuf: "Buffer",
              op: str = "sum", datatype: BasicType = DOUBLE,
              count: Optional[int] = None):
    """Reduce to rank 0 then broadcast."""
    if count is None:
        count = sendbuf.nbytes // datatype.size
    yield from reduce(comm, sendbuf, recvbuf, root=0, op=op,
                      datatype=datatype, count=count)
    yield from bcast(comm, recvbuf, root=0, datatype=BYTE,
                     count=count * datatype.size)


def gather(comm: "Communicator", sendbuf: "Buffer", recvbuf: Optional["Buffer"],
           root: int = 0, count: Optional[int] = None):
    """Linear gather of equal-sized contributions (bytes)."""
    n = count if count is not None else sendbuf.nbytes
    if comm.rank == root:
        assert recvbuf is not None and recvbuf.nbytes >= n * comm.size
        recvbuf.write(sendbuf.read(0, n), offset=comm.rank * n)
        for peer in range(comm.size):
            if peer == root:
                continue
            part = recvbuf.slice(peer * n, n)
            yield from comm.recv(part, source=peer, tag=COLL_TAG + 4)
    else:
        yield from comm.send(sendbuf.slice(0, n), root, tag=COLL_TAG + 4)


def scatter(comm: "Communicator", sendbuf: Optional["Buffer"], recvbuf: "Buffer",
            root: int = 0, count: Optional[int] = None):
    """Linear scatter of equal-sized pieces (bytes)."""
    n = count if count is not None else recvbuf.nbytes
    if comm.rank == root:
        assert sendbuf is not None and sendbuf.nbytes >= n * comm.size
        recvbuf.write(sendbuf.read(root * n, n))
        for peer in range(comm.size):
            if peer == root:
                continue
            yield from comm.send(sendbuf.slice(peer * n, n), peer,
                                 tag=COLL_TAG + 6)
    else:
        yield from comm.recv(recvbuf, source=root, tag=COLL_TAG + 6)


def alltoall(comm: "Communicator", sendbuf: "Buffer", recvbuf: "Buffer",
             count: Optional[int] = None):
    """Pairwise-exchange all-to-all of equal-sized pieces (bytes).

    Round k: exchange with partner ``rank XOR k``-style shifted peer; the
    classic pairwise algorithm for full exchanges.
    """
    size, rank = comm.size, comm.rank
    n = count if count is not None else sendbuf.nbytes // size
    recvbuf.write(sendbuf.read(rank * n, n), offset=rank * n)
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        yield from comm.sendrecv(
            sendbuf.slice(dst * n, n), dst,
            recvbuf.slice(src * n, n), src,
            sendtag=COLL_TAG + 7, recvtag=COLL_TAG + 7,
        )


def reduce_scatter_block(comm: "Communicator", sendbuf: "Buffer",
                         recvbuf: "Buffer", op: str = "sum",
                         datatype: BasicType = DOUBLE,
                         count: Optional[int] = None):
    """Reduce then scatter equal blocks (MPI_Reduce_scatter_block)."""
    if count is None:
        count = recvbuf.nbytes // datatype.size
    total = count * comm.size
    scratch = comm.alloc_scratch(total * datatype.size)
    yield from reduce(comm, sendbuf, scratch, root=0, op=op,
                      datatype=datatype, count=total)
    yield from scatter(comm, scratch if comm.rank == 0 else None, recvbuf,
                       root=0, count=count * datatype.size)


def allgather(comm: "Communicator", sendbuf: "Buffer", recvbuf: "Buffer",
              count: Optional[int] = None):
    """Ring allgather of equal-sized contributions (bytes)."""
    n = count if count is not None else sendbuf.nbytes
    size, rank = comm.size, comm.rank
    recvbuf.write(sendbuf.read(0, n), offset=rank * n)
    if size == 1:
        return
        yield  # pragma: no cover - generator marker
    right = (rank + 1) % size
    left = (rank - 1) % size
    current = rank
    for _ in range(size - 1):
        chunk = recvbuf.slice(current * n, n)
        req = comm.isend(chunk, right, tag=COLL_TAG + 5)
        incoming = (current - 1) % size
        yield from comm.recv(recvbuf.slice(incoming * n, n), source=left,
                             tag=COLL_TAG + 5)
        yield from req.wait()
        current = incoming
