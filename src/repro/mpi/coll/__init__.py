"""Collective operations (S9)."""

from .collectives import (
    OPS,
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    reduce_scatter_block,
    scatter,
)

__all__ = [
    "OPS",
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "reduce_scatter_block",
    "scatter",
]
