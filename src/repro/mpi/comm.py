"""The Communicator: each rank's handle to an MPI communication context.

The API mirrors mpi4py's buffer-protocol methods in spirit, adapted to the
simulation: communication calls are DES *generators* the rank's program
drives with ``yield from``::

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            yield from comm.send(buf, dest=1, tag=7)
        else:
            status = yield from comm.recv(buf, source=0, tag=7)

Communicators carry an MPI *context id* so traffic on different
communicators never matches across, and may span a subset of the world
(``comm.split``).  Ranks in the public API are always communicator-local.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..memlib import Buffer
from .coll import collectives as _coll
from .datatypes.base import Datatype
from .errors import MPIError
from .pt2pt.engine import MPIWorld, Status
from .pt2pt.messages import ANY_SOURCE, ANY_TAG
from .request import PersistentRequest, Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .osc.window import Win

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG", "Status"]


class Communicator:
    """Per-rank communicator over a group of world ranks."""

    def __init__(self, world: MPIWorld, world_rank: int, context: int = 0,
                 group: Optional[Sequence[int]] = None):
        self.world = world
        self.context = context
        #: Communicator-local rank -> world rank.
        self.group: tuple[int, ...] = tuple(
            group if group is not None else range(world.n_ranks)
        )
        if world_rank not in self.group:
            raise MPIError(
                f"world rank {world_rank} is not part of this communicator"
            )
        self._world_rank = world_rank
        self._rank = self.group.index(world_rank)
        self.device = world.device(world_rank)
        self.engine = world.engine
        self._scratch_counter = 0

    # -- identity ----------------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank *within this communicator*."""
        return self._rank

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def world_rank(self) -> int:
        return self._world_rank

    @property
    def node(self):
        return self.device.node

    def _to_world(self, rank: int) -> int:
        if rank in (ANY_SOURCE, ANY_TAG):
            return rank
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} outside communicator of size {self.size}")
        return self.group[rank]

    def _to_local(self, world_rank: int) -> int:
        return self.group.index(world_rank)

    def _localized(self, status: Status) -> Status:
        return Status(self._to_local(status.source), status.tag, status.nbytes)

    def alloc_scratch(self, nbytes: int) -> Buffer:
        """Allocate private scratch memory on this rank's node."""
        self._scratch_counter += 1
        return self.device.node.space.alloc(
            max(nbytes, 1),
            label=f"scratch-w{self._world_rank}-{self._scratch_counter}",
        )

    # -- point-to-point -------------------------------------------------------------

    def send(self, buf: Buffer, dest: int, tag: int = 0,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             segment: Optional[tuple[int, int]] = None):
        """Blocking standard-mode send (generator).

        ``segment=(offset, nbytes)`` restricts the transfer to a byte
        range of the packed stream (both sides must agree on the range).
        """
        return self.device.send(buf, self._to_world(dest), tag, datatype,
                                count, context=self.context, segment=segment)

    def ssend(self, buf: Buffer, dest: int, tag: int = 0,
              datatype: Optional[Datatype] = None, count: Optional[int] = None):
        """Blocking synchronous-mode send (completes on match; MPI_Ssend)."""
        return self.device.send(buf, self._to_world(dest), tag, datatype,
                                count, context=self.context, sync=True)

    def recv(self, buf: Buffer, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None, count: Optional[int] = None,
             segment: Optional[tuple[int, int]] = None):
        """Blocking receive (generator); returns a Status (local source)."""
        status = yield from self.device.recv(
            buf, self._to_world(source), tag, datatype, count,
            context=self.context, segment=segment,
        )
        return self._localized(status)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking probe (generator); returns a Status without receiving."""
        status = yield from self.device.probe(
            self._to_world(source), tag, context=self.context
        )
        return self._localized(status)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe; Status or None (MPI_Iprobe)."""
        msg = self.device.match.probe(self._to_world(source), tag, self.context)
        if msg is None:
            return None
        nbytes = msg.data.nbytes if hasattr(msg, "data") else msg.nbytes
        return Status(self._to_local(msg.envelope.source), msg.envelope.tag, nbytes)

    def isend(self, buf: Buffer, dest: int, tag: int = 0,
              datatype: Optional[Datatype] = None,
              count: Optional[int] = None,
              segment: Optional[tuple[int, int]] = None) -> Request:
        """Nonblocking send; returns a Request immediately."""
        proc = self.engine.process(
            self.device.send(buf, self._to_world(dest), tag, datatype, count,
                             context=self.context, segment=segment),
            name=f"isend-w{self._world_rank}->{dest}",
        )
        return Request(self.engine, proc)

    def irecv(self, buf: Buffer, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              datatype: Optional[Datatype] = None,
              count: Optional[int] = None,
              segment: Optional[tuple[int, int]] = None) -> Request:
        """Nonblocking receive; returns a Request immediately."""
        def body():
            status = yield from self.device.recv(
                buf, self._to_world(source), tag, datatype, count,
                context=self.context, segment=segment,
            )
            return self._localized(status)

        proc = self.engine.process(body(), name=f"irecv-w{self._world_rank}")
        return Request(self.engine, proc)

    def send_init(self, buf: Buffer, dest: int, tag: int = 0,
                  datatype: Optional[Datatype] = None,
                  count: Optional[int] = None) -> PersistentRequest:
        """Persistent send request (MPI_Send_init): call ``.start()``."""
        return PersistentRequest(
            self.engine,
            lambda: self.device.send(buf, self._to_world(dest), tag, datatype,
                                     count, context=self.context),
            name=f"psend-w{self._world_rank}->{dest}",
        )

    def recv_init(self, buf: Buffer, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                  datatype: Optional[Datatype] = None,
                  count: Optional[int] = None) -> PersistentRequest:
        """Persistent receive request (MPI_Recv_init)."""
        def body():
            status = yield from self.device.recv(
                buf, self._to_world(source), tag, datatype, count,
                context=self.context,
            )
            return self._localized(status)

        return PersistentRequest(self.engine, body,
                                 name=f"precv-w{self._world_rank}")

    def sendrecv(self, sendbuf: Buffer, dest: int, recvbuf: Buffer, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 send_datatype: Optional[Datatype] = None,
                 send_count: Optional[int] = None,
                 recv_datatype: Optional[Datatype] = None,
                 recv_count: Optional[int] = None):
        """Combined send+receive (deadlock-free); returns the recv Status."""
        req = self.isend(sendbuf, dest, sendtag, send_datatype, send_count)
        status = yield from self.recv(recvbuf, source, recvtag,
                                      recv_datatype, recv_count)
        yield from req.wait()
        return status

    def probe_unexpected(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Deprecated alias of :meth:`iprobe` returning the raw message."""
        return self.device.match.probe(self._to_world(source), tag, self.context)

    # -- communicator management -----------------------------------------------------

    def split(self, color: int, key: int = 0):
        """Collective split into sub-communicators (generator; MPI_Comm_split).

        Every rank of this communicator must call it; ranks with the same
        ``color`` end up in one new communicator, ordered by ``key`` (ties
        broken by parent rank).  ``color=None`` returns None for that rank
        (MPI_UNDEFINED).
        """
        world = self.world
        if not hasattr(world, "_split_state"):
            world._split_state = {}
            world._context_counter = 1
        seq_key = (self.context, self.group)
        state = world._split_state.setdefault(
            seq_key, {"round": 0, "contrib": {}, "done": {}}
        )
        round_no = state["round"]
        state["contrib"].setdefault(round_no, {})[self.rank] = (color, key)
        # Everyone synchronizes; afterwards all contributions are present.
        yield from self.barrier()
        contrib = state["contrib"][round_no]
        if len(contrib) == len(self.group) and round_no not in state["done"]:
            state["done"][round_no] = True
            state["round"] = round_no + 1
        if color is None:
            return None
        members = sorted(
            (r for r, (c, _k) in contrib.items() if c == color),
            key=lambda r: (contrib[r][1], r),
        )
        # Deterministic context id: derived from parent context, round and
        # color — identical on every member rank.
        new_context = (
            (self.context + 1) * 1_000_003 + round_no * 1_009 + (color % 997) + 1
        )
        group = tuple(self.group[r] for r in members)
        return Communicator(world, self._world_rank, context=new_context,
                            group=group)

    def dup(self):
        """Collective duplicate with a fresh context (generator; MPI_Comm_dup)."""
        new_comm = yield from self.split(color=0, key=self.rank)
        return new_comm

    # -- collectives -------------------------------------------------------------------

    def barrier(self):
        return _coll.barrier(self)

    def bcast(self, buf: Buffer, root: int = 0,
              datatype: Optional[Datatype] = None, count: Optional[int] = None):
        return _coll.bcast(self, buf, root, datatype, count)

    def reduce(self, sendbuf: Buffer, recvbuf: Optional[Buffer] = None,
               root: int = 0, op: str = "sum", datatype=None,
               count: Optional[int] = None):
        from .datatypes.basic import DOUBLE

        return _coll.reduce(self, sendbuf, recvbuf, root, op,
                            datatype or DOUBLE, count)

    def allreduce(self, sendbuf: Buffer, recvbuf: Buffer, op: str = "sum",
                  datatype=None, count: Optional[int] = None):
        from .datatypes.basic import DOUBLE

        return _coll.allreduce(self, sendbuf, recvbuf, op,
                               datatype or DOUBLE, count)

    def gather(self, sendbuf: Buffer, recvbuf: Optional[Buffer] = None,
               root: int = 0, count: Optional[int] = None):
        return _coll.gather(self, sendbuf, recvbuf, root, count)

    def allgather(self, sendbuf: Buffer, recvbuf: Buffer,
                  count: Optional[int] = None):
        return _coll.allgather(self, sendbuf, recvbuf, count)

    def scatter(self, sendbuf: Optional[Buffer], recvbuf: Buffer,
                root: int = 0, count: Optional[int] = None):
        return _coll.scatter(self, sendbuf, recvbuf, root, count)

    def alltoall(self, sendbuf: Buffer, recvbuf: Buffer,
                 count: Optional[int] = None):
        return _coll.alltoall(self, sendbuf, recvbuf, count)

    def reduce_scatter_block(self, sendbuf: Buffer, recvbuf: Buffer,
                             op: str = "sum", datatype=None,
                             count: Optional[int] = None):
        from .datatypes.basic import DOUBLE

        return _coll.reduce_scatter_block(self, sendbuf, recvbuf, op,
                                          datatype or DOUBLE, count)

    # -- one-sided ---------------------------------------------------------------------

    def win_create(self, size_bytes: int, shared: bool = True) -> "Win":
        """Collective window creation (generator); see repro.mpi.osc.

        ``shared=True`` allocates the window from SCI shared memory (the
        MPI_Alloc_mem path — direct remote access); ``shared=False`` uses
        private process memory (accesses are emulated via the remote
        handler, paper Sec. 4.2).
        """
        from .osc.window import win_create

        return win_create(self, size_bytes, shared)

    def __repr__(self) -> str:
        return (
            f"<Communicator rank={self._rank}/{self.size} "
            f"context={self.context}>"
        )
