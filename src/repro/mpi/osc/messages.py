"""Control messages of the one-sided (emulation) engine.

These model the "internal control messages in conjunction with a remote
interrupt ... to invoke a remote handler on a process to accept or deliver
data" (Sec. 4.2) — the path taken whenever direct SCI access to a window
is impossible (private memory) or undesirable (large reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...sim import Event

__all__ = ["OSCPut", "OSCGet", "OSCAccumulate", "OSCNotice"]


@dataclass
class OSCPut:
    """Emulated put: deliver ``data`` into the target's window.

    ``apply``, when set, scatters the packed payload into a
    non-contiguous target layout (called with the window's local view).
    """

    win_id: int
    origin: int
    disp: int
    data: np.ndarray
    ack: "Event"
    apply: "object" = None


@dataclass
class OSCGet:
    """Emulated get / remote-put: target pushes window data to the origin.

    The target writes the requested bytes into the origin's response
    region (a *remote-put*, fast on SCI because writes are fast) and then
    fires ``done``.
    """

    win_id: int
    origin: int
    disp: int
    nbytes: int
    response_offset: int
    done: "Event"


@dataclass
class OSCAccumulate:
    """Emulated accumulate: combine ``data`` into the target's window.

    ``plan``, when set, is the packing plan of a non-contiguous target
    layout: the handler gathers the previous contents along it, combines
    element-wise and scatters the result back; the fetched value is the
    previous contents in packed order.
    """

    win_id: int
    origin: int
    disp: int
    data: np.ndarray
    op: str
    np_dtype: np.dtype
    ack: "Event"
    plan: "object" = None


@dataclass
class OSCNotice:
    """Epoch notification for post/start/complete/wait synchronization."""

    win_id: int
    kind: str  # "post" | "complete"
    source: int
