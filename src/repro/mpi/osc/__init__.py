"""MPI-2 one-sided communication (S10)."""

from .messages import OSCAccumulate, OSCGet, OSCNotice, OSCPut
from .window import Win, WinGlobal, win_create

__all__ = [
    "OSCAccumulate",
    "OSCGet",
    "OSCNotice",
    "OSCPut",
    "Win",
    "WinGlobal",
    "win_create",
]
