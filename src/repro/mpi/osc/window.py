"""MPI-2 one-sided communication on SCI (Sec. 4 of the paper).

A *window* exposes a contiguous memory area of each rank of a
communicator to every other rank of that communicator.  SCI-MPICH's
implementation strategy, reproduced here:

* window memory allocated from SCI shared segments (``shared=True``, the
  ``MPI_Alloc_mem`` path) is accessed **directly**: puts are transparent
  remote stores, small gets are transparent remote loads;
* because SCI remote reads are much slower than writes, gets larger than
  ``remote_put_threshold`` are converted into a **remote-put**: the target
  writes the data into the origin's response region;
* windows in **private** process memory are accessed by **emulation**: a
  control message plus remote interrupt invoke a handler at the target
  that accepts or delivers the data;
* ``MPI_Accumulate`` always runs at the target (read-modify-write needs
  the target CPU);
* synchronization: fence (store barriers + SMI barrier), general active
  target (post/start/complete/wait) and passive target (lock/unlock with
  SMI shared-memory locks).

Strategy selection (direct vs. remote-put vs. emulated) comes from the
world's :class:`~repro.mpi.transport.policy.TransferPolicy`; every payload
byte moves through the device's
:class:`~repro.mpi.transport.store.RemoteStore` /
:class:`~repro.mpi.transport.scheduler.TransferScheduler`.

Ranks in the public :class:`Win` API are communicator-local; internal
messages carry world ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ...sim import Channel, Event
from ...smi import SMIBarrier, SMIRWLock
from ..coll.collectives import OPS
from ..datatypes.base import Datatype
from ..errors import RMAError, TransferFault
from ..flatten import get_plan
from ..pt2pt.costs import pack_cost_direct
from ..transport import OSCStrategy, resolve_target_run
from .messages import OSCAccumulate, OSCGet, OSCNotice, OSCPut

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..comm import Communicator
    from ..pt2pt.engine import MPIWorld, RankDevice

__all__ = ["Win", "WinGlobal", "win_create"]


@dataclass
class WinPart:
    """One rank's exposed window memory (keyed by world rank)."""

    world_rank: int
    shared: bool
    nbytes: int
    region: Any = None  # SharedRegion when shared
    buffer: Any = None  # private Buffer otherwise

    def local_view(self) -> np.ndarray:
        if self.shared:
            return self.region.local_view()
        return self.buffer.read()


class OSCEngine:
    """Per-rank handler for emulated one-sided requests.

    Installed as the device's ``osc_handler``; the service loop runs it
    like an interrupt service routine ("a remote handler ... to accept or
    deliver data").
    """

    def __init__(self, device: "RankDevice"):
        self.device = device
        self.windows: dict[Any, "WinGlobal"] = {}
        device.osc_handler = self.handle

    def handle(self, msg: Any):
        if isinstance(msg, OSCNotice):
            win = self.windows[msg.win_id]
            win.notice_channel(self.device.rank, msg.kind, msg.source).put(True)
            return None
        if isinstance(msg, (OSCPut, OSCGet, OSCAccumulate)):
            return self._serve(msg)
        raise RMAError(f"unexpected OSC message {msg!r}")

    def _serve(self, msg):
        device = self.device
        params = device.node.params
        win = self.windows[msg.win_id]
        part = win.parts[device.rank]
        # Handler dispatch after the remote interrupt.
        yield device.engine.timeout(params.adapter.handler_dispatch)

        if isinstance(msg, OSCPut):
            n = msg.data.nbytes
            yield device.engine.timeout(
                device.node.memory.copy_cost(n).duration
            )
            if msg.apply is not None:
                msg.apply(part.local_view())
            else:
                part.local_view()[msg.disp : msg.disp + n] = msg.data
            msg.ack.succeed()
            return

        if isinstance(msg, OSCAccumulate):
            n = msg.data.nbytes
            view = part.local_view()
            if msg.plan is not None:
                # Non-contiguous target layout: gather the previous
                # contents along the packing plan, combine element-wise,
                # scatter the result back (two ff pack loops on top of
                # the read-modify-write).
                groups = device.scheduler.plan_groups(msg.plan)
                yield device.engine.timeout(
                    device.node.memory.copy_cost(n).duration * 1.5
                    + 2 * pack_cost_direct(device.node.memory, groups,
                                           device.config)
                )
                fetched = msg.plan.execute_pack(view, msg.disp)
                typed_prev = fetched.view(msg.np_dtype)
                typed_incoming = msg.data.view(msg.np_dtype)
                if msg.op == "replace":
                    result = typed_incoming
                else:
                    result = OPS[msg.op](typed_prev, typed_incoming)
                msg.plan.execute_unpack(
                    view, msg.disp, 0,
                    np.ascontiguousarray(result).view(np.uint8),
                )
                msg.ack.succeed(fetched)
                return
            target = view[msg.disp : msg.disp + n]
            typed_target = target.view(msg.np_dtype)
            typed_incoming = msg.data.view(msg.np_dtype)
            yield device.engine.timeout(
                device.node.memory.copy_cost(n).duration * 1.5
            )
            fetched = np.array(typed_target, copy=True)
            if msg.op == "replace":
                typed_target[:] = typed_incoming
            else:
                typed_target[:] = OPS[msg.op](fetched, typed_incoming)
            msg.ack.succeed(fetched)
            return

        assert isinstance(msg, OSCGet)
        # Remote-put: write the window data into the origin's response
        # region ("the target process writes the data into the origin
        # process' address space", Sec. 4.2).
        origin_device = device.world.device(msg.origin)
        data = np.array(part.local_view()[msg.disp : msg.disp + msg.nbytes], copy=True)
        yield from device.store.respond_remote_put(
            msg.origin, origin_device.response_region, msg.response_offset, data
        )
        msg.done.succeed()


def _osc_engine(device: "RankDevice") -> OSCEngine:
    if not hasattr(device, "_osc_engine"):
        device._osc_engine = OSCEngine(device)
        device.response_region = device.smi.create_region(
            device.rank, device.config.osc_response_size,
            label=f"osc-response-r{device.rank}",
        )
    return device._osc_engine


class WinGlobal:
    """Cross-rank shared state of one window."""

    def __init__(self, world: "MPIWorld", win_id: Any, group: tuple[int, ...]):
        self.world = world
        self.win_id = win_id
        #: Communicator group: local rank -> world rank.
        self.group = group
        #: Window parts, keyed by *world* rank.
        self.parts: dict[int, WinPart] = {}
        #: Every rank's :class:`Win` handle (for the metrics registry's
        #: ``osc.*`` collectors, which sum handle counters per window).
        self.handles: list["Win"] = []
        self.fence_barrier = SMIBarrier(
            world.smi, ranks=list(group), home_rank=group[0]
        )
        #: Passive-target locks, one per target, homed at the target
        #: ("mutual exclusion ... via shared memory locks", Sec. 4.2).
        #: Reader–writer: shared epochs run concurrently, exclusive
        #: acquisition is FIFO starvation-free.
        self.locks: dict[int, SMIRWLock] = {
            w: SMIRWLock(world.smi, home_rank=w, name=f"win{win_id}-lock-w{w}")
            for w in group
        }
        #: Epoch notices for post/start/complete/wait, keyed by
        #: (at world rank, kind, from world rank); channels so repeated
        #: epochs queue correctly.
        self._notices: dict[tuple[int, str, int], Channel] = {}

    def notice_channel(self, at_rank: int, kind: str, source: int) -> Channel:
        key = (at_rank, kind, source)
        if key not in self._notices:
            self._notices[key] = Channel(self.world.engine, name=f"win-notice-{key}")
        return self._notices[key]


class Win:
    """One rank's handle to a window (returned by ``comm.win_create``).

    Target ranks in every method are communicator-local.
    """

    def __init__(self, shared_state: WinGlobal, comm: "Communicator"):
        self.state = shared_state
        self.comm = comm
        self.rank = comm.rank
        self.world_rank = comm.world_rank
        self.device = comm.device
        self.engine = comm.engine
        self.config = self.device.config
        self.policy = self.device.policy
        self.store = self.device.store
        #: World ranks touched by direct stores since the last sync (need
        #: a store barrier at the synchronization point).
        self._dirty_targets: set[int] = set()
        #: Outstanding emulated-operation acknowledgements.
        self._pending_acks: list[Event] = []
        #: Mode of each held passive-target lock (world rank -> exclusive).
        self._held_locks: dict[int, bool] = {}
        #: World ranks whose window segment became unmappable mid-epoch:
        #: direct access is permanently degraded to the emulated path for
        #: them (the :meth:`TransferPolicy.degraded_strategy` decision).
        self._degraded: set[int] = set()
        self.counters = {
            "direct_puts": 0,
            "direct_gets": 0,
            "remote_puts": 0,
            "emulated_puts": 0,
            "emulated_gets": 0,
            "accumulates": 0,
        }
        shared_state.handles.append(self)

    # -- helpers --------------------------------------------------------------------

    @property
    def parts(self) -> dict[int, WinPart]:
        return self.state.parts

    def _world(self, target: int) -> int:
        if not 0 <= target < len(self.state.group):
            raise RMAError(
                f"target rank {target} outside window group of "
                f"{len(self.state.group)}"
            )
        return self.state.group[target]

    def part(self, target: int) -> WinPart:
        wtarget = self._world(target)
        try:
            return self.parts[wtarget]
        except KeyError:
            raise RMAError(f"rank {target} has no part in this window") from None

    def local_view(self) -> np.ndarray:
        """This rank's own window memory (direct load/store)."""
        return self.parts[self.world_rank].local_view()

    def _check(self, part: WinPart, disp: int, nbytes: int) -> None:
        if disp < 0 or disp + nbytes > part.nbytes:
            raise RMAError(
                f"RMA access [{disp}, {disp + nbytes}) outside window part of "
                f"{part.nbytes} B at world rank {part.world_rank}"
            )

    def _check_layout(self, part: WinPart, disp: int, nbytes: int, run,
                      target_datatype: Optional[Datatype]) -> None:
        """Bounds-check the target footprint (strided run or full span)."""
        if run is not None:
            end = (
                run.base + (run.count - 1) * run.stride + run.size
                if run.count else run.base
            )
            self._check(part, run.base, max(0, end - run.base))
        else:
            span_lo, span_hi = target_datatype.flattened.span()
            self._check(part, disp + span_lo, span_hi - span_lo)

    @staticmethod
    def _as_bytes(data) -> np.ndarray:
        if isinstance(data, np.ndarray):
            return np.ascontiguousarray(data).reshape(-1).view(np.uint8)
        if isinstance(data, (bytes, bytearray)):
            return np.frombuffer(bytes(data), dtype=np.uint8)
        # repro.memlib.Buffer
        return np.array(data.read(), copy=True)

    # -- data operations ----------------------------------------------------------------

    def put(self, data, target: int, target_disp: int = 0,
            target_datatype: Optional[Datatype] = None, target_count: int = 1):
        """MPI_Put (DES generator): move data from origin to target."""
        payload = self._as_bytes(data)
        n = payload.nbytes
        part = self.part(target)
        wtarget = part.world_rank
        self.device._trace("osc.put.begin", target=wtarget, nbytes=n)
        yield self.engine.timeout(self.config.osc_call_overhead)

        run = resolve_target_run(target_disp, n, target_datatype, target_count)
        self._check_layout(part, target_disp, n, run, target_datatype)

        if wtarget == self.world_rank:
            # Local window: a plain store.
            yield self.engine.timeout(self.device.node.memory.copy_cost(n).duration)
            if run is None:
                plan = get_plan(target_datatype.flattened, target_count)
                plan.execute_unpack(part.local_view(), target_disp, 0, payload)
            else:
                from ...hardware.sci.segments import scatter_run
                scatter_run(part.local_view(), run, payload)
            self.device._trace("osc.put.end", target=wtarget, strategy="local")
            return

        strategy = self.policy.osc_op_strategy("put", n, part.shared,
                                               run is not None)
        if strategy == OSCStrategy.DIRECT and wtarget in self._degraded:
            strategy = self.policy.degraded_strategy(strategy)
        if strategy == OSCStrategy.DIRECT:
            # Direct path: transparent remote stores (retransmitted on
            # injected transient faults).
            def attempt():
                yield from self.store.write_run(
                    part.region, run, payload,
                    src_cached=self.policy.src_cached(n, self.device.node),
                )

            try:
                yield from self.store.deliver_with_retry(wtarget, attempt)
            except TransferFault as fault:
                if not fault.unmapped:
                    raise
                # Window segment revoked mid-epoch: degrade this target to
                # emulation (sticky) and redo the operation that way.
                strategy = self._degrade(wtarget)
                self.device._trace("recover.fallback.begin", peer=wtarget,
                                   action="emulate")
                yield from self._emulated_put(part, payload, wtarget,
                                              target_disp, target_datatype,
                                              target_count, run)
                self.device._trace("recover.fallback.end", peer=wtarget)
            else:
                self._dirty_targets.add(wtarget)
                self.counters["direct_puts"] += 1
        else:
            # Emulation (private window memory, or a target layout too
            # complex for a single strided store run).
            yield from self._emulated_put(part, payload, wtarget, target_disp,
                                          target_datatype, target_count, run)
        self.device._trace("osc.put.end", target=wtarget, strategy=strategy)

    def _degrade(self, wtarget: int) -> str:
        """Record the fallback decision for an unmappable target segment."""
        self._degraded.add(wtarget)
        self.device.recovery["fallbacks"] += 1
        return self.policy.degraded_strategy(OSCStrategy.DIRECT)

    def _emulated_put(self, part, payload, wtarget, target_disp,
                      target_datatype, target_count, run):
        n = payload.nbytes
        device = self.device
        ack = Event(self.engine, name=f"osc-put-ack-w{self.world_rank}")
        msg = OSCPut(self.state.win_id, self.world_rank, target_disp, payload, ack)
        if target_datatype is not None and (run is None or run.stride != run.size):
            # The handler scatters into the non-contiguous target layout.
            target_datatype.commit()
            plan = get_plan(target_datatype.flattened, target_count)

            def apply(view, plan=plan, disp=target_disp, payload=payload):
                plan.execute_unpack(view, disp, 0, payload)

            msg.apply = apply
        # Ship the payload (a data transfer on the ring) + remote interrupt.
        yield from self.store.ship_emulated(
            wtarget, target_disp, n, msg,
            src_cached=self.policy.src_cached(n, device.node),
        )
        self._pending_acks.append(ack)
        self.counters["emulated_puts"] += 1

    def get(self, nbytes: int, target: int, target_disp: int = 0,
            target_datatype: Optional[Datatype] = None, target_count: int = 1):
        """MPI_Get (DES generator): returns the fetched bytes."""
        part = self.part(target)
        wtarget = part.world_rank
        self.device._trace("osc.get.begin", target=wtarget, nbytes=nbytes)
        yield self.engine.timeout(self.config.osc_call_overhead)
        run = resolve_target_run(target_disp, nbytes, target_datatype,
                                 target_count)

        if wtarget == self.world_rank:
            yield self.engine.timeout(self.device.node.memory.copy_cost(nbytes).duration)
            if run is None:
                plan = get_plan(target_datatype.flattened, target_count)
                data = plan.execute_pack(part.local_view(), target_disp)
            else:
                from ...hardware.sci.segments import gather_run
                data = gather_run(part.local_view(), run)
            self.device._trace("osc.get.end", target=wtarget, strategy="local")
            return data

        strategy = self.policy.osc_op_strategy("get", nbytes, part.shared,
                                               run is not None)
        if strategy != OSCStrategy.EMULATED and wtarget in self._degraded:
            strategy = self.policy.degraded_strategy(strategy)
        if strategy == OSCStrategy.DIRECT:
            # Small direct read: transparent remote loads (CPU stalls),
            # retransmitted on injected transient faults.
            def attempt():
                fetched = yield from self.store.read_run(part.region, run)
                return fetched

            try:
                data = yield from self.store.deliver_with_retry(wtarget, attempt)
            except TransferFault as fault:
                if not fault.unmapped:
                    raise
                strategy = self._degrade(wtarget)
                self.device._trace("recover.fallback.begin", peer=wtarget,
                                   action="emulate")
                data = yield from self._emulated_get(part, nbytes, wtarget,
                                                     target_disp)
                self.device._trace("recover.fallback.end", peer=wtarget)
                self.counters["emulated_gets"] += 1
            else:
                self.counters["direct_gets"] += 1
        else:
            # Remote-put conversion (shared, large) or full emulation
            # (private): the target pushes into our response region.
            data = yield from self._emulated_get(part, nbytes, wtarget,
                                                 target_disp)
            if strategy == OSCStrategy.REMOTE_PUT:
                self.counters["remote_puts"] += 1
            else:
                self.counters["emulated_gets"] += 1
        self.device._trace("osc.get.end", target=wtarget, strategy=strategy)
        return data

    def _emulated_get(self, part, nbytes, wtarget, target_disp):
        device = self.device

        def make_request(disp, n):
            done = Event(self.engine, name=f"osc-get-done-w{self.world_rank}")
            msg = OSCGet(self.state.win_id, self.world_rank, disp, n, 0, done)
            yield from self.store.request_emulated(wtarget, msg)
            return done

        data = yield from device.scheduler.fetch_via_response(
            target_disp, nbytes, make_request
        )
        return data

    def accumulate(self, data, target: int, target_disp: int = 0,
                   op: str = "sum", datatype=None, fetch: bool = False,
                   target_datatype: Optional[Datatype] = None,
                   target_count: int = 1):
        """MPI_Accumulate / MPI_Get_accumulate: combine origin data into the
        target window.

        Always executed by the target's handler (read-modify-write needs
        the target CPU; SCI has no remote atomics on commodity adapters).
        With ``fetch=True`` behaves like MPI_Get_accumulate and returns the
        target's *previous* contents (the call then blocks until applied).
        ``target_datatype``/``target_count`` describe a (possibly
        non-contiguous) target layout; the handler gathers / scatters
        along its packing plan and the fetched result is the previous
        contents in packed order.
        """
        from ..datatypes.basic import DOUBLE

        basic = datatype or DOUBLE
        if op != "replace" and op not in OPS:
            raise RMAError(f"unknown accumulate op {op!r}")
        payload = self._as_bytes(data)
        n = payload.nbytes
        part = self.part(target)
        wtarget = part.world_rank
        plan = None
        if target_datatype is not None:
            target_datatype.commit()
            plan = get_plan(target_datatype.flattened, target_count)
            if plan.total != n:
                raise RMAError(
                    f"origin data of {n} B does not match target type of "
                    f"{plan.total} B"
                )
            span_lo, span_hi = target_datatype.flattened.span()
            self._check(part, target_disp + span_lo, span_hi - span_lo)
        else:
            self._check(part, target_disp, n)
        self.device._trace("osc.acc.begin", target=wtarget, nbytes=n, op=op)
        yield self.engine.timeout(self.config.osc_call_overhead)
        device = self.device
        if wtarget == self.world_rank:
            view = part.local_view()
            if plan is not None:
                groups = device.scheduler.plan_groups(plan)
                yield self.engine.timeout(
                    device.node.memory.copy_cost(n).duration * 1.5
                    + 2 * pack_cost_direct(device.node.memory, groups,
                                           self.config)
                )
                fetched = plan.execute_pack(view, target_disp)
                typed_prev = fetched.view(basic.np_dtype)
                incoming = payload.view(basic.np_dtype)
                result = (
                    incoming if op == "replace"
                    else OPS[op](typed_prev, incoming)
                )
                plan.execute_unpack(
                    view, target_disp, 0,
                    np.ascontiguousarray(result).view(np.uint8),
                )
            else:
                target_view = view[target_disp : target_disp + n]
                typed = target_view.view(basic.np_dtype)
                incoming = payload.view(basic.np_dtype)
                yield self.engine.timeout(
                    device.node.memory.copy_cost(n).duration * 1.5
                )
                fetched = np.array(typed, copy=True)
                if op == "replace":
                    typed[:] = incoming
                else:
                    typed[:] = OPS[op](fetched, incoming)
            self.counters["accumulates"] += 1
            self.device._trace("osc.acc.end", target=wtarget, strategy="local")
            return fetched if fetch else None
        ack = Event(self.engine, name=f"osc-acc-ack-w{self.world_rank}")
        msg = OSCAccumulate(self.state.win_id, self.world_rank, target_disp,
                            payload, op, basic.np_dtype, ack, plan=plan)
        yield from self.store.ship_emulated(
            wtarget, target_disp, n, msg, src_cached=True
        )
        self.counters["accumulates"] += 1
        if fetch:
            fetched = yield ack
            self.device._trace("osc.acc.end", target=wtarget,
                               strategy="emulated")
            return fetched
        self._pending_acks.append(ack)
        self.device._trace("osc.acc.end", target=wtarget, strategy="emulated")
        return None

    def fetch_and_op(self, value, target: int, target_disp: int = 0,
                     op: str = "sum", datatype=None,
                     target_datatype: Optional[Datatype] = None,
                     target_count: int = 1):
        """MPI_Fetch_and_op: single-element get-accumulate (generator)."""
        result = yield from self.accumulate(
            value, target, target_disp, op=op, datatype=datatype, fetch=True,
            target_datatype=target_datatype, target_count=target_count,
        )
        return result

    # -- synchronization -------------------------------------------------------------------

    def _complete_outstanding(self):
        """Finish every outstanding access: store barriers + emulation acks."""
        for wtarget in sorted(self._dirty_targets):
            part = self.parts[wtarget]
            if part.shared:
                yield from self.store.store_barrier(part.region)
        self._dirty_targets.clear()
        if self._pending_acks:
            yield self.engine.all_of(self._pending_acks)
            self._pending_acks.clear()

    def flush(self, target: Optional[int] = None):
        """MPI_Win_flush(_all): complete outstanding accesses now.

        ``target=None`` flushes everything; a specific local target flushes
        that target's direct stores (emulated-op acks are always drained —
        they are not tracked per target).
        """
        if target is None:
            yield from self._complete_outstanding()
            return
        wtarget = self._world(target)
        if wtarget in self._dirty_targets:
            part = self.parts[wtarget]
            if part.shared:
                yield from self.store.store_barrier(part.region)
            self._dirty_targets.discard(wtarget)
        if self._pending_acks:
            yield self.engine.all_of(self._pending_acks)
            self._pending_acks.clear()

    def fence(self):
        """MPI_Win_fence: complete all accesses, then synchronize everyone."""
        self.device._trace("osc.fence.begin")
        yield self.engine.timeout(self.config.osc_call_overhead)
        yield from self._complete_outstanding()
        yield from self.state.fence_barrier.enter(self.world_rank)
        self.device._trace("osc.fence.end")

    def post(self, origin_group: list[int]):
        """Expose the local window to ``origin_group`` (MPI_Win_post)."""
        yield self.engine.timeout(self.config.osc_call_overhead)
        for origin in origin_group:
            yield from self.device.send_ctrl(
                self._world(origin),
                OSCNotice(self.state.win_id, "post", self.world_rank),
            )

    def start(self, target_group: list[int]):
        """Begin an access epoch on ``target_group`` (MPI_Win_start)."""
        yield self.engine.timeout(self.config.osc_call_overhead)
        for target in target_group:
            yield self.state.notice_channel(
                self.world_rank, "post", self._world(target)
            ).get()

    def complete(self, target_group: list[int]):
        """End the access epoch (MPI_Win_complete)."""
        yield from self._complete_outstanding()
        for target in target_group:
            yield from self.device.send_ctrl(
                self._world(target),
                OSCNotice(self.state.win_id, "complete", self.world_rank),
            )

    def wait(self, origin_group: list[int]):
        """End the exposure epoch (MPI_Win_wait)."""
        for origin in origin_group:
            yield self.state.notice_channel(
                self.world_rank, "complete", self._world(origin)
            ).get()

    def lock(self, target: int, exclusive: bool = True):
        """Passive-target lock (MPI_Win_lock).

        ``exclusive=False`` (MPI_LOCK_SHARED) admits concurrent shared
        holders; exclusive acquisition (MPI_LOCK_EXCLUSIVE) is granted
        FIFO, so it cannot be starved by a stream of readers (see
        :class:`~repro.smi.sync.SMIRWLock`).
        """
        wtarget = self._world(target)
        self.device._trace("osc.lock.begin", target=wtarget,
                           exclusive=exclusive)
        yield self.engine.timeout(self.config.osc_call_overhead)
        yield from self.state.locks[wtarget].acquire(
            self.world_rank, exclusive=exclusive
        )
        self._held_locks[wtarget] = exclusive
        self.device._trace("osc.lock.end", target=wtarget)

    def unlock(self, target: int):
        """Release the passive-target lock after completing accesses."""
        wtarget = self._world(target)
        self.device._trace("osc.unlock.begin", target=wtarget)
        yield from self._complete_outstanding()
        try:
            exclusive = self._held_locks.pop(wtarget)
        except KeyError:
            raise RMAError(
                f"unlock of target {target} without a matching lock"
            ) from None
        yield from self.state.locks[wtarget].release(
            self.world_rank, exclusive=exclusive
        )
        self.device._trace("osc.unlock.end", target=wtarget)


def win_create(comm: "Communicator", size_bytes: int, shared: bool = True):
    """Collective window creation (generator); every rank of ``comm`` must
    call it.

    ``shared=True``: window memory comes from an SCI shared segment
    (the MPI_Alloc_mem path).  ``shared=False``: private process memory —
    every remote access will be emulated.
    """
    if size_bytes < 0:
        raise RMAError(f"negative window size {size_bytes}")
    world = comm.world
    device = comm.device
    engine = comm.engine
    _osc_engine(device)

    if not hasattr(world, "_win_registry"):
        world._win_registry = {}
        world._win_counters = {}
    counter_key = (comm.context, comm.world_rank)
    seq = world._win_counters.get(counter_key, 0)
    world._win_counters[counter_key] = seq + 1
    win_id = (comm.context, seq)
    if win_id not in world._win_registry:
        world._win_registry[win_id] = WinGlobal(world, win_id, comm.group)
    state: WinGlobal = world._win_registry[win_id]
    device._osc_engine.windows[win_id] = state

    if shared:
        region = world.smi.create_region(
            comm.world_rank, size_bytes, label=f"win{win_id}-w{comm.world_rank}"
        )
        part = WinPart(comm.world_rank, True, size_bytes, region=region)
    else:
        buf = device.node.space.alloc(
            size_bytes, label=f"win{win_id}-w{comm.world_rank}"
        )
        part = WinPart(comm.world_rank, False, size_bytes, buffer=buf)
    state.parts[comm.world_rank] = part

    # Window creation is collective; everyone must have registered a part.
    yield engine.timeout(device.config.osc_call_overhead)
    yield from comm.barrier()
    return Win(state, comm)
