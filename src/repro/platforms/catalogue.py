"""Table 1: the platform catalogue, and the registry used by the benches.

The SCI rows (M-S inter-node, M-s intra-node) are not analytic models —
they are produced by the full simulator; the registry marks them so the
benchmark harness dispatches accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .base import AnalyticPlatform, PlatformSpec
from .machines import (
    CrayT3E,
    LamFastEthernet,
    LamSharedMemory,
    ScoreMyrinet,
    ScoreSharedMemory,
    SunFireGigabit,
    SunFireSharedMemory,
)

__all__ = ["TABLE1", "PLATFORMS", "analytic_platforms", "platform_by_id", "SCI_IDS"]

#: Specs of the simulator-backed SCI-MPICH rows of Table 1.
_SCI_SPEC = PlatformSpec(
    "M-S", "Pentium III dual SMP (800 MHz, 64-bit PCI)", "SCI",
    "MP-MPICH 1.2.1 beta", supports_osc=True,
)
_SHM_SPEC = PlatformSpec(
    "M-s", "Pentium III dual SMP (800 MHz, 64-bit PCI)", "shared memory",
    "MP-MPICH 1.2.1 beta", supports_osc=True,
)

#: Ids served by the simulator rather than an analytic model.
SCI_IDS = ("M-S", "M-s")


@dataclass(frozen=True)
class CatalogueEntry:
    spec: PlatformSpec
    model: Optional[AnalyticPlatform]  # None -> full simulator

    @property
    def simulated(self) -> bool:
        return self.model is None


def _build() -> dict[str, CatalogueEntry]:
    analytic = [
        CrayT3E(),
        SunFireGigabit(),
        SunFireSharedMemory(),
        LamFastEthernet(),
        LamSharedMemory(),
        ScoreMyrinet(),
        ScoreSharedMemory(),
    ]
    entries = {p.spec.id: CatalogueEntry(p.spec, p) for p in analytic}
    entries["M-S"] = CatalogueEntry(_SCI_SPEC, None)
    entries["M-s"] = CatalogueEntry(_SHM_SPEC, None)
    return entries


PLATFORMS: dict[str, CatalogueEntry] = _build()

#: Table 1, in the paper's row order.
TABLE1: list[PlatformSpec] = [
    PLATFORMS[i].spec
    for i in ("C", "F-G", "F-s", "M-S", "M-s", "X-f", "X-s", "S-M", "S-s")
]


def platform_by_id(pid: str) -> CatalogueEntry:
    try:
        return PLATFORMS[pid]
    except KeyError:
        raise KeyError(
            f"unknown platform id {pid!r}; known: {sorted(PLATFORMS)}"
        ) from None


def analytic_platforms(osc_only: bool = False) -> list[AnalyticPlatform]:
    out = []
    for entry in PLATFORMS.values():
        if entry.model is None:
            continue
        if osc_only and not entry.spec.supports_osc:
            continue
        out.append(entry.model)
    return out
