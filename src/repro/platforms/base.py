"""Comparison-platform cost models (Sec. 5.3, Table 1).

The paper benchmarks SCI-MPICH against five other MPI platforms (Cray
T3E, Sun Fire 6800, LAM on a Xeon SMP, SCore on a Myrinet cluster — each
with a network and a shared-memory variant).  None of those machines is
available, so each is modelled analytically, **calibrated from the
behaviour the paper itself reports** (who wins, at which block sizes the
efficiency steps are, which bandwidth caps apply).  These models exist to
regenerate the *comparative shape* of Figs. 10-12; the SCI rows (M-S,
M-s) come from the full simulator instead.

The generic model:

* contiguous one-way time: ``t(n) = latency + n / peak_bw``;
* non-contiguous transfers pay two pack/unpack passes at ``memcpy_bw``
  with a per-block cost (platforms with documented special handling
  override ``noncontig_efficiency``);
* one-sided accesses have their own per-call latency and bandwidth;
* multi-process scaling divides a shared capacity (memory bus or
  interconnect) among processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .._units import mib_s, to_mib_s

__all__ = ["PlatformSpec", "AnalyticPlatform"]


@dataclass(frozen=True)
class PlatformSpec:
    """One row of Table 1."""

    id: str
    machine: str
    interconnect: str
    mpi: str
    supports_osc: bool
    note: str = ""


@dataclass
class AnalyticPlatform:
    """Analytic MPI performance model of one comparison platform."""

    spec: PlatformSpec
    #: One-way small-message latency (µs).
    latency: float = 20.0
    #: Peak contiguous MPI bandwidth (B/µs).
    peak_bw: float = mib_s(80.0)
    #: Local memory copy bandwidth for pack/unpack (B/µs).
    memcpy_bw: float = mib_s(200.0)
    #: Per-block cost of the generic pack loop (µs).
    pack_block_cost: float = 0.15
    #: One-sided per-call latency (µs); None when OSC is unsupported.
    osc_latency: Optional[float] = None
    #: One-sided streaming bandwidth (B/µs).
    osc_bw: Optional[float] = None
    #: Shared capacity divided among concurrent processes (B/µs) for the
    #: Fig. 12 scaling experiment; None = no shared bottleneck.
    shared_capacity: Optional[float] = None
    #: Per-process ceiling for one-sided streaming in the scaling test.
    per_proc_cap: Optional[float] = None

    # -- point-to-point -------------------------------------------------------------

    def contiguous_time(self, nbytes: int) -> float:
        """One-way transfer time of a contiguous message (µs)."""
        if nbytes < 0:
            raise ValueError(f"negative size {nbytes}")
        return self.latency + nbytes / self.peak_bw

    def contiguous_bandwidth(self, nbytes: int) -> float:
        """Contiguous bandwidth in MiB/s."""
        return to_mib_s(nbytes / self.contiguous_time(nbytes))

    def pack_time(self, nbytes: int, blocksize: int) -> float:
        """One generic pack (or unpack) pass over ``nbytes``."""
        if blocksize <= 0:
            raise ValueError(f"non-positive blocksize {blocksize}")
        nblocks = max(1, nbytes // blocksize)
        return nblocks * self.pack_block_cost + nbytes / self.memcpy_bw

    def noncontig_time(self, nbytes: int, blocksize: int) -> float:
        """One-way transfer time of a strided message (µs).

        Default: the generic pack-and-send technique — pack, contiguous
        transfer, unpack, serialized (Fig. 4 top).  Platforms with special
        datatype handling override ``noncontig_efficiency`` instead.
        """
        eff = self.noncontig_efficiency(nbytes, blocksize)
        if eff is not None:
            return self.contiguous_time(nbytes) / max(eff, 1e-6)
        return self.contiguous_time(nbytes) + 2 * self.pack_time(nbytes, blocksize)

    def noncontig_efficiency(self, nbytes: int, blocksize: int) -> Optional[float]:
        """Efficiency override: nc bandwidth / contiguous bandwidth.

        Return None to use the generic pack-and-send composition.
        """
        return None

    def noncontig_bandwidth(self, nbytes: int, blocksize: int) -> float:
        """Non-contiguous bandwidth in MiB/s."""
        return to_mib_s(nbytes / self.noncontig_time(nbytes, blocksize))

    # -- one-sided ---------------------------------------------------------------------

    def osc_call_time(self, access_size: int, op: str = "put") -> float:
        """Per-call latency of a fine-grained strided Put/Get (µs)."""
        if not self.spec.supports_osc or self.osc_latency is None:
            raise NotImplementedError(
                f"{self.spec.id}: one-sided communication unsupported"
            )
        bw = self.osc_bw if self.osc_bw is not None else self.peak_bw
        # Gets typically cost a bit more (request/response or remote read).
        factor = 1.0 if op == "put" else 1.4
        return self.osc_latency * factor + access_size / bw

    def osc_bandwidth(self, access_size: int, op: str = "put") -> float:
        """Effective strided-access bandwidth in MiB/s (sparse benchmark)."""
        return to_mib_s(access_size / self.osc_call_time(access_size, op))

    # -- scaling (Fig. 12) ------------------------------------------------------------------

    def scaling_bandwidth(self, nprocs: int, access_size: int = 1024) -> float:
        """Per-process one-sided put bandwidth with ``nprocs`` active (MiB/s).

        "Bandwidth shown is the minimum of the per-process maximum
        bandwidths achieved."  Default model: each process streams at its
        sparse-access rate until the shared capacity saturates.
        """
        if nprocs < 1:
            raise ValueError(f"need at least one process, got {nprocs}")
        solo = self.osc_bandwidth(access_size, "put")
        if self.per_proc_cap is not None:
            solo = min(solo, to_mib_s(self.per_proc_cap))
        if self.shared_capacity is None:
            return solo
        share = to_mib_s(self.shared_capacity) / nprocs
        return min(solo, share)
