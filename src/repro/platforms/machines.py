"""The concrete comparison platforms of Table 1, calibrated from Sec. 5.3.

Calibration anchors taken from the paper's text:

* **Cray T3E (C)** — "reaches an efficiency of about 1 for blocksizes
  between 8 and 32 kiB, but has a very low efficiency for very small
  (< 4 kiB) and big (> 32 kiB) blocksizes"; OSC "in the same range as the
  performance of SCI-MPICH for SCI remote shared memory", "uneven, but
  regular bandwidth characteristics constant for up to 32 processes".
* **Sun Fire 6800 (F-s/F-G)** — shm noncontig "very constant efficiency,
  which jumps from 0.5 to 1 for blocksizes of 16k and above"; "very good
  performance for shared memory communication" in the sparse benchmark;
  scaling "better, but even its bandwidth declines notably for more than
  6 active processes"; no OSC over the network (F-G).
* **LAM 6.5.4 on the Xeon SMP (X-f/X-s)** — "very high latencies and ...
  a maximum of 10 MiB bandwidth via fast ethernet"; "performance of the
  shared memory implementation is a little bit lower than SCI-MPICH via
  SCI"; "platforms with an inferior memory system design like the 4-way
  Xeon SMP scale very badly for coarse-grained accesses and deliver a
  bandwidth below the SCI-connected system".
* **SCore/Myrinet (S-M/S-s)** — no one-sided support; generic datatype
  handling.
"""

from __future__ import annotations

import math
from typing import Optional

from .._units import KiB, mib_s
from .base import AnalyticPlatform, PlatformSpec

__all__ = [
    "CrayT3E",
    "SunFireSharedMemory",
    "SunFireGigabit",
    "LamFastEthernet",
    "LamSharedMemory",
    "ScoreMyrinet",
    "ScoreSharedMemory",
]


class CrayT3E(AnalyticPlatform):
    """Cray T3E-1200 with Cray MPI (id C)."""

    def __init__(self) -> None:
        super().__init__(
            spec=PlatformSpec(
                "C", "Cray T3E-1200", "custom", "Cray MPI", supports_osc=True
            ),
            latency=14.0,
            peak_bw=mib_s(300.0),
            memcpy_bw=mib_s(350.0),
            pack_block_cost=0.25,
            osc_latency=4.0,
            osc_bw=mib_s(140.0),
            shared_capacity=None,  # E-registers: no shared bottleneck to 32
        )

    def noncontig_efficiency(self, nbytes: int, blocksize: int) -> Optional[float]:
        # Efficient only in the 8-32 kiB band.
        if 8 * KiB <= blocksize <= 32 * KiB:
            return 0.95
        if blocksize < 4 * KiB:
            # Decaying with smaller blocks: 0.25 at 4 kiB down to ~0.04 at 8 B.
            return max(0.04, 0.25 * blocksize / (4 * KiB))
        if blocksize > 32 * KiB:
            return 0.30
        return 0.25 + 0.70 * (blocksize - 4 * KiB) / (4 * KiB)

    def osc_bandwidth(self, access_size: int, op: str = "put") -> float:
        # The T3E's "uneven, but regular" characteristic: a mild periodic
        # modulation on top of the smooth curve (E-register block effects).
        base = super().osc_bandwidth(access_size, op)
        wobble = 1.0 + 0.18 * math.cos(math.log2(max(access_size, 1)) * math.pi)
        return base * wobble


class SunFireSharedMemory(AnalyticPlatform):
    """Sun Fire 6800, 24-way SMP, Sun HPC 3.1 shared memory (id F-s)."""

    def __init__(self) -> None:
        super().__init__(
            spec=PlatformSpec(
                "F-s", "Sun Fire 6800 (24-way SMP, 750 MHz)", "shared memory",
                "Sun HPC 3.1", supports_osc=True
            ),
            latency=2.5,
            peak_bw=mib_s(380.0),
            memcpy_bw=mib_s(400.0),
            pack_block_cost=0.10,
            osc_latency=1.1,
            osc_bw=mib_s(350.0),
            shared_capacity=mib_s(1900.0),  # backplane
        )

    def noncontig_efficiency(self, nbytes: int, blocksize: int) -> Optional[float]:
        # The documented step: 0.5 below 16 kiB, 1.0 at and above.
        return 1.0 if blocksize >= 16 * KiB else 0.5

    def scaling_bandwidth(self, nprocs: int, access_size: int = 1024) -> float:
        # Scales well to ~6 processes, then the backplane share declines.
        base = super().scaling_bandwidth(nprocs, access_size)
        if nprocs > 6:
            base *= max(0.45, 1.0 - 0.08 * (nprocs - 6))
        return base


class SunFireGigabit(AnalyticPlatform):
    """Sun Fire 6800 over Gigabit Ethernet (id F-G); no one-sided support."""

    def __init__(self) -> None:
        super().__init__(
            spec=PlatformSpec(
                "F-G", "Sun Fire 6800 (24-way SMP, 750 MHz)", "Gigabit Ethernet",
                "Sun HPC 3.1", supports_osc=False,
                note="Myrinet installed but not yet available",
            ),
            latency=55.0,
            peak_bw=mib_s(42.0),
            memcpy_bw=mib_s(400.0),
            pack_block_cost=0.10,
        )


class LamFastEthernet(AnalyticPlatform):
    """LAM 6.5.4 over fast ethernet on the quad-Xeon SMP (id X-f)."""

    def __init__(self) -> None:
        super().__init__(
            spec=PlatformSpec(
                "X-f", "Pentium III Xeon quad SMP (550 MHz)", "fast ethernet",
                "LAM 6.5.4", supports_osc=True,
            ),
            latency=70.0,
            peak_bw=mib_s(10.8),
            memcpy_bw=mib_s(180.0),
            pack_block_cost=0.12,
            osc_latency=95.0,       # "very high latencies"
            osc_bw=mib_s(10.0),     # "maximum of 10 MiB bandwidth"
            shared_capacity=mib_s(11.0),
        )


class LamSharedMemory(AnalyticPlatform):
    """LAM 6.5.4 shared memory on the quad-Xeon SMP (id X-s)."""

    def __init__(self) -> None:
        super().__init__(
            spec=PlatformSpec(
                "X-s", "Pentium III Xeon quad SMP (550 MHz)", "shared memory",
                "LAM 6.5.4", supports_osc=True,
                note="only MPI_Get(); MPI_Put() deadlocked",
            ),
            latency=6.0,
            peak_bw=mib_s(150.0),
            memcpy_bw=mib_s(160.0),
            pack_block_cost=0.12,
            # "a little bit lower than SCI-MPICH via SCI".
            osc_latency=3.2,
            osc_bw=mib_s(95.0),
            # "inferior memory system ... scales very badly": a slim bus.
            shared_capacity=mib_s(190.0),
        )


class ScoreMyrinet(AnalyticPlatform):
    """SCore 2.4.1 over Myrinet 1280 on dual P-II nodes (id S-M)."""

    def __init__(self) -> None:
        super().__init__(
            spec=PlatformSpec(
                "S-M", "Pentium II dual SMP (400 MHz, 32-bit PCI)", "Myrinet 1280",
                "SCore 2.4.1", supports_osc=False,
            ),
            latency=18.0,
            peak_bw=mib_s(72.0),
            memcpy_bw=mib_s(140.0),
            pack_block_cost=0.18,
        )


class ScoreSharedMemory(AnalyticPlatform):
    """SCore 2.4.1 shared memory on dual P-II nodes (id S-s)."""

    def __init__(self) -> None:
        super().__init__(
            spec=PlatformSpec(
                "S-s", "Pentium II dual SMP (400 MHz, 32-bit PCI)", "shared memory",
                "SCore 2.4.1", supports_osc=False,
            ),
            latency=4.0,
            peak_bw=mib_s(110.0),
            memcpy_bw=mib_s(140.0),
            pack_block_cost=0.18,
        )
