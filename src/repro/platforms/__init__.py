"""Comparison platforms (S11): Table 1 catalogue + calibrated cost models."""

from .base import AnalyticPlatform, PlatformSpec
from .catalogue import (
    PLATFORMS,
    SCI_IDS,
    TABLE1,
    CatalogueEntry,
    analytic_platforms,
    platform_by_id,
)
from .machines import (
    CrayT3E,
    LamFastEthernet,
    LamSharedMemory,
    ScoreMyrinet,
    ScoreSharedMemory,
    SunFireGigabit,
    SunFireSharedMemory,
)

__all__ = [
    "AnalyticPlatform",
    "CatalogueEntry",
    "CrayT3E",
    "LamFastEthernet",
    "LamSharedMemory",
    "PLATFORMS",
    "PlatformSpec",
    "SCI_IDS",
    "ScoreMyrinet",
    "ScoreSharedMemory",
    "SunFireGigabit",
    "SunFireSharedMemory",
    "TABLE1",
    "analytic_platforms",
    "platform_by_id",
]
