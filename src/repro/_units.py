"""Unit conventions and conversion helpers used throughout the package.

Conventions
-----------
* **Time** is measured in *microseconds* (µs) as ``float``.  Micro-benchmark
  latencies in the reproduced paper are single-digit µs, so µs keeps the
  numbers readable while ``float`` precision (2^53 µs ≈ 285 years) is ample.
* **Sizes** are measured in *bytes* as ``int``.
* **Bandwidth** is carried internally as *bytes per microsecond* (B/µs).
  1 B/µs equals 10^6 B/s; the paper reports MiB/s, so helpers convert.

The paper consistently uses binary prefixes (kiB, MiB) which we mirror.
"""

from __future__ import annotations

#: Binary size prefixes (the paper reports kiB / MiB).
KiB: int = 1024
MiB: int = 1024 * 1024
GiB: int = 1024 * 1024 * 1024

#: One second / millisecond expressed in the internal time unit (µs).
USEC: float = 1.0
MSEC: float = 1_000.0
SEC: float = 1_000_000.0


def mib_s(bandwidth_mib_per_s: float) -> float:
    """Convert a bandwidth in MiB/s to internal B/µs."""
    return bandwidth_mib_per_s * MiB / SEC


def to_mib_s(bytes_per_usec: float) -> float:
    """Convert an internal B/µs bandwidth to MiB/s for reporting."""
    return bytes_per_usec * SEC / MiB


def transfer_time(nbytes: int, bandwidth_bpus: float) -> float:
    """Time in µs to move ``nbytes`` at ``bandwidth_bpus`` B/µs."""
    if nbytes == 0:
        return 0.0
    if bandwidth_bpus <= 0.0:
        raise ValueError(f"non-positive bandwidth: {bandwidth_bpus!r}")
    return nbytes / bandwidth_bpus


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment`` (a power of 2)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return value & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """True when ``value`` is a multiple of ``alignment`` (a power of 2)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a positive power of two: {alignment}")
    return (value & (alignment - 1)) == 0


def fmt_size(nbytes: int) -> str:
    """Human-readable binary size string (``8 B``, ``2 kiB``, ``1.5 MiB``)."""
    if nbytes < KiB:
        return f"{nbytes} B"
    if nbytes < MiB:
        value = nbytes / KiB
        return f"{value:g} kiB"
    value = nbytes / MiB
    return f"{value:g} MiB"
