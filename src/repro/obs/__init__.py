"""Unified observability: metrics registry, timeline export, hooks.

This package is the single observability layer of the stack (see
``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments and
  pull-collectors over the existing subsystem counter dicts;
* :mod:`repro.obs.timeline` — Chrome/Perfetto ``trace_event`` export and
  a compact per-rank text timeline;
* :mod:`repro.obs.hooks` — span-enter/exit metric feeding and a sampling
  hook on simulated-time advance;
* :mod:`repro.obs.wiring` — :func:`build_registry` assembling the whole
  cluster's registry (exposed as ``Cluster.metrics``);
* :mod:`repro.obs.cli` — the ``repro-trace`` command writing
  ``trace.json`` + ``metrics.json``.
"""

from .hooks import TimeSampler, attach_span_metrics
from .metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry
from .timeline import (
    FABRIC_RANK,
    chrome_trace,
    text_timeline,
    write_chrome_trace,
)
from .wiring import build_registry

__all__ = [
    "Counter",
    "FABRIC_RANK",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "TimeSampler",
    "attach_span_metrics",
    "build_registry",
    "chrome_trace",
    "text_timeline",
    "write_chrome_trace",
]
