"""``repro-trace`` — run a scenario, export ``trace.json`` + ``metrics.json``.

One command turns any bench/oracle scenario into the two machine-readable
observability artifacts::

    repro-trace                                # noncontig pingpong, 2 nodes
    repro-trace --scenario osc --nodes 2
    repro-trace --scenario collectives --nodes 4 --size 262144
    repro-trace --faults-seed 1                # with injected faults
    repro-trace --mode generic --trace /tmp/t.json --metrics /tmp/m.json

``trace.json`` is Chrome/Perfetto ``trace_event`` JSON (open in
``chrome://tracing`` or https://ui.perfetto.dev): one track per rank, one
per fabric ringlet, args carrying bytes/chunk/protocol/fault metadata.
``metrics.json`` is the flat metrics-registry snapshot (every key is
documented in ``docs/OBSERVABILITY.md``).  A compact text timeline and
the artifact paths are printed to stderr/stdout for terminal use.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .._units import KiB
from ..cluster import Cluster
from ..hardware.sci.faults import FaultPlan
from ..hardware.sci.topology import TOPOLOGY_NAMES, topology_from_name
from ..mpi.datatypes import BYTE, Vector
from ..mpi.pt2pt.config import DEFAULT_PROTOCOL
from ..trace import attach_tracer
from .hooks import attach_span_metrics
from .timeline import text_timeline, write_chrome_trace

__all__ = ["SCENARIOS", "main", "run_scenario"]


def _scenario_noncontig(size: int):
    """Non-contiguous pingpong: a strided Vector there and back."""
    blocks = max(1, size // 64)
    dtype = Vector(blocks, 64, 96, BYTE)
    extent = blocks * 96

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        buf = ctx.alloc(extent)
        if comm.rank == 0:
            buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
            yield from comm.send(buf, dest=1, datatype=dtype, count=1)
            yield from comm.recv(buf, source=1, datatype=dtype, count=1)
        elif comm.rank == 1:
            yield from comm.recv(buf, source=0, datatype=dtype, count=1)
            yield from comm.send(buf, dest=0, datatype=dtype, count=1)
        return ctx.now

    return program, 2


def _scenario_pingpong(size: int):
    """Contiguous pingpong of ``size`` bytes."""

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(size)
        if comm.rank == 0:
            yield from comm.send(buf, dest=1)
            yield from comm.recv(buf, source=1)
        elif comm.rank == 1:
            yield from comm.recv(buf, source=0)
            yield from comm.send(buf, dest=0)
        return ctx.now

    return program, 2


def _scenario_osc(size: int):
    """One-sided epoch: direct put, large get (remote-put), accumulate."""

    def program(ctx):
        comm = ctx.comm
        win = yield from comm.win_create(size, shared=True)
        yield from win.fence()
        if comm.rank == 0:
            data = np.arange(size // 2, dtype=np.uint8) % 239
            yield from win.put(data, target=1, target_disp=0)
            yield from win.accumulate(
                np.ones(max(1, size // 256), dtype=np.float64), target=1,
                target_disp=size // 2,
            )
        yield from win.fence()
        if comm.rank == 1:
            yield from win.get(size // 2, target=0, target_disp=0)
        yield from win.fence()
        return ctx.now

    return program, 2


def _scenario_collectives(size: int):
    """Broadcast + allgather across the whole cluster."""

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(size)
        if comm.rank == 0:
            buf.read()[:] = np.arange(size, dtype=np.uint8) % 233
        yield from comm.bcast(buf, root=0)
        piece = max(64, size // 16)
        send = ctx.alloc(piece)
        send.read()[:] = (np.arange(piece, dtype=np.uint8) + comm.rank) % 227
        gathered = ctx.alloc(piece * comm.size)
        yield from comm.allgather(send, gathered)
        return ctx.now

    return program, 4


SCENARIOS = {
    "noncontig": _scenario_noncontig,
    "pingpong": _scenario_pingpong,
    "osc": _scenario_osc,
    "collectives": _scenario_collectives,
}


def run_scenario(scenario: str, size: int = 256 * KiB, nodes: int = 0,
                 mode: str = "", faults_seed: int | None = None,
                 topology: str = ""):
    """Run one scenario traced; returns ``(cluster, tracer, registry)``."""
    program, default_nodes = SCENARIOS[scenario](size)
    config = DEFAULT_PROTOCOL.with_mode(mode) if mode else DEFAULT_PROTOCOL
    faults = None
    if faults_seed is not None:
        faults = FaultPlan(seed=faults_seed, transient_rate=0.2,
                           torn_rate=0.2, stall_rate=0.1)
    n_nodes = nodes or default_nodes
    cluster = Cluster(n_nodes=n_nodes, protocol=config, faults=faults,
                      topology=(topology_from_name(topology, n_nodes)
                                if topology else None))
    tracer = attach_tracer(cluster)
    registry = cluster.metrics
    attach_span_metrics(tracer, registry)
    cluster.run(program)
    return cluster, tracer, registry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Run a scenario and export trace.json + metrics.json.",
    )
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="noncontig")
    parser.add_argument("--size", type=int, default=256 * KiB,
                        help="payload size in bytes (default: 256 KiB)")
    parser.add_argument("--nodes", type=int, default=0,
                        help="cluster size (default: the scenario's own)")
    parser.add_argument("--mode", choices=("generic", "direct", "auto", "dma"),
                        default="", help="non-contiguous transfer technique")
    parser.add_argument("--faults-seed", type=int, default=None,
                        help="install a seeded FaultPlan (recovery spans "
                             "and fault events appear in the timeline)")
    parser.add_argument("--topology", choices=TOPOLOGY_NAMES, default="",
                        help="fabric topology sized for the cluster "
                             "(default: single ring); per-ringlet and "
                             "per-switch tracks appear in the trace")
    parser.add_argument("--trace", metavar="PATH", default="trace.json",
                        help="Chrome trace_event output (default: trace.json)")
    parser.add_argument("--metrics", metavar="PATH", default="metrics.json",
                        help="metrics snapshot output (default: metrics.json)")
    parser.add_argument("--no-timeline", action="store_true",
                        help="skip the terminal text timeline")
    args = parser.parse_args(argv)

    cluster, tracer, registry = run_scenario(
        args.scenario, size=args.size, nodes=args.nodes, mode=args.mode,
        faults_seed=args.faults_seed, topology=args.topology,
    )

    other_data = {
        "scenario": args.scenario,
        "size": args.size,
        "nodes": cluster.n_ranks,
        "mode": args.mode or cluster.world.config.noncontig_mode,
        "topology": cluster.fabric.topology.describe(),
    }
    plan = cluster.fabric.fault_plan
    if plan is not None:
        other_data["fault_plan"] = plan.as_dict()
    write_chrome_trace(tracer, args.trace, other_data=other_data)
    with open(args.metrics, "w") as fh:
        fh.write(registry.to_json() + "\n")

    if not args.no_timeline:
        print(text_timeline(tracer), file=sys.stderr)
    print(f"trace:   {args.trace} ({len(tracer.events)} events)")
    print(f"metrics: {args.metrics} ({len(registry.names())} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
