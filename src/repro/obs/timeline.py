"""Timeline export: Tracer events → Chrome/Perfetto ``trace_event`` JSON.

The :class:`~repro.trace.Tracer` records three shapes of event:

* ``<op>.begin`` / ``<op>.end`` pairs — rank-side spans (MPI calls,
  recovery episodes, chunk writes).  Exported as ``B``/``E`` duration
  events; spans nest properly per rank (communication calls do not
  overlap within one rank), which is what the ``trace_event`` format
  requires per track.
* **complete events** — one event whose detail carries ``start`` and
  ``duration`` (the fabric's wire-level transfers, recorded once at
  completion precisely because concurrent transfers *do* overlap).
  Exported as ``X`` events.
* **instant events** — everything else (``recv.matched``,
  ``fabric.fault``, ``store.emulated``).  Exported as ``i`` events.

Track layout: one track (tid) per rank under the ``ranks`` process, one
track per fabric ringlet under the ``fabric`` process (fabric events are
recorded with the pseudo-rank ``FABRIC_RANK`` and a ``ringlet`` detail),
and one track per QoS tenant under the ``tenants`` process (QoS
lifecycle events are recorded with the pseudo-rank ``TENANT_RANK`` and a
``tenant`` detail; see :mod:`repro.qos`).  Timestamps are simulated
microseconds verbatim — exactly the unit ``chrome://tracing`` / Perfetto
expect in ``ts``/``dur``.

The exported object is ``{"traceEvents": [...], "displayTimeUnit": "ms",
"otherData": {...}}``; event order is deterministic (metadata first, then
trace order), so the output is golden-file testable.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..trace import TraceEvent, Tracer

__all__ = [
    "FABRIC_RANK",
    "TENANT_RANK",
    "chrome_trace",
    "text_timeline",
    "write_chrome_trace",
]

#: Pseudo-rank under which fabric-level events are recorded.
FABRIC_RANK = -1

#: Pseudo-rank under which per-tenant QoS events are recorded.
TENANT_RANK = -2

_RANKS_PID = 0
_FABRIC_PID = 1
_TENANTS_PID = 2

#: Span/event kind prefix → trace_event category.
_CATEGORIES = {
    "osc": "osc",
    "recover": "recovery",
    "chunk": "transport",
    "store": "transport",
    "fabric": "fabric",
    "qos": "qos",
}


def _category(kind: str) -> str:
    return _CATEGORIES.get(kind.split(".", 1)[0], "pt2pt")


def _args(detail: dict) -> dict[str, Any]:
    """Detail dict sanitized to JSON-safe values."""
    out: dict[str, Any] = {}
    for key, value in detail.items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def chrome_trace(tracer: "Tracer",
                 other_data: Optional[dict] = None) -> dict:
    """Export ``tracer`` as a Chrome/Perfetto ``trace_event`` object.

    ``other_data`` lands in the top-level ``otherData`` field (the CLI
    puts scenario parameters and the fault-plan replay log there).
    """
    events: list[dict] = []
    ranks = sorted({ev.rank for ev in tracer.events
                    if ev.rank not in (FABRIC_RANK, TENANT_RANK)})
    ringlets = sorted({
        ev.detail.get("ringlet", 0)
        for ev in tracer.events if ev.rank == FABRIC_RANK
    })
    tenants = sorted({
        str(ev.detail.get("tenant", ""))
        for ev in tracer.events if ev.rank == TENANT_RANK
    })
    tenant_tids = {name: tid for tid, name in enumerate(tenants)}

    # Track metadata: one process each for ranks, fabric and tenants.
    if ranks:
        events.append(_meta("process_name", _RANKS_PID, args={"name": "ranks"}))
        for rank in ranks:
            events.append(_meta("thread_name", _RANKS_PID, tid=rank,
                                args={"name": f"rank {rank}"}))
    if ringlets:
        events.append(_meta("process_name", _FABRIC_PID,
                            args={"name": "fabric"}))
        labels = getattr(tracer, "ringlet_labels", {})
        for ringlet in ringlets:
            name = labels.get(ringlet, f"ringlet {ringlet}")
            events.append(_meta("thread_name", _FABRIC_PID, tid=ringlet,
                                args={"name": name}))
    if tenants:
        events.append(_meta("process_name", _TENANTS_PID,
                            args={"name": "tenants"}))
        for name, tid in tenant_tids.items():
            events.append(_meta("thread_name", _TENANTS_PID, tid=tid,
                                args={"name": f"tenant {name}"}))

    for ev in tracer.events:
        events.append(_convert(ev, tenant_tids))

    trace: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if other_data:
        trace["otherData"] = other_data
    return trace


def _meta(name: str, pid: int, tid: int = 0, args: Optional[dict] = None) -> dict:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid,
            "args": args or {}}


def _convert(ev: "TraceEvent",
             tenant_tids: Optional[dict[str, int]] = None) -> dict:
    if ev.rank == FABRIC_RANK:
        pid, tid = _FABRIC_PID, ev.detail.get("ringlet", 0)
    elif ev.rank == TENANT_RANK:
        pid = _TENANTS_PID
        tid = (tenant_tids or {}).get(str(ev.detail.get("tenant", "")), 0)
    else:
        pid, tid = _RANKS_PID, ev.rank
    base: dict[str, Any] = {"pid": pid, "tid": tid, "cat": _category(ev.kind)}

    if ev.kind.endswith(".begin"):
        name = ev.kind[: -len(".begin")]
        return {**base, "name": name, "ph": "B", "ts": ev.time,
                "args": _args(ev.detail)}
    if ev.kind.endswith(".end"):
        name = ev.kind[: -len(".end")]
        return {**base, "name": name, "ph": "E", "ts": ev.time,
                "args": _args(ev.detail)}
    if "start" in ev.detail and "duration" in ev.detail:
        detail = dict(ev.detail)
        start = detail.pop("start")
        duration = detail.pop("duration")
        return {**base, "name": ev.kind, "ph": "X", "ts": start,
                "dur": duration, "args": _args(detail)}
    return {**base, "name": ev.kind, "ph": "i", "s": "t", "ts": ev.time,
            "args": _args(ev.detail)}


def write_chrome_trace(tracer: "Tracer", path: str,
                       other_data: Optional[dict] = None) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (pretty-printed JSON)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, other_data=other_data), fh, indent=1)
        fh.write("\n")


# -- terminal timeline ---------------------------------------------------------


def text_timeline(tracer: "Tracer", width: int = 72,
                  max_spans_per_rank: int = 40) -> str:
    """A compact per-rank span timeline for terminals.

    One line per span: offset bar + kind + duration + the most useful
    detail fields.  Spans are listed per rank in start order; fabric
    transfers appear under a ``fabric`` lane.
    """
    spans = sorted(tracer.spans(), key=lambda s: (s.rank, s.start, s.end))
    horizon = max((s.end for s in spans), default=0.0)
    fabric_events = [ev for ev in tracer.events
                     if ev.rank == FABRIC_RANK and "start" in ev.detail]
    for ev in fabric_events:
        horizon = max(horizon, ev.detail["start"] + ev.detail["duration"])
    if horizon <= 0:
        return "(empty timeline)"

    bar_width = max(16, width - 40)

    def bar(start: float, end: float) -> str:
        lo = int(start / horizon * bar_width)
        hi = max(lo + 1, int(end / horizon * bar_width))
        return " " * lo + "#" * (hi - lo) + " " * (bar_width - hi)

    lines = [f"timeline (0 .. {horizon:.1f} us simulated)"]
    by_rank: dict[int, list] = {}
    for span in spans:
        by_rank.setdefault(span.rank, []).append(span)
    for rank in sorted(by_rank):
        lines.append(f"rank {rank}")
        shown = by_rank[rank][:max_spans_per_rank]
        for span in shown:
            label = span.kind
            extra = ", ".join(
                f"{k}={span.detail[k]}"
                for k in ("protocol", "strategy", "nbytes", "mode")
                if k in span.detail
            )
            lines.append(
                f"  |{bar(span.start, span.end)}| {label:<16} "
                f"{span.duration:9.1f} us  {extra}"
            )
        hidden = len(by_rank[rank]) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more spans")
    if fabric_events:
        lines.append("fabric")
        for ev in fabric_events[:max_spans_per_rank]:
            start = ev.detail["start"]
            duration = ev.detail["duration"]
            lines.append(
                f"  |{bar(start, start + duration)}| {ev.kind:<16} "
                f"{duration:9.1f} us  {ev.detail.get('op', '')} "
                f"{ev.detail.get('nbytes', '')}B "
                f"n{ev.detail.get('src', '?')}->n{ev.detail.get('dst', '?')}"
            )
        hidden = len(fabric_events) - max_spans_per_rank
        if hidden > 0:
            lines.append(f"  ... {hidden} more transfers")
    return "\n".join(lines)
