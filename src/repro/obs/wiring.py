"""Registry wiring: one :class:`MetricsRegistry` over a whole Cluster.

:func:`build_registry` registers a pull-collector per subsystem, reading
the live ad-hoc counters that PRs 1–3 grew — per-rank device counters and
recovery state, scheduler chunk stats, fabric counters, segment-directory
counters, the process-wide plan cache, policy knobs, the simulation
engine, and (when installed) the fault plan.  Per-rank values are summed
across ranks; ``Cluster.metrics`` builds the registry lazily.

The complete metric-name registry, with units and owning modules, lives
in ``docs/OBSERVABILITY.md``; ``tests/test_obs_docs_guard.py`` asserts
this wiring and that document never drift apart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster.builder import Cluster

__all__ = ["build_registry"]

_DEVICE_COUNTERS = ("sends", "recvs", "short", "eager", "rndv")
_RECOVERY_COUNTERS = ("retries", "resumes", "timeouts", "remaps",
                      "fallbacks", "aborts")
_CHUNK_STATS = ("chunks", "chunk_bytes", "chunk_time")
_FABRIC_COUNTERS = ("pio_writes", "pio_reads", "dma_transfers", "barriers",
                    "interrupts", "retries", "faults", "bytes_written",
                    "bytes_read", "bytes_torn")
_PLAN_CACHE_STATS = ("hits", "misses", "evictions", "builds", "size",
                     "maxsize", "enabled")
_SEGMENT_COUNTERS = ("exports", "imports")
_FAULT_KINDS = ("transient", "torn", "unmap", "stall")
_OSC_COUNTERS = ("direct_puts", "direct_gets", "remote_puts",
                 "emulated_puts", "emulated_gets", "accumulates")
_POLICY_KNOBS = ("short_threshold", "eager_threshold", "eager_slots",
                 "rendezvous_chunk", "direct_min_block",
                 "remote_put_threshold", "small_rma_threshold",
                 "hier_collectives", "cross_chunk",
                 "fastpath_cost_tables", "fastpath_closed_form",
                 "fastpath_min_window", "qos_max_share_pct",
                 "qos_besteffort_floor_pct", "qos_credit_priority")
_FASTPATH_STATS = ("table_hits", "table_misses", "table_evictions",
                   "windows", "window_chunks", "coalesced_events")
_LINK_STATS = ("count", "saturated", "peak_load", "peak_local",
               "peak_cross", "bytes")


def _summed(dicts, keys, prefix: str):
    out = {f"{prefix}.{key}": 0 for key in keys}
    for d in dicts:
        for key in keys:
            out[f"{prefix}.{key}"] += d[key]
    return out


def build_registry(cluster: "Cluster") -> MetricsRegistry:
    """The metrics registry of ``cluster`` (every subsystem collected)."""
    from ..mpi.flatten import plan_cache_stats

    registry = MetricsRegistry()
    world = cluster.world
    fabric = cluster.fabric

    registry.register_collector(
        [f"pt2pt.{key}" for key in _DEVICE_COUNTERS],
        lambda: _summed((d.counters for d in world.devices),
                        _DEVICE_COUNTERS, "pt2pt"),
    )
    registry.register_collector(
        [f"recovery.{key}" for key in _RECOVERY_COUNTERS],
        lambda: _summed((d.recovery for d in world.devices),
                        _RECOVERY_COUNTERS, "recovery"),
    )
    registry.register_collector(
        ["transport.chunks", "transport.chunk_bytes",
         "transport.chunk_time_us"],
        lambda: {
            f"transport.{key}_us" if key == "chunk_time" else f"transport.{key}":
                sum(d.scheduler.stats[key] for d in world.devices)
            for key in _CHUNK_STATS
        },
    )
    registry.register_collector(
        [f"fabric.{key}" for key in _FABRIC_COUNTERS],
        lambda: _summed([fabric.counters], _FABRIC_COUNTERS, "fabric"),
    )
    registry.register_collector(
        [f"fabric.link_{key}" for key in _LINK_STATS],
        lambda: {f"fabric.link_{key}": value
                 for key, value in fabric.link_stats().items()},
    )
    registry.register_collector(
        [f"plan_cache.{key}" for key in _PLAN_CACHE_STATS],
        lambda: {f"plan_cache.{key}": plan_cache_stats()[key]
                 for key in _PLAN_CACHE_STATS},
    )
    registry.register_collector(
        [f"segments.{key}" for key in _SEGMENT_COUNTERS],
        lambda: _summed([cluster.smi.directory.counters],
                        _SEGMENT_COUNTERS, "segments"),
    )
    registry.register_collector(
        [f"faults.{kind}" for kind in _FAULT_KINDS] + ["faults.injected"],
        lambda: _fault_values(fabric),
    )
    registry.register_collector(
        [f"osc.{key}" for key in _OSC_COUNTERS],
        lambda: _summed(_window_counter_dicts(world), _OSC_COUNTERS, "osc"),
    )
    registry.register_collector(
        [f"policy.{knob}" for knob in _POLICY_KNOBS],
        lambda: {f"policy.{knob}": value
                 for knob, value in world.policy.describe().items()},
    )
    registry.register_collector(
        ["sim.events", "sim.time_us"],
        lambda: {"sim.events": cluster.engine.events_processed,
                 "sim.time_us": cluster.engine.now},
    )
    registry.register_collector(
        [f"engine.fastpath_{key}" for key in _FASTPATH_STATS],
        lambda: _fastpath_values(world, cluster.engine),
    )
    return registry


def _fastpath_values(world, engine) -> dict[str, int]:
    out = {f"engine.fastpath_{key}": 0 for key in _FASTPATH_STATS}
    for d in world.devices:
        table = d.scheduler.costs.stats()
        out["engine.fastpath_table_hits"] += table["hits"]
        out["engine.fastpath_table_misses"] += table["misses"]
        out["engine.fastpath_table_evictions"] += table["evictions"]
        out["engine.fastpath_windows"] += d.scheduler.fastpath["windows"]
        out["engine.fastpath_window_chunks"] += \
            d.scheduler.fastpath["window_chunks"]
    out["engine.fastpath_coalesced_events"] = engine.events_coalesced
    return out


def _fault_values(fabric) -> dict[str, int]:
    plan = fabric.fault_plan
    out = {f"faults.{kind}": (plan.counters[kind] if plan is not None else 0)
           for kind in _FAULT_KINDS}
    out["faults.injected"] = plan.total_injected if plan is not None else 0
    return out


def _window_counter_dicts(world):
    """Counter dicts of every Win handle of every window of ``world``."""
    for state in getattr(world, "_win_registry", {}).values():
        for win in state.handles:
            yield win.counters
