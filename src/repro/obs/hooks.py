"""Profiling hooks: attach measurements without monkeypatching.

Two attachment points exist after this module's wiring:

* **span enter/exit callbacks** on the :class:`~repro.trace.Tracer`
  (``tracer.on_span_enter`` / ``tracer.on_span_exit``, lists of
  callables receiving the raw :class:`~repro.trace.TraceEvent`), fired
  synchronously from ``Tracer.record`` for ``*.begin`` / ``*.end``
  events;
* a **sampling hook on simulated-time advance** on the
  :class:`~repro.sim.engine.Engine` (``engine.add_time_hook(fn)``),
  fired whenever the clock moves forward.

Both are zero-cost when nothing is attached and *never* affect simulated
timing — hooks run in host time between engine events.  This module
provides the two standard consumers benchmarks and tests need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim import Engine
    from ..trace import TraceEvent, Tracer

__all__ = ["TimeSampler", "attach_span_metrics"]


def attach_span_metrics(tracer: "Tracer", registry: MetricsRegistry,
                        prefix: str = "span") -> None:
    """Feed per-kind span counts and total times into ``registry``.

    For every span kind ``k`` the tracer closes, two instruments appear
    lazily: ``<prefix>.<k>.count`` and ``<prefix>.<k>.time_us`` (summed
    simulated duration across all ranks).  Nested spans of the same kind
    on one rank match LIFO, mirroring ``Tracer.spans()``.
    """
    open_begins: dict[tuple[int, str], list[float]] = {}
    counters: dict[str, tuple] = {}

    def on_enter(ev: "TraceEvent") -> None:
        op = ev.kind[: -len(".begin")]
        open_begins.setdefault((ev.rank, op), []).append(ev.time)

    def on_exit(ev: "TraceEvent") -> None:
        op = ev.kind[: -len(".end")]
        stack = open_begins.get((ev.rank, op))
        if not stack:
            return
        start = stack.pop()
        if op not in counters:
            counters[op] = (
                registry.counter(f"{prefix}.{op}.count", unit="1",
                                 owner="repro.obs.hooks"),
                registry.counter(f"{prefix}.{op}.time_us", unit="us",
                                 owner="repro.obs.hooks"),
            )
        count, time_us = counters[op]
        count.inc()
        time_us.inc(ev.time - start)

    tracer.on_span_enter.append(on_enter)
    tracer.on_span_exit.append(on_exit)


class TimeSampler:
    """Sample a probe at a fixed simulated-time interval.

    Attaches to the engine's time-advance hook; whenever the clock
    crosses the next sampling point, ``probe()`` is evaluated and
    ``(sample_time, value)`` is appended to :attr:`samples`.  Detach with
    :meth:`close`.

    Used by benchmarks to record e.g. the chunk counter or fabric byte
    totals *over simulated time* without patching any transport code::

        sampler = TimeSampler(cluster.engine, interval=100.0,
                              probe=lambda: cluster.fabric.counters["bytes_written"])
        cluster.run(program)
        sampler.close()
        # sampler.samples == [(100.0, ...), (200.0, ...), ...]
    """

    def __init__(self, engine: "Engine", interval: float,
                 probe: Callable[[], float], start: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive: {interval}")
        self.engine = engine
        self.interval = interval
        self.probe = probe
        self.samples: list[tuple[float, float]] = []
        self._next = (start if start is not None else engine.now) + interval
        engine.add_time_hook(self._on_advance)

    def _on_advance(self, now: float) -> None:
        while now >= self._next:
            self.samples.append((self._next, self.probe()))
            self._next += self.interval

    def close(self) -> None:
        """Detach from the engine (idempotent)."""
        self.engine.remove_time_hook(self._on_advance)
