"""The metrics registry: every counter of the stack under one namespace.

PRs 1–3 grew ad-hoc counters wherever they were convenient — dicts on
:class:`~repro.mpi.pt2pt.engine.RankDevice` (``counters``, ``recovery``),
the :class:`~repro.mpi.transport.scheduler.TransferScheduler` chunk
``stats``, the fabric's ``counters``, the plan cache's hit/miss/build
tallies, the :class:`~repro.hardware.sci.faults.FaultPlan` injection log.
Each had its own reporting path (``Tracer.summary()`` text lines,
``Cluster.stats()``, hand-collected dicts in ``bench/smoke.py``).

A :class:`MetricsRegistry` is the single, machine-readable view over all
of them:

* **instruments** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  objects registered under a flat dotted name (``transport.chunks``),
  mutated directly by whoever owns them;
* **collectors** — callables that *pull* current values out of the
  existing ad-hoc counter dicts at snapshot time, so the hot paths keep
  their plain ``dict[str, int]`` increments (zero new overhead) while the
  registry owns the namespace;
* **snapshot / diff / JSON export** — ``snapshot()`` returns one flat
  ``{name: number}`` dict in registration order; ``diff()`` subtracts two
  snapshots; ``to_json()`` serializes a snapshot.

Names are dotted lowercase (``^[a-z0-9_]+(\\.[a-z0-9_]+)*$``) and the
namespace is collision-checked: registering the same name twice — whether
as an instrument or via a collector — raises :class:`MetricError`.  The
full name registry (with units and owning modules) is documented in
``docs/OBSERVABILITY.md``; a grep-guard test keeps code and doc in sync.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
]

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Snapshot keys a Histogram expands into (appended to its name).
_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean",
                     "p50", "p95", "p99")

#: The quantiles a Histogram exports (snapshot key suffix -> q).
_HISTOGRAM_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class MetricError(ValueError):
    """Invalid metric name, namespace collision, or bad instrument use."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(
            f"invalid metric name {name!r} (want dotted lowercase, e.g. "
            "'transport.chunks')"
        )
    return name


class _Instrument:
    """Common identity of every registered instrument."""

    kind = "instrument"

    def __init__(self, name: str, unit: str = "", owner: str = ""):
        self.name = _check_name(name)
        #: Unit string, reporting-only (``"us"``, ``"bytes"``, ``"1"``).
        self.unit = unit
        #: Owning module, reporting-only (``"repro.mpi.transport"``).
        self.owner = owner

    def sample(self) -> dict[str, float]:
        raise NotImplementedError

    def sample_names(self) -> tuple[str, ...]:
        """The snapshot keys this instrument contributes."""
        return (self.name,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}={self.sample()}>"


class Counter(_Instrument):
    """A monotonically increasing count (events, bytes, retries)."""

    kind = "counter"

    def __init__(self, name: str, unit: str = "", owner: str = ""):
        super().__init__(name, unit, owner)
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name} cannot decrease (inc {n})")
        self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def sample(self) -> dict[str, float]:
        return {self.name: self._value}


class Gauge(_Instrument):
    """A point-in-time value that may move both ways (sizes, rates)."""

    kind = "gauge"

    def __init__(self, name: str, unit: str = "", owner: str = ""):
        super().__init__(name, unit, owner)
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> dict[str, float]:
        return {self.name: self._value}


class Histogram(_Instrument):
    """Running distribution summary of observed values.

    Snapshots expand into ``<name>.count`` / ``.sum`` / ``.min`` / ``.max``
    / ``.mean`` / ``.p50`` / ``.p95`` / ``.p99`` (all 0 before the first
    observation).  Quantiles are *exact*: every observation is retained
    and :meth:`percentile` interpolates linearly between order statistics
    (numpy's default), so a deterministic run yields bit-identical
    quantiles — the property the ``repro-svc`` latency report and the CI
    baselines rely on.
    """

    kind = "histogram"

    def __init__(self, name: str, unit: str = "", owner: str = ""):
        super().__init__(name, unit, owner)
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of everything observed.

        Linear interpolation between the two nearest order statistics;
        0.0 before the first observation.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        values = self._values
        pos = q * (len(values) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(values) - 1)
        frac = pos - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    def sample_names(self) -> tuple[str, ...]:
        return tuple(f"{self.name}.{field}" for field in _HISTOGRAM_FIELDS)

    def sample(self) -> dict[str, float]:
        out = {
            f"{self.name}.count": self.count,
            f"{self.name}.sum": self.total,
            f"{self.name}.min": self._min if self._min is not None else 0.0,
            f"{self.name}.max": self._max if self._max is not None else 0.0,
            f"{self.name}.mean": self.total / self.count if self.count else 0.0,
        }
        for field, q in _HISTOGRAM_QUANTILES:
            out[f"{self.name}.{field}"] = self.percentile(q)
        return out


class MetricsRegistry:
    """A flat, collision-checked namespace of instruments and collectors."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        #: Registered pull-collectors: (declared names, callable).
        self._collectors: list[tuple[tuple[str, ...], Callable[[], dict]]] = []
        self._claimed: set[str] = set()

    # -- registration ---------------------------------------------------------

    def _claim(self, names: Iterable[str]) -> None:
        for name in names:
            if name in self._claimed:
                raise MetricError(f"metric name collision: {name!r}")
        self._claimed.update(names)

    def _register(self, instrument: _Instrument) -> _Instrument:
        self._claim(instrument.sample_names())
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, unit: str = "", owner: str = "") -> Counter:
        """Create and register a :class:`Counter`."""
        return self._register(Counter(name, unit, owner))  # type: ignore[return-value]

    def gauge(self, name: str, unit: str = "", owner: str = "") -> Gauge:
        """Create and register a :class:`Gauge`."""
        return self._register(Gauge(name, unit, owner))  # type: ignore[return-value]

    def histogram(self, name: str, unit: str = "", owner: str = "") -> Histogram:
        """Create and register a :class:`Histogram`."""
        return self._register(Histogram(name, unit, owner))  # type: ignore[return-value]

    def register_collector(self, names: Iterable[str],
                           collect: Callable[[], dict]) -> None:
        """Register a pull-collector producing exactly ``names`` at snapshot.

        Collectors are how the registry absorbs the ad-hoc counter dicts
        of the existing subsystems without touching their hot-path
        increments: ``collect()`` reads the live values on demand.
        """
        declared = tuple(_check_name(n) for n in names)
        self._claim(declared)
        self._collectors.append((declared, collect))

    # -- introspection --------------------------------------------------------

    def names(self) -> list[str]:
        """Every snapshot key, in registration order."""
        out: list[str] = []
        for instrument in self._instruments.values():
            out.extend(instrument.sample_names())
        for declared, _ in self._collectors:
            out.extend(declared)
        return out

    def get(self, name: str) -> _Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise MetricError(f"no instrument named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._claimed

    def __len__(self) -> int:
        return len(self.names())

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """One flat ``{name: value}`` dict, in registration order.

        Collector output is validated against the declared names — a
        collector drifting out of sync with its declaration is a bug
        worth failing loudly on.
        """
        out: dict[str, float] = {}
        for instrument in self._instruments.values():
            out.update(instrument.sample())
        for declared, collect in self._collectors:
            values = collect()
            if set(values) != set(declared):
                raise MetricError(
                    f"collector declared {sorted(declared)} but produced "
                    f"{sorted(values)}"
                )
            for name in declared:
                out[name] = values[name]
        return out

    @staticmethod
    def diff(before: dict[str, float],
             after: dict[str, float]) -> dict[str, float]:
        """Per-name ``after - before`` for every name present in both."""
        return {
            name: after[name] - before[name]
            for name in after
            if name in before
        }

    def to_json(self, indent: int = 2) -> str:
        """The current snapshot as a JSON object string."""
        return json.dumps(self.snapshot(), indent=indent)
