"""SMI — Shared Memory Interface abstraction layer (S5).

One API for shared regions whether the peer is across the SCI ring or on
the same node, plus the shared-memory spinlocks and barriers SCI-MPICH
uses for one-sided synchronization.
"""

from .regions import RegionHandle, SharedRegion, SMIContext, SMIError
from .sync import SMIBarrier, SMILock, SMIRWLock

__all__ = [
    "RegionHandle",
    "SMIBarrier",
    "SMIContext",
    "SMIError",
    "SMILock",
    "SMIRWLock",
    "SharedRegion",
]
