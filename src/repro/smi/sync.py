"""SMI synchronization: shared-memory spinlocks and barriers.

The paper (Sec. 4.2) performs the mutual exclusion required for MPI-2
passive/active target synchronization "via shared memory locks and
barriers, using techniques described in [14]" (Schulz, SCI Europe 2000),
noting they give "very low latency for scenarios with little contention"
while contended access patterns should be avoided.

The cost model here reflects that characterisation:

* acquiring a free lock costs one remote read (test) + one remote write
  (set) when the lock's home is on another node, or two cache-speed
  accesses when local;
* a contended lock is granted FIFO, and each hand-over adds the release
  write plus the spinning reader's polling latency;
* a barrier costs each rank a flag write to the home region plus the
  detection latency at the last arriver, then a release wave.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..sim import Broadcast, Event, Lock
from .regions import SMIContext, SMIError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass

__all__ = ["SMILock", "SMIRWLock", "SMIBarrier", "LOCAL_ACCESS_COST",
           "POLL_INTERVAL"]

#: Cost of one cache-coherent local lock access (test or set).
LOCAL_ACCESS_COST: float = 0.05
#: How often a spinning process re-polls a remote flag.
POLL_INTERVAL: float = 1.0


class SMILock:
    """A spinlock living in the shared region of its home rank."""

    def __init__(self, context: SMIContext, home_rank: int, name: str = ""):
        self.context = context
        self.home_rank = home_rank
        self.name = name or f"smilock@r{home_rank}"
        self._lock = Lock(context.engine, name=self.name)
        #: number of acquisitions that found the lock held (contention stat).
        self.contended_acquires = 0

    def _access_cost(self, rank: int) -> float:
        """Cost of one lock-word access (read or write) from ``rank``."""
        if self.context.same_node(rank, self.home_rank):
            return LOCAL_ACCESS_COST
        params = self.context.node_of(rank).params
        return params.adapter.read_roundtrip

    def acquire(self, rank: int):
        """DES generator: acquire the lock for ``rank``."""
        eng = self.context.engine
        cost = self._access_cost(rank)
        # Test (read the lock word) ...
        yield eng.timeout(cost)
        if self._lock.locked:
            self.contended_acquires += 1
            yield self._lock.request()
            # Spinning: we notice the release only at the next poll.
            yield eng.timeout(POLL_INTERVAL if not self.context.same_node(
                rank, self.home_rank) else LOCAL_ACCESS_COST)
        else:
            yield self._lock.request()
        # ... and set (write the lock word).
        yield eng.timeout(cost)

    def release(self, rank: int):
        """DES generator: release the lock."""
        yield self.context.engine.timeout(self._access_cost(rank))
        self._lock.release()

    @property
    def locked(self) -> bool:
        return self._lock.locked


class SMIRWLock:
    """A reader–writer spinlock in the shared region of its home rank.

    MPI-2 passive-target synchronization distinguishes shared and
    exclusive access epochs; the paper's SMI spinlocks serialize both.
    This lock keeps the spinlock cost model (test + set word accesses,
    polling latency on a contended hand-over) but lets any number of
    *shared* holders proceed concurrently.

    Exclusive acquisition is starvation-free: requests are granted in
    strict FIFO order, so a reader arriving after a waiting writer queues
    behind it instead of joining the active reader group (no reader
    convoy can overtake a writer).  A release hands the lock to the
    queue head — either one writer, or the whole run of consecutive
    readers at the front.
    """

    def __init__(self, context: SMIContext, home_rank: int, name: str = ""):
        self.context = context
        self.home_rank = home_rank
        self.name = name or f"smirwlock@r{home_rank}"
        self._readers = 0
        self._writer = False
        #: FIFO of blocked requests: ("s" | "x", grant event).
        self._queue: deque[tuple[str, Event]] = deque()
        #: acquisitions that found the lock held (contention stat).
        self.contended_acquires = 0
        #: grants by mode, and the high-water mark of concurrent readers.
        self.shared_grants = 0
        self.exclusive_grants = 0
        self.max_concurrent_shared = 0

    def _access_cost(self, rank: int) -> float:
        if self.context.same_node(rank, self.home_rank):
            return LOCAL_ACCESS_COST
        return self.context.node_of(rank).params.adapter.read_roundtrip

    def _grant(self, exclusive: bool) -> None:
        if exclusive:
            self._writer = True
            self.exclusive_grants += 1
        else:
            self._readers += 1
            self.shared_grants += 1
            self.max_concurrent_shared = max(self.max_concurrent_shared,
                                             self._readers)

    def acquire(self, rank: int, exclusive: bool = True):
        """DES generator: acquire in shared or exclusive mode."""
        eng = self.context.engine
        cost = self._access_cost(rank)
        # Test (read the lock word) ...
        yield eng.timeout(cost)
        if exclusive:
            free = (not self._writer and self._readers == 0
                    and not self._queue)
        else:
            # Readers join only while no writer holds *or waits for* the
            # lock (a non-empty queue always has a writer at or before
            # its head — that is the starvation-freedom rule).
            free = not self._writer and not self._queue
        if free:
            self._grant(exclusive)
        else:
            self.contended_acquires += 1
            ev = Event(eng, name=f"{self.name}:{'x' if exclusive else 's'}")
            self._queue.append(("x" if exclusive else "s", ev))
            yield ev
            # Spinning: the hand-over is noticed at the next poll.
            yield eng.timeout(
                LOCAL_ACCESS_COST
                if self.context.same_node(rank, self.home_rank)
                else POLL_INTERVAL
            )
        # ... and set (write the lock word).
        yield eng.timeout(cost)

    def release(self, rank: int, exclusive: bool = True):
        """DES generator: release a shared or exclusive hold."""
        yield self.context.engine.timeout(self._access_cost(rank))
        if exclusive:
            if not self._writer:
                raise SMIError(f"{self.name}: exclusive release without hold")
            self._writer = False
        else:
            if self._readers <= 0:
                raise SMIError(f"{self.name}: shared release without hold")
            self._readers -= 1
        self._wake()

    def _wake(self) -> None:
        """Grant the queue head: one writer, or the leading reader run."""
        if self._writer or not self._queue:
            return
        if self._queue[0][0] == "x":
            if self._readers == 0:
                _, ev = self._queue.popleft()
                self._grant(True)
                ev.succeed()
            return
        while self._queue and self._queue[0][0] == "s":
            _, ev = self._queue.popleft()
            self._grant(False)
            ev.succeed()

    @property
    def locked(self) -> bool:
        return self._writer or self._readers > 0

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_locked(self) -> bool:
        return self._writer


class SMIBarrier:
    """A reusable barrier over a fixed set of ranks.

    Implemented the SMI way: each rank sets its arrival flag in the home
    region; the last arriver flips the release flag, which the spinners
    observe after their polling latency.
    """

    def __init__(self, context: SMIContext, ranks: list[int], home_rank: int | None = None):
        if not ranks:
            raise SMIError("barrier needs at least one rank")
        self.context = context
        self.ranks = list(ranks)
        self.home_rank = home_rank if home_rank is not None else ranks[0]
        self._arrived = 0
        self._generation = 0
        self._release = Broadcast(context.engine, name="smibarrier")

    def _flag_cost(self, rank: int) -> float:
        if self.context.same_node(rank, self.home_rank):
            return LOCAL_ACCESS_COST
        # Posted remote write of the arrival flag + barrier to ensure it
        # lands: approximated by one hop + store-barrier fraction.
        params = self.context.node_of(rank).params
        return params.adapter.pio_op_overhead + params.link.hop_latency * 2

    def enter(self, rank: int):
        """DES generator: enter the barrier; returns when all ranks arrived."""
        if rank not in self.ranks:
            raise SMIError(f"rank {rank} is not part of this barrier")
        eng = self.context.engine
        yield eng.timeout(self._flag_cost(rank))
        self._arrived += 1
        if self._arrived == len(self.ranks):
            # Last arriver releases everyone and re-arms the barrier.
            self._arrived = 0
            self._generation += 1
            release, self._release = self._release, Broadcast(eng, name="smibarrier")
            release.fire(self._generation)
        else:
            release = self._release
            yield release.wait()
            # Spinners notice the release flag at their next poll.
            if self.context.same_node(rank, self.home_rank):
                yield eng.timeout(LOCAL_ACCESS_COST)
            else:
                yield eng.timeout(POLL_INTERVAL)
