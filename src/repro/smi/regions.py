"""SMI shared regions: one abstraction over SCI and intra-node memory.

The paper's SCI-MPICH builds on the SMI library ("Shared Memory Interface",
[26]), whose key property is that a *shared region* looks the same whether
its exporter lives on the same node (plain shared memory) or across the SCI
ring (an imported SCI segment).  That abstraction is why "all of the work
presented for the SCI interconnect can equally be applied to intra-node
shared memory communication" (Sec. 6).

:class:`SMIContext` owns the mapping of *ranks* (MPI processes) to *nodes*
(simulated machines) and hands out :class:`SharedRegion` objects; a rank
obtains a :class:`RegionHandle` to access a region, and the handle routes
operations either through the SCI fabric or the local memory model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..hardware.node import Node
from ..hardware.sci.fabric import SCIFabric
from ..hardware.sci.segments import ImportedSegment, SegmentDirectory
from ..hardware.sci.transactions import AccessRun

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim import Engine

__all__ = ["SMIContext", "SharedRegion", "RegionHandle", "SMIError"]


class SMIError(RuntimeError):
    """SMI-level usage error (bad rank, bad region, bounds)."""


class SMIContext:
    """Cluster-wide SMI instance: ranks, nodes, fabric, segment manager."""

    def __init__(
        self,
        engine: "Engine",
        fabric: SCIFabric,
        nodes: Sequence[Node],
        rank_to_node: Sequence[int],
    ):
        self.engine = engine
        self.fabric = fabric
        self.nodes = list(nodes)
        self.rank_to_node = list(rank_to_node)
        for node_id in self.rank_to_node:
            if not 0 <= node_id < len(self.nodes):
                raise SMIError(f"rank mapped to unknown node {node_id}")
        self.directory = SegmentDirectory(fabric)
        self._regions: list[SharedRegion] = []

    @property
    def n_ranks(self) -> int:
        return len(self.rank_to_node)

    def node_of(self, rank: int) -> Node:
        if not 0 <= rank < self.n_ranks:
            raise SMIError(f"unknown rank {rank}")
        return self.nodes[self.rank_to_node[rank]]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.rank_to_node[rank_a] == self.rank_to_node[rank_b]

    def create_region(self, owner_rank: int, nbytes: int, label: str = "") -> "SharedRegion":
        """Allocate + export a shared region owned by ``owner_rank``.

        This is the simulation analogue of allocating memory through the
        SCI driver (what ``MPI_Alloc_mem`` does in SCI-MPICH).
        """
        node = self.node_of(owner_rank)
        buf = node.space.alloc(nbytes, alignment=64, label=label or f"smi-r{owner_rank}")
        segment = self.directory.export(node, buf)
        region = SharedRegion(self, owner_rank, segment, label)
        self._regions.append(region)
        return region


class SharedRegion:
    """A remotely accessible memory region owned by one rank."""

    def __init__(self, context: SMIContext, owner_rank: int, segment, label: str = ""):
        self.context = context
        self.owner_rank = owner_rank
        self.segment = segment
        self.label = label
        self._handles: dict[int, RegionHandle] = {}

    @property
    def nbytes(self) -> int:
        return self.segment.nbytes

    def local_view(self) -> np.ndarray:
        """Direct (owner-side) numpy view — zero-cost, for the owner only."""
        return self.segment.local_view()

    def handle(self, rank: int) -> "RegionHandle":
        """This rank's mapping of the region (cached per rank)."""
        if rank not in self._handles:
            node = self.context.node_of(rank)
            imported = self.context.directory.import_segment(node, self.segment)
            self._handles[rank] = RegionHandle(self, rank, imported)
        return self._handles[rank]

    def remap(self, rank: int) -> "RegionHandle":
        """Re-import the region for ``rank`` after a segment revocation.

        Drops the cached (stale) handle and imports the segment afresh,
        picking up the current revocation epoch — the recovery action for
        :class:`~repro.hardware.sci.segments.SegmentUnmappedError`.
        """
        self._handles.pop(rank, None)
        return self.handle(rank)

    def __repr__(self) -> str:
        return (
            f"<SharedRegion {self.label!r} owner=rank{self.owner_rank} "
            f"{self.nbytes} B>"
        )


class RegionHandle:
    """One rank's access path to a shared region.

    All data operations are DES generators.  ``is_local`` is true when the
    accessing rank lives on the owner's node — then accesses cost local
    memory-copy time instead of SCI transactions.
    """

    def __init__(self, region: SharedRegion, rank: int, imported: ImportedSegment):
        self.region = region
        self.rank = rank
        self._imported = imported

    @property
    def is_local(self) -> bool:
        return self._imported.is_local

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    @property
    def mapped(self) -> bool:
        """Is the underlying import still valid (no revocation since)?"""
        return self._imported.mapped

    def ensure_mapped(self) -> None:
        """Raise ``SegmentUnmappedError`` if the mapping went stale."""
        self._imported.ensure_mapped()

    def write(
        self,
        data: np.ndarray,
        run: AccessRun,
        src_cached: bool = True,
        cpu_extra: float = 0.0,
        src_block_lengths: Optional[list[int]] = None,
    ):
        """Write ``data`` along ``run`` (see :class:`ImportedSegment`)."""
        return self._imported.write(
            data,
            run,
            src_cached=src_cached,
            cpu_extra=cpu_extra,
            src_block_lengths=src_block_lengths,
        )

    def write_bytes(self, offset: int, data, **kw):
        return self._imported.write_bytes(offset, data, **kw)

    def read(self, run: AccessRun):
        return self._imported.read(run)

    def read_bytes(self, offset: int, nbytes: int):
        return self._imported.read_bytes(offset, nbytes)

    def dma_write(self, offset: int, data: np.ndarray):
        return self._imported.dma_write(offset, data)

    def barrier(self):
        """Store barrier towards the region owner."""
        return self._imported.barrier()
