"""Byte-level memory substrate (S2): address spaces, buffers, layouts.

Every simulated process owns an :class:`AddressSpace`; all message payloads,
packet buffers and RMA windows are :class:`Buffer` views into one.  Transfers
in the simulation move real bytes between these arrays, which is what lets
the test suite check byte-exact delivery of every protocol path.
"""

from .address_space import AddressSpace, OutOfMemory, copy_between
from .buffer import Buffer
from .layout import (
    Block,
    double_strided_blocks,
    iter_span,
    merge_adjacent,
    strided_blocks,
    total_bytes,
)

__all__ = [
    "AddressSpace",
    "Block",
    "Buffer",
    "OutOfMemory",
    "copy_between",
    "double_strided_blocks",
    "iter_span",
    "merge_adjacent",
    "strided_blocks",
    "total_bytes",
]
