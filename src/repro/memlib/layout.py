"""Helpers for describing strided data layouts in simulated memory.

These utilities generate the (offset, length) block lists used all over the
benchmarks: strided vectors for the *noncontig* benchmark, double-strided
halo regions for the ocean-model example, and random block patterns for the
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Block:
    """One contiguous run of bytes at ``offset`` of length ``length``."""

    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length


def strided_blocks(count: int, blocklen: int, stride: int, base: int = 0) -> list[Block]:
    """Blocks of a single-strided vector: ``count`` runs of ``blocklen`` bytes,
    ``stride`` bytes apart (stride measured start-to-start, like MPI hvector)."""
    if count < 0 or blocklen < 0:
        raise ValueError("count and blocklen must be non-negative")
    return [Block(base + i * stride, blocklen) for i in range(count)]


def double_strided_blocks(
    outer_count: int,
    outer_stride: int,
    inner_count: int,
    inner_stride: int,
    blocklen: int,
    base: int = 0,
) -> list[Block]:
    """Blocks of a double-strided pattern (e.g. a 2-D face of a 3-D array)."""
    blocks: list[Block] = []
    for outer in range(outer_count):
        outer_base = base + outer * outer_stride
        blocks.extend(strided_blocks(inner_count, blocklen, inner_stride, outer_base))
    return blocks


def merge_adjacent(blocks: list[Block]) -> list[Block]:
    """Coalesce blocks that touch (sorted by offset).  Overlaps are rejected
    because MPI datatypes used as receive types must not overlap."""
    if not blocks:
        return []
    ordered = sorted(blocks, key=lambda b: b.offset)
    merged = [ordered[0]]
    for block in ordered[1:]:
        last = merged[-1]
        if block.offset < last.end:
            raise ValueError(f"overlapping blocks: {last} and {block}")
        if block.offset == last.end:
            merged[-1] = Block(last.offset, last.length + block.length)
        else:
            merged.append(block)
    return merged


def total_bytes(blocks: list[Block]) -> int:
    """Sum of block lengths."""
    return sum(b.length for b in blocks)


def iter_span(blocks: list[Block]) -> Iterator[int]:
    """Iterate every byte offset covered by ``blocks`` (testing helper)."""
    for block in blocks:
        yield from range(block.offset, block.end)
