"""Per-process address spaces backed by numpy byte arrays.

Each simulated MPI rank owns one :class:`AddressSpace`.  All message data,
packet buffers and RMA windows live inside these arrays, so every transfer
in the simulation moves real bytes and tests can assert byte-exact delivery.

Allocation is a simple bump allocator with alignment — fragmentation never
matters because simulated programs allocate a fixed set of buffers up front,
exactly like the SCI driver's segment allocator the paper describes.
"""

from __future__ import annotations


import numpy as np

from .._units import align_up
from .buffer import Buffer


class OutOfMemory(MemoryError):
    """The address space bump allocator ran out of room."""


class AddressSpace:
    """A flat byte-addressable memory belonging to one simulated process."""

    def __init__(self, size: int, owner: str = ""):
        if size <= 0:
            raise ValueError(f"address space size must be positive, got {size}")
        #: The backing store. ``uint8`` so views of any dtype can be taken.
        self.mem: np.ndarray = np.zeros(size, dtype=np.uint8)
        self.owner = owner
        self._brk = 0

    @property
    def size(self) -> int:
        return self.mem.nbytes

    @property
    def allocated(self) -> int:
        """Bytes handed out so far."""
        return self._brk

    def alloc(self, nbytes: int, alignment: int = 8, label: str = "") -> Buffer:
        """Allocate ``nbytes`` with the given power-of-two ``alignment``."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        base = align_up(self._brk, alignment)
        end = base + nbytes
        if end > self.size:
            raise OutOfMemory(
                f"address space {self.owner!r}: cannot allocate {nbytes} B "
                f"(brk={self._brk}, size={self.size})"
            )
        self._brk = end
        return Buffer(self, base, nbytes, label=label)

    def buffer(self, offset: int, nbytes: int, label: str = "") -> Buffer:
        """A buffer view over an arbitrary existing range (no allocation)."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside address space "
                f"of size {self.size}"
            )
        return Buffer(self, offset, nbytes, label=label)

    # -- raw access (used by Buffer and by the hardware models) ---------------

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Return a *view* of ``nbytes`` at ``offset``."""
        self._check(offset, nbytes)
        return self.mem[offset : offset + nbytes]

    def write(self, offset: int, data: np.ndarray | bytes | bytearray) -> None:
        """Copy ``data`` into the space at ``offset``."""
        src = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else data
        if src.dtype != np.uint8:
            src = src.view(np.uint8)
        self._check(offset, src.nbytes)
        self.mem[offset : offset + src.nbytes] = src.reshape(-1)

    def copy_within(self, dst: int, src: int, nbytes: int) -> None:
        """memmove inside this space (handles overlap like memmove)."""
        self._check(src, nbytes)
        self._check(dst, nbytes)
        # ndarray slice assignment with overlap is undefined; go through a
        # copy only when ranges actually overlap.
        if src < dst < src + nbytes or dst < src < dst + nbytes:
            chunk = self.mem[src : src + nbytes].copy()
            self.mem[dst : dst + nbytes] = chunk
        else:
            self.mem[dst : dst + nbytes] = self.mem[src : src + nbytes]

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise IndexError(
                f"access [{offset}, {offset + nbytes}) outside address space "
                f"{self.owner!r} of size {self.size}"
            )

    def __repr__(self) -> str:
        return (
            f"<AddressSpace {self.owner!r} size={self.size} "
            f"allocated={self._brk}>"
        )


def copy_between(
    dst_space: AddressSpace,
    dst_offset: int,
    src_space: AddressSpace,
    src_offset: int,
    nbytes: int,
) -> None:
    """Copy bytes across address spaces (the data plane of every transfer)."""
    if nbytes == 0:
        return
    dst_space.write(dst_offset, src_space.read(src_offset, nbytes))
