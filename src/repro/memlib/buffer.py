"""Buffer views over address spaces.

A :class:`Buffer` is the user-visible handle to a byte range in a simulated
process's memory — the analogue of a ``void*``/length pair in the C MPI API.
It supports raw byte access and typed numpy views, and is what application
code passes to ``send``/``recv``/``put``/``get``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .address_space import AddressSpace


class Buffer:
    """A byte range inside one :class:`~repro.memlib.address_space.AddressSpace`."""

    __slots__ = ("space", "base", "nbytes", "label")

    def __init__(self, space: "AddressSpace", base: int, nbytes: int, label: str = ""):
        self.space = space
        self.base = base
        self.nbytes = nbytes
        self.label = label

    # -- derived views ---------------------------------------------------------

    def slice(self, offset: int, nbytes: int) -> "Buffer":
        """Sub-buffer at ``offset`` within this buffer."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"slice [{offset}, {offset + nbytes}) outside buffer of "
                f"{self.nbytes} B"
            )
        return Buffer(self.space, self.base + offset, nbytes, label=self.label)

    def as_array(self, dtype: np.dtype | str = np.uint8) -> np.ndarray:
        """A numpy view of the whole buffer with the given dtype."""
        dt = np.dtype(dtype)
        if self.nbytes % dt.itemsize:
            raise ValueError(
                f"buffer of {self.nbytes} B is not a multiple of "
                f"{dt.itemsize}-byte items"
            )
        raw = self.space.read(self.base, self.nbytes)
        return raw.view(dt)

    # -- byte access -------------------------------------------------------------

    def read(self, offset: int = 0, nbytes: int | None = None) -> np.ndarray:
        """View of ``nbytes`` at ``offset`` (defaults to the rest of the buffer)."""
        if nbytes is None:
            nbytes = self.nbytes - offset
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"read [{offset}, {offset + nbytes}) outside buffer of "
                f"{self.nbytes} B"
            )
        return self.space.read(self.base + offset, nbytes)

    def write(self, data: np.ndarray | bytes | bytearray, offset: int = 0) -> None:
        """Copy ``data`` into the buffer at ``offset``."""
        nbytes = data.nbytes if isinstance(data, np.ndarray) else len(data)
        if offset < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"write [{offset}, {offset + nbytes}) outside buffer of "
                f"{self.nbytes} B"
            )
        self.space.write(self.base + offset, data)

    def fill(self, value: int) -> None:
        """Set every byte of the buffer to ``value``."""
        self.space.read(self.base, self.nbytes)[:] = value

    def tobytes(self) -> bytes:
        """Immutable snapshot of the buffer's contents."""
        return self.space.read(self.base, self.nbytes).tobytes()

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:
        label = f" {self.label!r}" if self.label else ""
        return f"<Buffer{label} base={self.base} nbytes={self.nbytes}>"
