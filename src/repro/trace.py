"""Execution tracing for simulated MPI programs.

A :class:`Tracer` records timestamped events (MPI call begin/end, protocol
choices, transfers) per rank, and can summarize where simulated time went —
the simulator's answer to tools like VampirTrace on real clusters.

Enable on a cluster::

    cluster = Cluster(n_nodes=2)
    tracer = attach_tracer(cluster)
    cluster.run(program)
    print(tracer.summary())

Tracing is opt-in and zero-cost when not attached (the device checks a
single attribute).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster.builder import Cluster

__all__ = ["TraceEvent", "Tracer", "attach_tracer", "TraceSpan",
           "pack_plan_cache_stats"]


def pack_plan_cache_stats() -> dict:
    """Hit/miss/build counters of the packing-plan cache.

    The cache memoizes resolved block-offset tables per
    ``(FlattenedType, count)`` (see :mod:`repro.mpi.flatten.plan`);
    these counters are the trace-level view of how often the hot pack
    paths reused a plan instead of re-deriving offset tables.
    """
    from .mpi.flatten import plan_cache_stats

    return plan_cache_stats()


@dataclass(frozen=True)
class TraceEvent:
    """One point event in the trace."""

    time: float
    rank: int
    kind: str            # e.g. "send.begin", "send.end", "recv.begin"
    detail: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TraceSpan:
    """A matched begin/end pair."""

    rank: int
    kind: str            # e.g. "send"
    start: float
    end: float
    detail: dict

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects trace events and computes per-rank time summaries."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        #: Profiling hooks (see :mod:`repro.obs.hooks`): callables invoked
        #: synchronously from :meth:`record` with the raw TraceEvent for
        #: every ``*.begin`` / ``*.end`` event respectively.
        self.on_span_enter: list = []
        self.on_span_exit: list = []
        #: Wired by :func:`attach_tracer`: the devices and fabric whose
        #: counters the summary reports (None for a standalone tracer).
        self._devices: list = []
        self._fabric = None
        #: Wired by :func:`attach_tracer` to the fabric's live
        #: ``ringlet_labels`` mapping (dense ringlet id -> track name);
        #: the timeline exporter names fabric tracks from it and falls
        #: back to ``ringlet <id>`` for unnamed ids.
        self.ringlet_labels: dict[int, str] = {}

    def record(self, time: float, rank: int, kind: str, **detail: Any) -> None:
        event = TraceEvent(time, rank, kind, detail)
        self.events.append(event)
        if kind.endswith(".begin"):
            for hook in self.on_span_enter:
                hook(event)
        elif kind.endswith(".end"):
            for hook in self.on_span_exit:
                hook(event)

    def __len__(self) -> int:
        return len(self.events)

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [ev for ev in self.events if ev.rank == rank]

    def spans(self, kind: Optional[str] = None) -> Iterator[TraceSpan]:
        """Match ``<op>.begin`` / ``<op>.end`` pairs into spans, per rank.

        Nested or overlapping spans of the same op on one rank match
        LIFO (communication calls in this library do not overlap per
        rank, so in practice this is exact).
        """
        open_stacks: dict[tuple[int, str], list[TraceEvent]] = defaultdict(list)
        for ev in self.events:
            if ev.kind.endswith(".begin"):
                op = ev.kind[: -len(".begin")]
                open_stacks[(ev.rank, op)].append(ev)
            elif ev.kind.endswith(".end"):
                op = ev.kind[: -len(".end")]
                stack = open_stacks.get((ev.rank, op))
                if stack:
                    begin = stack.pop()
                    span = TraceSpan(ev.rank, op, begin.time, ev.time,
                                     {**begin.detail, **ev.detail})
                    if kind is None or kind == op:
                        yield span

    def time_in(self, rank: int, op: str) -> float:
        """Total simulated time rank spent inside ``op`` calls."""
        return sum(s.duration for s in self.spans(op) if s.rank == rank)

    def summary(self) -> str:
        """Per-rank, per-op time table."""
        per: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))
        counts: dict[int, dict[str, int]] = defaultdict(lambda: defaultdict(int))
        for span in self.spans():
            per[span.rank][span.kind] += span.duration
            counts[span.rank][span.kind] += 1
        lines = ["trace summary (simulated µs)"]
        for rank in sorted(per):
            parts = [
                f"{op}: {per[rank][op]:9.1f} ({counts[rank][op]}x)"
                for op in sorted(per[rank])
            ]
            lines.append(f"  rank {rank}: " + "  ".join(parts))
        if len(lines) == 1:
            lines.append("  (no spans recorded)")
        stats = pack_plan_cache_stats()
        lines.append(
            "  pack-plan cache: "
            f"hits={stats['hits']} misses={stats['misses']} "
            f"builds={stats['builds']} size={stats['size']}/{stats['maxsize']}"
            + ("" if stats["enabled"] else " (disabled)")
        )
        if self._fabric is not None:
            counters = self._fabric.counters
            lines.append(
                f"  fabric: retries={counters['retries']} "
                f"faults={counters['faults']}"
            )
        if self._devices:
            recovery: dict[str, int] = defaultdict(int)
            for device in self._devices:
                for key, value in device.recovery.items():
                    recovery[key] += value
            lines.append(
                "  recovery: " + " ".join(
                    f"{key}={recovery[key]}"
                    for key in ("retries", "resumes", "timeouts", "remaps",
                                "fallbacks", "aborts")
                )
            )
        if self._fabric is not None and self._fabric.fault_plan is not None:
            plan = self._fabric.fault_plan
            lines.append(
                f"  fault plan (seed={plan.seed}): {plan.one_line()}"
            )
        return "\n".join(lines)


def attach_tracer(cluster: "Cluster") -> Tracer:
    """Attach a tracer to every rank device and the fabric of ``cluster``.

    Must be called before the program runs; returns the Tracer.  Rank
    devices record MPI-call spans; the fabric records its wire-level
    transfers under the pseudo-rank :data:`repro.obs.timeline.FABRIC_RANK`
    (one timeline track per ringlet).
    """
    tracer = Tracer()
    for device in cluster.world.devices:
        device.tracer = tracer
    cluster.fabric.tracer = tracer
    tracer._devices = list(cluster.world.devices)
    tracer._fabric = cluster.fabric
    tracer.ringlet_labels = cluster.fabric.ringlet_labels
    return tracer
