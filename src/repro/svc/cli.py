"""``repro-svc`` — run the RMA key-value service benchmark from the CLI.

Runs :func:`~repro.svc.driver.run_service` with a workload assembled from
the flags, prints a human summary, and optionally emits the full report
as JSON.  The run is a seeded discrete-event simulation: for a given flag
set the JSON report is *bit-identical* across invocations — CI's
``svc-smoke`` leg re-runs cells twice and diffs the bytes.

Examples::

    repro-svc                                    # default cell
    repro-svc --dist zipfian --zipf-s 1.2        # skewed keys
    repro-svc --clients 4 --servers 2 --ops 200  # more load
    repro-svc --faults-seed 7 --json -           # faulty run, JSON to stdout

With ``--json -`` stdout carries exactly one JSON document (pipeable into
``jq``); the human summary moves to stderr.  Exit status is nonzero if
the in-run counter verification failed.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..hardware.sci.faults import FaultPlan
from ..qos import AdmissionDenied
from .driver import ServiceConfig, run_service
from .workload import DISTRIBUTIONS, WorkloadSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-svc",
        description="RMA-backed sharded key-value service benchmark "
                    "(passive servers, one-sided clients).",
    )
    parser.add_argument("--servers", type=int, default=2,
                        help="server (shard) ranks (default: 2)")
    parser.add_argument("--clients", type=int, default=2,
                        help="client ranks (default: 2)")
    parser.add_argument("--slots", type=int, default=64,
                        help="slots per shard (default: 64)")
    parser.add_argument("--counter-slots", type=int, default=16,
                        help="slots per shard reserved for counters "
                             "(default: 16)")
    parser.add_argument("--keys", type=int, default=64,
                        help="distinct blob keys (default: 64)")
    parser.add_argument("--counter-keys", type=int, default=16,
                        help="distinct counter ids (default: 16)")
    parser.add_argument("--value-size", type=int, default=64,
                        help="value bytes per key (default: 64)")
    parser.add_argument("--ops", type=int, default=100,
                        help="operations per client (default: 100)")
    parser.add_argument("--read-frac", type=float, default=0.5,
                        help="fraction of ops that are reads (default: 0.5)")
    parser.add_argument("--incr-frac", type=float, default=0.2,
                        help="fraction of ops that are counter increments "
                             "(default: 0.2)")
    parser.add_argument("--dist", choices=DISTRIBUTIONS, default="uniform",
                        help="key popularity distribution (default: uniform)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="Zipf exponent for --dist zipfian (default: 1.1)")
    parser.add_argument("--think-time", type=float, default=0.0,
                        help="client pause between ops in µs (default: 0)")
    parser.add_argument("--qos-reserve", type=float, default=0.0,
                        metavar="SHARE",
                        help="reserve this fraction of the tightest "
                             "client->server path for the service tenant "
                             "(clients run reserved-lane, policed to that "
                             "rate; default: 0 = no QoS)")
    parser.add_argument("--seed", type=int, default=1,
                        help="workload seed (default: 1)")
    parser.add_argument("--faults-seed", type=int, default=None,
                        help="install a seeded fault plan (transient + torn "
                             "+ stall + one segment unmap)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON (- for stdout)")
    return parser


def _fault_plan(seed: int) -> FaultPlan:
    """The CLI's canonical lively-but-recoverable fault plan."""
    return FaultPlan(seed=seed, transient_rate=0.05, torn_rate=0.05,
                     stall_rate=0.02, stall_time=500.0, unmap_after=200)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    spec = WorkloadSpec(
        n_keys=args.keys,
        n_counter_keys=args.counter_keys,
        read_fraction=args.read_frac,
        incr_fraction=args.incr_frac,
        dist=args.dist,
        zipf_s=args.zipf_s,
        ops_per_client=args.ops,
        value_size=args.value_size,
        seed=args.seed,
        think_time=args.think_time,
    )
    config = ServiceConfig(
        n_servers=args.servers,
        n_clients=args.clients,
        slots_per_shard=args.slots,
        counter_slots=args.counter_slots,
        qos_reserve=args.qos_reserve,
        workload=spec,
    )
    faults = _fault_plan(args.faults_seed) if args.faults_seed is not None else None
    try:
        report = run_service(config, faults=faults)
    except AdmissionDenied as exc:
        print(f"repro-svc: {exc}", file=sys.stderr)
        return 2

    # With --json -, stdout carries exactly one JSON document; the human
    # summary moves to stderr.
    out = sys.stderr if args.json == "-" else sys.stdout
    lat = report["latency_us"]
    print(f"svc: {args.servers} servers x {args.clients} clients, "
          f"{report['total_ops']} ops ({args.dist}, seed {args.seed}, "
          f"faults {'on' if faults else 'off'})", file=out)
    print(f"  throughput  {report['throughput_ops']:12.1f} ops/s over "
          f"{report['elapsed_us']:.1f} us", file=out)
    for kind in ("read", "write", "incr"):
        row = lat[kind]
        print(f"  {kind:<6} n={row['count']:<5.0f} "
              f"p50={row['p50']:8.2f}  p95={row['p95']:8.2f}  "
              f"p99={row['p99']:8.2f} us", file=out)
    print(f"  shards: ops={report['shards']['ops']:.0f} "
          f"hot={report['shards']['hot']:.0f} "
          f"imbalance={report['shards']['imbalance']:.2f}", file=out)
    print(f"  faults: injected={report['faults']['injected']:.0f} "
          f"fallbacks={report['faults']['fallbacks']:.0f}", file=out)
    if "qos" in report:
        counters = report["qos"]["counters"]
        print(f"  qos: reserve={args.qos_reserve:.2f} "
              f"policed={counters['policed_transfers']} "
              f"reserved_xfers={counters['reserved_transfers']}", file=out)
    verdict = "verified" if report["verified"] else "COUNTER MISMATCH"
    print(f"  counters: {report['counters_checked']} checked, {verdict}",
          file=out)

    if args.json:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)

    return 0 if report["verified"] else 1


if __name__ == "__main__":
    sys.exit(main())
