"""Shard placement for the RMA key-value service.

A :class:`ShardMap` spreads slots across the window parts of the server
ranks.  Placement must be *deterministic across runs and processes* —
Python's built-in ``hash`` is salted per process, so keys are placed with
:func:`mix64` (the splitmix64 finalizer), a fast 64-bit avalanche with
measurably uniform low and high bits.

Each shard's slot table reserves the first ``counter_slots`` slots for
integer counters (addressed directly by counter id, no hashing, so the
driver can verify exact final values) and hashes blob keys into the
remaining slots.  The map also keeps per-shard op tallies — the
``svc.shard_ops`` / ``svc.hot_shards`` / ``svc.shard_imbalance`` metrics
are pulled from here by the registry collector in
:mod:`repro.svc.driver`.
"""

from __future__ import annotations

__all__ = ["ShardMap", "hash_key", "hot_shard_indices", "mix64",
           "shard_imbalance"]

_MASK = (1 << 64) - 1


def mix64(x: int) -> int:
    """splitmix64 finalizer: a deterministic 64-bit avalanche."""
    x &= _MASK
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def hash_key(key: str) -> int:
    """Nonzero 64-bit hash of ``key``, stable across runs and processes.

    The slot protocol reserves hash word 0 for "empty slot", so a key
    that lands on 0 is nudged to 1.
    """
    h = 0xCBF29CE484222325  # FNV-1a offset basis
    for byte in key.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK
    h = mix64(h)
    return h if h != 0 else 1


def shard_imbalance(op_counts: list[int]) -> float:
    """Hottest shard's ops over the per-shard mean (1.0 = balanced)."""
    total = sum(op_counts)
    if total == 0:
        return 0.0
    return max(op_counts) * len(op_counts) / total


def hot_shard_indices(op_counts: list[int], hot_factor: float,
                      min_total: int | None = None) -> list[int]:
    """Shards whose op count exceeds ``hot_factor`` x the per-shard mean.

    The degenerate cases are explicit (they used to flag inconsistently):

    * ``total == 0`` — no traffic means no hot shard, never "all shards
      hot because every count exceeds a zero threshold".
    * a single shard — the mean *is* its count, so with one shard the
      threshold question is meaningless; never flag it.
    * uniform tiny loads — with only a handful of ops the ratio test is
      pure noise (e.g. ``[1, 0]`` flags shard 0 at 2x the mean after a
      single op).  Below ``min_total`` ops (default: one per shard) no
      shard is flagged; the rebalancer therefore never reacts to the
      first few requests of a run.
    """
    n = len(op_counts)
    total = sum(op_counts)
    if n < 2 or total == 0:
        return []
    if min_total is None:
        min_total = n
    if total < min_total:
        return []
    threshold = hot_factor * total / n
    return [s for s, count in enumerate(op_counts) if count > threshold]


class ShardMap:
    """Key -> (shard, slot) placement plus per-shard load accounting."""

    def __init__(self, server_ranks: list[int], slots_per_shard: int,
                 counter_slots: int = 16, hot_factor: float = 2.0):
        if not server_ranks:
            raise ValueError("need at least one server rank")
        if counter_slots >= slots_per_shard:
            raise ValueError(
                f"counter_slots ({counter_slots}) must leave blob slots "
                f"(slots_per_shard={slots_per_shard})"
            )
        if hot_factor <= 1.0:
            raise ValueError(f"hot_factor must exceed 1.0, got {hot_factor}")
        self.server_ranks = list(server_ranks)
        self.slots_per_shard = slots_per_shard
        self.counter_slots = counter_slots
        self.hot_factor = hot_factor
        #: Ops routed to each shard (fed to the svc.* shard collectors).
        self.op_counts = [0] * len(server_ranks)

    @property
    def n_shards(self) -> int:
        return len(self.server_ranks)

    @property
    def max_counter_keys(self) -> int:
        """Counter ids [0, this) map to distinct slots (no aliasing)."""
        return self.counter_slots * self.n_shards

    def locate_blob(self, key: str) -> tuple[int, int]:
        """The (shard, slot) a blob key lives in.

        Shard from the hash's low bits, slot from its high bits — the two
        decisions stay independent, so all of a shard's blob slots are
        reachable whatever the shard count.
        """
        h = hash_key(key)
        shard = h % self.n_shards
        blob_slots = self.slots_per_shard - self.counter_slots
        slot = self.counter_slots + (h >> 20) % blob_slots
        return shard, slot

    def locate_counter(self, counter_id: int) -> tuple[int, int]:
        """The (shard, slot) of an integer counter (round-robin, exact)."""
        if counter_id < 0:
            raise ValueError(f"negative counter id {counter_id}")
        shard = counter_id % self.n_shards
        slot = (counter_id // self.n_shards) % self.counter_slots
        return shard, slot

    def rank_of(self, shard: int) -> int:
        return self.server_ranks[shard]

    # -- load accounting (pulled by the svc metrics collector) ----------------

    def record(self, shard: int) -> None:
        self.op_counts[shard] += 1

    def total_ops(self) -> int:
        return sum(self.op_counts)

    def imbalance(self) -> float:
        """Hottest shard's ops over the per-shard mean (1.0 = balanced)."""
        return shard_imbalance(self.op_counts)

    def hot_shards(self) -> list[int]:
        """Shards whose op count exceeds ``hot_factor`` x the mean.

        Delegates to :func:`hot_shard_indices`, which handles the
        zero-traffic / single-shard / uniform-tiny-load degeneracies
        explicitly (see its docstring) — the replication layer's
        :class:`~repro.svc.repl.ReplicaMap` shares the same helper so
        the two load-accounting paths cannot drift.
        """
        return hot_shard_indices(self.op_counts, self.hot_factor)
