"""``RmaKvStore``: a key-value store on one-sided communication only.

Servers are *passive*: after creating their window part they never touch
the data plane again.  Every service operation is executed by the client
through the MPI-2 one-sided layer — exactly the paper's argument that
transparent remote memory access makes the target CPU optional:

* **reads** are seqlock-validated remote gets.  The whole slot is
  fetched with one small direct ``Win.get`` (the transfer policy's
  ``small_rma_threshold`` keeps it a transparent remote load), then the
  8-byte version word is re-read: an *odd* version means a write was in
  flight, a *changed* version means the slot moved underneath us — both
  retry.  Persistent instability falls back to a shared passive-target
  lock (``Win.lock(exclusive=False)``).
* **writes** claim the slot optimistically with one
  ``Win.fetch_and_op(op="bor")`` that sets the version's busy bit: an
  even previous value means the claim won (the word is now odd), an odd
  one means another writer holds it.  The value and key-hash words are
  then published with direct puts, flushed, and the version released to
  ``v + 2`` with an accumulate — the target-side handler serializes all
  atomics, so claims never race.  Repeated claim conflicts fall back to
  an exclusive passive-target lock.
* **counters** are plain ``Win.accumulate(op="sum")`` increments —
  commutative, handler-serialized, and therefore exact under any client
  interleaving (the driver's verification pass depends on this).

Slot layout (``SLOT_HEADER`` = 16 bytes)::

    [0:8)   key-hash word  (``hash_key``; 0 = empty slot)
    [8:16)  version word   (seqlock: odd = write in progress)
    [16:..) value bytes    (fixed ``value_size``, 8-byte padded)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..mpi.datatypes.basic import LONG, UNSIGNED_LONG
from ..obs.metrics import Counter, Histogram
from .shard import ShardMap, hash_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mpi.osc.window import Win

__all__ = ["RmaKvStore", "SvcInstruments", "SLOT_HEADER",
           "SVC_COUNTERS", "SVC_HISTOGRAMS", "slot_bytes"]

#: Bytes of slot metadata ahead of the value: hash word + version word.
SLOT_HEADER = 16
HASH_OFF = 0
VER_OFF = 8
VAL_OFF = 16

#: Store event counters (registered as ``svc.<name>``).
SVC_COUNTERS = (
    "reads", "read_misses", "read_retries", "read_fallbacks", "read_giveups",
    "writes", "write_fast", "write_conflicts", "write_fallbacks", "incrs",
)

#: Store latency histograms (registered as ``svc.<name>``).
SVC_HISTOGRAMS = ("read_latency_us", "write_latency_us", "incr_latency_us")


def slot_bytes(value_size: int) -> int:
    """Total slot size: header + value padded to 8-byte word alignment."""
    return SLOT_HEADER + ((value_size + 7) // 8) * 8


class SvcInstruments:
    """The store's metric instruments, shared by every client's store."""

    def __init__(self, counters: dict[str, Counter],
                 histograms: dict[str, Histogram]):
        self.counters = counters
        self.histograms = histograms

    @classmethod
    def registered(cls, registry) -> "SvcInstruments":
        """Create every instrument inside ``registry`` (``svc.*`` names)."""
        return cls(
            {name: registry.counter(f"svc.{name}", unit="1",
                                    owner="repro.svc.store")
             for name in SVC_COUNTERS},
            {name: registry.histogram(f"svc.{name}", unit="us",
                                      owner="repro.svc.store")
             for name in SVC_HISTOGRAMS},
        )

    @classmethod
    def standalone(cls) -> "SvcInstruments":
        """Unregistered instruments (unit tests without a cluster registry)."""
        return cls(
            {name: Counter(f"svc.{name}") for name in SVC_COUNTERS},
            {name: Histogram(f"svc.{name}") for name in SVC_HISTOGRAMS},
        )


def _word(data, offset: int = 0, signed: bool = False) -> int:
    """The 8-byte little-endian word at ``offset`` of a fetched array."""
    raw = np.ascontiguousarray(np.asarray(data)).view(np.uint8)
    return int.from_bytes(raw[offset:offset + 8].tobytes(), "little",
                          signed=signed)


class RmaKvStore:
    """Client-side handle on the sharded slot tables (all DES generators)."""

    def __init__(self, win: "Win", shards: ShardMap, value_size: int,
                 instruments: Optional[SvcInstruments] = None,
                 max_read_retries: int = 4, max_claim_retries: int = 3,
                 backoff_us: float = 2.0):
        if value_size < 1:
            raise ValueError(f"value_size must be >= 1, got {value_size}")
        self.win = win
        self.shards = shards
        self.value_size = value_size
        #: Value field padded so every slot word stays 8-byte aligned.
        self.slot_size = slot_bytes(value_size)
        self.m = instruments or SvcInstruments.standalone()
        self.max_read_retries = max_read_retries
        self.max_claim_retries = max_claim_retries
        self.backoff_us = backoff_us
        self.engine = win.engine

    # -- placement ------------------------------------------------------------

    def _blob_addr(self, key: str) -> tuple[int, int, int]:
        """(target rank, slot base displacement, key hash) of a blob key."""
        shard, slot = self.shards.locate_blob(key)
        self.shards.record(shard)
        return self.shards.rank_of(shard), slot * self.slot_size, hash_key(key)

    def _counter_addr(self, counter_id: int) -> tuple[int, int]:
        shard, slot = self.shards.locate_counter(counter_id)
        self.shards.record(shard)
        return self.shards.rank_of(shard), slot * self.slot_size

    # -- reads ----------------------------------------------------------------

    def get(self, key: str):
        """Seqlock-validated read; returns the value bytes or ``None``."""
        target, base, want = self._blob_addr(key)
        device = self.win.device
        self.m.counters["reads"].inc()
        device._trace("svc.get.begin", key=key, target=target)
        t0 = self.engine.now
        value = yield from self._read_slot(target, base, want)
        self.m.histograms["read_latency_us"].observe(self.engine.now - t0)
        device._trace("svc.get.end", key=key,
                      hit=value is not None)
        return value

    def _read_once(self, target: int, base: int, want: int):
        """One seqlock read attempt: (stable, value_or_None)."""
        blob = yield from self.win.get(self.slot_size, target, base)
        raw = np.asarray(blob)
        v1 = int.from_bytes(raw[VER_OFF:VER_OFF + 8].tobytes(), "little")
        if v1 & 1:  # write in progress
            return False, None
        ver = yield from self.win.get(8, target, base + VER_OFF)
        if _word(ver) != v1:  # slot changed underneath the read
            return False, None
        stored = int.from_bytes(raw[HASH_OFF:HASH_OFF + 8].tobytes(), "little")
        if stored != want:  # empty slot, or another key hashed here
            return True, None
        return True, bytes(raw[VAL_OFF:VAL_OFF + self.value_size])

    def _read_slot(self, target: int, base: int, want: int):
        for attempt in range(self.max_read_retries):
            stable, value = yield from self._read_once(target, base, want)
            if stable:
                if value is None:
                    self.m.counters["read_misses"].inc()
                return value
            self.m.counters["read_retries"].inc()
            yield self.engine.timeout(self.backoff_us * (attempt + 1))
        # Persistently unstable slot: read under a shared passive-target
        # lock.  Lock-free fast-path writers may still bump the version,
        # so validation stays bounded; a slot unstable even here is
        # counted as a give-up and reported as a miss.
        self.m.counters["read_fallbacks"].inc()
        yield from self.win.lock(target, exclusive=False)
        value = None
        for attempt in range(self.max_read_retries):
            stable, value = yield from self._read_once(target, base, want)
            if stable:
                break
            yield self.engine.timeout(self.backoff_us * (attempt + 1))
        else:
            self.m.counters["read_giveups"].inc()
        yield from self.win.unlock(target)
        return value

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: bytes):
        """Publish ``value`` under ``key`` (optimistic, lock fallback)."""
        if len(value) != self.value_size:
            raise ValueError(
                f"value must be exactly {self.value_size} B, got {len(value)}"
            )
        target, base, h = self._blob_addr(key)
        device = self.win.device
        self.m.counters["writes"].inc()
        device._trace("svc.put.begin", key=key, target=target)
        t0 = self.engine.now
        claimed = False
        for attempt in range(self.max_claim_retries):
            if (yield from self._claim(target, base)):
                claimed = True
                break
            self.m.counters["write_conflicts"].inc()
            yield self.engine.timeout(self.backoff_us * (attempt + 1))
        if claimed:
            self.m.counters["write_fast"].inc()
            yield from self._publish(target, base, h, value)
        else:
            # Contended slot: serialize behind an exclusive passive-target
            # lock.  The claim loop remains (fast-path writers do not take
            # the lock) but is now guaranteed to drain.
            self.m.counters["write_fallbacks"].inc()
            yield from self.win.lock(target, exclusive=True)
            while not (yield from self._claim(target, base)):
                yield self.engine.timeout(self.backoff_us)
            yield from self._publish(target, base, h, value)
            yield from self.win.unlock(target)
        self.m.histograms["write_latency_us"].observe(self.engine.now - t0)
        device._trace("svc.put.end", key=key, fast=claimed)

    def _claim(self, target: int, base: int):
        """Try to set the version busy bit; True iff this writer won it."""
        prev = yield from self.win.fetch_and_op(
            np.array([1], dtype=np.uint64), target, base + VER_OFF,
            op="bor", datatype=UNSIGNED_LONG,
        )
        return _word(prev) % 2 == 0

    def _publish(self, target: int, base: int, h: int, value: bytes):
        """Write value + hash into a claimed slot, then release the seqlock."""
        payload = np.frombuffer(value, dtype=np.uint8)
        yield from self.win.put(payload, target, base + VAL_OFF)
        hash_word = np.frombuffer(h.to_bytes(8, "little"), dtype=np.uint8)
        yield from self.win.put(hash_word, target, base + HASH_OFF)
        # The data stores must be globally visible before the version
        # release makes them readable (seqlock publication order).
        yield from self.win.flush(target)
        yield from self.win.accumulate(
            np.array([1], dtype=np.uint64), target, base + VER_OFF,
            op="sum", datatype=UNSIGNED_LONG,
        )
        yield from self.win.flush(target)

    # -- counters -------------------------------------------------------------

    def incr(self, counter_id: int, delta: int = 1):
        """Add ``delta`` to an integer counter (handler-serialized, exact)."""
        target, base = self._counter_addr(counter_id)
        device = self.win.device
        self.m.counters["incrs"].inc()
        device._trace("svc.incr.begin", counter=counter_id, target=target)
        t0 = self.engine.now
        yield from self.win.accumulate(
            np.array([delta], dtype=np.int64), target, base + VAL_OFF,
            op="sum", datatype=LONG,
        )
        yield from self.win.flush(target)
        self.m.histograms["incr_latency_us"].observe(self.engine.now - t0)
        device._trace("svc.incr.end", counter=counter_id)

    def get_counter(self, counter_id: int):
        """Read a counter's current value (quiescent reads are exact)."""
        target, base = self._counter_addr(counter_id)
        data = yield from self.win.get(8, target, base + VAL_OFF)
        return _word(data, signed=True)
