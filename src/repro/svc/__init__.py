"""repro.svc: an RMA-backed sharded key-value service on the simulated stack.

The paper's closing argument is that transparent remote memory access
turns one-sided communication into a first-class programming model.
This package is that argument exercised end to end: a key-value service
whose servers are *completely passive* — every read, write, and counter
increment is a client-side MPI-2 one-sided operation (seqlock-validated
gets, ``fetch_and_op`` claim/publish writes, handler-serialized
accumulates), with passive-target reader–writer locks as the contention
fallback.

Layers:

* :mod:`repro.svc.shard` — deterministic key -> (shard, slot) placement
  plus hot-shard accounting;
* :mod:`repro.svc.store` — the :class:`RmaKvStore` slot protocol;
* :mod:`repro.svc.workload` — seeded uniform/zipfian op streams and the
  host-side replay oracle;
* :mod:`repro.svc.driver` — cluster assembly, metrics wiring,
  verification, and the JSON report;
* :mod:`repro.svc.cli` — the ``repro-svc`` command.

See ``docs/SERVICE.md`` for the slot layout and consistency story.
"""

from .driver import ServiceConfig, run_service
from .shard import ShardMap, hash_key, mix64
from .store import RmaKvStore, SvcInstruments, slot_bytes
from .workload import Op, WorkloadSpec, client_ops, replay

__all__ = [
    "Op",
    "RmaKvStore",
    "ServiceConfig",
    "ShardMap",
    "SvcInstruments",
    "WorkloadSpec",
    "client_ops",
    "hash_key",
    "mix64",
    "replay",
    "run_service",
    "slot_bytes",
]
