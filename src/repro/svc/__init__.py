"""repro.svc: an RMA-backed sharded key-value service on the simulated stack.

The paper's closing argument is that transparent remote memory access
turns one-sided communication into a first-class programming model.
This package is that argument exercised end to end: a key-value service
whose servers are *completely passive* — every read, write, and counter
increment is a client-side MPI-2 one-sided operation (seqlock-validated
gets, ``fetch_and_op`` claim/publish writes, handler-serialized
accumulates), with passive-target reader–writer locks as the contention
fallback.

Layers:

* :mod:`repro.svc.shard` — deterministic key -> (shard, slot) placement
  plus hot-shard accounting;
* :mod:`repro.svc.store` — the :class:`RmaKvStore` slot protocol;
* :mod:`repro.svc.workload` — seeded uniform/zipfian op streams and the
  host-side replay oracle;
* :mod:`repro.svc.driver` — cluster assembly, metrics wiring,
  verification, and the JSON report;
* :mod:`repro.svc.repl` — chain replication, failover, live shard
  migration / key-range splitting, and open-loop load generation
  (``docs/REPLICATION.md``);
* :mod:`repro.svc.cli` — the ``repro-svc`` command.

See ``docs/SERVICE.md`` for the slot layout and consistency story.
"""

from .driver import ServiceConfig, run_service
from .repl import (FailoverPlan, OpenLoopSpec, Rebalancer, ReplicaMap,
                   ReplicatedKvStore, ReplicatedServiceConfig,
                   run_replicated_service)
from .shard import ShardMap, hash_key, hot_shard_indices, mix64
from .store import RmaKvStore, SvcInstruments, slot_bytes
from .workload import Op, WorkloadSpec, client_ops, replay

__all__ = [
    "FailoverPlan",
    "Op",
    "OpenLoopSpec",
    "Rebalancer",
    "ReplicaMap",
    "ReplicatedKvStore",
    "ReplicatedServiceConfig",
    "RmaKvStore",
    "ServiceConfig",
    "ShardMap",
    "SvcInstruments",
    "WorkloadSpec",
    "client_ops",
    "hash_key",
    "hot_shard_indices",
    "mix64",
    "replay",
    "run_replicated_service",
    "run_service",
    "slot_bytes",
]
