"""Open-loop (arrival-rate) load generation with bounded queues.

The closed-loop driver (`repro.svc.driver`) issues the next op only
when the previous one completes — under overload the offered rate falls
to match capacity and the latency tail quietly disappears (coordinated
omission).  An open-loop client instead draws *arrival times* from a
seeded Poisson process at a fixed rate; ops that arrive while the
service is behind wait in a bounded client queue, and the latency that
matters is the **sojourn** time (completion - arrival), not the service
time.  Beyond ``max_queue`` pending ops the client *sheds* the arrival
(``repl.shed_ops``) — explicit backpressure accounting instead of an
unbounded queue that would hide saturation as memory growth.

The generator is deterministic: arrivals come from
``SeedSequence([seed, client_id, _ARRIVAL_STREAM])`` and never consult
the wall clock, so open-loop reports are byte-identical per seed like
everything else in the repo.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from ..workload import Op

__all__ = ["OpenLoopSpec", "arrival_times", "open_loop_client"]

#: Seed-stream discriminator so arrival draws never alias the op draws.
_ARRIVAL_STREAM = 7


@dataclass(frozen=True)
class OpenLoopSpec:
    """Arrival process of one open-loop run (per-client rate)."""

    #: Mean inter-arrival gap per client, in simulated µs.  The offered
    #: load of the whole run is ``n_clients / mean_interarrival_us`` ops
    #: per µs.
    mean_interarrival_us: float = 50.0
    #: Arrivals pending beyond this bound are shed, not queued.
    max_queue: int = 32

    def __post_init__(self):
        if self.mean_interarrival_us <= 0.0:
            raise ValueError(
                f"mean_interarrival_us must be > 0, "
                f"got {self.mean_interarrival_us}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")

    def describe(self) -> dict:
        return {
            "mean_interarrival_us": self.mean_interarrival_us,
            "max_queue": self.max_queue,
        }


def arrival_times(spec: OpenLoopSpec, seed: int, client_id: int,
                  n_ops: int) -> np.ndarray:
    """The client's seeded Poisson arrival instants (µs, ascending)."""
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, client_id, _ARRIVAL_STREAM]))
    gaps = rng.exponential(spec.mean_interarrival_us, n_ops)
    return np.cumsum(gaps)


def open_loop_client(store, ops: list[Op], arrivals: np.ndarray,
                     max_queue: int):
    """Drive ``store`` open-loop; returns (served, shed) counts.

    The client is a single serial generator, so at the moment op *i* is
    considered every earlier accepted op has already completed — the
    queue depth at arrival ``t`` is the number of completion times still
    in the future, which a bisect over the completion log yields exactly.
    """
    m = store.m
    engine = store.engine
    done_times: list[float] = []
    served = shed = 0
    for op, t_arrival in zip(ops, arrivals):
        t_arrival = float(t_arrival)
        m.counters["arrivals"].inc()
        if engine.now < t_arrival:
            yield engine.timeout(t_arrival - engine.now)
        pending = len(done_times) - bisect_right(done_times, t_arrival)
        if pending >= max_queue:
            m.counters["shed_ops"].inc()
            shed += 1
            continue
        t_service = engine.now
        if op.kind == "get":
            yield from store.get(op.key)
        else:
            yield from store.put(op.key, op.value)
        m.histograms["service_latency_us"].observe(engine.now - t_service)
        m.histograms["sojourn_latency_us"].observe(engine.now - t_arrival)
        done_times.append(engine.now)
        served += 1
    return served, shed
