"""Replication and rebalancing for the RMA key-value service.

Chain (primary -> backup) replication over OSC windows with
FaultPlan-style seeded failover, live shard migration / key-range
splitting driven by the hot-shard accounting, and open-loop
(arrival-rate) load generation with bounded queues and shed
accounting.  See ``docs/REPLICATION.md`` for the protocol and the
epoch-flip drain rules.
"""

from .chain import (REPL_COUNTERS, REPL_HISTOGRAMS, REPL_SLOT_HEADER,
                    ApplyLedger, FailoverPlan, Placement, ReplicaMap,
                    ReplicatedKvStore, ReplInstruments, repl_slot_bytes)
from .driver import (REPL_COLLECTOR_METRICS, ReplicatedRun,
                     ReplicatedServiceConfig, execute_replicated,
                     run_replicated_service)
from .openloop import OpenLoopSpec, arrival_times, open_loop_client
from .rebalance import REBALANCE_COLLECTOR_METRICS, Rebalancer

__all__ = [
    "REBALANCE_COLLECTOR_METRICS",
    "REPL_COLLECTOR_METRICS",
    "REPL_COUNTERS",
    "REPL_HISTOGRAMS",
    "REPL_SLOT_HEADER",
    "ApplyLedger",
    "FailoverPlan",
    "OpenLoopSpec",
    "Placement",
    "ReplInstruments",
    "ReplicaMap",
    "ReplicatedKvStore",
    "ReplicatedRun",
    "ReplicatedServiceConfig",
    "Rebalancer",
    "arrival_times",
    "execute_replicated",
    "open_loop_client",
    "repl_slot_bytes",
    "run_replicated_service",
]
