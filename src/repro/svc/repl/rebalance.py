"""Live shard migration and key-range splitting for the replicated store.

The :class:`Rebalancer` runs as its own client rank — it owns no data
and uses the same one-sided window as everyone else, so migration
traffic is ordinary fabric traffic.  Crucially, the rebalancer rank is
*not* enrolled in the service's QoS tenant: when the driver reserves
bandwidth for serving clients, migration streams ride the best-effort
lane and get throttled to the documented floor — a background copy can
never starve the serving path (see ``docs/QOS.md``).

One move is a freeze -> drain -> copy -> flip sequence:

1. **freeze** the donor shard: new ops on it spin-wait host-side
   (``rebalance.blocked_ops``); other shards keep serving untouched;
2. **drain** in-flight ops that began under the old epoch
   (``rebalance.drained_ops`` counts ops that completed after a flip);
3. **copy** the whole slot table donor -> acceptor with one
   ``Win.get`` + ``Win.put`` pair per table (the scheduler chunk-streams
   it; ``rebalance.migrated_bytes``/``rebalance.migrated_slots``);
4. **flip** the routing epoch atomically (:meth:`ReplicaMap.thaw`) and
   release the donor table.

Because the shard is quiescent between drain and flip, the copied table
is byte-identical to what the donor would have held — the migration
determinism tests byte-compare post-run shard state against a
no-migration oracle run on this property.

A zipfian-hot shard (one shard dominating the load) is *split* instead
of moved: keys whose hash has the top bit set are re-routed to a new
child shard with its own replica chain, seeded by copying the parent's
primary table (stale slots in the child are unreachable — the key-hash
word filters them out on read).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .chain import ApplyLedger, Placement, ReplicaMap, repl_slot_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...mpi.osc.window import Win

__all__ = ["Rebalancer", "REBALANCE_COLLECTOR_METRICS"]

#: Rebalance metrics pulled by the driver's registry collector — from
#: the :class:`ReplicaMap` (epoch bookkeeping) and the
#: :class:`Rebalancer` (copy accounting).
REBALANCE_COLLECTOR_METRICS = (
    "rebalance.migrations", "rebalance.splits", "rebalance.migrated_bytes",
    "rebalance.migrated_slots", "rebalance.epoch_flips",
    "rebalance.blocked_ops", "rebalance.drained_ops", "rebalance.epoch",
)


class Rebalancer:
    """Watches hot-shard accounting; migrates or splits hot shards."""

    def __init__(self, win: "Win", replicas: ReplicaMap, value_size: int,
                 ledger: Optional[ApplyLedger] = None,
                 interval_us: float = 200.0, max_moves: int = 4,
                 split_hot_imbalance: Optional[float] = None,
                 drain_poll_us: float = 5.0):
        self.win = win
        self.replicas = replicas
        self.slot_size = repl_slot_bytes(value_size)
        self.table_span = replicas.slots_per_shard * self.slot_size
        self.ledger = ledger
        self.interval_us = interval_us
        self.max_moves = max_moves
        #: imbalance ratio above which a hot *base* shard is split
        #: instead of moved (None disables splitting — the migration
        #: determinism oracle requires move-only runs).
        self.split_hot_imbalance = split_hot_imbalance
        self.drain_poll_us = drain_poll_us
        self.engine = win.engine
        # -- copy accounting (pulled by the rebalance collector) --------------
        self.migrations = 0
        self.splits = 0
        self.migrated_bytes = 0
        self.migrated_slots = 0

    @property
    def moves(self) -> int:
        return self.migrations + self.splits

    def run(self, ctx, stop: dict):
        """The rebalancer rank's program body: poll until the clients
        flag ``stop["done"]``, acting on hot-shard evidence."""
        while not stop.get("done"):
            yield self.engine.timeout(self.interval_us)
            if self.moves >= self.max_moves:
                continue
            hot = self.replicas.hot_shards()
            if not hot:
                continue
            # Hottest first; index tie-break keeps the choice stable.
            shard = max(hot, key=lambda s: (self.replicas.op_counts[s], -s))
            if self._should_split(shard):
                yield from self._split(shard)
            else:
                yield from self._migrate(shard)

    # -- policy ---------------------------------------------------------------

    def _should_split(self, shard: int) -> bool:
        if self.split_hot_imbalance is None:
            return False
        if shard >= self.replicas.n_base_shards:
            return False  # split children are moved, not re-split
        if shard in self.replicas.split_child:
            return False
        return self.replicas.imbalance() >= self.split_hot_imbalance

    def _pick_acceptor(self, shard: int,
                       exclude: set[int]) -> Optional[Placement]:
        """Coldest live server rank with a free table, outside the
        shard's current chain; None when capacity is exhausted."""
        chain_ranks = {p.rank for p in self.replicas.chains[shard]}
        candidates = [
            rank for rank in self.replicas.server_ranks
            if rank not in chain_ranks and rank not in exclude
            and not self.replicas.is_dead(rank)
            and self.replicas.free_tables(rank) > 0
        ]
        if not candidates:
            return None
        rank = min(candidates, key=lambda r: (self.replicas.rank_load(r), r))
        return Placement(rank, self.replicas.take_table(rank))

    # -- the moves ------------------------------------------------------------

    def _quiesce(self, shard: int):
        """Freeze the shard and wait for in-flight old-epoch ops.

        The ops in flight at freeze time are the ones the flip must
        drain against the old epoch — that head count is what
        ``rebalance.drained_ops`` reports.
        """
        self.replicas.freeze(shard)
        self.replicas.drained_ops += self.replicas.inflight[shard]
        while self.replicas.inflight[shard] > 0:
            yield self.engine.timeout(self.drain_poll_us)

    def _copy_table(self, src: Placement, dst: Placement):
        """Stream one whole slot table src -> dst through the window."""
        data = yield from self.win.get(self.table_span, src.rank,
                                       src.table * self.table_span)
        raw = np.ascontiguousarray(np.asarray(data)).view(np.uint8)
        yield from self.win.put(raw, dst.rank, dst.table * self.table_span)
        yield from self.win.flush(dst.rank)
        self.migrated_bytes += self.table_span
        self.migrated_slots += self.replicas.slots_per_shard

    def _migrate(self, shard: int):
        """Move the shard's primary table to a colder rank."""
        acceptor = self._pick_acceptor(shard, exclude=set())
        if acceptor is None:
            return
        device = self.win.device
        device._trace("rebalance.migrate.begin", shard=shard,
                      to_rank=acceptor.rank)
        yield from self._quiesce(shard)
        donor = self.replicas.chains[shard][0]
        yield from self._copy_table(donor, acceptor)
        if self.ledger is not None:
            self.ledger.copy_table(shard, donor.rank, shard, acceptor.rank,
                                   self.replicas.slots_per_shard)
        self.replicas.move(shard, 0, acceptor)
        self.replicas.release_table(donor.rank, donor.table)
        self.replicas.thaw(shard)  # the atomic epoch flip
        self.migrations += 1
        device._trace("rebalance.migrate.end", shard=shard,
                      epoch=self.replicas.epoch)

    def _split(self, shard: int):
        """Key-range split: top-bit keys move to a new child chain."""
        depth = len(self.replicas.chains[shard])
        placements: list[Placement] = []
        exclude: set[int] = set()
        for _ in range(depth):
            placement = self._pick_acceptor(shard, exclude)
            if placement is None:
                # Not enough spare capacity for a full-depth child chain:
                # roll back the partial allocation and fall back to a move.
                for p in placements:
                    self.replicas.release_table(p.rank, p.table)
                yield from self._migrate(shard)
                return
            placements.append(placement)
            exclude.add(placement.rank)
        device = self.win.device
        device._trace("rebalance.split.begin", shard=shard)
        yield from self._quiesce(shard)
        parent = self.replicas.chains[shard][0]
        for placement in placements:
            yield from self._copy_table(parent, placement)
        child = self.replicas.add_split(shard, placements)
        if self.ledger is not None:
            for placement in placements:
                self.ledger.copy_table(shard, parent.rank, child,
                                       placement.rank,
                                       self.replicas.slots_per_shard)
        self.replicas.thaw(shard)
        self.splits += 1
        device._trace("rebalance.split.end", shard=shard, child=child,
                      epoch=self.replicas.epoch)
