"""Chain (primary -> backup) replication for the RMA key-value service.

The base :class:`~repro.svc.store.RmaKvStore` proves the one-sided
serving pattern; this module makes it survive rank loss.  Every logical
shard is backed by a *chain* of replica tables on distinct server ranks.
All replication traffic is the client's own one-sided traffic — servers
stay passive, exactly as in the unreplicated store:

* **writes** claim the *primary* slot's seqlock busy bit first
  (``Win.fetch_and_op(op="bor")``) and hold it across the whole chain.
  The value, key-hash and *tag* words are then published hop by hop down
  the chain (primary first), each hop acknowledged by a flush; finally
  the seqlock versions are released in *reverse* chain order, so the
  primary — the read target — becomes readable only after every backup
  holds the write.  Because every writer claims the primary first, the
  per-slot apply order is identical on every chain member.
* **tags are the version vector**: each write carries a globally unique
  64-bit tag ``(client_id + 1) << 24 | seq``.  A replayed write reads
  the slot's tag word under the claim and *skips* publication when its
  tag is already present (``repl.replay_skips``) — this is what makes
  lost-ack replay after a failover exactly-once instead of
  at-least-once.
* **reads** are seqlock-validated gets from the chain head, as in the
  base store (24-byte header: hash, version, tag).
* **failure** is modeled by a :class:`FailoverPlan`: after a fixed
  number of completed chain writes the victim group's primary rank is
  marked dead.  The next client op that routes to it pays a detection
  timeout (``detect_cost_us``), fails the chain over — the dead rank is
  dropped from every chain it serves and the backup is promoted — and
  replays its in-flight write through the surviving chain.  The gap
  between the kill and the first completed op on the affected group is
  the measured *availability gap* (``repl.failover_gap_us``).

Slot layout (``REPL_SLOT_HEADER`` = 24 bytes)::

    [0:8)    key-hash word (``hash_key``; 0 = empty slot)
    [8:16)   version word  (seqlock: odd = write in progress)
    [16:24)  tag word      (version vector: last writer's unique tag)
    [24:..)  value bytes   (fixed ``value_size``, 8-byte padded)

Every apply is mirrored into a host-side :class:`ApplyLedger` — the
driver's exactly-once oracle checks that no tag was applied twice to any
replica, that every live chain member holds the same per-slot apply
sequence, and that the physical tag words match the ledger tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ...mpi.datatypes.basic import UNSIGNED_LONG
from ...obs.metrics import Counter, Histogram
from ..shard import hash_key, hot_shard_indices, shard_imbalance
from ..store import _word

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...mpi.osc.window import Win

__all__ = [
    "ApplyLedger", "FailoverPlan", "Placement", "ReplInstruments",
    "ReplicaMap", "ReplicatedKvStore", "REPL_COUNTERS", "REPL_HISTOGRAMS",
    "REPL_SLOT_HEADER", "repl_slot_bytes",
]

#: Bytes of slot metadata ahead of the value: hash + version + tag words.
REPL_SLOT_HEADER = 24
R_HASH_OFF = 0
R_VER_OFF = 8
R_TAG_OFF = 16
R_VAL_OFF = 24

#: Store event counters (registered as ``repl.<name>``).
REPL_COUNTERS = (
    "reads", "read_misses", "read_retries", "read_fallbacks",
    "writes", "write_conflicts", "write_fallbacks",
    "forwards", "acks", "replays", "replay_skips",
    "dead_hops", "failovers", "arrivals", "shed_ops",
)

#: Latency histograms (registered as ``repl.<name>``).  ``service`` is
#: time from first service to completion (what a closed-loop driver
#: sees); ``sojourn`` is time from *arrival* to completion (open loop
#: only — it includes queueing, the tail the closed loop hides).
REPL_HISTOGRAMS = ("read_latency_us", "write_latency_us",
                   "service_latency_us", "sojourn_latency_us")


def repl_slot_bytes(value_size: int) -> int:
    """Replicated slot size: 24B header + value padded to 8B words."""
    return REPL_SLOT_HEADER + ((value_size + 7) // 8) * 8


class ReplInstruments:
    """The ``repl.*`` instruments, shared by every client's store."""

    def __init__(self, counters: dict[str, Counter],
                 histograms: dict[str, Histogram]):
        self.counters = counters
        self.histograms = histograms

    @classmethod
    def registered(cls, registry) -> "ReplInstruments":
        return cls(
            {name: registry.counter(f"repl.{name}", unit="1",
                                    owner="repro.svc.repl")
             for name in REPL_COUNTERS},
            {name: registry.histogram(f"repl.{name}", unit="us",
                                      owner="repro.svc.repl")
             for name in REPL_HISTOGRAMS},
        )

    @classmethod
    def standalone(cls) -> "ReplInstruments":
        return cls(
            {name: Counter(f"repl.{name}") for name in REPL_COUNTERS},
            {name: Histogram(f"repl.{name}") for name in REPL_HISTOGRAMS},
        )


@dataclass(frozen=True)
class Placement:
    """One replica's physical home: a slot table on a server rank."""

    rank: int
    table: int


class ReplicaMap:
    """Shard -> replica-chain placement, plus epoch and load accounting.

    The map is the host-side routing/configuration service every client
    consults (stand-in for etcd/ZooKeeper — its updates are atomic
    host-side mutations, which is exactly the "config flip" a real
    service would read from a coordination service).  Routing decisions:

    * a key hashes to a *base* shard (``h % n_base_shards``); if that
      shard has been range-split, keys whose hash has the top bit set
      route to the split child instead — deterministic, so both halves
      of a split stay addressable without rehashing the survivors;
    * a shard's chain is its live placements in order (head = primary);
    * ``epoch`` increments on every routing change (failover, migration
      epoch flip, split commit).  In-flight ops that complete under an
      older epoch than the current one are counted as *drained*
      (``rebalance.drained_ops``) — the draining rule that makes epoch
      flips safe is enforced by :class:`~repro.svc.repl.Rebalancer`
      freezing the shard first.
    """

    def __init__(self, group_ranks: list[list[int]], slots_per_shard: int,
                 tables_per_server: int = 2, hot_factor: float = 2.0):
        if not group_ranks:
            raise ValueError("need at least one replica group")
        for chain in group_ranks:
            if not chain:
                raise ValueError("every replica group needs >= 1 rank")
            if len(set(chain)) != len(chain):
                raise ValueError(f"duplicate rank in chain {chain}")
        if tables_per_server < 1:
            raise ValueError("tables_per_server must be >= 1")
        if hot_factor <= 1.0:
            raise ValueError(f"hot_factor must exceed 1.0, got {hot_factor}")
        self.slots_per_shard = slots_per_shard
        self.tables_per_server = tables_per_server
        self.hot_factor = hot_factor
        self.server_ranks = sorted({r for chain in group_ranks for r in chain})
        self._free: dict[int, list[int]] = {
            rank: list(range(tables_per_server - 1, -1, -1))
            for rank in self.server_ranks
        }
        self.chains: list[list[Placement]] = [
            [Placement(rank, self.take_table(rank)) for rank in chain]
            for chain in group_ranks
        ]
        self.n_base_shards = len(self.chains)
        #: shard -> replica group (split children inherit the parent's).
        self.group = list(range(len(self.chains)))
        self.split_child: dict[int, int] = {}
        self.split_parent: dict[int, int] = {}
        self.dead: set[int] = set()
        self.routed_out: set[int] = set()
        self.epoch = 0
        self.frozen: set[int] = set()
        self.inflight = [0] * len(self.chains)
        self.op_counts = [0] * len(self.chains)
        # Rebalance/availability accounting (pulled by the collectors).
        self.epoch_flips = 0
        self.blocked_ops = 0
        self.drained_ops = 0
        self.failovers = 0

    # -- table allocation -----------------------------------------------------

    def take_table(self, rank: int) -> int:
        free = self._free[rank]
        if not free:
            raise ValueError(f"rank {rank} has no free slot table")
        return free.pop()

    def release_table(self, rank: int, table: int) -> None:
        self._free[rank].append(table)

    def free_tables(self, rank: int) -> int:
        return len(self._free[rank])

    # -- routing --------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.chains)

    def locate(self, key: str) -> tuple[int, int, int]:
        """(shard, slot, hash) of ``key`` under the current epoch."""
        h = hash_key(key)
        shard = h % self.n_base_shards
        if shard in self.split_child and (h >> 63) & 1:
            shard = self.split_child[shard]
        slot = (h >> 20) % self.slots_per_shard
        return shard, slot, h

    def chain(self, shard: int) -> list[Placement]:
        """The *routing* chain of ``shard`` (head = primary).

        Deliberately not filtered by ``dead``: a silent death keeps
        receiving routes until some client detects it and calls
        :meth:`fail_over` — the window between the two is the
        availability gap.
        """
        return list(self.chains[shard])

    def live_chain(self, shard: int) -> list[Placement]:
        """The chain members still alive (the verification view)."""
        return [p for p in self.chains[shard] if p.rank not in self.dead]

    def chain_depth(self) -> int:
        """Shortest live chain across shards (the redundancy floor)."""
        return min(len(self.live_chain(s)) for s in range(self.n_shards))

    def is_dead(self, rank: int) -> bool:
        return rank in self.dead

    def mark_dead(self, rank: int) -> None:
        """The failure itself: the rank stops serving, silently.

        Routing still points at it until a client *detects* the death
        and calls :meth:`fail_over` — the window between the two is the
        availability gap the driver measures.
        """
        self.dead.add(rank)

    def fail_over(self, rank: int) -> list[int]:
        """Drop ``rank`` from every chain, promote backups, bump epoch.

        Idempotent per rank: only the first detection reconfigures (and
        counts a failover); late detectors see an empty affected list.
        Returns the shards whose chain changed.
        """
        if rank in self.routed_out:
            return []
        self.routed_out.add(rank)
        affected = []
        for shard, chain in enumerate(self.chains):
            kept = [p for p in chain if p.rank != rank]
            if len(kept) == len(chain):
                continue
            if not kept:
                raise RuntimeError(
                    f"shard {shard} lost its last replica (rank {rank})")
            self.chains[shard] = kept
            affected.append(shard)
        self.epoch += 1
        self.failovers += 1
        return affected

    # -- epoch / freeze / drain bookkeeping -----------------------------------

    def is_frozen(self, shard: int) -> bool:
        return shard in self.frozen

    def freeze(self, shard: int) -> None:
        self.frozen.add(shard)

    def thaw(self, shard: int) -> None:
        """Unfreeze after a migration/split copy: the atomic epoch flip."""
        self.frozen.discard(shard)
        self.epoch += 1
        self.epoch_flips += 1

    def begin_op(self, shard: int) -> int:
        self.inflight[shard] += 1
        return self.epoch

    def end_op(self, shard: int, epoch0: int) -> None:
        self.inflight[shard] -= 1
        if self.epoch != epoch0:
            # The routing epoch moved underneath this op (failover
            # mid-flight) — it completed against a superseded epoch.
            self.drained_ops += 1

    # -- reconfiguration (rebalancer-driven) ----------------------------------

    def move(self, shard: int, position: int, placement: Placement) -> None:
        self.chains[shard][position] = placement

    def add_split(self, base: int, placements: list[Placement]) -> int:
        """Commit a key-range split of ``base``; returns the child shard."""
        if base in self.split_child or base in self.split_parent:
            raise ValueError(f"shard {base} is already split")
        child = len(self.chains)
        self.chains.append(list(placements))
        self.group.append(self.group[base])
        self.inflight.append(0)
        self.op_counts.append(0)
        self.split_child[base] = child
        self.split_parent[child] = base
        return child

    # -- load accounting (shared helpers with ShardMap) -----------------------

    def record(self, shard: int) -> None:
        self.op_counts[shard] += 1

    def total_ops(self) -> int:
        return sum(self.op_counts)

    def imbalance(self) -> float:
        return shard_imbalance(self.op_counts)

    def hot_shards(self) -> list[int]:
        return hot_shard_indices(self.op_counts, self.hot_factor)

    def rank_load(self, rank: int) -> int:
        """Ops routed to shards this rank serves (acceptor choice input)."""
        return sum(self.op_counts[s] for s, chain in enumerate(self.chains)
                   if any(p.rank == rank for p in chain))


@dataclass
class FailoverPlan:
    """A deterministic, seed-stable primary kill.

    The kill fires when the ``kill_after_writes``-th chain write
    completes (counted across all clients), killing the *current
    primary* of ``kill_group``'s base shard.  Firing on an apply count
    rather than a wall-clock time keeps the cell byte-deterministic
    under any timing change.  ``detect_cost_us`` is the failure-detector
    timeout a client pays on first contact with the dead rank.
    """

    kill_group: int = 0
    kill_after_writes: int = 20
    detect_cost_us: float = 40.0
    # -- recorded during the run ----------------------------------------------
    applies: int = field(default=0, repr=False)
    kill_rank: Optional[int] = field(default=None, repr=False)
    kill_time: Optional[float] = field(default=None, repr=False)
    recover_time: Optional[float] = field(default=None, repr=False)

    def describe(self) -> dict:
        return {
            "kill_group": self.kill_group,
            "kill_after_writes": self.kill_after_writes,
            "detect_cost_us": self.detect_cost_us,
        }

    def note_write(self, replicas: ReplicaMap, now: float) -> Optional[int]:
        """Count one completed chain write; returns the rank just killed
        (exactly once), else None."""
        self.applies += 1
        if self.kill_time is not None or self.applies < self.kill_after_writes:
            return None
        victim = replicas.chain(self.kill_group)[0].rank
        replicas.mark_dead(victim)
        self.kill_rank = victim
        self.kill_time = now
        return victim

    def note_op_done(self, replicas: ReplicaMap, shard: int,
                     now: float) -> None:
        """First completed op on the affected group *after* the dead rank
        was routed out closes the availability gap."""
        if (self.kill_time is None or self.recover_time is not None
                or replicas.group[shard] != self.kill_group
                or self.kill_rank not in replicas.routed_out):
            return
        self.recover_time = now

    def gap_us(self, end_time: float) -> float:
        """The availability gap (0 before the kill; open gaps run to
        ``end_time``)."""
        if self.kill_time is None:
            return 0.0
        end = self.recover_time if self.recover_time is not None else end_time
        return max(0.0, end - self.kill_time)


class ApplyLedger:
    """Host-side version-vector oracle: every apply, per replica.

    ``record`` appends the tag a client just published to one replica's
    (shard, slot); ``copy_table`` mirrors what a migration/split copy
    does to the physical tables.  :meth:`check` is the exactly-once
    verdict the driver reports.
    """

    def __init__(self):
        #: (shard, slot) -> rank -> [tags in apply order]
        self.applies: dict[tuple[int, int], dict[int, list[int]]] = {}

    def record(self, shard: int, slot: int, rank: int, tag: int) -> None:
        self.applies.setdefault((shard, slot), {}).setdefault(
            rank, []).append(tag)

    def copy_table(self, shard: int, from_rank: int, to_shard: int,
                   to_rank: int, slots: int) -> None:
        """Mirror a whole-table copy: the destination replica inherits
        the source's per-slot apply history (its physical tag words are
        now byte-identical to the source's)."""
        for slot in range(slots):
            source = self.applies.get((shard, slot), {}).get(from_rank)
            if source:
                dest = self.applies.setdefault((to_shard, slot), {})
                dest[to_rank] = list(source)

    def check(self, replicas: ReplicaMap) -> dict:
        """Exactly-once + chain-agreement verdict over live replicas.

        * ``duplicates`` — a tag applied twice to the same replica slot
          (a replay that failed to dedupe);
        * ``disagreements`` — two live members of a chain whose per-slot
          apply sequences differ (a write that skipped a replica).
        """
        duplicates: list[dict] = []
        disagreements: list[dict] = []
        for (shard, slot), by_rank in sorted(self.applies.items()):
            live = {rank: tags for rank, tags in by_rank.items()
                    if rank not in replicas.dead}
            for rank in sorted(live):
                tags = live[rank]
                if len(tags) != len(set(tags)):
                    duplicates.append(
                        {"shard": shard, "slot": slot, "rank": rank})
            chain_ranks = [p.rank for p in replicas.live_chain(shard)]
            sequences = [tuple(live.get(rank, ())) for rank in chain_ranks
                         if rank in live]
            if len(set(sequences)) > 1:
                disagreements.append({"shard": shard, "slot": slot,
                                      "ranks": chain_ranks})
        return {
            "ok": not duplicates and not disagreements,
            "duplicates": duplicates,
            "disagreements": disagreements,
            "slots_applied": len(self.applies),
        }


class ReplicatedKvStore:
    """Client-side handle on a chain-replicated slot store.

    All methods are DES generators, like the base store.  ``table_span``
    is the byte stride between consecutive tables in a server's window
    part (every table is the same size, so it equals the table size).
    """

    def __init__(self, win: "Win", replicas: ReplicaMap, value_size: int,
                 instruments: Optional[ReplInstruments] = None,
                 client_id: int = 0, plan: Optional[FailoverPlan] = None,
                 ledger: Optional[ApplyLedger] = None,
                 on_payload: Optional[Callable[[int], None]] = None,
                 max_read_retries: int = 4, max_claim_retries: int = 3,
                 backoff_us: float = 2.0, freeze_poll_us: float = 5.0):
        if value_size < 1:
            raise ValueError(f"value_size must be >= 1, got {value_size}")
        self.win = win
        self.replicas = replicas
        self.value_size = value_size
        self.slot_size = repl_slot_bytes(value_size)
        self.table_span = replicas.slots_per_shard * self.slot_size
        self.m = instruments or ReplInstruments.standalone()
        self.client_id = client_id
        self.plan = plan
        self.ledger = ledger
        self.on_payload = on_payload
        self.max_read_retries = max_read_retries
        self.max_claim_retries = max_claim_retries
        self.backoff_us = backoff_us
        self.freeze_poll_us = freeze_poll_us
        self.engine = win.engine
        self._seq = 0

    # -- shared plumbing ------------------------------------------------------

    def _payload(self, nbytes: int) -> None:
        if self.on_payload is not None:
            self.on_payload(nbytes)

    def _slot_base(self, placement: Placement, slot: int) -> int:
        return placement.table * self.table_span + slot * self.slot_size

    def _next_tag(self) -> int:
        """A globally unique write tag: the client's version-vector entry."""
        self._seq += 1
        return ((self.client_id + 1) << 24) | self._seq

    def _resolve(self, key: str):
        """Route ``key``, waiting out any freeze on its shard."""
        waited = False
        while True:
            shard, slot, h = self.replicas.locate(key)
            if not self.replicas.is_frozen(shard):
                if not waited:
                    self.replicas.record(shard)
                return shard, slot, h
            if not waited:
                waited = True
                self.replicas.record(shard)
                self.replicas.blocked_ops += 1
            yield self.engine.timeout(self.freeze_poll_us)

    def _touch(self, rank: int):
        """Liveness gate before contacting ``rank``.

        Live ranks return True immediately.  On a dead rank the client
        pays the failure-detector timeout, fails the chain over (first
        detector only — reconfiguration is idempotent) and returns
        False so the caller re-resolves under the new epoch.
        """
        if not self.replicas.is_dead(rank):
            return True
        self.m.counters["dead_hops"].inc()
        yield self.engine.timeout(self.plan.detect_cost_us if self.plan
                                  else self.backoff_us * 8)
        affected = self.replicas.fail_over(rank)
        if affected:
            self.m.counters["failovers"].inc()
            self.win.device._trace("repl.failover", victim=rank,
                                   shards=len(affected),
                                   epoch=self.replicas.epoch)
        return False

    # -- reads ----------------------------------------------------------------

    def get(self, key: str):
        """Seqlock-validated read from the chain head; bytes or None."""
        device = self.win.device
        self.m.counters["reads"].inc()
        device._trace("repl.get.begin", key=key)
        t0 = self.engine.now
        while True:
            shard, slot, h = yield from self._resolve(key)
            epoch0 = self.replicas.begin_op(shard)
            head = self.replicas.chain(shard)[0]
            if not (yield from self._touch(head.rank)):
                self.replicas.end_op(shard, epoch0)
                continue
            value = yield from self._read_slot(head, slot, h)
            self.replicas.end_op(shard, epoch0)
            break
        if self.plan:
            self.plan.note_op_done(self.replicas, shard, self.engine.now)
        self.m.histograms["read_latency_us"].observe(self.engine.now - t0)
        device._trace("repl.get.end", key=key, hit=value is not None)
        return value

    def _read_once(self, placement: Placement, slot: int, want: int):
        base = self._slot_base(placement, slot)
        blob = yield from self.win.get(self.slot_size, placement.rank, base)
        self._payload(self.slot_size)
        raw = np.ascontiguousarray(np.asarray(blob)).view(np.uint8)
        v1 = int.from_bytes(raw[R_VER_OFF:R_VER_OFF + 8].tobytes(), "little")
        if v1 & 1:  # write in progress
            return False, None
        ver = yield from self.win.get(8, placement.rank, base + R_VER_OFF)
        if _word(ver) != v1:  # slot changed underneath the read
            return False, None
        stored = int.from_bytes(raw[R_HASH_OFF:R_HASH_OFF + 8].tobytes(),
                                "little")
        if stored != want:  # empty, or another key hashed here
            return True, None
        return True, bytes(raw[R_VAL_OFF:R_VAL_OFF + self.value_size])

    def _read_slot(self, placement: Placement, slot: int, want: int):
        for attempt in range(self.max_read_retries):
            stable, value = yield from self._read_once(placement, slot, want)
            if stable:
                if value is None:
                    self.m.counters["read_misses"].inc()
                return value
            self.m.counters["read_retries"].inc()
            yield self.engine.timeout(self.backoff_us * (attempt + 1))
        self.m.counters["read_fallbacks"].inc()
        yield from self.win.lock(placement.rank, exclusive=False)
        value = None
        for attempt in range(self.max_read_retries):
            stable, value = yield from self._read_once(placement, slot, want)
            if stable:
                break
            yield self.engine.timeout(self.backoff_us * (attempt + 1))
        yield from self.win.unlock(placement.rank)
        return value

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: bytes):
        """Replicate ``value`` under ``key`` through the shard's chain."""
        if len(value) != self.value_size:
            raise ValueError(
                f"value must be exactly {self.value_size} B, got {len(value)}"
            )
        device = self.win.device
        self.m.counters["writes"].inc()
        device._trace("repl.put.begin", key=key)
        t0 = self.engine.now
        tag = self._next_tag()
        attempt = 0
        while True:
            shard, slot, h = yield from self._resolve(key)
            epoch0 = self.replicas.begin_op(shard)
            done = yield from self._chain_write(shard, slot, h, tag, value)
            self.replicas.end_op(shard, epoch0)
            if done:
                break
            # A chain member died underneath this write: replay it
            # through the failed-over chain.  The tag dedupes any hop
            # that already applied, so the replay is exactly-once.
            attempt += 1
            self.m.counters["replays"].inc()
        if self.plan:
            killed = self.plan.note_write(self.replicas, self.engine.now)
            if killed is not None:
                device._trace("repl.kill", victim=killed,
                              after_writes=self.plan.applies)
            self.plan.note_op_done(self.replicas, shard, self.engine.now)
        self.m.histograms["write_latency_us"].observe(self.engine.now - t0)
        device._trace("repl.put.end", key=key, attempts=attempt + 1)
        return True

    def _chain_write(self, shard: int, slot: int, h: int, tag: int,
                     value: bytes):
        """One pass down the live chain; False = a member died, replay."""
        chain = self.replicas.chain(shard)
        claimed: list[tuple[Placement, int]] = []
        for hop, placement in enumerate(chain):
            if not (yield from self._touch(placement.rank)):
                # Late death detection: release whatever we already
                # claimed (those hops keep their published data; the
                # replay will dedupe on the tag) and signal a replay.
                yield from self._release(claimed)
                return False
            yield from self._claim(placement, slot)
            claimed.append((placement, self._slot_base(placement, slot)))
            current = yield from self.win.get(
                8, placement.rank, self._slot_base(placement, slot) + R_TAG_OFF)
            if _word(current) == tag:
                self.m.counters["replay_skips"].inc()
            else:
                yield from self._publish(placement, slot, h, tag, value)
                if self.ledger is not None:
                    self.ledger.record(shard, slot, placement.rank, tag)
            if hop > 0:
                self.m.counters["forwards"].inc()
            # The flush inside _publish / the tag read is this hop's
            # versioned ack: the data is durable on the member before
            # the next hop starts.
            self.m.counters["acks"].inc()
        yield from self._release(claimed)
        return True

    def _claim(self, placement: Placement, slot: int):
        """Claim the member's seqlock busy bit (retry, lock fallback).

        Chain members are always claimed head-first, so slot claims are
        acquired in one global order and cannot deadlock.
        """
        base = self._slot_base(placement, slot)
        for attempt in range(self.max_claim_retries):
            prev = yield from self.win.fetch_and_op(
                np.array([1], dtype=np.uint64), placement.rank,
                base + R_VER_OFF, op="bor", datatype=UNSIGNED_LONG,
            )
            if _word(prev) % 2 == 0:
                return True
            self.m.counters["write_conflicts"].inc()
            yield self.engine.timeout(self.backoff_us * (attempt + 1))
        self.m.counters["write_fallbacks"].inc()
        yield from self.win.lock(placement.rank, exclusive=True)
        while True:
            prev = yield from self.win.fetch_and_op(
                np.array([1], dtype=np.uint64), placement.rank,
                base + R_VER_OFF, op="bor", datatype=UNSIGNED_LONG,
            )
            if _word(prev) % 2 == 0:
                break
            yield self.engine.timeout(self.backoff_us)
        yield from self.win.unlock(placement.rank)
        return True

    def _publish(self, placement: Placement, slot: int, h: int, tag: int,
                 value: bytes):
        """Write value + tag + hash into a claimed member slot (no
        release — the seqlock stays held until the whole chain acked)."""
        base = self._slot_base(placement, slot)
        payload = np.frombuffer(value, dtype=np.uint8)
        yield from self.win.put(payload, placement.rank, base + R_VAL_OFF)
        tag_word = np.frombuffer(tag.to_bytes(8, "little"), dtype=np.uint8)
        yield from self.win.put(tag_word, placement.rank, base + R_TAG_OFF)
        hash_word = np.frombuffer(h.to_bytes(8, "little"), dtype=np.uint8)
        yield from self.win.put(hash_word, placement.rank, base + R_HASH_OFF)
        yield from self.win.flush(placement.rank)
        self._payload(len(value) + 16)

    def _release(self, claimed: list[tuple[Placement, int]]):
        """Release held seqlocks in reverse chain order: the primary —
        the read target — becomes readable last, after every backup
        already holds the write."""
        for placement, base in reversed(claimed):
            if self.replicas.is_dead(placement.rank):
                continue  # the member is gone; nothing to release
            yield from self.win.accumulate(
                np.array([1], dtype=np.uint64), placement.rank,
                base + R_VER_OFF, op="sum", datatype=UNSIGNED_LONG,
            )
            yield from self.win.flush(placement.rank)
