"""The replicated-service driver: chains, failover, rebalancing, load.

:func:`run_replicated_service` builds a cluster of
``n_groups x replication`` passive server ranks, ``n_clients`` client
ranks and (when rebalancing is on) one rebalancer rank, then runs the
seeded workload through :class:`~repro.svc.repl.ReplicatedKvStore`
handles.  Load is either closed-loop (issue-on-completion, like
`repro.svc.driver`) or open-loop via
:class:`~repro.svc.repl.OpenLoopSpec` — the mode that makes overload
tails measurable.

Verification is structural, not statistical:

* the :class:`~repro.svc.repl.ApplyLedger` asserts **exactly-once
  apply** — no tag applied twice to any replica and every live chain
  member holds the same per-slot apply sequence;
* the final *physical* tag words (read host-side out of each server's
  window part after the last fence) must equal the ledger tails;
* ``state_digests`` fingerprints each shard's serving table — the
  migration determinism tests byte-compare these against a
  no-migration oracle run.

Determinism: the whole report is bit-identical for a given
(config, policy, fault plan) triple, failover and rebalancing included
— the kill fires on a write count, not a time, and every random draw
is seeded.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ...cluster import Cluster
from ...hardware.sci.faults import FaultPlan
from ...mpi.transport.policy import TransferPolicy
from ..workload import WorkloadSpec, client_ops
from .chain import (ApplyLedger, FailoverPlan, R_TAG_OFF, ReplicaMap,
                    ReplicatedKvStore, ReplInstruments, repl_slot_bytes)
from .openloop import OpenLoopSpec, arrival_times, open_loop_client
from .rebalance import REBALANCE_COLLECTOR_METRICS, Rebalancer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...scenarios.base import ScenarioInstruments

__all__ = ["ReplicatedServiceConfig", "ReplicatedRun", "execute_replicated",
           "run_replicated_service", "REPL_COLLECTOR_METRICS"]

#: Availability/routing gauges pulled from the live objects at snapshot.
REPL_COLLECTOR_METRICS = ("repl.availability", "repl.chain_depth",
                          "repl.epoch", "repl.failover_gap_us")


@dataclass(frozen=True)
class ReplicatedServiceConfig:
    """Shape of one replicated-service run (JSON-friendly)."""

    n_groups: int = 2
    replication: int = 2
    n_clients: int = 2
    slots_per_shard: int = 64
    tables_per_server: int = 2
    hot_factor: float = 2.0
    #: > 0 reserves this fraction of the tightest client->server path
    #: for the serving tenant; the rebalancer rank stays outside the
    #: tenant, so migration traffic rides the best-effort lane.
    qos_reserve: float = 0.0
    #: > 0 adds a rebalancer rank polling hot-shard evidence this often.
    rebalance_interval_us: float = 0.0
    rebalance_max_moves: int = 4
    #: Imbalance ratio that triggers a key-range split instead of a
    #: move (None = moves only; required by the determinism oracle).
    split_hot_imbalance: Optional[float] = None
    failover: Optional[FailoverPlan] = None
    open_loop: Optional[OpenLoopSpec] = None
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self):
        if self.n_groups < 1 or self.replication < 1 or self.n_clients < 1:
            raise ValueError("need >= 1 group, replica and client")
        if self.failover is not None and self.replication < 2:
            raise ValueError("failover needs replication >= 2")
        if not 0.0 <= self.qos_reserve < 1.0:
            raise ValueError(f"qos_reserve {self.qos_reserve} outside [0, 1)")
        if self.workload.incr_fraction != 0.0:
            raise ValueError(
                "the replicated store serves blobs only; set the "
                "workload's incr_fraction to 0")

    @property
    def n_servers(self) -> int:
        return self.n_groups * self.replication

    @property
    def total_ranks(self) -> int:
        return (self.n_servers + self.n_clients
                + (1 if self.rebalance_interval_us > 0.0 else 0))

    def group_ranks(self) -> list[list[int]]:
        return [[g * self.replication + r for r in range(self.replication)]
                for g in range(self.n_groups)]

    def describe(self) -> dict:
        return {
            "n_groups": self.n_groups,
            "replication": self.replication,
            "n_clients": self.n_clients,
            "slots_per_shard": self.slots_per_shard,
            "tables_per_server": self.tables_per_server,
            "hot_factor": self.hot_factor,
            "qos_reserve": self.qos_reserve,
            "rebalance_interval_us": self.rebalance_interval_us,
            "rebalance_max_moves": self.rebalance_max_moves,
            "split_hot_imbalance": self.split_hot_imbalance,
            "failover": (None if self.failover is None
                         else self.failover.describe()),
            "open_loop": (None if self.open_loop is None
                          else self.open_loop.describe()),
        }


@dataclass
class ReplicatedRun:
    """One executed run: the report plus the live verification artifacts."""

    report: dict
    replicas: ReplicaMap
    ledger: ApplyLedger
    plan: Optional[FailoverPlan]
    #: rank -> copy of the server's window part after the final fence.
    tables: dict[int, np.ndarray]


def _fresh_plan(plan: Optional[FailoverPlan]) -> Optional[FailoverPlan]:
    """A state-free copy, so re-running a config stays byte-identical."""
    if plan is None:
        return None
    return FailoverPlan(**plan.describe())


def _register_collectors(registry, engine, replicas: ReplicaMap,
                         rebalancer_holder: list,
                         plan: Optional[FailoverPlan]) -> None:
    def collect_repl():
        now = engine.now
        gap = plan.gap_us(now) if plan is not None else 0.0
        return {
            "repl.availability": 1.0 - (gap / now if now > 0.0 else 0.0),
            "repl.chain_depth": replicas.chain_depth(),
            "repl.epoch": replicas.epoch,
            "repl.failover_gap_us": gap,
        }

    def collect_rebalance():
        rebalancer: Optional[Rebalancer] = rebalancer_holder[0]
        return {
            "rebalance.migrations": rebalancer.migrations if rebalancer else 0,
            "rebalance.splits": rebalancer.splits if rebalancer else 0,
            "rebalance.migrated_bytes":
                rebalancer.migrated_bytes if rebalancer else 0,
            "rebalance.migrated_slots":
                rebalancer.migrated_slots if rebalancer else 0,
            "rebalance.epoch_flips": replicas.epoch_flips,
            "rebalance.blocked_ops": replicas.blocked_ops,
            "rebalance.drained_ops": replicas.drained_ops,
            "rebalance.epoch": replicas.epoch,
        }

    registry.register_collector(list(REPL_COLLECTOR_METRICS), collect_repl)
    registry.register_collector(list(REBALANCE_COLLECTOR_METRICS),
                                collect_rebalance)


def _physical_check(replicas: ReplicaMap, tables: dict[int, np.ndarray],
                    ledger: ApplyLedger, slot_size: int,
                    table_span: int) -> dict:
    """Final tag words in the real window memory == the ledger tails."""
    mismatches: list[dict] = []
    for (shard, slot), by_rank in sorted(ledger.applies.items()):
        for placement in replicas.live_chain(shard):
            tags = by_rank.get(placement.rank)
            if not tags:
                continue  # a missing sequence is flagged by ledger.check
            base = placement.table * table_span + slot * slot_size
            actual = int.from_bytes(
                tables[placement.rank][base + R_TAG_OFF:
                                       base + R_TAG_OFF + 8].tobytes(),
                "little")
            if actual != tags[-1]:
                mismatches.append({
                    "shard": shard, "slot": slot, "rank": placement.rank,
                    "expected": tags[-1], "actual": actual,
                })
    return {"ok": not mismatches, "mismatches": mismatches}


def _state_digests(replicas: ReplicaMap, tables: dict[int, np.ndarray],
                   table_span: int) -> dict[str, str]:
    """crc32 fingerprint of each shard's *serving* (head) table."""
    digests = {}
    for shard in range(replicas.n_shards):
        head = replicas.live_chain(shard)[0]
        view = tables[head.rank][head.table * table_span:
                                 (head.table + 1) * table_span]
        digests[str(shard)] = f"{zlib.crc32(view.tobytes()):08x}"
    return digests


def execute_replicated(cluster: Cluster, config: ReplicatedServiceConfig,
                       scenario_inst: Optional["ScenarioInstruments"] = None,
                       ) -> ReplicatedRun:
    """Drive an existing cluster (the scenario entry point)."""
    if cluster.n_ranks != config.total_ranks:
        raise ValueError(f"config needs {config.total_ranks} ranks, "
                         f"cluster has {cluster.n_ranks}")
    spec = config.workload
    n_servers, n_clients = config.n_servers, config.n_clients
    registry = cluster.metrics
    replicas = ReplicaMap(config.group_ranks(), config.slots_per_shard,
                          tables_per_server=config.tables_per_server,
                          hot_factor=config.hot_factor)
    plan = _fresh_plan(config.failover)
    ledger = ApplyLedger()
    inst = ReplInstruments.registered(registry)
    slot_size = repl_slot_bytes(spec.value_size)
    table_span = config.slots_per_shard * slot_size
    rebalancer_holder: list[Optional[Rebalancer]] = [None]
    has_rebalancer = config.rebalance_interval_us > 0.0

    qos = None
    if config.qos_reserve > 0.0:
        from ...qos import QosManager

        qos = QosManager.install(cluster)
        qos.register_metrics(registry)
        # The serving tenant covers servers + clients only: the
        # rebalancer rank stays best-effort by construction.
        qos.add_tenant("svc", range(n_servers + n_clients))
        paths = [(client, server)
                 for client in range(n_servers, n_servers + n_clients)
                 for server in range(n_servers)]
        rate = config.qos_reserve * min(
            qos.route_capacity(client, server) for client, server in paths)
        reservation = qos.reserve("svc", paths, rate)
        qos.provision(reservation)
        qos.activate(reservation)

    streams = [client_ops(spec, cid, max_counter_keys=1)
               for cid in range(n_clients)]
    stop = {"done": False, "finished": 0}
    tables: dict[int, np.ndarray] = {}
    on_payload = scenario_inst.payload if scenario_inst is not None else None

    def client_body(ctx, win, cid):
        store = ReplicatedKvStore(
            win, replicas, spec.value_size, instruments=inst,
            client_id=cid, plan=plan, ledger=ledger, on_payload=on_payload)
        ops = streams[cid]
        if config.open_loop is not None:
            arrivals = arrival_times(config.open_loop, spec.seed, cid,
                                     len(ops))
            served, shed = yield from open_loop_client(
                store, ops, arrivals, config.open_loop.max_queue)
        else:
            engine = store.engine

            def one_op(op):
                if op.kind == "get":
                    yield from store.get(op.key)
                else:
                    yield from store.put(op.key, op.value)

            served, shed = 0, 0
            for index, op in enumerate(ops):
                if spec.think_time > 0.0:
                    yield engine.timeout(spec.think_time)
                t0 = engine.now
                if scenario_inst is not None and cid == 0:
                    # Step spans on the first client only, so the steps
                    # counter stays exact.
                    with scenario_inst.step(ctx, index):
                        yield from one_op(op)
                else:
                    yield from one_op(op)
                inst.histograms["service_latency_us"].observe(
                    engine.now - t0)
                if scenario_inst is not None:
                    scenario_inst.ops()
                served += 1
        if scenario_inst is not None and config.open_loop is not None:
            scenario_inst.ops(served)
        stop["finished"] += 1
        if stop["finished"] == n_clients:
            stop["done"] = True
        return served, shed

    def program(ctx):
        rank = ctx.comm.rank
        is_server = rank < n_servers
        size = (config.tables_per_server * table_span if is_server else 8)
        win = yield from ctx.comm.win_create(size, shared=True)
        if is_server:
            win.local_view()[:] = 0
        yield from win.fence()
        result = (0, 0)
        if n_servers <= rank < n_servers + n_clients:
            result = yield from client_body(ctx, win, rank - n_servers)
        elif has_rebalancer and rank == config.total_ranks - 1:
            rebalancer = Rebalancer(
                win, replicas, spec.value_size, ledger=ledger,
                interval_us=config.rebalance_interval_us,
                max_moves=config.rebalance_max_moves,
                split_hot_imbalance=config.split_hot_imbalance)
            rebalancer_holder[0] = rebalancer
            yield from rebalancer.run(ctx, stop)
        yield from win.fence()
        if is_server:
            tables[rank] = np.array(win.local_view(), dtype=np.uint8,
                                    copy=True)
        yield from win.fence()
        return result

    # The collectors read live objects lazily, so registering before the
    # run keeps snapshot-time values final.
    _register_collectors(registry, cluster.engine, replicas,
                         rebalancer_holder, plan)
    run = cluster.run(program)
    served = sum(r[0] for r in run.results)
    shed = sum(r[1] for r in run.results)
    snap = registry.snapshot()
    elapsed = run.elapsed

    ledger_check = ledger.check(replicas)
    physical = _physical_check(replicas, tables, ledger, slot_size,
                               table_span)
    checks = {"ledger": ledger_check, "physical_tags": physical}
    if plan is not None:
        checks["failover"] = {
            "ok": (plan.kill_time is not None
                   and plan.recover_time is not None
                   and snap["repl.failovers"] == 1),
            "kill_fired": plan.kill_time is not None,
            "recovered": plan.recover_time is not None,
            "failovers": snap["repl.failovers"],
        }

    def latency(kind: str) -> dict:
        prefix = f"repl.{kind}_latency_us"
        return {
            "count": snap[f"{prefix}.count"],
            "mean": snap[f"{prefix}.mean"],
            "p50": snap[f"{prefix}.p50"],
            "p95": snap[f"{prefix}.p95"],
            "p99": snap[f"{prefix}.p99"],
        }

    report = {
        "service": config.describe(),
        "workload": spec.describe(),
        "total_ops": served,
        "elapsed_us": elapsed,
        "throughput_ops": served / elapsed * 1e6 if elapsed else 0.0,
        "latency_us": {
            "read": latency("read"),
            "write": latency("write"),
            "service": latency("service"),
            "sojourn": latency("sojourn"),
        },
        "availability": snap["repl.availability"],
        "failover_gap_us": snap["repl.failover_gap_us"],
        "chain_depth": snap["repl.chain_depth"],
        "epoch": snap["repl.epoch"],
        "rebalance": {
            "migrations": snap["rebalance.migrations"],
            "splits": snap["rebalance.splits"],
            "migrated_bytes": snap["rebalance.migrated_bytes"],
            "blocked_ops": snap["rebalance.blocked_ops"],
            "drained_ops": snap["rebalance.drained_ops"],
            "epoch_flips": snap["rebalance.epoch_flips"],
        },
        "open_loop": {
            "enabled": config.open_loop is not None,
            "arrivals": snap["repl.arrivals"],
            "served": served,
            "shed": shed,
            "shed_rate": (shed / snap["repl.arrivals"]
                          if snap["repl.arrivals"] else 0.0),
        },
        "replay": {
            "replays": snap["repl.replays"],
            "replay_skips": snap["repl.replay_skips"],
            "dead_hops": snap["repl.dead_hops"],
        },
        "state_digests": _state_digests(replicas, tables, table_span),
        "checks": checks,
        "verified": all(c["ok"] for c in checks.values()),
        "faults": {
            "injected": snap["faults.injected"],
            "fallbacks": snap["recovery.fallbacks"],
        },
        **({"qos": {**qos.describe(), "enforcing": qos.enforcing}}
           if qos is not None else {}),
        "metrics": snap,
    }
    return ReplicatedRun(report=report, replicas=replicas, ledger=ledger,
                         plan=plan, tables=tables)


def run_replicated_service(config: ReplicatedServiceConfig,
                           policy: Optional[TransferPolicy] = None,
                           faults: Optional[FaultPlan] = None) -> dict:
    """Run the replicated service once; returns the JSON-ready report."""
    cluster = Cluster(n_nodes=config.total_ranks, policy=policy,
                      faults=faults)
    return execute_replicated(cluster, config).report
