"""Seeded workload generation for the key-value service driver.

A :class:`WorkloadSpec` plus a client id fully determines that client's
operation stream: every random draw comes from a
``numpy.random.Generator`` seeded with ``SeedSequence([seed, client_id])``
and the generator never consults wall-clock time, so a run is
bit-identical for a given spec — the property the ``repro-svc``
determinism guarantee (and its CI leg) rests on.

Key popularity is either ``uniform`` or ``zipfian``; the Zipf draw uses a
precomputed CDF over key ranks (``p(rank) ~ 1/rank^s``) and inverse
transform sampling via ``searchsorted``, so it is exact, cheap, and
deterministic.  Values are a uniform byte fill derived from (client, op
index): any *mix* of two valid values differs from every valid value,
which is what lets the store tests detect torn reads.

:func:`replay` applies an op stream to plain host dicts — the oracle the
driver checks the simulated cluster's final counter state against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Op", "WorkloadSpec", "client_ops", "replay"]

DISTRIBUTIONS = ("uniform", "zipfian")


@dataclass(frozen=True)
class Op:
    """One client operation: ``kind`` is ``get`` / ``put`` / ``incr``."""

    kind: str
    key: str            # blob key ("" for incr)
    value: bytes = b""  # put payload
    counter_id: int = 0  # incr target
    delta: int = 0       # incr amount


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that determines a workload, hashable and JSON-friendly."""

    n_keys: int = 64
    n_counter_keys: int = 16
    read_fraction: float = 0.5
    incr_fraction: float = 0.2
    dist: str = "uniform"
    zipf_s: float = 1.1
    ops_per_client: int = 100
    value_size: int = 64
    seed: int = 1
    think_time: float = 0.0  # µs of client pause between ops (closed loop)

    def __post_init__(self):
        if self.dist not in DISTRIBUTIONS:
            raise ValueError(f"dist must be one of {DISTRIBUTIONS}, "
                             f"got {self.dist!r}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction outside [0, 1]: "
                             f"{self.read_fraction}")
        if not 0.0 <= self.incr_fraction <= 1.0 - self.read_fraction:
            raise ValueError(
                f"incr_fraction must fit in [0, 1 - read_fraction]: "
                f"{self.incr_fraction}"
            )
        if self.n_keys < 1 or self.n_counter_keys < 1:
            raise ValueError("need at least one key and one counter key")
        if self.value_size < 1:
            raise ValueError(f"value_size must be >= 1: {self.value_size}")

    def describe(self) -> dict:
        """JSON-ready spec dump (embedded in the driver report)."""
        return {
            "n_keys": self.n_keys,
            "n_counter_keys": self.n_counter_keys,
            "read_fraction": self.read_fraction,
            "incr_fraction": self.incr_fraction,
            "dist": self.dist,
            "zipf_s": self.zipf_s,
            "ops_per_client": self.ops_per_client,
            "value_size": self.value_size,
            "seed": self.seed,
            "think_time": self.think_time,
        }


def _key_cdf(spec: WorkloadSpec) -> np.ndarray:
    """Cumulative key-popularity distribution (uniform or Zipf)."""
    ranks = np.arange(1, spec.n_keys + 1, dtype=np.float64)
    if spec.dist == "zipfian":
        weights = 1.0 / ranks**spec.zipf_s
    else:
        weights = np.ones_like(ranks)
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


def _fill_value(client_id: int, op_index: int, size: int) -> bytes:
    """A uniform byte fill unique-ish to (client, op): torn-read tripwire."""
    byte = (client_id * 131 + op_index * 7 + 1) % 251
    return bytes([byte]) * size


def client_ops(spec: WorkloadSpec, client_id: int,
               max_counter_keys: int | None = None) -> list[Op]:
    """The deterministic op stream of one client."""
    rng = np.random.default_rng(np.random.SeedSequence([spec.seed, client_id]))
    cdf = _key_cdf(spec)
    n_counters = spec.n_counter_keys
    if max_counter_keys is not None:
        n_counters = min(n_counters, max_counter_keys)
    ops: list[Op] = []
    for i in range(spec.ops_per_client):
        draw = rng.random()
        key_idx = int(np.searchsorted(cdf, rng.random(), side="left"))
        key = f"key-{key_idx}"
        if draw < spec.read_fraction:
            ops.append(Op("get", key))
        elif draw < spec.read_fraction + spec.incr_fraction:
            counter_id = key_idx % n_counters
            delta = int(rng.integers(1, 8))
            ops.append(Op("incr", "", counter_id=counter_id, delta=delta))
        else:
            ops.append(Op("put", key,
                          value=_fill_value(client_id, i, spec.value_size)))
    return ops


def replay(streams: list[list[Op]]) -> dict[int, int]:
    """Host-side oracle: final counter values implied by ``streams``.

    Counter increments commute, so their final values are exact whatever
    interleaving the cluster ran — this is what the driver's verification
    pass compares the simulated window contents against.  (Blob puts
    race by design; last-writer-wins order is interleaving-dependent, so
    blobs are verified structurally by the store tests, not here.)
    """
    counters: dict[int, int] = {}
    for stream in streams:
        for op in stream:
            if op.kind == "incr":
                counters[op.counter_id] = (
                    counters.get(op.counter_id, 0) + op.delta
                )
    return counters
