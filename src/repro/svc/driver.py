"""The service driver: N client ranks against M passive server shards.

:func:`run_service` builds a cluster, carves the first ``n_servers``
ranks into window-part shards, runs every client's seeded op stream
through an :class:`~repro.svc.store.RmaKvStore`, and returns one flat,
JSON-ready report.  Everything quantitative in the report — throughput,
latency percentiles, fault counts — is read out of the cluster's
:class:`~repro.obs.MetricsRegistry` snapshot, so the service numbers and
the observability layer cannot drift apart.

Correctness is checked in-run: counter increments commute, so the final
counter values are exact under any interleaving; after the workload the
first client rank reads every counter back (under shared passive-target
locks) and compares against the host-side :func:`~repro.svc.workload.replay`
oracle.  ``report["verified"]`` is the headline result.

Determinism: the simulation is a DES and the workload is seeded, so the
whole report — timings included — is bit-identical for a given
(config, policy, fault plan) triple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster import Cluster
from ..hardware.sci.faults import FaultPlan
from ..mpi.transport.policy import TransferPolicy
from .shard import ShardMap
from .store import RmaKvStore, SvcInstruments, slot_bytes
from .workload import WorkloadSpec, client_ops, replay

__all__ = ["ServiceConfig", "run_service", "SVC_COLLECTOR_METRICS"]

#: Shard-load metrics pulled from the :class:`ShardMap` at snapshot time.
SVC_COLLECTOR_METRICS = ("svc.shard_ops", "svc.hot_shards",
                         "svc.shard_imbalance")


@dataclass(frozen=True)
class ServiceConfig:
    """Cluster-side shape of the service (the workload is separate)."""

    n_servers: int = 2
    n_clients: int = 2
    slots_per_shard: int = 64
    counter_slots: int = 16
    hot_factor: float = 2.0
    #: > 0 installs a :class:`~repro.qos.QosManager` and admits one
    #: reservation for the service tenant over every client -> server
    #: path, at this fraction of the tightest path's capacity.  Clients
    #: run reserved-lane (policed to that rate, rendezvous credit
    #: priority); 0 leaves the fabric QoS-free.
    qos_reserve: float = 0.0
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)

    def __post_init__(self):
        if self.n_servers < 1:
            raise ValueError("need at least one server rank")
        if self.n_clients < 1:
            raise ValueError("need at least one client rank")
        if not 0.0 <= self.qos_reserve < 1.0:
            raise ValueError(
                f"qos_reserve {self.qos_reserve} outside [0, 1)")

    def describe(self) -> dict:
        return {
            "n_servers": self.n_servers,
            "n_clients": self.n_clients,
            "slots_per_shard": self.slots_per_shard,
            "counter_slots": self.counter_slots,
            "hot_factor": self.hot_factor,
            "qos_reserve": self.qos_reserve,
        }


def _register_shard_collector(registry, shards: ShardMap) -> None:
    registry.register_collector(
        list(SVC_COLLECTOR_METRICS),
        lambda: {
            "svc.shard_ops": shards.total_ops(),
            "svc.hot_shards": len(shards.hot_shards()),
            "svc.shard_imbalance": shards.imbalance(),
        },
    )


def run_service(config: ServiceConfig,
                policy: Optional[TransferPolicy] = None,
                faults: Optional[FaultPlan] = None) -> dict:
    """Run the service once; returns the JSON-ready report."""
    spec = config.workload
    n_servers, n_clients = config.n_servers, config.n_clients
    cluster = Cluster(n_nodes=n_servers + n_clients, policy=policy,
                      faults=faults)
    registry = cluster.metrics
    shards = ShardMap(list(range(n_servers)), config.slots_per_shard,
                      counter_slots=config.counter_slots,
                      hot_factor=config.hot_factor)
    instruments = SvcInstruments.registered(registry)
    _register_shard_collector(registry, shards)

    qos = None
    if config.qos_reserve > 0.0:
        from ..qos import QosManager

        qos = QosManager.install(cluster)
        qos.register_metrics(registry)
        qos.add_tenant("svc", range(n_servers + n_clients))
        paths = [(client, server)
                 for client in range(n_servers, n_servers + n_clients)
                 for server in range(n_servers)]
        rate = config.qos_reserve * min(
            qos.route_capacity(client, server) for client, server in paths)
        reservation = qos.reserve("svc", paths, rate)  # may raise AdmissionDenied
        qos.provision(reservation)
        qos.activate(reservation)

    streams = [
        client_ops(spec, cid, max_counter_keys=shards.max_counter_keys)
        for cid in range(n_clients)
    ]
    expected = replay(streams)
    shard_bytes = config.slots_per_shard * slot_bytes(spec.value_size)
    mismatches: list[dict] = []

    def program(ctx):
        rank = ctx.comm.rank
        is_server = rank < n_servers
        # Servers expose their shard's slot table; clients expose a token
        # part (window creation is collective, every rank contributes).
        size = shard_bytes if is_server else 8
        win = yield from ctx.comm.win_create(size, shared=True)
        if is_server:
            win.local_view()[:] = 0
        yield from win.fence()

        ops_done = 0
        if not is_server:
            store = RmaKvStore(win, shards, spec.value_size,
                               instruments=instruments)
            for op in streams[rank - n_servers]:
                if spec.think_time > 0.0:
                    yield ctx.cluster.engine.timeout(spec.think_time)
                if op.kind == "get":
                    yield from store.get(op.key)
                elif op.kind == "put":
                    yield from store.put(op.key, op.value)
                else:
                    yield from store.incr(op.counter_id, op.delta)
                ops_done += 1
        yield from win.fence()

        if rank == n_servers:  # first client verifies the counter oracle
            store = RmaKvStore(win, shards, spec.value_size,
                               instruments=instruments)
            for counter_id in sorted(expected):
                target = shards.rank_of(shards.locate_counter(counter_id)[0])
                yield from win.lock(target, exclusive=False)
                actual = yield from store.get_counter(counter_id)
                yield from win.unlock(target)
                if actual != expected[counter_id]:
                    mismatches.append({
                        "counter": counter_id,
                        "expected": expected[counter_id],
                        "actual": actual,
                    })
        yield from win.fence()
        return ops_done

    run = cluster.run(program)
    total_ops = sum(run.results)
    snap = registry.snapshot()
    qos_section = (
        {} if qos is None
        else {"qos": {**qos.describe(), "enforcing": qos.enforcing}}
    )

    def latency(kind: str) -> dict:
        prefix = f"svc.{kind}_latency_us"
        return {
            "count": snap[f"{prefix}.count"],
            "mean": snap[f"{prefix}.mean"],
            "p50": snap[f"{prefix}.p50"],
            "p95": snap[f"{prefix}.p95"],
            "p99": snap[f"{prefix}.p99"],
        }

    elapsed = run.elapsed
    return {
        "service": config.describe(),
        "workload": spec.describe(),
        "total_ops": total_ops,
        "elapsed_us": elapsed,
        "throughput_ops": total_ops / elapsed * 1e6 if elapsed else 0.0,
        "latency_us": {
            "read": latency("read"),
            "write": latency("write"),
            "incr": latency("incr"),
        },
        "verified": not mismatches,
        "counter_mismatches": mismatches,
        "counters_checked": len(expected),
        "faults": {
            "injected": snap["faults.injected"],
            "fallbacks": snap["recovery.fallbacks"],
        },
        "shards": {
            "ops": snap["svc.shard_ops"],
            "hot": snap["svc.hot_shards"],
            "imbalance": snap["svc.shard_imbalance"],
        },
        **qos_section,
        "metrics": snap,
    }
