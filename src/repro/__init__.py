"""repro — reproduction of "Exploiting Transparent Remote Memory Access for
Non-Contiguous- and One-Sided-Communication" (Worringen et al., 2002).

A simulated SCI-connected cluster (discrete-event simulation with
calibrated hardware cost models that move real bytes) carrying a full
MPI-like library: derived datatypes with the ``direct_pack_ff`` flattening
algorithm, short/eager/rendezvous point-to-point protocols, collectives,
and MPI-2 one-sided communication with direct/emulated window access.

Quick start::

    from repro import Cluster

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(1024)
        if comm.rank == 0:
            buf.fill(42)
            yield from comm.send(buf, dest=1)
        else:
            yield from comm.recv(buf, source=0)
        return ctx.now

    print(Cluster(n_nodes=2).run(program).results)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from ._units import KiB, MiB, mib_s, to_mib_s
from .cluster import Cluster, ClusterRun, RankContext
from .hardware.params import DEFAULT_NODE, NodeParams
from .hardware.sci.faults import FaultPlan
from .mpi import ANY_SOURCE, ANY_TAG, Communicator, MPIError, Request, Status
from .mpi.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    Contiguous,
    Datatype,
    Hindexed,
    Hvector,
    Indexed,
    Resized,
    Struct,
    Subarray,
    Vector,
)
from .mpi.flatten import PackPlan, get_plan, plan_cache_stats
from .mpi.pt2pt import NonContigMode, ProtocolConfig

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BYTE",
    "CHAR",
    "Cluster",
    "ClusterRun",
    "Communicator",
    "Contiguous",
    "DEFAULT_NODE",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "FaultPlan",
    "Hindexed",
    "Hvector",
    "INT",
    "Indexed",
    "KiB",
    "LONG",
    "MPIError",
    "MiB",
    "NodeParams",
    "NonContigMode",
    "PackPlan",
    "ProtocolConfig",
    "RankContext",
    "Request",
    "Resized",
    "SHORT",
    "Status",
    "Struct",
    "Subarray",
    "Vector",
    "get_plan",
    "mib_s",
    "plan_cache_stats",
    "to_mib_s",
]
