"""E4 / Figure 9 (and E6 / Figure 11): the *sparse* micro-benchmark.

Fig. 8's pseudo-code: with a fixed access size and stride 2 (a gap of one
access after every access), each process iterates through its partner's
part of the global window with MPI_Put or MPI_Get, then everyone calls
MPI_Win_fence.  Reported per access size: the latency of each
communication call and the overall bandwidth.

Variants: put/get x window in *shared* SCI memory (direct access) or in
*private* process memory (emulated access) — the four curve families of
Fig. 9 — plus the analytic comparison platforms for Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._units import KiB, to_mib_s
from ..cluster import Cluster
from ..hardware.params import DEFAULT_NODE, NodeParams
from ..platforms.base import AnalyticPlatform
from .series import Series

__all__ = [
    "DEFAULT_ACCESS_SIZES",
    "SparseResult",
    "run_sparse",
    "fig9_series",
    "fig11_platform_series",
]

#: Access sizes of the Fig. 9 sweep (one double .. 64 kiB).
DEFAULT_ACCESS_SIZES: list[int] = [
    8, 16, 24, 32, 64, 128, 256, 512, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB,
]


@dataclass(frozen=True)
class SparseResult:
    """One sparse measurement point."""

    access_size: int
    calls: int
    elapsed: float          # µs for all calls + the closing fence
    bytes_moved: int

    @property
    def latency(self) -> float:
        """Per-call latency in µs."""
        return self.elapsed / self.calls if self.calls else 0.0

    @property
    def bandwidth(self) -> float:
        """Overall bandwidth in MiB/s."""
        return to_mib_s(self.bytes_moved / self.elapsed) if self.elapsed else 0.0


def run_sparse(
    access_size: int,
    op: str = "put",
    shared: bool = True,
    winsize: int = 128 * KiB,
    node_params: NodeParams = DEFAULT_NODE,
    nprocs: int = 2,
    intranode: bool = False,
) -> SparseResult:
    """Run the sparse benchmark between ``nprocs`` ranks.

    Ranks live on distinct nodes (the M-S row) or together on one node
    (``intranode=True``, the M-s shared-memory row).  Each rank accesses
    the window part of its partner (rank+1 mod n) with stride 2 (paper:
    "after each data element, a gap of the same size follows which is not
    accessed").  Returns rank 0's measurement.
    """
    if op not in ("put", "get"):
        raise ValueError(f"op must be 'put' or 'get', got {op!r}")
    stride = 2 * access_size
    calls = max(1, (winsize - access_size) // stride + 1)

    def program(ctx):
        comm = ctx.comm
        win = yield from comm.win_create(winsize, shared=shared)
        partner = (comm.rank + 1) % comm.size
        payload = np.full(access_size, (comm.rank + 1) & 0xFF, dtype=np.uint8)
        yield from ctx.flush_cache()
        yield from win.fence()
        t0 = ctx.now
        offset = 0
        ncalls = 0
        while offset + access_size <= winsize:
            if op == "put":
                yield from win.put(payload, partner, offset)
            else:
                _ = yield from win.get(access_size, partner, offset)
            offset += stride
            ncalls += 1
        yield from win.fence()
        return (ncalls, ctx.now - t0)

    if intranode:
        cluster = Cluster(n_nodes=1, procs_per_node=max(nprocs, 2),
                          node_params=node_params)
    else:
        cluster = Cluster(n_nodes=max(nprocs, 2), node_params=node_params)
    run = cluster.run_on_ranks({r: program for r in range(nprocs)})
    ncalls, elapsed = run.results[0]
    return SparseResult(
        access_size=access_size,
        calls=ncalls,
        elapsed=elapsed,
        bytes_moved=ncalls * access_size,
    )


def fig9_series(
    access_sizes: Optional[list[int]] = None,
    winsize: int = 128 * KiB,
    node_params: NodeParams = DEFAULT_NODE,
) -> dict[str, dict[str, Series]]:
    """The four Fig. 9 curve families: {variant: {latency, bandwidth}}.

    Variants: ``put-shared``, ``get-shared``, ``put-private``,
    ``get-private``.
    """
    access_sizes = access_sizes or DEFAULT_ACCESS_SIZES
    out: dict[str, dict[str, Series]] = {}
    for op in ("put", "get"):
        for shared in (True, False):
            key = f"{op}-{'shared' if shared else 'private'}"
            latency = Series(key, y_unit="µs")
            bandwidth = Series(key)
            for size in access_sizes:
                result = run_sparse(size, op=op, shared=shared,
                                    winsize=winsize, node_params=node_params)
                latency.add(size, result.latency)
                bandwidth.add(size, result.bandwidth)
            out[key] = {"latency": latency, "bandwidth": bandwidth}
    return out


def fig11_platform_series(
    platform: AnalyticPlatform,
    access_sizes: Optional[list[int]] = None,
    op: str = "put",
) -> dict[str, Series]:
    """Fig. 11 latency/bandwidth curves for one analytic platform."""
    access_sizes = access_sizes or DEFAULT_ACCESS_SIZES
    pid = platform.spec.id
    latency = Series(pid, y_unit="µs")
    bandwidth = Series(pid)
    for size in access_sizes:
        call = platform.osc_call_time(size, op)
        latency.add(size, call)
        bandwidth.add(size, to_mib_s(size / call))
    return {"latency": latency, "bandwidth": bandwidth}
