"""Replicated-KV overload point: open-loop vs. closed-loop tail latency.

A closed-loop load generator (each client issues the next op only after
the previous one completes) *cannot* observe overload: when the service
slows down, the offered load slows down with it, and the measured tail
latency stays flat — the coordinated-omission trap.  An open-loop
generator (ops arrive on a seeded exponential clock regardless of
completions) keeps offering load at the configured rate, so queueing
delay shows up in the *sojourn* time (completion minus arrival) and
overload sheds ops at the bounded queue instead of silently stretching
the inter-arrival gap.

:func:`run_overload_point` measures both sides of that argument on the
chain-replicated store at million-key scale:

1. **calibrate** — a closed-loop run measures the service capacity
   (completed ops per simulated second) and the closed-loop p99 of the
   *service* time;
2. **overload** — an open-loop run offers ``OVERLOAD_FACTOR`` times that
   capacity through a bounded per-client queue and reports the p99
   *sojourn* time plus the shed fraction.

The open-loop p99 must come out strictly above the closed-loop p99 at
the same per-op cost — if it does not, the harness is hiding queueing
delay and the point raises instead of reporting numbers.  CI gates on
``kv_overload_p99_us`` (the open-loop sojourn p99, lower is better) and
the scenario headline ``kv_failover_availability`` (higher is better —
``tools/bench_compare.py`` reads the direction off the suffix).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mpi.flatten import reset_plan_cache
from ..svc.repl import OpenLoopSpec, ReplicatedServiceConfig, run_replicated_service
from ..svc.workload import WorkloadSpec

__all__ = ["run_overload_point", "OverloadPoint", "OVERLOAD_FACTOR"]

#: Offered open-loop rate as a multiple of the calibrated capacity.
OVERLOAD_FACTOR = 1.2

_N_GROUPS = 2
_REPLICATION = 2
_N_CLIENTS = 2
_SLOTS_PER_SHARD = 64
_VALUE_SIZE = 32
_MAX_QUEUE = 16


@dataclass(frozen=True)
class OverloadPoint:
    """Both sides of the open- vs. closed-loop comparison."""

    capacity_ops: float       #: closed-loop completed ops per second
    closed_p99_us: float      #: closed-loop service-time p99
    open_p99_us: float        #: open-loop *sojourn* p99 at overload
    shed_rate: float          #: fraction of arrivals shed at the queue
    offered_interarrival_us: float  #: per-client open-loop mean gap


def _config(n_keys: int, ops_per_client: int, seed: int,
            open_loop: OpenLoopSpec | None) -> ReplicatedServiceConfig:
    spec = WorkloadSpec(n_keys=n_keys, read_fraction=0.5, incr_fraction=0.0,
                        dist="uniform", ops_per_client=ops_per_client,
                        value_size=_VALUE_SIZE, seed=seed)
    return ReplicatedServiceConfig(
        n_groups=_N_GROUPS, replication=_REPLICATION, n_clients=_N_CLIENTS,
        slots_per_shard=_SLOTS_PER_SHARD, open_loop=open_loop, workload=spec)


def run_overload_point(n_keys: int = 1_000_000, ops_per_client: int = 120,
                       seed: int = 1) -> OverloadPoint:
    """Calibrate capacity closed-loop, then overload it open-loop.

    The key space is a million keys by default — far beyond the slot
    capacity, so the run exercises the hashed-slot eviction path rather
    than a cache-resident toy; keys are hashed on the fly, so the scale
    costs nothing but realism.
    """
    reset_plan_cache()
    closed = run_replicated_service(_config(n_keys, ops_per_client, seed,
                                            open_loop=None))
    if not closed["verified"]:
        raise AssertionError(
            f"closed-loop calibration cell failed verification: "
            f"{closed['checks']}")
    capacity = closed["throughput_ops"]
    closed_p99 = closed["latency_us"]["service"]["p99"]

    interarrival = 1e6 * _N_CLIENTS / (OVERLOAD_FACTOR * capacity)
    spec = OpenLoopSpec(mean_interarrival_us=interarrival,
                        max_queue=_MAX_QUEUE)
    reset_plan_cache()
    open_ = run_replicated_service(_config(n_keys, ops_per_client, seed,
                                           open_loop=spec))
    if not open_["verified"]:
        raise AssertionError(
            f"open-loop overload cell failed verification: "
            f"{open_['checks']}")
    open_p99 = open_["latency_us"]["sojourn"]["p99"]

    if open_p99 <= closed_p99:
        raise AssertionError(
            f"open-loop sojourn p99 ({open_p99:.1f}us) did not exceed "
            f"closed-loop p99 ({closed_p99:.1f}us) at "
            f"{OVERLOAD_FACTOR}x capacity — the load generator is "
            f"hiding queueing delay")
    return OverloadPoint(
        capacity_ops=capacity, closed_p99_us=closed_p99,
        open_p99_us=open_p99, shed_rate=open_["open_loop"]["shed_rate"],
        offered_interarrival_us=interarrival)
