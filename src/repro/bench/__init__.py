"""Benchmark infrastructure (S12): one module per paper experiment.

================  ===================================================
module            paper artefact
================  ===================================================
``raw``           Fig. 1  — raw SCI latency/bandwidth (E1)
``noncontig``     Fig. 7  — the *noncontig* micro-benchmark (E2),
                  plus the per-platform Fig. 10 curves (E5)
``strided``       Sec. 4.3 — strided remote-write study (E3)
``sparse``        Fig. 9  — the *sparse* micro-benchmark (E4),
                  plus the per-platform Fig. 11 curves (E6)
``ring``          Table 2 — ring saturation (E9), and Fig. 12 (E7)
``series``        result containers and text rendering
================  ===================================================

Table 1 (E8) lives in :mod:`repro.platforms.catalogue`.
"""

from . import noncontig, raw, ring, sparse, strided
from .series import Series, Table, render_series, render_table

__all__ = [
    "Series",
    "Table",
    "noncontig",
    "raw",
    "render_series",
    "render_table",
    "ring",
    "sparse",
    "strided",
]
