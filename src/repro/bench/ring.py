"""E9 / Table 2 and E7 / Figure 12: ring saturation and OSC scaling.

Table 2 varies the number of active nodes (4..8) and the *segment
utilization* — how many concurrent transfers cross the bottleneck ring
segment (1 = everyone talks to the next neighbour; maximal = every
transfer crosses one common segment).  Reported per configuration:
per-node bandwidth, accumulated bandwidth, relative ring *load* (offered
demand / nominal ring bandwidth) and *efficiency* (delivered / nominal).

Figure 12 plots, for each platform with hardware-supported one-sided
communication, the minimum per-process MPI_Put bandwidth of the sparse
benchmark as the process count grows.

The SCI rows are produced by the simulator: a solo run measures the
per-node injection rate, then concurrent flows share the ring through the
congestion-calibrated :class:`~repro.hardware.sci.flows.FlowNetwork`.
"""

from __future__ import annotations

from typing import Optional

from .._units import KiB, MiB, mib_s, to_mib_s
from ..hardware.params import DEFAULT_NODE, NodeParams
from ..hardware.sci.flows import FlowNetwork
from ..hardware.sci.ringlet import RingTopology, Route
from ..platforms.base import AnalyticPlatform
from ..sim import Engine
from .series import Series, Table

__all__ = [
    "measure_put_rate",
    "ring_scalability_table",
    "table2",
    "fig12_sci_series",
    "fig12_platform_series",
    "fig12_intranode_series",
    "link_frequency_comparison",
    "PAPER_DEMAND_MIB_S",
]

#: The per-node demand the paper's Table 2 implies (120.83 MiB/s); used
#: for the calibrated variant of the table.
PAPER_DEMAND_MIB_S: float = 120.83


def measure_put_rate(
    access_size: int = 4 * KiB,
    node_params: NodeParams = DEFAULT_NODE,
) -> float:
    """Solo per-node MPI_Put streaming rate (MiB/s), via the simulator."""
    from .sparse import run_sparse

    result = run_sparse(access_size, op="put", shared=True,
                        winsize=256 * KiB, node_params=node_params)
    return result.bandwidth


def _simulate_shared_bottleneck(
    n_flows: int,
    demand_bpus: float,
    ring_nodes: int,
    node_params: NodeParams,
    max_utilization: bool,
) -> float:
    """Per-flow delivered rate (B/µs) through the flow network.

    ``max_utilization``: every flow is routed across one common segment
    (the Table 2 worst case); otherwise each flow uses only its own
    segment (neighbour transfers, utilization 1).
    """
    engine = Engine()
    ring = RingTopology(ring_nodes)
    capacities = {s: node_params.link.bandwidth for s in ring.segments()}
    net = FlowNetwork(engine, capacities, echo_ratio=0.0)
    nbytes = 64 * MiB  # long-lived flows; steady-state rate is what matters
    for i in range(n_flows):
        if max_utilization:
            route = Route(data_segments=(0,), echo_segments=())
        else:
            route = Route(data_segments=(i % ring_nodes,), echo_segments=())
        net.transfer(route, float(nbytes), demand_bpus)
    engine.run()
    # All flows are symmetric: delivered rate = bytes / completion time.
    return nbytes / engine.now


def ring_scalability_table(
    demand_mib_s: float,
    node_counts: Optional[list[int]] = None,
    ring_nodes: int = 8,
    node_params: NodeParams = DEFAULT_NODE,
) -> Table:
    """Table 2 for a given per-node demand (MiB/s)."""
    node_counts = node_counts or [4, 5, 6, 7, 8]
    nominal = to_mib_s(node_params.link.bandwidth)
    table = Table(
        title=(
            f"Ring scalability (demand {demand_mib_s:.2f} MiB/s per node, "
            f"ring {nominal:.0f} MiB/s)"
        ),
        columns=["nodes", "pn-1t", "acc-1t", "pn-max", "acc-max", "load%", "eff%"],
    )
    demand = mib_s(demand_mib_s)
    for n in node_counts:
        per_node_1 = to_mib_s(
            _simulate_shared_bottleneck(n, demand, ring_nodes, node_params, False)
        )
        per_node_max = to_mib_s(
            _simulate_shared_bottleneck(n, demand, ring_nodes, node_params, True)
        )
        load = n * demand_mib_s / nominal
        eff = n * per_node_max / nominal
        table.add_row(
            n,
            per_node_1,
            n * per_node_1,
            per_node_max,
            n * per_node_max,
            100.0 * load,
            100.0 * eff,
        )
    return table


def table2(
    node_params: NodeParams = DEFAULT_NODE,
    use_paper_demand: bool = False,
    access_size: int = 4 * KiB,
) -> Table:
    """Reproduce Table 2.

    ``use_paper_demand=True`` feeds the congestion model the per-node
    demand implied by the paper (120.83 MiB/s) — the calibrated variant;
    otherwise the demand is measured from a solo simulated MPI_Put run.
    """
    demand = (
        PAPER_DEMAND_MIB_S if use_paper_demand
        else measure_put_rate(access_size, node_params)
    )
    return ring_scalability_table(demand, node_params=node_params)


def fig12_sci_series(
    node_counts: Optional[list[int]] = None,
    node_params: NodeParams = DEFAULT_NODE,
    access_size: int = 4 * KiB,
) -> Series:
    """SCI curve of Fig. 12: min per-process put bandwidth vs. process count."""
    node_counts = node_counts or [2, 3, 4, 5, 6, 7, 8]
    demand_mib = measure_put_rate(access_size, node_params)
    demand = mib_s(demand_mib)
    series = Series("M-S (SCI)", x_unit="processes")
    for n in node_counts:
        rate = _simulate_shared_bottleneck(n, demand, 8, node_params, True)
        series.add(n, to_mib_s(rate))
    return series


def fig12_intranode_series(
    node_counts: Optional[list[int]] = None,
    node_params: NodeParams = DEFAULT_NODE,
    access_size: int = 4 * KiB,
) -> Series:
    """M-s curve of Fig. 12: SCI-MPICH intra-node put scaling.

    All ranks share one node; concurrent window writes contend on the
    node's memory bus — the mechanism behind "shared-memory platforms
    ... scale very badly for coarse-grained accesses" (Sec. 5.3).
    """
    from .sparse import run_sparse

    node_counts = node_counts or [2, 3, 4, 5, 6, 7, 8]
    series = Series("M-s (intra-node shm)", x_unit="processes")
    for n in node_counts:
        result = run_sparse(access_size, op="put", shared=True,
                            winsize=64 * KiB, node_params=node_params,
                            nprocs=n, intranode=True)
        series.add(n, result.bandwidth)
    return series


def fig12_platform_series(
    platform: AnalyticPlatform,
    node_counts: Optional[list[int]] = None,
    access_size: int = 4 * KiB,
) -> Series:
    """Fig. 12 curve for one analytic platform."""
    node_counts = node_counts or [2, 3, 4, 5, 6, 7, 8]
    series = Series(platform.spec.id, x_unit="processes")
    for n in node_counts:
        series.add(n, platform.scaling_bandwidth(n, access_size))
    return series


def link_frequency_comparison(
    frequencies_mhz: tuple[float, float] = (166.0, 200.0),
    n_nodes: int = 8,
    access_size: int = 4 * KiB,
) -> dict[float, float]:
    """The 200 MHz follow-up: worst-case per-node bandwidth per link speed.

    The paper: raising the link frequency to 200 MHz (762 MiB/s) increased
    the measured worst-case bandwidth linearly with the ring bandwidth.
    """
    out = {}
    for mhz in frequencies_mhz:
        params = DEFAULT_NODE.with_link_mhz(mhz)
        demand = mib_s(measure_put_rate(access_size, params))
        rate = _simulate_shared_bottleneck(n_nodes, demand, 8, params, True)
        out[mhz] = to_mib_s(rate)
    return out
