"""Result containers and text rendering for the benchmark harness.

Every experiment produces :class:`Series` (x/y curves, one per figure
line) or :class:`Table` objects; ``render`` prints them the way the paper
reports them, and EXPERIMENTS.md records the paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .._units import fmt_size

__all__ = ["Series", "Table", "render_series", "render_table"]


@dataclass
class Series:
    """One labelled curve: x values (usually sizes in bytes) and y values."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)
    x_unit: str = "bytes"
    y_unit: str = "MiB/s"

    def add(self, x: float, y: float) -> None:
        self.x.append(x)
        self.y.append(y)

    def at(self, x: float) -> float:
        """y value at exactly x (raises if absent)."""
        return self.y[self.x.index(x)]

    def interpolate(self, x: float) -> float:
        """Piecewise-linear interpolation (x values must be sorted)."""
        xs, ys = self.x, self.y
        if not xs:
            raise ValueError(f"empty series {self.label!r}")
        if x <= xs[0]:
            return ys[0]
        if x >= xs[-1]:
            return ys[-1]
        for (x0, y0), (x1, y1) in zip(zip(xs, ys), zip(xs[1:], ys[1:])):
            if x <= x1:
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        raise AssertionError("unreachable")

    @property
    def peak(self) -> float:
        return max(self.y)


@dataclass
class Table:
    """A small report table (e.g. Table 2)."""

    title: str
    columns: list[str]
    rows: list[Sequence] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:9.2f}"
    return f"{value!s:>9}"


def render_table(table: Table) -> str:
    lines = [table.title, "-" * len(table.title)]
    lines.append(" | ".join(f"{c:>9}" for c in table.columns))
    for row in table.rows:
        lines.append(" | ".join(_fmt(v) for v in row))
    return "\n".join(lines)


def render_series(title: str, series: Iterable[Series], size_x: bool = True) -> str:
    """Render curves side by side over their (shared) x grid."""
    series = list(series)
    lines = [title, "-" * len(title)]
    xs = series[0].x
    header = ["x".rjust(10)] + [s.label.rjust(12) for s in series]
    lines.append(" | ".join(header))
    for i, x in enumerate(xs):
        label = fmt_size(int(x)) if size_x else f"{x:g}"
        cells = [label.rjust(10)]
        for s in series:
            cells.append(f"{s.y[i]:12.2f}" if i < len(s.y) else " " * 12)
        lines.append(" | ".join(cells))
    return "\n".join(lines)
