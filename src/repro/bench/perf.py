"""Wall-clock performance gauges for the vectorized fast-path engine.

Everything else in ``repro.bench`` measures *simulated* time, which the
fast paths are forbidden to change (``docs/ENGINE.md``); this module is
the one place that measures the *simulator's own* speed — host seconds,
not simulated microseconds.  :func:`run_perf` drives steady-state
rendezvous chunk streams (point-to-point, bcast, allreduce) twice, with
the analytic fast paths enabled and disabled, and reports:

* ``wall_clock_ops_per_sec`` — chunk cycles retired per host second with
  the fast path on (the headline engine-throughput gauge);
* ``sim_events_per_sec``     — heap events processed per host second
  with the fast path off (the raw event-stepped engine's throughput);
* ``fastpath_*_speedup_x``   — wall-clock ratio (off / on) per workload.

The workloads deliberately deepen the steady state: a 4 MiB transfer
over 2 KiB rendezvous chunks is 2048 identical chunk cycles, so the
event-stepped run is dominated by engine overhead (~8 heap events per
cycle) while the fast-path run replays the whole stream as a handful of
closed-form windows.  Both runs move the same payload bytes and land on
the same simulated clock — :func:`run_perf` asserts that equality and
that windows actually engaged before reporting any number.

Wall-clock numbers are runner-dependent, so these metrics live in their
own report (``python -m repro.bench --perf``) and their own baseline
(``benchmarks/BENCH_perf_baseline.json``), gated by
``tools/bench_compare.py`` at a wall-clock-aware tolerance — never in
the ``--smoke`` report, whose simulated-time metrics CI compares
bit-identically across fast-path modes.  Each workload takes the best
of ``repeats`` runs (the usual wall-clock benchmarking hygiene); the
speedup ratios are the most runner-robust of the gauges.
"""

from __future__ import annotations

import time
from typing import Callable

from .._units import KiB, MiB
from ..cluster import Cluster
from ..mpi.datatypes import BYTE
from ..mpi.flatten import reset_plan_cache
from ..mpi.pt2pt.config import ProtocolConfig
from ..mpi.transport.fastpath import set_fastpath_enabled

__all__ = ["run_perf", "PERF_METRICS"]

#: Every metric :func:`run_perf` emits, in emission order.  ``_per_sec``
#: and ``_x`` are higher-is-better (see ``tools/bench_compare.py``).
PERF_METRICS = (
    "wall_clock_ops_per_sec",
    "sim_events_per_sec",
    "fastpath_stream_speedup_x",
    "fastpath_bcast_speedup_x",
    "fastpath_allreduce_speedup_x",
)

#: 4 MiB over 2 KiB chunks: 2048 identical rendezvous chunk cycles per
#: hop — deep enough that engine overhead dominates the event-stepped
#: run, small enough for a CI lane.
PERF_PAYLOAD = 4 * MiB
PERF_PROTOCOL = ProtocolConfig(rendezvous_chunk=2 * KiB)


def _stream_program(ctx):
    """One large contiguous rendezvous send rank 0 -> rank 1."""
    comm = ctx.comm
    buf = ctx.alloc(PERF_PAYLOAD)
    if comm.rank == 0:
        buf.read()[:] = 7
        yield from comm.send(buf, dest=1, count=PERF_PAYLOAD)
        return
    yield from comm.recv(buf, source=0, count=PERF_PAYLOAD)


def _bcast_program(ctx):
    comm = ctx.comm
    buf = ctx.alloc(PERF_PAYLOAD)
    if comm.rank == 0:
        buf.read()[:] = 7
    yield from comm.bcast(buf, root=0, datatype=BYTE, count=PERF_PAYLOAD)


def _allreduce_program(ctx):
    comm = ctx.comm
    send = ctx.alloc(PERF_PAYLOAD)
    recv = ctx.alloc(PERF_PAYLOAD)
    send.read()[:] = comm.rank % 251
    yield from comm.allreduce(send, recv, op="sum", datatype=BYTE,
                              count=PERF_PAYLOAD)


def _measure(program: Callable, fast: bool, repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` wall time of ``program`` on a fresh 2-node
    cluster with the fast path forced to ``fast``; also returns the
    run's simulated time, chunk count, heap-event count and window
    count (identical across repeats — the simulation is
    deterministic)."""
    previous = set_fastpath_enabled(fast)
    try:
        best: dict[str, float] = {"wall_s": float("inf")}
        for _ in range(repeats):
            reset_plan_cache()
            cluster = Cluster(n_nodes=2, protocol=PERF_PROTOCOL)
            t0 = time.perf_counter()
            cluster.run(program)
            wall = time.perf_counter() - t0
            if wall < best["wall_s"]:
                best = {
                    "wall_s": wall,
                    "sim_us": cluster.engine.now,
                    "events": float(cluster.engine.events_processed),
                    "chunks": float(sum(d.scheduler.stats["chunks"]
                                        for d in cluster.world.devices)),
                    "windows": float(sum(d.scheduler.fastpath["windows"]
                                         for d in cluster.world.devices)),
                }
        return best
    finally:
        set_fastpath_enabled(previous)


def run_perf(repeats: int = 3) -> dict[str, float]:
    """Run every perf gauge; returns ``{name: value}`` (see
    :data:`PERF_METRICS` for order and naming).

    Raises :class:`RuntimeError` if a fast-path run's simulated time
    diverges from its event-stepped twin, or if no closed-form window
    engaged — the gauges must never report the speed of a broken or
    silently disengaged fast path.
    """
    workloads = (
        ("stream", _stream_program, "fastpath_stream_speedup_x"),
        ("bcast", _bcast_program, "fastpath_bcast_speedup_x"),
        ("allreduce", _allreduce_program, "fastpath_allreduce_speedup_x"),
    )
    metrics: dict[str, float] = {name: 0.0 for name in PERF_METRICS}
    for label, program, speedup_name in workloads:
        on = _measure(program, fast=True, repeats=repeats)
        off = _measure(program, fast=False, repeats=repeats)
        if on["sim_us"] != off["sim_us"]:
            raise RuntimeError(
                f"perf workload {label!r}: fast path changed simulated "
                f"time ({on['sim_us']} != {off['sim_us']})"
            )
        if on["windows"] == 0:
            raise RuntimeError(
                f"perf workload {label!r}: no closed-form window engaged"
            )
        metrics[speedup_name] = off["wall_s"] / on["wall_s"]
        if label == "stream":
            metrics["wall_clock_ops_per_sec"] = on["chunks"] / on["wall_s"]
            metrics["sim_events_per_sec"] = off["events"] / off["wall_s"]
    return metrics
