"""Programmatic calibration report: every paper-anchored target, checked.

The hardware models are calibrated against numbers the paper itself
reports (see DESIGN.md §2 and repro.hardware.params).  This module makes
those anchors executable: each :class:`CalibrationTarget` names the
paper's value, measures ours, and judges the deviation — so any future
change to the cost models that drifts away from the paper fails loudly
(``tests/test_calibration.py``) and the full report is one call away::

    python -m repro.bench calibration
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .._units import KiB, MiB, to_mib_s
from ..hardware.params import DEFAULT_NODE, congestion_fraction
from ..hardware.sci.transactions import (
    AccessRun,
    dma_cost,
    remote_read_cost,
    remote_write_cost,
)

__all__ = ["CalibrationTarget", "TARGETS", "report", "check_all"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper-anchored calibration point."""

    name: str
    paper_value: float
    unit: str
    measure: Callable[[], float]
    #: Accepted relative deviation (the reproduction bands allow shape-level
    #: fidelity; tight tolerances mark points we calibrated *to*).
    rel_tol: float
    source: str  # where in the paper the anchor comes from

    def measured(self) -> float:
        return self.measure()

    def ok(self) -> bool:
        measured = self.measured()
        return abs(measured - self.paper_value) <= self.rel_tol * self.paper_value


def _strided_bw(access: int, stride: int, wc: bool = True) -> float:
    params = DEFAULT_NODE if wc else DEFAULT_NODE.with_write_combining(False)
    run = AccessRun(base=0, size=access, stride=stride, count=(256 * KiB) // access)
    cost = remote_write_cost(run, params, src_cached=False)
    return to_mib_s(run.total_bytes / cost.duration)


def _contiguous_bw(nbytes: int, src_cached: bool = True) -> float:
    cost = remote_write_cost(
        AccessRun.contiguous(0, nbytes), DEFAULT_NODE, src_cached=src_cached
    )
    return to_mib_s(nbytes / cost.duration)


def _read_bw(nbytes: int) -> float:
    return to_mib_s(nbytes / remote_read_cost(AccessRun.contiguous(0, nbytes), DEFAULT_NODE))


def _table2_per_node(nodes: int) -> float:
    demand = 120.83
    load = nodes * demand / 633.0
    return demand * congestion_fraction(load)


def _wc_off_fraction() -> float:
    return _strided_bw(4096, 8192, wc=False) / _strided_bw(4096, 8192, wc=True)


TARGETS: list[CalibrationTarget] = [
    CalibrationTarget(
        "8 B strided write, best stride", 28.0, "MiB/s",
        lambda: _strided_bw(8, 32), rel_tol=0.10,
        source="Sec. 4.3: '28 MiB/s for 8 byte access size'",
    ),
    CalibrationTarget(
        "8 B strided write, worst stride", 5.0, "MiB/s",
        lambda: min(_strided_bw(8, s) for s in range(9, 64)), rel_tol=1.0,
        source="Sec. 4.3: 'varying between 5 and 28 MiB/s'",
    ),
    CalibrationTarget(
        "256 B strided write, best stride", 162.0, "MiB/s",
        lambda: _strided_bw(256, 512), rel_tol=0.15,
        source="Sec. 4.3: '7 and 162 MiB/s for 256 byte access size'",
    ),
    CalibrationTarget(
        "write-combining disabled, fraction of peak", 0.50, "x",
        _wc_off_fraction, rel_tol=0.30,
        source="Sec. 4.3: 'lowers the overall bandwidth about 50%'",
    ),
    CalibrationTarget(
        "nominal ring bandwidth at 166 MHz", 633.0, "MiB/s",
        lambda: to_mib_s(DEFAULT_NODE.link.bandwidth), rel_tol=0.01,
        source="Sec. 5.3: 'the ring bandwidth is at 633 MiB/s'",
    ),
    CalibrationTarget(
        "nominal ring bandwidth at 200 MHz", 762.0, "MiB/s",
        lambda: to_mib_s(DEFAULT_NODE.with_link_mhz(200.0).link.bandwidth),
        rel_tol=0.01,
        source="Sec. 5.3: 'nominal link bandwidth of 762 MiB/s'",
    ),
    *[
        CalibrationTarget(
            f"Table 2 per-node bandwidth, {n} nodes", paper, "MiB/s",
            (lambda n=n: _table2_per_node(n)), rel_tol=0.03,
            source="Table 2, '8 transfers/segment' column",
        )
        for n, paper in [(4, 120.70), (5, 115.80), (6, 97.75),
                         (7, 79.30), (8, 62.78)]
    ],
    CalibrationTarget(
        "remote read << write (read bandwidth)", 20.0, "MiB/s",
        lambda: _read_bw(64 * KiB), rel_tol=0.25,
        source="Sec. 2 / Fig. 1: reads a fraction of write performance",
    ),
    CalibrationTarget(
        "PIO dip beyond L2 (uncached source)", 140.0, "MiB/s",
        lambda: _contiguous_bw(1 * MiB, src_cached=False), rel_tol=0.10,
        source="Fig. 1 footnote 2: limited local memory bandwidth",
    ),
    CalibrationTarget(
        "DMA streaming bandwidth", 220.0, "MiB/s",
        lambda: to_mib_s((4 * MiB) / dma_cost(4 * MiB, DEFAULT_NODE)),
        rel_tol=0.10,
        source="Fig. 1: DMA curve (large transfers)",
    ),
]


def check_all() -> list[tuple[CalibrationTarget, float, bool]]:
    """Measure every target; returns (target, measured, ok) triples."""
    return [(t, t.measured(), t.ok()) for t in TARGETS]


def report() -> str:
    lines = [
        "calibration report (paper anchor vs measured)",
        f"{'target':45s} {'paper':>9} {'measured':>9} {'tol':>6}  ok",
    ]
    for target, measured, ok in check_all():
        lines.append(
            f"{target.name:45s} {target.paper_value:9.2f} {measured:9.2f} "
            f"{target.rel_tol * 100:5.0f}%  {'✓' if ok else '✗'}"
        )
    return "\n".join(lines)
