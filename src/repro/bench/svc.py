"""Service smoke point: throughput and tail latency of the KV service.

One small, fixed :func:`~repro.svc.driver.run_service` cell — 2 passive
server shards, 2 clients, a mixed uniform workload — distilled to the two
headline numbers CI gates on:

* ``svc_throughput_ops`` — completed service ops per simulated second
  (higher is better; the ``_ops`` suffix carries the direction for
  ``tools/bench_compare.py``);
* ``svc_p99_us`` — the worst per-op-class p99 latency (reads, writes,
  counter increments), in simulated microseconds (lower is better).

The cell also runs the driver's counter-oracle verification; a bench
point from an incorrect service is meaningless, so a verification
failure raises instead of reporting numbers.
"""

from __future__ import annotations

from ..svc import ServiceConfig, WorkloadSpec, run_service

__all__ = ["run_svc_point"]


def run_svc_point() -> tuple[float, float]:
    """Return ``(throughput_ops, p99_us)`` of the canonical smoke cell."""
    spec = WorkloadSpec(n_keys=32, n_counter_keys=8, read_fraction=0.5,
                        incr_fraction=0.2, ops_per_client=60, value_size=64,
                        seed=1)
    config = ServiceConfig(n_servers=2, n_clients=2, slots_per_shard=32,
                           counter_slots=8, workload=spec)
    report = run_service(config)
    if not report["verified"]:
        raise AssertionError(
            f"svc smoke cell failed counter verification: "
            f"{report['counter_mismatches']}"
        )
    p99 = max(report["latency_us"][kind]["p99"]
              for kind in ("read", "write", "incr"))
    return report["throughput_ops"], p99
