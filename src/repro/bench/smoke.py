"""CI smoke benchmark: a deterministic handful of headline metrics.

The full figure suite takes minutes; CI wants seconds.  :func:`run_smoke`
measures one representative point per subsystem — pt2pt latency and
bandwidth, non-contiguous packing (generic vs. direct_pack_ff), sparse
one-sided puts, and the fault-recovery path — and returns a flat
``{metric: value}`` dict.  The simulation is a discrete-event model, so
every value is bit-reproducible; ``tools/bench_compare.py`` diffs a fresh
run against the committed ``benchmarks/BENCH_baseline.json`` and fails CI
on regressions beyond its tolerance.

Metric naming carries the comparison direction: ``*_us`` is
lower-is-better (simulated microseconds), ``*_mibs`` is higher-is-better
(MiB/s).
"""

from __future__ import annotations

import numpy as np

from .._units import KiB, MiB, to_mib_s
from ..cluster import Cluster
from ..hardware.sci.faults import FaultPlan
from ..mpi.datatypes import BYTE, Vector
from ..mpi.pt2pt import NonContigMode
from .noncontig import measure_point
from .pingpong import pingpong
from .sparse import run_sparse

__all__ = ["run_smoke", "SMOKE_METRICS"]

#: Every metric :func:`run_smoke` emits, in emission order.
SMOKE_METRICS = (
    "pingpong_8b_us",
    "pingpong_1mib_mibs",
    "noncontig_generic_1kib_mibs",
    "noncontig_direct_1kib_mibs",
    "sparse_put_64b_mibs",
    "fault_clean_us",
    "fault_recovery_us",
)


def _fault_pair() -> tuple[float, float]:
    """Receiver-observed time (µs) of one ~192 KiB strided send, clean and
    under a lively seeded fault plan (the recovery-overhead metric)."""
    dtype = Vector(2048, 64, 96, BYTE)
    extent = 2048 * 96

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        buf = ctx.alloc(extent)
        t0 = ctx.now
        if comm.rank == 0:
            buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
            yield from comm.send(buf, dest=1, datatype=dtype, count=1)
            return None
        yield from comm.recv(buf, source=0, datatype=dtype, count=1)
        return ctx.now - t0

    clean = Cluster(n_nodes=2).run(program).results[1]
    plan = FaultPlan(seed=1, transient_rate=0.25, torn_rate=0.25,
                     stall_rate=0.15, stall_time=3000.0)
    faulty = Cluster(n_nodes=2, faults=plan).run(program).results[1]
    return clean, faulty


def run_smoke() -> dict[str, float]:
    """Run every smoke metric; returns ``{name: value}`` (see
    :data:`SMOKE_METRICS` for the order and naming convention)."""
    metrics: dict[str, float] = {}
    metrics["pingpong_8b_us"] = pingpong(8)
    metrics["pingpong_1mib_mibs"] = to_mib_s(MiB / pingpong(1 * MiB))
    metrics["noncontig_generic_1kib_mibs"] = measure_point(
        1 * KiB, mode=NonContigMode.GENERIC)
    metrics["noncontig_direct_1kib_mibs"] = measure_point(
        1 * KiB, mode=NonContigMode.DIRECT)
    metrics["sparse_put_64b_mibs"] = run_sparse(64, op="put", shared=True).bandwidth
    clean, faulty = _fault_pair()
    metrics["fault_clean_us"] = clean
    metrics["fault_recovery_us"] = faulty
    return metrics
