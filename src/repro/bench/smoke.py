"""CI smoke benchmark: a deterministic handful of headline metrics.

The full figure suite takes minutes; CI wants seconds.  :func:`run_smoke`
measures one representative point per subsystem — pt2pt latency and
bandwidth, non-contiguous packing (generic vs. direct_pack_ff), sparse
one-sided puts, and the fault-recovery path — and returns a flat
``{metric: value}`` dict.  The simulation is a discrete-event model, so
every value is bit-reproducible; ``tools/bench_compare.py`` diffs a fresh
run against the committed ``benchmarks/BENCH_baseline.json`` and fails CI
on regressions beyond its tolerance.

Metric naming carries the comparison direction: ``*_us`` is
lower-is-better (simulated microseconds), ``*_mibs`` is higher-is-better
(MiB/s), ``*_ops`` is higher-is-better (service ops per second), ``*_x``
is higher-is-better (a speedup ratio), ``*_availability`` is
higher-is-better (a served-time fraction in [0, 1]).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .._units import KiB, MiB, to_mib_s
from ..cluster import Cluster
from ..hardware.sci.faults import FaultPlan
from ..mpi.datatypes import BYTE, Vector
from ..mpi.pt2pt import NonContigMode
from .noncontig import measure_point
from .pingpong import pingpong
from .sparse import run_sparse
from .svc import run_svc_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import MetricsRegistry

__all__ = ["run_smoke", "smoke_registry", "SMOKE_METRICS",
           "SCENARIO_HEADLINES"]

#: Every metric :func:`run_smoke` emits, in emission order.
SMOKE_METRICS = (
    "pingpong_8b_us",
    "pingpong_1mib_mibs",
    "noncontig_generic_1kib_mibs",
    "noncontig_direct_1kib_mibs",
    "sparse_put_64b_mibs",
    "fault_clean_us",
    "fault_recovery_us",
    "svc_throughput_ops",
    "svc_p99_us",
    "allreduce_flat_64n_us",
    "allreduce_hier_64n_us",
    "allreduce_hier_128n_us",
    "hier_allreduce_speedup_64n_x",
    "scenario_training_step_us",
    "scenario_graph_edges_ops",
    "scenario_steal_tasks_ops",
    "scenario_coloc_p99_us",
    "scenario_coloc_rings_p99_us",
    "qos_reserved_throughput_ops",
    "qos_besteffort_p99_us",
    "kv_failover_availability",
    "kv_overload_p99_us",
)

#: (smoke gauge, scenario) pairs: each end-to-end scenario's headline
#: number, measured at the canonical clean seed-1 cell.
SCENARIO_HEADLINES = (
    ("scenario_training_step_us", "training"),
    ("scenario_graph_edges_ops", "graph"),
    ("scenario_steal_tasks_ops", "work_stealing"),
    ("scenario_coloc_p99_us", "colocation"),
    ("scenario_coloc_rings_p99_us", "colocation_rings"),
    ("qos_reserved_throughput_ops", "qos_contention"),
    ("kv_failover_availability", "kv_failover"),
)


def _unit(name: str) -> str:
    if name.endswith("_us"):
        return "us"
    if name.endswith("_ops"):
        return "ops/s"
    if name.endswith("_x"):
        return "x"
    if name.endswith("_availability"):
        return "1"
    return "MiB/s"


def _fault_pair() -> tuple[float, float]:
    """Receiver-observed time (µs) of one ~192 KiB strided send, clean and
    under a lively seeded fault plan (the recovery-overhead metric)."""
    dtype = Vector(2048, 64, 96, BYTE)
    extent = 2048 * 96

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        buf = ctx.alloc(extent)
        t0 = ctx.now
        if comm.rank == 0:
            buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
            yield from comm.send(buf, dest=1, datatype=dtype, count=1)
            return None
        yield from comm.recv(buf, source=0, datatype=dtype, count=1)
        return ctx.now - t0

    clean = Cluster(n_nodes=2).run(program).results[1]
    plan = FaultPlan(seed=1, transient_rate=0.25, torn_rate=0.25,
                     stall_rate=0.15, stall_time=3000.0)
    faulty = Cluster(n_nodes=2, faults=plan).run(program).results[1]
    return clean, faulty


def smoke_registry() -> "MetricsRegistry":
    """Run every smoke metric into a fresh metrics registry.

    One :class:`~repro.obs.Gauge` per :data:`SMOKE_METRICS` name, in
    emission order; the values are exactly what the pre-registry smoke
    produced (the registry is a reporting layer, not a timing change).
    """
    from ..obs import MetricsRegistry

    registry = MetricsRegistry()
    gauges = {
        name: registry.gauge(name, unit=_unit(name), owner="repro.bench.smoke")
        for name in SMOKE_METRICS
    }
    gauges["pingpong_8b_us"].set(pingpong(8))
    gauges["pingpong_1mib_mibs"].set(to_mib_s(MiB / pingpong(1 * MiB)))
    gauges["noncontig_generic_1kib_mibs"].set(
        measure_point(1 * KiB, mode=NonContigMode.GENERIC))
    gauges["noncontig_direct_1kib_mibs"].set(
        measure_point(1 * KiB, mode=NonContigMode.DIRECT))
    gauges["sparse_put_64b_mibs"].set(
        run_sparse(64, op="put", shared=True).bandwidth)
    clean, faulty = _fault_pair()
    gauges["fault_clean_us"].set(clean)
    gauges["fault_recovery_us"].set(faulty)
    throughput, p99 = run_svc_point()
    gauges["svc_throughput_ops"].set(throughput)
    gauges["svc_p99_us"].set(p99)
    # Topology scaling gauges: hierarchical vs. flat-chain allreduce on
    # switched multi-ringlet fabrics (each run resets the plan cache, so
    # they sit between the microbenchmarks and the scenarios, which
    # reset it again themselves).
    from .hier import run_hier_allreduce

    flat_64 = run_hier_allreduce(64, hierarchical=False)
    hier_64 = run_hier_allreduce(64)
    gauges["allreduce_flat_64n_us"].set(flat_64)
    gauges["allreduce_hier_64n_us"].set(hier_64)
    gauges["allreduce_hier_128n_us"].set(run_hier_allreduce(128))
    gauges["hier_allreduce_speedup_64n_x"].set(flat_64 / hier_64)
    # End-to-end scenario headlines last: run_scenario resets the plan
    # cache, so the microbenchmark values above stay untouched.
    from ..scenarios import run_scenario

    for gauge_name, scenario in SCENARIO_HEADLINES:
        report = run_scenario(scenario, seed=1).report
        gauges[gauge_name].set(report["headline"][gauge_name])
        if scenario == "qos_contention":
            # Companion gauge off the same cell: the throttled tenant's
            # protected-phase tail latency (the graceful-degradation
            # side of the isolation trade).
            gauges["qos_besteffort_p99_us"].set(
                report["metrics"]["qos.besteffort_latency_us.p99"])
    # The replicated-KV overload point last: it resets the plan cache
    # per run itself, and it self-checks (open-loop sojourn p99 must
    # strictly exceed the closed-loop p99 at the same per-op cost).
    from .kv import run_overload_point

    gauges["kv_overload_p99_us"].set(run_overload_point().open_p99_us)
    return registry


def run_smoke() -> dict[str, float]:
    """Run every smoke metric; returns ``{name: value}`` (see
    :data:`SMOKE_METRICS` for the order and naming convention).

    The values are read out of the :func:`smoke_registry` snapshot, so
    the CI headline numbers and the observability layer cannot drift."""
    return smoke_registry().snapshot()
