"""Hierarchical-collective scaling gauges on switched multi-ringlet fabrics.

The ROADMAP's scaling target is 64–512 nodes on switched topologies; this
module measures the piece bench smoke can afford every CI run: a 128 KiB
allreduce across 8-node ringlets joined by a crossbar
(:class:`~repro.hardware.sci.topology.RingOfRings`), with the hierarchical
algorithm (ringlet-local aggregation, leader exchange across the switch)
against the flat chain-pipelined baseline the
:class:`~repro.mpi.transport.policy.ChunkedCollectivesPolicy` runs on any
topology.  The flat chain drags every segment through all 64 ranks in
sequence; the hierarchical algorithm crosses the crossbar once per
ringlet — the gap between the two gauges is the payoff of topology-aware
collective selection.
"""

from __future__ import annotations

from .._units import KiB
from ..cluster import Cluster
from ..hardware.sci.topology import RingOfRings
from ..mpi.datatypes import BYTE
from ..mpi.flatten import reset_plan_cache
from ..mpi.transport.policy import ChunkedCollectivesPolicy

__all__ = ["run_hier_allreduce"]

#: Payload of the scaling gauges: large enough that the chain baseline
#: chunk-pipelines and the crossbar stage matters, small enough for CI.
HIER_PAYLOAD = 128 * KiB

#: Every gauge uses 8-node ringlets (the paper outlook's ringlet size).
RINGLET_SIZE = 8


def run_hier_allreduce(n_nodes: int, hierarchical: bool = True,
                       payload: int = HIER_PAYLOAD) -> float:
    """Completion time (µs) of one ``payload``-byte allreduce.

    ``n_nodes`` ranks on a :class:`RingOfRings` of 8-node ringlets;
    ``hierarchical=False`` pins the policy to the flat chain algorithm
    (the pre-topology behaviour) for the speedup comparison.
    """
    if n_nodes % RINGLET_SIZE:
        raise ValueError(f"{n_nodes} nodes do not fill {RINGLET_SIZE}-node ringlets")
    reset_plan_cache()
    topology = RingOfRings(n_nodes // RINGLET_SIZE, RINGLET_SIZE)
    policy = ChunkedCollectivesPolicy(hier_collectives=hierarchical)

    def program(ctx):
        comm = ctx.comm
        send = ctx.alloc(payload)
        recv = ctx.alloc(payload)
        send.read()[:] = comm.rank % 251
        t0 = ctx.now
        yield from comm.allreduce(send, recv, op="sum", datatype=BYTE)
        return ctx.now - t0

    run = Cluster(n_nodes=n_nodes, topology=topology, policy=policy).run(program)
    return max(run.results)
