"""Regenerate every table and figure of the paper from the command line::

    python -m repro.bench            # everything
    python -m repro.bench fig7 tab2  # selected experiments

Prints the paper-shaped series/tables; the same code paths the pytest
benchmarks run, without the benchmark harness.
"""

from __future__ import annotations

import argparse
import sys

from .noncontig import fig7_series, fig10_platform_series
from .raw import fig1_bandwidth, fig1_latency
from .ring import (
    PAPER_DEMAND_MIB_S,
    fig12_platform_series,
    fig12_sci_series,
    link_frequency_comparison,
    ring_scalability_table,
    table2,
)
from .series import render_series, render_table
from .sparse import fig9_series, fig11_platform_series
from .strided import access_size_table, stride_sweep
from ..platforms import TABLE1, platform_by_id


def run_fig1() -> None:
    print(render_series("Figure 1 (top): small-data latency [µs]", fig1_latency()))
    print()
    print(render_series("Figure 1 (bottom): bandwidth [MiB/s]", fig1_bandwidth()))


def run_fig7() -> None:
    for internode in (True, False):
        where = "inter-node (SCI)" if internode else "intra-node (shm)"
        series = fig7_series(internode=internode)
        print(render_series(
            f"Figure 7: noncontig bandwidth, {where} [MiB/s]",
            [series["generic"], series["direct"], series["contiguous"]],
        ))
        print()


def run_sec43() -> None:
    print(render_series("Sec. 4.3: 8-byte strided writes vs stride [MiB/s]",
                        [stride_sweep(8)], size_x=False))
    print()
    for access, (lo, hi) in access_size_table().items():
        print(f"{access:4d} B accesses: {lo:7.2f} .. {hi:7.2f} MiB/s "
              f"(paper: {'5 .. 28' if access == 8 else '7 .. 162'})")


def run_fig9() -> None:
    out = fig9_series()
    keys = ("put-shared", "get-shared", "put-private", "get-private")
    print(render_series("Figure 9 (top): sparse per-call latency [µs]",
                        [out[k]["latency"] for k in keys]))
    print()
    print(render_series("Figure 9 (bottom): sparse bandwidth [MiB/s]",
                        [out[k]["bandwidth"] for k in keys]))


def run_fig10() -> None:
    curves = []
    for pid in ("C", "F-G", "F-s", "X-f", "X-s", "S-M", "S-s"):
        curves.append(fig10_platform_series(platform_by_id(pid).model)["nc"])
    sci = fig7_series(internode=True)
    curves.append(sci["direct"])
    curves[-1].label = "M-S nc"
    print(render_series("Figure 10: noncontig bandwidth per platform [MiB/s]",
                        curves))


def run_fig11() -> None:
    from .sparse import DEFAULT_ACCESS_SIZES, run_sparse
    from .series import Series

    curves = []
    for pid in ("C", "F-s", "X-f"):
        curves.append(fig11_platform_series(platform_by_id(pid).model)["bandwidth"])
    curves.append(fig11_platform_series(platform_by_id("X-s").model,
                                        op="get")["bandwidth"])
    sci = Series("M-S")
    for size in DEFAULT_ACCESS_SIZES:
        sci.add(size, run_sparse(size, op="put", shared=True).bandwidth)
    curves.append(sci)
    print(render_series("Figure 11: sparse one-sided bandwidth [MiB/s]", curves))


def run_fig12() -> None:
    from .ring import fig12_intranode_series

    curves = [fig12_sci_series(), fig12_intranode_series()]
    for pid in ("C", "F-s", "X-s"):
        curves.append(fig12_platform_series(platform_by_id(pid).model))
    print(render_series("Figure 12: per-process put bandwidth vs processes "
                        "[MiB/s]", curves, size_x=False))


def run_tab1() -> None:
    print("Table 1: cluster platforms")
    for spec in TABLE1:
        osc = "yes" if spec.supports_osc else "no"
        note = f"  ({spec.note})" if spec.note else ""
        print(f"  {spec.id:4s} {spec.machine:45s} {spec.interconnect:16s} "
              f"{spec.mpi:18s} OSC:{osc}{note}")


def run_tab2() -> None:
    print(render_table(ring_scalability_table(PAPER_DEMAND_MIB_S)))
    print()
    print(render_table(table2()))
    print()
    rates = link_frequency_comparison()
    print("200 MHz link follow-up:",
          {f"{mhz:.0f} MHz": f"{bw:.1f} MiB/s" for mhz, bw in rates.items()})


def run_calibration() -> None:
    from .calibration import report

    print(report())


def run_pingpong() -> None:
    from .pingpong import bandwidth_series, latency_series

    print(render_series(
        "MPI ping-pong latency [µs]",
        [latency_series(intranode=False), latency_series(intranode=True)],
    ))
    print()
    print(render_series(
        "MPI ping-pong bandwidth [MiB/s]",
        [bandwidth_series(intranode=False), bandwidth_series(intranode=True)],
    ))


EXPERIMENTS = {
    "calibration": run_calibration,
    "pingpong": run_pingpong,
    "fig1": run_fig1,
    "fig7": run_fig7,
    "sec43": run_sec43,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "tab1": run_tab1,
    "tab2": run_tab2,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help=f"which experiments to run: {', '.join(EXPERIMENTS)}, or 'all' "
             "(default: all)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the CI smoke metrics (seconds, deterministic) "
             "instead of the figure suite",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="run the wall-clock engine-performance gauges "
             "(runner-dependent; never part of --smoke)",
    )
    parser.add_argument(
        "--fastpath", choices=("on", "off"), default=None,
        help="force the analytic fast paths on or off for this run "
             "(default: leave the process-wide toggle alone)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="with --smoke/--perf: also write the metrics as JSON "
             "('-' for stdout)",
    )
    args = parser.parse_args(argv)
    if args.json and not (args.smoke or args.perf):
        parser.error("--json requires --smoke or --perf")
    if args.smoke and args.perf:
        parser.error("--smoke and --perf are separate reports")
    if args.fastpath is not None:
        from ..mpi.transport.fastpath import set_fastpath_enabled

        set_fastpath_enabled(args.fastpath == "on")
    if args.smoke or args.perf:
        if args.experiments:
            parser.error("--smoke/--perf take no experiment arguments")
        import json

        if args.smoke:
            from .smoke import run_smoke

            metrics = run_smoke()
        else:
            from .perf import run_perf

            metrics = run_perf()
        # With --json -, stdout is reserved for the JSON document (so the
        # output pipes into jq / bench_compare); the table goes to stderr.
        table_out = sys.stderr if args.json == "-" else sys.stdout
        width = max(len(name) for name in metrics)
        for name, value in metrics.items():
            print(f"{name:<{width}}  {value:12.3f}", file=table_out)
        if args.json:
            payload = json.dumps(metrics, indent=2) + "\n"
            if args.json == "-":
                print(payload, end="")
            else:
                with open(args.json, "w") as fh:
                    fh.write(payload)
        return 0
    requested = args.experiments or ["all"]
    unknown = [e for e in requested if e != "all" and e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    selected = list(EXPERIMENTS) if "all" in requested else requested
    for i, name in enumerate(selected):
        if i:
            print("\n" + "=" * 72 + "\n")
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
