"""E2 / Figure 7 (and the datatype part of E5 / Figure 10): *noncontig*.

The micro-benchmark of Sec. 3.4: transmit a simple single-strided vector
datatype whose blocksize rises from 8 B to 128 kiB with stride = twice the
blocksize (equal data and gap), always moving the same total amount of
data (256 kiB).  Compared: the *generic* technique, *direct_pack_ff*, and
the equivalent *contiguous* transfer as reference — inter-node via SCI
and intra-node via shared memory.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Optional

from .._units import KiB, to_mib_s
from ..cluster import Cluster
from ..hardware.params import NodeParams, DEFAULT_NODE
from ..mpi.datatypes import DOUBLE, Vector
from ..mpi.pt2pt.config import DEFAULT_PROTOCOL, NonContigMode
from ..platforms.base import AnalyticPlatform
from .series import Series

__all__ = [
    "DEFAULT_BLOCKSIZES",
    "TOTAL_BYTES",
    "measure_point",
    "measure_point_double_strided",
    "fig7_series",
    "fig10_platform_series",
]

#: Blocksizes of the Fig. 7 sweep (8 B .. 128 kiB).
DEFAULT_BLOCKSIZES: list[int] = [
    8, 16, 32, 64, 128, 256, 512,
    1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB,
]

#: Fixed payload per transfer ("which is 256 kiB for this case").
TOTAL_BYTES: int = 256 * KiB


def _make_cluster(internode: bool, mode: str,
                  node_params: NodeParams = DEFAULT_NODE) -> Cluster:
    protocol = DEFAULT_PROTOCOL.replace(noncontig_mode=mode)
    if internode:
        return Cluster(n_nodes=2, node_params=node_params, protocol=protocol)
    return Cluster(n_nodes=1, procs_per_node=2, node_params=node_params,
                   protocol=protocol)


def measure_point(
    blocksize: int,
    contiguous: bool = False,
    internode: bool = True,
    mode: str = NonContigMode.DIRECT,
    total: int = TOTAL_BYTES,
    node_params: NodeParams = DEFAULT_NODE,
    plan_cache: bool = True,
) -> float:
    """Bandwidth (MiB/s) of one noncontig transfer configuration.

    The transfer is a single one-way send of ``total`` payload bytes from
    rank 0 to rank 1, either as the strided vector (blocksize, stride =
    2 x blocksize) or as the contiguous reference.

    ``plan_cache=False`` disables the packing-plan cache for the run (the
    ablation knob: every chunk re-derives its offset tables, as the
    pre-plan engine did).  Simulated time is unaffected — the cache saves
    host-side work — but the build counters in
    :func:`repro.mpi.flatten.plan_cache_stats` show the difference.
    """
    if blocksize % 8:
        raise ValueError("blocksize must be a multiple of the double size")
    cluster = _make_cluster(internode, mode, node_params)

    if contiguous:
        dtype = None
        count = None
        span = total
    else:
        nblocks = total // blocksize
        doubles_per_block = blocksize // 8
        dtype = Vector(nblocks, doubles_per_block, 2 * doubles_per_block, DOUBLE)
        dtype.commit()
        count = 1
        span = dtype.extent

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(span)
        yield from comm.barrier()
        t0 = ctx.now
        if comm.rank == 0:
            if dtype is None:
                yield from comm.send(buf, dest=1, tag=0)
            else:
                yield from comm.send(buf, dest=1, tag=0, datatype=dtype, count=count)
            return None
        if dtype is None:
            yield from comm.recv(buf, source=0, tag=0)
        else:
            yield from comm.recv(buf, source=0, tag=0, datatype=dtype, count=count)
        return ctx.now - t0

    from ..mpi.flatten import plan_cache_disabled

    with nullcontext() if plan_cache else plan_cache_disabled():
        run = cluster.run(program)
    elapsed = run.results[1]
    return to_mib_s(total / elapsed)


def fig7_series(
    internode: bool = True,
    blocksizes: Optional[list[int]] = None,
    total: int = TOTAL_BYTES,
    node_params: NodeParams = DEFAULT_NODE,
) -> dict[str, Series]:
    """The three Fig. 7 curves for one locality (inter- or intra-node)."""
    blocksizes = blocksizes or DEFAULT_BLOCKSIZES
    where = "SCI" if internode else "shm"
    generic = Series(f"generic ({where})")
    direct = Series(f"direct_pack_ff ({where})")
    contiguous = Series(f"contiguous ({where})")
    contiguous_bw = measure_point(
        blocksizes[0], contiguous=True, internode=internode, total=total,
        node_params=node_params,
    )
    for blocksize in blocksizes:
        generic.add(
            blocksize,
            measure_point(blocksize, internode=internode,
                          mode=NonContigMode.GENERIC, total=total,
                          node_params=node_params),
        )
        direct.add(
            blocksize,
            measure_point(blocksize, internode=internode,
                          mode=NonContigMode.DIRECT, total=total,
                          node_params=node_params),
        )
        contiguous.add(blocksize, contiguous_bw)
    return {"generic": generic, "direct": direct, "contiguous": contiguous}


def measure_point_double_strided(
    blocksize: int,
    internode: bool = True,
    mode: str = NonContigMode.DIRECT,
    total: int = TOTAL_BYTES,
    inner_blocks: int = 8,
    node_params: NodeParams = DEFAULT_NODE,
) -> float:
    """Bandwidth (MiB/s) for a *double-strided* layout (paper Fig. 2).

    Same blocksize and same gap ratio as the single-strided sweep, but
    arranged two-dimensionally: rows of ``inner_blocks`` blocks (stride
    2 x blocksize) separated by a full gap row — the ocean-model boundary
    pattern.  Sec. 3.4: "the complexity of the datatype should have
    little influence on the performance of our optimization, since the
    algorithm is generic".
    """
    from ..mpi.datatypes import Hvector

    if blocksize % 8:
        raise ValueError("blocksize must be a multiple of the double size")
    row_bytes = inner_blocks * blocksize
    nrows = total // row_bytes
    if nrows < 1:
        raise ValueError("total too small for the requested row size")
    doubles = blocksize // 8
    inner = Vector(inner_blocks, doubles, 2 * doubles, DOUBLE)
    outer = Hvector(nrows, 1, 2 * inner.extent + blocksize, inner)
    outer.commit()

    cluster = _make_cluster(internode, mode, node_params)
    span = outer.extent

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(span)
        yield from comm.barrier()
        t0 = ctx.now
        if comm.rank == 0:
            yield from comm.send(buf, dest=1, tag=0, datatype=outer, count=1)
            return None
        yield from comm.recv(buf, source=0, tag=0, datatype=outer, count=1)
        return ctx.now - t0

    run = cluster.run(program)
    payload = outer.size
    return to_mib_s(payload / run.results[1])


def fig10_platform_series(
    platform: AnalyticPlatform,
    blocksizes: Optional[list[int]] = None,
    total: int = TOTAL_BYTES,
) -> dict[str, Series]:
    """Fig. 10 pair (nc and c bandwidth) for one analytic platform."""
    blocksizes = blocksizes or DEFAULT_BLOCKSIZES
    pid = platform.spec.id
    nc = Series(f"{pid} nc")
    c = Series(f"{pid} c")
    c_bw = platform.contiguous_bandwidth(total)
    for blocksize in blocksizes:
        nc.add(blocksize, platform.noncontig_bandwidth(total, blocksize))
        c.add(blocksize, c_bw)
    return {"nc": nc, "c": c}
