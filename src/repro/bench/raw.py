"""E1 / Figure 1: raw SCI communication performance.

Latency and bandwidth of PIO remote writes, PIO remote reads and DMA
transfers between two nodes, swept over transfer sizes — the baseline
curves everything else in the paper builds on.
"""

from __future__ import annotations

from .._units import KiB, MiB, to_mib_s
from ..hardware.params import DEFAULT_NODE, NodeParams
from ..hardware.sci.transactions import (
    AccessRun,
    dma_cost,
    remote_read_cost,
    remote_write_cost,
)
from .series import Series

__all__ = ["fig1_latency", "fig1_bandwidth", "DEFAULT_SIZES"]

#: Transfer sizes of the Fig. 1 sweep.
DEFAULT_SIZES: list[int] = [
    4, 8, 16, 32, 64, 128, 256, 512,
    1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB,
    1 * MiB, 4 * MiB,
]

#: One-hop propagation used for the latency chart.
def _hop(params: NodeParams) -> float:
    return params.link.hop_latency


def _pio_write_time(size: int, params: NodeParams) -> float:
    src_cached = 2 * size <= params.memory.caches.l2_size
    cost = remote_write_cost(AccessRun.contiguous(0, size), params, src_cached=src_cached)
    return cost.duration + params.adapter.pio_op_overhead + _hop(params)


def _pio_read_time(size: int, params: NodeParams) -> float:
    return (
        remote_read_cost(AccessRun.contiguous(0, size), params)
        + params.adapter.pio_op_overhead
    )


def _dma_time(size: int, params: NodeParams) -> float:
    return dma_cost(size, params) + _hop(params)


def fig1_latency(
    sizes: list[int] | None = None, params: NodeParams = DEFAULT_NODE
) -> list[Series]:
    """Small-data transfer latency (µs) for PIO write / PIO read / DMA."""
    sizes = sizes or [s for s in DEFAULT_SIZES if s <= 1 * KiB]
    write = Series("PIO write", y_unit="µs")
    read = Series("PIO read", y_unit="µs")
    dma = Series("DMA", y_unit="µs")
    for size in sizes:
        write.add(size, _pio_write_time(size, params))
        read.add(size, _pio_read_time(size, params))
        dma.add(size, _dma_time(size, params))
    return [write, read, dma]


def fig1_bandwidth(
    sizes: list[int] | None = None, params: NodeParams = DEFAULT_NODE
) -> list[Series]:
    """Transfer bandwidth (MiB/s) for PIO write / PIO read / DMA."""
    sizes = sizes or DEFAULT_SIZES
    write = Series("PIO write")
    read = Series("PIO read")
    dma = Series("DMA")
    for size in sizes:
        write.add(size, to_mib_s(size / _pio_write_time(size, params)))
        read.add(size, to_mib_s(size / _pio_read_time(size, params)))
        dma.add(size, to_mib_s(size / _dma_time(size, params)))
    return [write, read, dma]
