"""E3 / Sec. 4.3: the low-level strided remote-write study.

"We evaluated the performance of strided remote write access by another
(low-level) benchmark which performed remote writes with various access
and stride sizes."  Findings being reproduced:

* 8-byte accesses: 5 to 28 MiB/s depending on the stride;
* 256-byte accesses: 7 to 162 MiB/s;
* maxima at strides that are multiples of 32 (the P-III write-combine
  buffer size);
* disabling write-combining removes the stride sensitivity but costs
  about 50 % of peak bandwidth.
"""

from __future__ import annotations

from typing import Optional

from .._units import KiB, to_mib_s
from ..hardware.params import DEFAULT_NODE, NodeParams
from ..hardware.sci.transactions import AccessRun, remote_write_cost
from .series import Series

__all__ = ["strided_write_bandwidth", "stride_sweep", "access_size_table"]


def strided_write_bandwidth(
    access_size: int,
    stride: int,
    total: int = 256 * KiB,
    params: NodeParams = DEFAULT_NODE,
    base: int = 0,
) -> float:
    """Bandwidth (MiB/s) of a strided remote-write pattern."""
    if access_size <= 0 or stride < access_size:
        raise ValueError("need access_size > 0 and stride >= access_size")
    count = max(1, total // access_size)
    run = AccessRun(base=base, size=access_size, stride=stride, count=count)
    cost = remote_write_cost(run, params, src_cached=False)
    return to_mib_s(run.total_bytes / cost.duration)


def stride_sweep(
    access_size: int,
    strides: Optional[list[int]] = None,
    params: NodeParams = DEFAULT_NODE,
) -> Series:
    """Bandwidth vs. stride for one access size."""
    if strides is None:
        strides = list(range(access_size + 4, max(4 * access_size, 129) + 1, 4))
        strides += [s + 1 for s in strides if s + 1 not in strides]
        strides = sorted(set(s for s in strides if s > access_size))
    series = Series(f"{access_size} B accesses", x_unit="stride bytes")
    for stride in strides:
        if stride == access_size:
            continue  # that's a contiguous write, not a strided one
        series.add(stride, strided_write_bandwidth(access_size, stride, params=params))
    return series


def access_size_table(
    params: NodeParams = DEFAULT_NODE,
) -> dict[int, tuple[float, float]]:
    """(min, max) bandwidth over strides for the paper's two access sizes.

    The paper reports 5-28 MiB/s for 8 B and 7-162 MiB/s for 256 B.
    """
    out: dict[int, tuple[float, float]] = {}
    for access in (8, 256):
        values = []
        for stride in range(access + 1, 4 * access + 64):
            values.append(strided_write_bandwidth(access, stride, params=params))
        out[access] = (min(values), max(values))
    return out
