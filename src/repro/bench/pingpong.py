"""Classic MPI ping-pong micro-benchmarks (latency / bandwidth curves).

Not a paper figure — the standard characterization suite any MPI release
ships (cf. the osu_latency / osu_bw style).  Useful to place the simulated
SCI-MPICH next to its contemporaries and to regression-test the protocol
stack's end-to-end timing.
"""

from __future__ import annotations

from typing import Optional

from .._units import KiB, MiB, to_mib_s
from ..cluster import Cluster
from ..hardware.params import DEFAULT_NODE, NodeParams
from ..mpi.pt2pt.config import DEFAULT_PROTOCOL, ProtocolConfig
from .series import Series

__all__ = ["pingpong", "latency_series", "bandwidth_series", "DEFAULT_SIZES"]

DEFAULT_SIZES: list[int] = [
    0, 1, 8, 64, 128, 512, 1 * KiB, 4 * KiB, 16 * KiB,
    64 * KiB, 256 * KiB, 1 * MiB,
]


def pingpong(
    nbytes: int,
    iterations: int = 4,
    intranode: bool = False,
    node_params: NodeParams = DEFAULT_NODE,
    protocol: ProtocolConfig = DEFAULT_PROTOCOL,
) -> float:
    """One-way time (µs) of an ``nbytes`` message, ping-pong averaged.

    The simulation is deterministic, so a handful of iterations suffices
    (the first exchange differs slightly: eager-pool setup etc.).
    """
    if nbytes < 0 or iterations < 1:
        raise ValueError("need nbytes >= 0 and iterations >= 1")
    if intranode:
        cluster = Cluster(n_nodes=1, procs_per_node=2,
                          node_params=node_params, protocol=protocol)
    else:
        cluster = Cluster(n_nodes=2, node_params=node_params,
                          protocol=protocol)

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(max(nbytes, 1))
        yield from comm.barrier()
        t0 = ctx.now
        for _ in range(iterations):
            if comm.rank == 0:
                yield from comm.send(buf, dest=1, tag=0, count=nbytes)
                yield from comm.recv(buf, source=1, tag=0, count=nbytes)
            else:
                yield from comm.recv(buf, source=0, tag=0, count=nbytes)
                yield from comm.send(buf, dest=0, tag=0, count=nbytes)
        return ctx.now - t0

    run = cluster.run(program)
    round_trips = run.results[0]
    return round_trips / (2 * iterations)


def latency_series(
    sizes: Optional[list[int]] = None,
    intranode: bool = False,
    node_params: NodeParams = DEFAULT_NODE,
) -> Series:
    """One-way latency (µs) over message sizes."""
    sizes = sizes if sizes is not None else DEFAULT_SIZES
    where = "shm" if intranode else "SCI"
    series = Series(f"latency ({where})", y_unit="µs")
    for size in sizes:
        series.add(size, pingpong(size, intranode=intranode,
                                  node_params=node_params))
    return series


def bandwidth_series(
    sizes: Optional[list[int]] = None,
    intranode: bool = False,
    node_params: NodeParams = DEFAULT_NODE,
) -> Series:
    """One-way bandwidth (MiB/s) over message sizes (zero size skipped)."""
    sizes = [s for s in (sizes if sizes is not None else DEFAULT_SIZES) if s > 0]
    where = "shm" if intranode else "SCI"
    series = Series(f"bandwidth ({where})")
    for size in sizes:
        one_way = pingpong(size, intranode=intranode, node_params=node_params)
        series.add(size, to_mib_s(size / one_way))
    return series
