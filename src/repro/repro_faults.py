"""``repro-faults`` — run the fault-injection differential oracle from the
command line.

For each requested seed the tool runs a reference program on a clean
fabric and again under a seeded :class:`~repro.hardware.sci.faults.FaultPlan`,
then reports the injected faults, the transport's recovery counters, the
recovery time overhead, and whether the delivered payloads were
byte-identical.  Exit status is nonzero if any payload diverged — the same
check CI's fault-matrix job runs via ``pytest -m faults``.

Examples::

    repro-faults                           # all suites, seeds 1-3
    repro-faults --suite osc --seeds 7 8   # one suite, chosen seeds
    repro-faults --transient 0.4 --torn 0.3 --stall 0.2 --trace
    repro-faults --json report.json
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from ._units import KiB
from .cluster import Cluster
from .hardware.sci.faults import FaultPlan
from .mpi.datatypes import BYTE, Vector
from .trace import attach_tracer

SUITES = ("pt2pt", "osc", "collectives")


def _pt2pt_program():
    dtype = Vector(3072, 64, 96, BYTE)
    extent = 3072 * 96

    def program(ctx):
        comm = ctx.comm
        dtype.commit()
        buf = ctx.alloc(extent)
        if comm.rank == 0:
            buf.read()[:] = np.arange(extent, dtype=np.uint8) % 251
            yield from comm.send(buf, dest=1, datatype=dtype, count=1)
            return None
        yield from comm.recv(buf, source=0, datatype=dtype, count=1)
        return bytes(buf.read())

    return program, 2


def _osc_program():
    nbytes = 8 * KiB

    def program(ctx):
        comm = ctx.comm
        win = yield from comm.win_create(nbytes, shared=True)
        yield from win.fence()
        if comm.rank == 0:
            for i in range(6):
                data = (np.arange(nbytes, dtype=np.uint8) + i) % 241
                yield from win.put(data, target=1, target_disp=0)
                yield from win.fence()
                yield from win.fence()
            return None
        results = []
        for _ in range(6):
            yield from win.fence()
            results.append(bytes(win.local_view()))
            yield from win.fence()
        return results

    return program, 2


def _collectives_program():
    nbytes = 24 * KiB

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(nbytes)
        if comm.rank == 0:
            buf.read()[:] = np.arange(nbytes, dtype=np.uint8) % 233
        yield from comm.bcast(buf, root=0)
        send = ctx.alloc(2 * KiB)
        send.read()[:] = (np.arange(2 * KiB, dtype=np.uint8) + 31 * comm.rank) % 227
        gathered = ctx.alloc(2 * KiB * comm.size)
        yield from comm.allgather(send, gathered)
        return (bytes(buf.read()), bytes(gathered.read()))

    return program, 4


_PROGRAMS = {
    "pt2pt": _pt2pt_program,
    "osc": _osc_program,
    "collectives": _collectives_program,
}


def _recovery_totals(cluster) -> dict[str, int]:
    totals: dict[str, int] = {}
    for device in cluster.world.devices:
        for key, value in device.recovery.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def run_suite(suite: str, seed: int, args) -> dict:
    """One (suite, seed) cell of the oracle; returns a report dict."""
    program, n_nodes = _PROGRAMS[suite]()
    reference = Cluster(n_nodes=n_nodes).run(program)
    plan = FaultPlan(
        seed=seed,
        transient_rate=args.transient,
        torn_rate=args.torn,
        stall_rate=args.stall,
        unmap_after=args.unmap_after,
    )
    faulty = Cluster(n_nodes=n_nodes, faults=plan)
    tracer = attach_tracer(faulty) if args.trace else None
    run = faulty.run(program)
    report = {
        "suite": suite,
        "seed": seed,
        "ok": run.results == reference.results,
        "faults": dict(plan.counters),
        "recovery": _recovery_totals(faulty),
        "clean_us": reference.elapsed,
        "faulty_us": run.elapsed,
    }
    if tracer is not None:
        report["trace"] = tracer.summary()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="Fault-injection differential oracle for the SCI transport.",
    )
    parser.add_argument("--suite", choices=SUITES + ("all",), default="all")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3],
                        help="fault plan seeds to sweep (default: 1 2 3)")
    parser.add_argument("--transient", type=float, default=0.25,
                        help="per-transfer loss probability")
    parser.add_argument("--torn", type=float, default=0.25,
                        help="per-chunk torn-write probability")
    parser.add_argument("--stall", type=float, default=0.15,
                        help="per-chunk receiver stall probability")
    parser.add_argument("--unmap-after", type=int, default=None,
                        help="revoke a segment on the Nth remote access")
    parser.add_argument("--trace", action="store_true",
                        help="include the trace summary per cell")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON (- for stdout)")
    args = parser.parse_args(argv)

    suites = SUITES if args.suite == "all" else (args.suite,)
    reports = [run_suite(suite, seed, args)
               for suite in suites for seed in args.seeds]

    # With --json -, stdout carries exactly one JSON document (pipeable
    # into jq / CI checks); the human report moves to stderr.
    report_out = sys.stderr if args.json == "-" else sys.stdout
    failed = 0
    for rep in reports:
        verdict = "ok" if rep["ok"] else "PAYLOAD MISMATCH"
        failed += not rep["ok"]
        faults = " ".join(f"{k}={v}" for k, v in rep["faults"].items() if v)
        recov = " ".join(f"{k}={v}" for k, v in rep["recovery"].items() if v)
        overhead = rep["faulty_us"] / rep["clean_us"] if rep["clean_us"] else 1.0
        print(f"{rep['suite']:<12} seed={rep['seed']:<3} {verdict:<16} "
              f"overhead={overhead:5.2f}x  faults[{faults or 'none'}]  "
              f"recovery[{recov or 'none'}]", file=report_out)
        if args.trace and "trace" in rep:
            print(rep["trace"], file=report_out)

    if args.json:
        payload = json.dumps(reports, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload)

    print(f"{len(reports)} cells, {failed} failed", file=report_out)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
