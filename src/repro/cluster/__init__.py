"""Cluster façade (S13): build a simulated SCI cluster and run MPI programs."""

from .builder import Cluster, ClusterRun, RankContext

__all__ = ["Cluster", "ClusterRun", "RankContext"]
