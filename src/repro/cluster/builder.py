"""Cluster façade: assemble nodes + fabric + SMI + MPI and run programs.

This is the top of the stack — the piece a user touches first::

    from repro.cluster import Cluster

    def program(ctx):
        comm = ctx.comm
        buf = ctx.alloc(1024)
        if comm.rank == 0:
            buf.fill(7)
            yield from comm.send(buf, dest=1)
        else:
            yield from comm.recv(buf, source=0)
        return ctx.now

    run = Cluster(n_nodes=2).run(program)
    print(run.results, run.elapsed)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from .._units import MiB
from ..hardware.node import Node
from ..hardware.params import DEFAULT_NODE, NodeParams
from ..hardware.sci.fabric import SCIFabric
from ..hardware.sci.faults import FaultPlan
from ..hardware.sci.topology import RingTopology, Topology
from ..mpi.comm import Communicator
from ..mpi.pt2pt.config import DEFAULT_PROTOCOL, ProtocolConfig
from ..mpi.pt2pt.engine import MPIWorld
from ..mpi.transport.policy import TransferPolicy
from ..memlib import Buffer
from ..sim import Engine, Process
from ..smi import SMIContext

__all__ = ["Cluster", "RankContext", "ClusterRun"]


class RankContext:
    """Everything a rank's program needs: its communicator and memory."""

    def __init__(self, cluster: "Cluster", rank: int):
        self.cluster = cluster
        self.comm = Communicator(cluster.world, rank)
        self.rank = rank
        self.size = cluster.world.n_ranks
        self.node = cluster.smi.node_of(rank)
        self._alloc_counter = 0

    def alloc(self, nbytes: int, alignment: int = 8, label: str = "") -> Buffer:
        """Allocate private process memory on this rank's node."""
        self._alloc_counter += 1
        return self.node.space.alloc(
            nbytes,
            alignment=alignment,
            label=label or f"user-r{self.rank}-{self._alloc_counter}",
        )

    @property
    def now(self) -> float:
        """Current simulated time in µs."""
        return self.cluster.engine.now

    def wtime(self) -> float:
        """MPI_Wtime analogue, in simulated *seconds*."""
        return self.cluster.engine.now * 1e-6

    def flush_cache(self):
        """The benchmarks' cache flush (paper Fig. 8): a fixed cost stand-in."""
        yield self.cluster.engine.timeout(50.0)


@dataclass
class ClusterRun:
    """Outcome of one program run across all ranks."""

    results: list[Any]
    elapsed: float  # µs of simulated time

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed * 1e-6


class Cluster:
    """A simulated SCI cluster ready to run MPI programs."""

    def __init__(
        self,
        n_nodes: int,
        procs_per_node: int = 1,
        node_params: NodeParams = DEFAULT_NODE,
        protocol: ProtocolConfig = DEFAULT_PROTOCOL,
        topology: Optional[Topology] = None,
        mem_per_node: int = 96 * MiB,
        echo_ratio: float = 0.1,
        policy: Optional["TransferPolicy"] = None,
        faults: Optional[FaultPlan] = None,
    ):
        if n_nodes < 1 or procs_per_node < 1:
            raise ValueError("need at least one node and one process per node")
        self.engine = Engine()
        self.node_params = node_params
        self.nodes = [Node(i, mem_size=mem_per_node, params=node_params) for i in range(n_nodes)]
        self.topology = topology or RingTopology(n_nodes)
        self.fabric = SCIFabric(
            self.engine, self.topology, node_params=node_params, echo_ratio=echo_ratio
        )
        if faults is not None:
            self.fabric.install_fault_plan(faults)
        # Block rank placement: ranks 0..p-1 on node 0, etc. (the common
        # cluster layout; Table 1's SMPs run several ranks per node).
        rank_to_node = [
            node for node in range(n_nodes) for _ in range(procs_per_node)
        ]
        self.smi = SMIContext(self.engine, self.fabric, self.nodes, rank_to_node)
        self.world = MPIWorld(self.smi, protocol, policy=policy)
        self.contexts = [RankContext(self, r) for r in range(self.world.n_ranks)]
        self._metrics = None

    @property
    def n_ranks(self) -> int:
        return self.world.n_ranks

    @property
    def metrics(self):
        """The cluster's :class:`~repro.obs.MetricsRegistry` (built lazily).

        Collects every subsystem's counters — pt2pt protocol counts,
        recovery state, transport chunk stats, fabric traffic, plan-cache
        hit rates, segment directory, fault injection, OSC strategy
        counts, policy knobs, and the engine clock — under one flat
        namespace.  See ``docs/OBSERVABILITY.md`` for the name registry.
        """
        if self._metrics is None:
            from ..obs.wiring import build_registry

            self._metrics = build_registry(self)
        return self._metrics

    def launch(self, program: Callable, *args: Any) -> list[Process]:
        """Start ``program(ctx, *args)`` on every rank; returns processes."""
        procs = []
        for ctx in self.contexts:
            gen = program(ctx, *args)
            procs.append(self.engine.process(gen, name=f"rank{ctx.rank}"))
        return procs

    def run(self, program: Callable, *args: Any, until: Optional[float] = None) -> ClusterRun:
        """Run ``program`` on every rank to completion."""
        procs = self.launch(program, *args)
        start = self.engine.now
        self.engine.run(until=until)
        results = []
        for proc in procs:
            if not proc.triggered:
                raise RuntimeError(f"{proc.name} did not finish by the horizon")
            if not proc.ok:
                raise proc.value
            results.append(proc.value)
        return ClusterRun(results=results, elapsed=self.engine.now - start)

    def stats(self) -> str:
        """Aggregate performance-counter report (fabric + per-rank devices)."""
        lines = ["cluster stats"]
        fab = self.fabric.counters
        lines.append(
            "  fabric: "
            + "  ".join(f"{key}={fab[key]}" for key in sorted(fab))
        )
        for device in self.world.devices:
            counters = device.counters
            summary = "  ".join(f"{k}={v}" for k, v in sorted(counters.items()))
            lines.append(f"  rank {device.rank}: {summary}")
        return "\n".join(lines)

    def run_on_ranks(self, programs: dict[int, Callable]) -> ClusterRun:
        """Run different programs on specific ranks (others idle)."""
        procs = {}
        for rank, program in programs.items():
            procs[rank] = self.engine.process(
                program(self.contexts[rank]), name=f"rank{rank}"
            )
        start = self.engine.now
        self.engine.run()
        results = []
        for rank in sorted(procs):
            proc = procs[rank]
            if not proc.ok:
                raise proc.value
            results.append(proc.value)
        return ClusterRun(results=results, elapsed=self.engine.now - start)
