"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class Deadlock(SimError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`repro.sim.engine.Engine.run` when ``run`` is asked to run
    to completion but live processes remain blocked on events that can never
    fire.  This is the DES equivalent of an MPI program hanging in a recv
    with no matching send.
    """

    def __init__(self, waiting: list[str]):
        self.waiting = waiting
        detail = ", ".join(waiting) if waiting else "<unknown>"
        super().__init__(f"deadlock: {len(waiting)} process(es) still waiting: {detail}")


class EventAlreadyTriggered(SimError):
    """An event was succeeded or failed twice."""


class InvalidYield(SimError):
    """A process generator yielded something that is not an Event."""
