"""Deterministic discrete-event simulation kernel (substrate S1).

Everything in the reproduction runs *in simulated time* on this kernel:
MPI ranks are :class:`Process` coroutines, hardware latencies are
:class:`Timeout` events, packet buffers are :class:`Channel` objects and
shared-memory locks are :class:`Lock` resources.

Minimal example::

    from repro.sim import Engine

    def pinger(eng, chan):
        yield eng.timeout(5.0)
        yield chan.put("ping")

    def ponger(eng, chan):
        msg = yield chan.get()
        return (eng.now, msg)

    eng = Engine()
    chan = Channel(eng)
    eng.process(pinger(eng, chan))
    result = eng.run_process(ponger(eng, chan))   # (5.0, "ping")
"""

from .channel import Broadcast, Channel, callback_channel
from .engine import Engine
from .errors import Deadlock, EventAlreadyTriggered, InvalidYield, SimError
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .process import Process, ProcessGenerator
from .resources import Lock, Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Broadcast",
    "Channel",
    "Condition",
    "Deadlock",
    "Engine",
    "Event",
    "EventAlreadyTriggered",
    "InvalidYield",
    "Lock",
    "Process",
    "ProcessGenerator",
    "Resource",
    "SimError",
    "Timeout",
    "callback_channel",
]
